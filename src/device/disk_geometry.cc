#include "device/disk_geometry.h"

#include <algorithm>

namespace memstream::device {

Result<DiskGeometry> DiskGeometry::Create(Bytes capacity,
                                          std::int64_t num_cylinders,
                                          std::int64_t num_zones,
                                          BytesPerSecond outer_rate,
                                          BytesPerSecond inner_rate) {
  if (capacity <= 0) return Status::InvalidArgument("capacity must be > 0");
  if (num_zones < 1 || num_cylinders < num_zones) {
    return Status::InvalidArgument("need num_cylinders >= num_zones >= 1");
  }
  if (!(outer_rate >= inner_rate && inner_rate > 0)) {
    return Status::InvalidArgument("need outer_rate >= inner_rate > 0");
  }

  DiskGeometry geo;
  geo.capacity_ = capacity;
  geo.num_cylinders_ = num_cylinders;
  geo.zones_.resize(static_cast<std::size_t>(num_zones));

  // Cylinders are split evenly across zones; zone rates interpolate from
  // outer to inner; zone capacities are proportional to rate * cylinders.
  double weight_sum = 0.0;
  for (std::int64_t z = 0; z < num_zones; ++z) {
    Zone& zone = geo.zones_[static_cast<std::size_t>(z)];
    zone.first_cylinder = num_cylinders * z / num_zones;
    zone.last_cylinder = num_cylinders * (z + 1) / num_zones - 1;
    const double frac =
        num_zones == 1
            ? 0.0
            : static_cast<double>(z) / static_cast<double>(num_zones - 1);
    zone.transfer_rate = outer_rate - (outer_rate - inner_rate) * frac;
    weight_sum += zone.transfer_rate *
                  static_cast<double>(zone.last_cylinder -
                                      zone.first_cylinder + 1);
  }
  Bytes offset = 0;
  for (auto& zone : geo.zones_) {
    const double weight =
        zone.transfer_rate * static_cast<double>(zone.last_cylinder -
                                                 zone.first_cylinder + 1);
    zone.start_offset = offset;
    zone.capacity = capacity * weight / weight_sum;
    offset += zone.capacity;
  }
  // Absorb floating-point remainder into the last zone so the zone table
  // covers exactly [0, capacity).
  geo.zones_.back().capacity += capacity - offset;
  return geo;
}

Result<const Zone*> DiskGeometry::ZoneAt(Bytes offset) const {
  if (offset < 0 || offset >= capacity_) {
    return Status::OutOfRange("offset beyond disk capacity");
  }
  auto it = std::upper_bound(
      zones_.begin(), zones_.end(), offset,
      [](Bytes off, const Zone& z) { return off < z.start_offset; });
  // upper_bound returns the first zone starting after `offset`; step back.
  return &*std::prev(it);
}

Result<std::int64_t> DiskGeometry::CylinderAt(Bytes offset) const {
  auto zone = ZoneAt(offset);
  MEMSTREAM_RETURN_IF_ERROR(zone.status());
  const Zone& z = *zone.value();
  const double frac = (offset - z.start_offset) / z.capacity;
  const auto span = z.last_cylinder - z.first_cylinder + 1;
  const auto cyl =
      z.first_cylinder +
      static_cast<std::int64_t>(frac * static_cast<double>(span));
  return std::min(cyl, z.last_cylinder);
}

Result<BytesPerSecond> DiskGeometry::RateAt(Bytes offset) const {
  auto zone = ZoneAt(offset);
  MEMSTREAM_RETURN_IF_ERROR(zone.status());
  return zone.value()->transfer_rate;
}

}  // namespace memstream::device
