// DRAM model. In the paper DRAM only matters as the destination of
// MEMS/disk transfers and as the dominant buffering cost; the model is a
// constant access latency plus a constant transfer rate.

#ifndef MEMSTREAM_DEVICE_DRAM_H_
#define MEMSTREAM_DEVICE_DRAM_H_

#include <string>

#include "device/device.h"

namespace memstream::device {

/// Datasheet-level description of a DRAM subsystem.
struct DramParameters {
  std::string name = "DRAM";
  BytesPerSecond transfer_rate = 10 * kGBps;
  Seconds access_latency = 0.03 * kMillisecond;  // Table 1, 2007 row
  Bytes capacity = 5 * kGB;
  DollarsPerByte cost_per_byte = 20.0 / kGB;  // $20/GB (2007)
};

/// Trivial BlockDevice implementation for DRAM.
class Dram final : public BlockDevice {
 public:
  static Result<Dram> Create(const DramParameters& params);

  std::string name() const override { return params_.name; }
  Bytes Capacity() const override { return params_.capacity; }
  BytesPerSecond MaxTransferRate() const override {
    return params_.transfer_rate;
  }
  Seconds MaxAccessLatency() const override { return params_.access_latency; }
  Seconds AverageAccessLatency() const override {
    return params_.access_latency;
  }

  /// access_latency + bytes/rate; position-independent.
  Result<Seconds> Service(const IoSpan& io, Rng* rng) override;

  void Reset() override {}

  const DramParameters& parameters() const { return params_; }

 private:
  explicit Dram(DramParameters params) : params_(std::move(params)) {}

  DramParameters params_;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DRAM_H_
