// Disk-drive model: calibrated seek curve + rotational latency + zoned
// transfer rates. Reproduces the paper's "FutureDisk" (Table 3) as well as
// the 2002 disk of Table 1 (presets live in device_catalog.h).

#ifndef MEMSTREAM_DEVICE_DISK_H_
#define MEMSTREAM_DEVICE_DISK_H_

#include <cstdint>
#include <string>

#include "device/device.h"
#include "device/disk_geometry.h"
#include "device/seek_model.h"

namespace memstream::device {

/// Datasheet-level description of a disk drive.
struct DiskParameters {
  std::string name = "disk";
  double rpm = 10000;
  BytesPerSecond outer_rate = 55 * kMBps;  ///< max (outer-zone) media rate
  BytesPerSecond inner_rate = 30 * kMBps;  ///< min (inner-zone) media rate
  Bytes capacity = 100 * kGB;
  Seconds track_to_track_seek = 0.3 * kMillisecond;
  Seconds average_seek = 4.5 * kMillisecond;
  Seconds full_stroke_seek = 10 * kMillisecond;
  std::int64_t num_cylinders = 50000;
  std::int64_t num_zones = 16;
};

/// Mechanical disk model. See DiskParameters for the knobs.
class DiskDrive final : public BlockDevice {
 public:
  /// Validates the parameters, calibrates the seek curve, and builds the
  /// zone table.
  static Result<DiskDrive> Create(const DiskParameters& params);

  std::string name() const override { return params_.name; }
  Bytes Capacity() const override { return params_.capacity; }
  BytesPerSecond MaxTransferRate() const override {
    return params_.outer_rate;
  }

  /// Full-stroke seek + one full rotation.
  Seconds MaxAccessLatency() const override;

  /// Average seek + half a rotation — the "disk (avg. latency)" curve of
  /// Fig. 2 uses exactly this quantity.
  Seconds AverageAccessLatency() const override;

  /// Seek from the current cylinder, rotational delay (sampled uniformly
  /// over a rotation when `rng` is provided, expected value otherwise),
  /// then a zoned-rate transfer.
  Result<Seconds> Service(const IoSpan& io, Rng* rng) override;

  void Reset() override { current_cylinder_ = 0; }

  /// Expected per-IO latency when an elevator (SCAN) scheduler services a
  /// batch of `n` concurrent requests at uniformly random positions: the
  /// sweep visits them in position order, so the expected seek distance
  /// between consecutive requests is num_cylinders/(n+1); rotational
  /// delay is still half a rotation. This is the paper's
  /// "scheduler-determined latency" L̄_disk (§5).
  Result<Seconds> SchedulerDeterminedLatency(std::int64_t n) const;

  Seconds RotationPeriod() const { return 60.0 / params_.rpm; }

  const DiskParameters& parameters() const { return params_; }
  const SeekModel& seek_model() const { return seek_model_; }
  const DiskGeometry& geometry() const { return geometry_; }
  std::int64_t current_cylinder() const { return current_cylinder_; }

 private:
  DiskDrive(DiskParameters params, SeekModel seek_model,
            DiskGeometry geometry)
      : params_(std::move(params)),
        seek_model_(seek_model),
        geometry_(std::move(geometry)) {}

  DiskParameters params_;
  SeekModel seek_model_;
  DiskGeometry geometry_;
  std::int64_t current_cylinder_ = 0;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DISK_H_
