// MEMS-based storage device model, after the CMU architecture (Carley et
// al., CACM 2000; Schlosser et al., ASPLOS 2000) that the paper adopts:
// a spring-mounted magnetic media sled positioned in X and Y over a fixed
// 2-D array of read/write tips. Moving in Y at constant velocity streams
// data through thousands of concurrently active tips.
//
// Positioning model. The sled is light, so each axis follows a
// constant-acceleration bang-bang trajectory: moving a fraction u of the
// full travel takes t_full * sqrt(u). After any X repositioning the sled
// must settle for x_settle before tips can read. We model X and Y
// positioning as non-overlapped (worst case: the Y pass cannot start until
// the sled is settled in X), so
//
//   max access latency = x_full_stroke + x_settle + y_full_stroke.
//
// With the G3 figures (0.45 ms + 0.14 ms + 0.27 ms = 0.86 ms) this gives a
// FutureDisk/G3 latency ratio of 4.3/0.86 = 5, matching the paper's §5.1
// ("the value for this parameter is around 5").

#ifndef MEMSTREAM_DEVICE_MEMS_DEVICE_H_
#define MEMSTREAM_DEVICE_MEMS_DEVICE_H_

#include <cstdint>
#include <string>

#include "device/device.h"

namespace memstream::device {

/// Datasheet-level description of a MEMS storage device.
struct MemsParameters {
  std::string name = "G3 MEMS";
  BytesPerSecond transfer_rate = 320 * kMBps;
  Bytes capacity = 10 * kGB;
  Seconds x_full_stroke = 0.45 * kMillisecond;  ///< full X travel time
  Seconds x_settle = 0.14 * kMillisecond;       ///< oscillation damping
  Seconds y_full_stroke = 0.27 * kMillisecond;  ///< full Y travel time
  std::int64_t num_regions = 2500;  ///< distinct X positions ("cylinders")
  std::int64_t active_tips = 3200;  ///< concurrently streaming tips
  Dollars cost_per_device = 10;
};

/// Kinematic MEMS device model. Logical layout: the byte space is divided
/// into `num_regions` equal stripes along X; within a stripe, data lies
/// along Y and is streamed sequentially at `transfer_rate`.
class MemsDevice final : public BlockDevice {
 public:
  /// Validates the parameters.
  static Result<MemsDevice> Create(const MemsParameters& params);

  std::string name() const override { return params_.name; }
  Bytes Capacity() const override { return params_.capacity; }
  BytesPerSecond MaxTransferRate() const override {
    return params_.transfer_rate;
  }

  /// x_full_stroke + x_settle + y_full_stroke (see file comment).
  Seconds MaxAccessLatency() const override;

  /// Expected positioning time between two uniformly random locations:
  /// E[sqrt(u)] = 8/15 per axis, plus the settle time.
  Seconds AverageAccessLatency() const override;

  /// Seek time from the current sled position to the byte offset, then a
  /// constant-rate transfer. Perfectly sequential continuation (same
  /// region, contiguous Y) pays no positioning cost. `rng` is unused (the
  /// model is deterministic) and may be null.
  Result<Seconds> Service(const IoSpan& io, Rng* rng) override;

  void Reset() override;

  /// Positioning time between two explicit sled coordinates:
  /// region indices in [0, num_regions) and Y fractions in [0, 1].
  Seconds SeekTime(std::int64_t from_region, double from_y,
                   std::int64_t to_region, double to_y) const;

  /// A sled coordinate: X region index and Y travel fraction.
  struct SledPosition {
    std::int64_t region = 0;
    double y = 0.0;
  };

  /// Sled coordinate of a byte offset (OutOfRange beyond capacity).
  Result<SledPosition> Locate(Bytes offset) const;

  /// Sled coordinate after transferring `io` (where Service would leave
  /// the sled).
  Result<SledPosition> EndOf(const IoSpan& io) const;

  /// Positioning time from the current sled position to `offset`.
  Result<Seconds> SeekTimeTo(Bytes offset) const;

  const MemsParameters& parameters() const { return params_; }
  std::int64_t current_region() const { return current_region_; }
  double current_y() const { return current_y_; }

  // --- degradation hooks (src/fault/) ---

  /// Tip-loss fault: a fraction of the active tips stops reading, so the
  /// effective streaming rate drops by that fraction (the sled still
  /// covers the same media area). Multiplicative and permanent — probe
  /// tips do not heal; `fraction` must be in [0, 1).
  void ApplyTipLoss(double fraction);

  /// Whole-device failure / repair. A failed device refuses Service()
  /// with Unavailable; position state is kept (repair resumes in place).
  void SetFailed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  /// Product of (1 - fraction) over every tip-loss applied so far.
  double rate_scale() const { return rate_scale_; }

  /// transfer_rate scaled by the surviving-tip fraction — the degraded Rm
  /// the re-planner must size against.
  BytesPerSecond EffectiveTransferRate() const {
    return params_.transfer_rate * rate_scale_;
  }

 private:
  explicit MemsDevice(MemsParameters params) : params_(std::move(params)) {}

  Bytes RegionCapacity() const {
    return params_.capacity / static_cast<double>(params_.num_regions);
  }

  MemsParameters params_;
  std::int64_t current_region_ = 0;
  double current_y_ = 0.0;  ///< fraction of the Y travel, in [0, 1]
  double rate_scale_ = 1.0;  ///< surviving-tip fraction (tip-loss faults)
  bool failed_ = false;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_MEMS_DEVICE_H_
