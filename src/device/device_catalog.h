// Device presets reproducing Table 1 (2002 and predicted-2007 media
// characteristics) and Table 3 (the 2007 "off-the-shelf" case-study
// devices: Maxtor-projected FutureDisk, CMU G3 MEMS, Rambus DRAM), plus
// the earlier CMU MEMS generations (G1/G2 from Schlosser et al., ASPLOS
// 2000) for completeness.
//
// Note on Table 3's capacity row: the published table garbles the
// disk/DRAM capacities; we use disk = 1000 GB and DRAM = 5 GB, which is
// what Table 1 (2007), §5.1.3 ("maximum DRAM size is restricted to 5GB"),
// and Fig. 10 ("each MEMS device can cache 1% of the content") all imply.

#ifndef MEMSTREAM_DEVICE_DEVICE_CATALOG_H_
#define MEMSTREAM_DEVICE_DEVICE_CATALOG_H_

#include <string>
#include <vector>

#include "device/disk.h"
#include "device/dram.h"
#include "device/mems_device.h"

namespace memstream::device {

// --- Table 3 devices (year 2007 case study) -------------------------------

/// Maxtor-projected 2007 disk: 20 000 RPM, 300 MB/s outer zone, 2.8 ms
/// average seek, 7 ms full stroke, 1 TB.
DiskParameters FutureDisk2007();

/// CMU third-generation MEMS device: 320 MB/s, 10 GB, 0.45 ms full-stroke
/// X move, 0.14 ms settle, $10/device.
MemsParameters MemsG3();

/// 2007 DRAM: 10 GB/s, $20/GB, 5 GB system maximum.
DramParameters Dram2007();

// --- Table 1 contemporaries (year 2002) -----------------------------------

/// 2002 server disk (Maxtor Atlas 10K III class): 100 GB, 30-55 MB/s.
DiskParameters Disk2002();

/// 2002 DRAM: 0.5 GB, 2 GB/s, $200/GB.
DramParameters Dram2002();

// --- Earlier CMU MEMS generations ------------------------------------------

/// First-generation CMU MEMS model (conservative MEMS postulates).
MemsParameters MemsG1();

/// Second-generation CMU MEMS model.
MemsParameters MemsG2();

// --- Table renderings -------------------------------------------------------

/// One row of Table 1 ("Storage media characteristics").
struct MediaCharacteristicsRow {
  int year;                 ///< 2002 or 2007
  std::string medium;       ///< "DRAM", "MEMS", "Disk"
  std::string capacity_gb;  ///< ranges kept as text, as in the paper
  std::string access_time_ms;
  std::string bandwidth_mbps;
  std::string cost_per_gb;
  std::string cost_per_device;
};

/// The six rows of Table 1, in paper order.
std::vector<MediaCharacteristicsRow> Table1Rows();

/// One column of Table 3 ("Performance characteristics ... in 2007").
struct DeviceCharacteristics2007 {
  std::string name;
  std::string rpm;
  double max_bandwidth_mbps;
  std::string average_seek_ms;
  std::string full_stroke_seek_ms;
  std::string x_settle_ms;
  double capacity_gb;
  double cost_per_gb;
  std::string cost_per_device;
};

/// The three columns of Table 3 (FutureDisk, G3 MEMS, DRAM).
std::vector<DeviceCharacteristics2007> Table3Columns();

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DEVICE_CATALOG_H_
