#include "device/mems_scheduler.h"

#include <limits>
#include <numeric>

namespace memstream::device {

const char* MemsSchedulerPolicyName(MemsSchedulerPolicy policy) {
  switch (policy) {
    case MemsSchedulerPolicy::kFcfs:
      return "FCFS";
    case MemsSchedulerPolicy::kSptf:
      return "SPTF";
  }
  return "?";
}

std::vector<std::size_t> MemsScheduleOrder(MemsSchedulerPolicy policy,
                                           const MemsDevice& device,
                                           const std::vector<IoSpan>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == MemsSchedulerPolicy::kFcfs) return order;

  // SPTF: greedily chase the cheapest positioning from the simulated
  // sled position, advancing it past each chosen transfer.
  std::vector<std::size_t> remaining = order;
  order.clear();
  MemsDevice::SledPosition pos{device.current_region(), device.current_y()};
  while (!remaining.empty()) {
    std::size_t best_slot = 0;
    Seconds best_time = std::numeric_limits<Seconds>::infinity();
    for (std::size_t slot = 0; slot < remaining.size(); ++slot) {
      auto start = device.Locate(
          static_cast<Bytes>(batch[remaining[slot]].offset));
      // Invalid offsets sort last (infinite cost) and fail in Service.
      const Seconds t =
          start.ok() ? device.SeekTime(pos.region, pos.y,
                                       start.value().region,
                                       start.value().y)
                     : std::numeric_limits<Seconds>::infinity();
      if (t < best_time) {
        best_time = t;
        best_slot = slot;
      }
    }
    const std::size_t chosen = remaining[best_slot];
    order.push_back(chosen);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_slot));
    auto end = device.EndOf(batch[chosen]);
    if (end.ok()) pos = end.value();
  }
  return order;
}

Result<Seconds> MemsServiceBatch(MemsDevice& device,
                                 MemsSchedulerPolicy policy,
                                 const std::vector<IoSpan>& batch) {
  Seconds total = 0;
  for (std::size_t idx : MemsScheduleOrder(policy, device, batch)) {
    auto t = device.Service(batch[idx], nullptr);
    MEMSTREAM_RETURN_IF_ERROR(t.status());
    total += t.value();
  }
  return total;
}

}  // namespace memstream::device
