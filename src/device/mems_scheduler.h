// MEMS-aware request scheduling. Classical disk schedulers order by
// one-dimensional seek distance; a MEMS sled positions in X and Y
// independently, so the right greedy metric is the device's actual
// positioning time (shortest-positioning-time-first, SPTF — Griffin et
// al. studied this for MEMS stores). The paper's related-work section
// points at exactly this gap; the server uses SPTF for MEMS batches the
// way it uses the elevator for disk batches.

#ifndef MEMSTREAM_DEVICE_MEMS_SCHEDULER_H_
#define MEMSTREAM_DEVICE_MEMS_SCHEDULER_H_

#include <vector>

#include "device/mems_device.h"

namespace memstream::device {

/// MEMS batch-ordering policy.
enum class MemsSchedulerPolicy {
  kFcfs,  ///< arrival order
  kSptf,  ///< greedy shortest-positioning-time-first (kinematic model)
};

const char* MemsSchedulerPolicyName(MemsSchedulerPolicy policy);

/// Returns the service order (indices into `batch`) under `policy`,
/// starting from the device's current sled position. The device is not
/// modified; offsets outside the device are ordered last in arrival
/// order (Service will reject them).
std::vector<std::size_t> MemsScheduleOrder(MemsSchedulerPolicy policy,
                                           const MemsDevice& device,
                                           const std::vector<IoSpan>& batch);

/// Services the whole batch in scheduled order; returns total busy time.
Result<Seconds> MemsServiceBatch(MemsDevice& device,
                                 MemsSchedulerPolicy policy,
                                 const std::vector<IoSpan>& batch);

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_MEMS_SCHEDULER_H_
