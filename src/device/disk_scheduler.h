// IO-queue scheduling policies for positional devices. The time-cycle
// server collects one request per stream each cycle and hands the batch to
// one of these policies; the paper's evaluation uses the elevator (SCAN)
// policy on the disk (§5: "The disk IO scheduler uses elevator scheduling
// to optimize for disk utilization").

#ifndef MEMSTREAM_DEVICE_DISK_SCHEDULER_H_
#define MEMSTREAM_DEVICE_DISK_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "device/device.h"

namespace memstream::device {

/// Batch-reordering policy.
enum class SchedulerPolicy {
  kFcfs,   ///< service in arrival order
  kSstf,   ///< greedy shortest-seek-first from the current position
  kScan,   ///< elevator: sweep up from the current position, then down
  kCLook,  ///< circular: sweep up, jump back to the lowest pending request
};

const char* SchedulerPolicyName(SchedulerPolicy policy);

/// Returns the service order (indices into `batch`) under `policy`,
/// starting from byte offset `head_offset`. The batch is not modified.
std::vector<std::size_t> ScheduleOrder(SchedulerPolicy policy,
                                       std::int64_t head_offset,
                                       const std::vector<IoSpan>& batch);

/// Allocation-free variant for the batched cycle engine: writes the
/// service order of `batch[0..n)` into `order[0..n)` using
/// `scratch[0..n)` as working space (both caller-provided, typically
/// arena-backed). Produces exactly the order ScheduleOrder returns.
void ScheduleOrderInto(SchedulerPolicy policy, std::int64_t head_offset,
                       const IoSpan* batch, std::size_t n,
                       std::size_t* order, std::size_t* scratch);

/// Services a whole batch on `device` in the order chosen by `policy`
/// (starting from `head_offset`, normally the offset of the last serviced
/// IO) and returns the total busy time (sum of per-IO service times).
Result<Seconds> ServiceBatch(BlockDevice& device, SchedulerPolicy policy,
                             std::int64_t head_offset,
                             const std::vector<IoSpan>& batch, Rng* rng);

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DISK_SCHEDULER_H_
