// On-device segment cache. §3 of the paper: "Similar to disk caches
// found on current-day disk drives, we assume that MEMS storage devices
// would also include on-device caches." This wrapper adds an LRU segment
// cache in front of any BlockDevice: reads that hit a cached segment are
// serviced at the cache transfer rate with no positioning cost; misses
// go to the device and populate the cache.
//
// Streaming workloads have no temporal locality (§4.2), so the *server*
// never relies on this — but best-effort traffic sharing the device does
// (§3.1 "spare storage ... as a cache for read data with temporal or
// spatial locality"), and the wrapper lets experiments quantify it.

#ifndef MEMSTREAM_DEVICE_DEVICE_CACHE_H_
#define MEMSTREAM_DEVICE_DEVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "device/device.h"

namespace memstream::device {

/// Configuration of the on-device cache.
struct DeviceCacheParameters {
  Bytes cache_bytes = 16 * kMB;      ///< total cache size
  Bytes segment_bytes = 512 * kKB;   ///< cache line (aligned segments)
  BytesPerSecond cache_rate = 2 * kGBps;  ///< hit transfer rate
};

/// Cache hit/miss accounting.
struct DeviceCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;

  double HitRate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// LRU segment cache over a borrowed backing device. An IO counts as a
/// hit only if every segment it touches is resident (partial hits are
/// charged as misses — conservative and simple).
class CachedDevice final : public BlockDevice {
 public:
  /// Wraps `backing` (not owned; must outlive the wrapper). Requires
  /// segment_bytes > 0 and cache_bytes >= segment_bytes.
  static Result<CachedDevice> Create(BlockDevice* backing,
                                     const DeviceCacheParameters& params);

  std::string name() const override { return backing_->name() + "+cache"; }
  Bytes Capacity() const override { return backing_->Capacity(); }
  BytesPerSecond MaxTransferRate() const override {
    return backing_->MaxTransferRate();
  }
  Seconds MaxAccessLatency() const override {
    return backing_->MaxAccessLatency();
  }
  Seconds AverageAccessLatency() const override {
    return backing_->AverageAccessLatency();
  }

  /// Hit: io.bytes / cache_rate. Miss: backing service time, then the
  /// touched segments become resident (evicting LRU segments).
  Result<Seconds> Service(const IoSpan& io, Rng* rng) override;

  void Reset() override;

  const DeviceCacheStats& stats() const { return stats_; }
  std::int64_t resident_segments() const {
    return static_cast<std::int64_t>(lru_.size());
  }

 private:
  CachedDevice(BlockDevice* backing, const DeviceCacheParameters& params)
      : backing_(backing),
        params_(params),
        max_segments_(static_cast<std::size_t>(params.cache_bytes /
                                               params.segment_bytes)) {}

  std::int64_t SegmentOf(Bytes offset) const {
    return static_cast<std::int64_t>(offset / params_.segment_bytes);
  }

  void Touch(std::int64_t segment);
  bool Resident(std::int64_t segment) const {
    return index_.count(segment) > 0;
  }

  BlockDevice* backing_;
  DeviceCacheParameters params_;
  std::size_t max_segments_;
  // LRU list front = most recent; map segment -> list node.
  std::list<std::int64_t> lru_;
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator>
      index_;
  DeviceCacheStats stats_;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DEVICE_CACHE_H_
