#include "device/disk_scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace memstream::device {

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs:
      return "FCFS";
    case SchedulerPolicy::kSstf:
      return "SSTF";
    case SchedulerPolicy::kScan:
      return "SCAN";
    case SchedulerPolicy::kCLook:
      return "C-LOOK";
  }
  return "?";
}

namespace {

std::vector<std::size_t> SortedByOffset(const std::vector<IoSpan>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return batch[a].offset < batch[b].offset;
                   });
  return order;
}

std::vector<std::size_t> SstfOrder(std::int64_t head,
                                   const std::vector<IoSpan>& batch) {
  std::vector<std::size_t> remaining(batch.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<std::size_t> order;
  order.reserve(batch.size());
  std::int64_t pos = head;
  while (!remaining.empty()) {
    auto best = remaining.begin();
    std::int64_t best_dist = std::llabs(batch[*best].offset - pos);
    for (auto it = std::next(remaining.begin()); it != remaining.end();
         ++it) {
      const std::int64_t dist = std::llabs(batch[*it].offset - pos);
      if (dist < best_dist) {
        best = it;
        best_dist = dist;
      }
    }
    pos = batch[*best].offset;
    order.push_back(*best);
    remaining.erase(best);
  }
  return order;
}

std::vector<std::size_t> ScanOrder(std::int64_t head,
                                   const std::vector<IoSpan>& batch,
                                   bool circular) {
  const auto sorted = SortedByOffset(batch);
  // Split into requests at/above the head (serviced on the upward sweep)
  // and below it.
  std::vector<std::size_t> up, down;
  for (std::size_t idx : sorted) {
    if (batch[idx].offset >= head) {
      up.push_back(idx);
    } else {
      down.push_back(idx);
    }
  }
  std::vector<std::size_t> order = up;
  if (circular) {
    // C-LOOK: jump back to the lowest pending offset, sweep up again.
    order.insert(order.end(), down.begin(), down.end());
  } else {
    // SCAN: reverse direction and sweep down.
    order.insert(order.end(), down.rbegin(), down.rend());
  }
  return order;
}

}  // namespace

std::vector<std::size_t> ScheduleOrder(SchedulerPolicy policy,
                                       std::int64_t head_offset,
                                       const std::vector<IoSpan>& batch) {
  switch (policy) {
    case SchedulerPolicy::kFcfs: {
      std::vector<std::size_t> order(batch.size());
      std::iota(order.begin(), order.end(), 0);
      return order;
    }
    case SchedulerPolicy::kSstf:
      return SstfOrder(head_offset, batch);
    case SchedulerPolicy::kScan:
      return ScanOrder(head_offset, batch, /*circular=*/false);
    case SchedulerPolicy::kCLook:
      return ScanOrder(head_offset, batch, /*circular=*/true);
  }
  return {};
}

Result<Seconds> ServiceBatch(BlockDevice& device, SchedulerPolicy policy,
                             std::int64_t head_offset,
                             const std::vector<IoSpan>& batch, Rng* rng) {
  Seconds total = 0;
  for (std::size_t idx : ScheduleOrder(policy, head_offset, batch)) {
    auto t = device.Service(batch[idx], rng);
    MEMSTREAM_RETURN_IF_ERROR(t.status());
    total += t.value();
  }
  return total;
}

}  // namespace memstream::device
