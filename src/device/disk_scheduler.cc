#include "device/disk_scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace memstream::device {

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs:
      return "FCFS";
    case SchedulerPolicy::kSstf:
      return "SSTF";
    case SchedulerPolicy::kScan:
      return "SCAN";
    case SchedulerPolicy::kCLook:
      return "C-LOOK";
  }
  return "?";
}

namespace {

void SstfOrderInto(std::int64_t head, const IoSpan* batch, std::size_t n,
                   std::size_t* order, std::size_t* remaining) {
  std::iota(remaining, remaining + n, std::size_t{0});
  std::size_t left = n;
  std::int64_t pos = head;
  for (std::size_t out = 0; out < n; ++out) {
    std::size_t best = 0;
    std::int64_t best_dist = std::llabs(batch[remaining[0]].offset - pos);
    for (std::size_t j = 1; j < left; ++j) {
      const std::int64_t dist = std::llabs(batch[remaining[j]].offset - pos);
      if (dist < best_dist) {
        best = j;
        best_dist = dist;
      }
    }
    pos = batch[remaining[best]].offset;
    order[out] = remaining[best];
    // Shift-erase keeps the scan order of the survivors, matching the
    // vector::erase the original implementation used (ties break the
    // same way).
    for (std::size_t j = best + 1; j < left; ++j) {
      remaining[j - 1] = remaining[j];
    }
    --left;
  }
}

void ScanOrderInto(std::int64_t head, const IoSpan* batch, std::size_t n,
                   bool circular, std::size_t* order, std::size_t* scratch) {
  std::iota(scratch, scratch + n, std::size_t{0});
  // Equal offsets tie-break on the index, which reproduces stable_sort's
  // order over the iota input without its temporary merge buffer — the
  // cycle engines call this once per cycle and must stay allocation-free.
  std::sort(scratch, scratch + n, [&](std::size_t a, std::size_t b) {
    const std::int64_t oa = batch[a].offset;
    const std::int64_t ob = batch[b].offset;
    return oa != ob ? oa < ob : a < b;
  });
  // Split into requests at/above the head (serviced on the upward sweep)
  // and below it.
  std::size_t out = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (batch[scratch[j]].offset >= head) order[out++] = scratch[j];
  }
  if (circular) {
    // C-LOOK: jump back to the lowest pending offset, sweep up again.
    for (std::size_t j = 0; j < n; ++j) {
      if (batch[scratch[j]].offset < head) order[out++] = scratch[j];
    }
  } else {
    // SCAN: reverse direction and sweep down.
    for (std::size_t j = n; j-- > 0;) {
      if (batch[scratch[j]].offset < head) order[out++] = scratch[j];
    }
  }
}

}  // namespace

void ScheduleOrderInto(SchedulerPolicy policy, std::int64_t head_offset,
                       const IoSpan* batch, std::size_t n,
                       std::size_t* order, std::size_t* scratch) {
  switch (policy) {
    case SchedulerPolicy::kFcfs:
      std::iota(order, order + n, std::size_t{0});
      return;
    case SchedulerPolicy::kSstf:
      SstfOrderInto(head_offset, batch, n, order, scratch);
      return;
    case SchedulerPolicy::kScan:
      ScanOrderInto(head_offset, batch, n, /*circular=*/false, order,
                    scratch);
      return;
    case SchedulerPolicy::kCLook:
      ScanOrderInto(head_offset, batch, n, /*circular=*/true, order,
                    scratch);
      return;
  }
}

std::vector<std::size_t> ScheduleOrder(SchedulerPolicy policy,
                                       std::int64_t head_offset,
                                       const std::vector<IoSpan>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::vector<std::size_t> scratch(batch.size());
  ScheduleOrderInto(policy, head_offset, batch.data(), batch.size(),
                    order.data(), scratch.data());
  return order;
}

Result<Seconds> ServiceBatch(BlockDevice& device, SchedulerPolicy policy,
                             std::int64_t head_offset,
                             const std::vector<IoSpan>& batch, Rng* rng) {
  Seconds total = 0;
  for (std::size_t idx : ScheduleOrder(policy, head_offset, batch)) {
    auto t = device.Service(batch[idx], rng);
    MEMSTREAM_RETURN_IF_ERROR(t.status());
    total += t.value();
  }
  return total;
}

}  // namespace memstream::device
