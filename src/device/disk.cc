#include "device/disk.h"

#include <cmath>
#include <cstdlib>

namespace memstream::device {

Result<DiskDrive> DiskDrive::Create(const DiskParameters& params) {
  if (params.rpm <= 0) return Status::InvalidArgument("rpm must be > 0");
  auto seek = SeekModel::Calibrate(params.track_to_track_seek,
                                   params.average_seek,
                                   params.full_stroke_seek,
                                   params.num_cylinders);
  MEMSTREAM_RETURN_IF_ERROR(seek.status());
  auto geometry =
      DiskGeometry::Create(params.capacity, params.num_cylinders,
                           params.num_zones, params.outer_rate,
                           params.inner_rate);
  MEMSTREAM_RETURN_IF_ERROR(geometry.status());
  return DiskDrive(params, seek.value(), std::move(geometry).value());
}

Seconds DiskDrive::MaxAccessLatency() const {
  return seek_model_.FullStrokeTime() + RotationPeriod();
}

Seconds DiskDrive::AverageAccessLatency() const {
  return seek_model_.AverageSeekTime() + 0.5 * RotationPeriod();
}

Result<Seconds> DiskDrive::Service(const IoSpan& io, Rng* rng) {
  if (io.bytes < 0) return Status::InvalidArgument("negative IO size");
  if (io.offset < 0 ||
      static_cast<Bytes>(io.offset) + io.bytes > params_.capacity) {
    return Status::OutOfRange("IO beyond disk capacity");
  }
  auto cylinder = geometry_.CylinderAt(static_cast<Bytes>(io.offset));
  MEMSTREAM_RETURN_IF_ERROR(cylinder.status());

  const Seconds seek =
      seek_model_.SeekTime(std::llabs(cylinder.value() - current_cylinder_));
  const Seconds rotation = rng == nullptr
                               ? 0.5 * RotationPeriod()
                               : rng->NextDouble() * RotationPeriod();
  // Transfer at the rate of the starting zone; IOs that straddle a zone
  // boundary are charged the starting zone's rate (the error is bounded by
  // one zone step and irrelevant at the paper's modeling granularity).
  auto rate = geometry_.RateAt(static_cast<Bytes>(io.offset));
  MEMSTREAM_RETURN_IF_ERROR(rate.status());
  const Seconds transfer = io.bytes / rate.value();

  const Bytes end = static_cast<Bytes>(io.offset) + io.bytes;
  auto end_cylinder = geometry_.CylinderAt(
      end >= params_.capacity ? params_.capacity - 1 : end);
  MEMSTREAM_RETURN_IF_ERROR(end_cylinder.status());
  current_cylinder_ = end_cylinder.value();

  const Seconds service = seek + rotation + transfer;
  AccountService(service, io.bytes);
  return service;
}

Result<Seconds> DiskDrive::SchedulerDeterminedLatency(std::int64_t n) const {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  // n uniform points split the cylinder span into n+1 gaps of expected
  // width C/(n+1); a C-LOOK sweep pays one gap seek per request plus one
  // full sweep-back per cycle, amortized over the n requests (without
  // the amortized term the estimate is optimistic and simulated cycles
  // overrun their analytic length).
  const auto gap = static_cast<std::int64_t>(
      std::llround(static_cast<double>(params_.num_cylinders) /
                   static_cast<double>(n + 1)));
  const Seconds gap_seek =
      seek_model_.SeekTime(std::max<std::int64_t>(gap, 1));
  const Seconds wrap =
      (seek_model_.FullStrokeTime() - gap_seek) / static_cast<double>(n);
  return gap_seek + wrap + 0.5 * RotationPeriod();
}

}  // namespace memstream::device
