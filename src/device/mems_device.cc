#include "device/mems_device.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace memstream::device {

Result<MemsDevice> MemsDevice::Create(const MemsParameters& params) {
  if (params.transfer_rate <= 0) {
    return Status::InvalidArgument("transfer_rate must be > 0");
  }
  if (params.capacity <= 0) {
    return Status::InvalidArgument("capacity must be > 0");
  }
  if (params.num_regions < 1) {
    return Status::InvalidArgument("num_regions must be >= 1");
  }
  if (params.x_full_stroke < 0 || params.x_settle < 0 ||
      params.y_full_stroke < 0) {
    return Status::InvalidArgument("positioning times must be >= 0");
  }
  return MemsDevice(params);
}

Seconds MemsDevice::MaxAccessLatency() const {
  return params_.x_full_stroke + params_.x_settle + params_.y_full_stroke;
}

Seconds MemsDevice::AverageAccessLatency() const {
  constexpr double kMeanSqrt = 8.0 / 15.0;  // E[sqrt(|x-y|)], x,y ~ U[0,1]
  return kMeanSqrt * (params_.x_full_stroke + params_.y_full_stroke) +
         params_.x_settle;
}

Seconds MemsDevice::SeekTime(std::int64_t from_region, double from_y,
                             std::int64_t to_region, double to_y) const {
  const double dx =
      params_.num_regions <= 1
          ? 0.0
          : static_cast<double>(std::llabs(to_region - from_region)) /
                static_cast<double>(params_.num_regions - 1);
  const double dy = std::fabs(to_y - from_y);
  if (dx == 0.0 && dy == 0.0) return 0.0;
  const Seconds x_time =
      dx > 0.0 ? params_.x_full_stroke * std::sqrt(dx) + params_.x_settle
               : 0.0;
  const Seconds y_time = params_.y_full_stroke * std::sqrt(dy);
  return x_time + y_time;
}

Result<MemsDevice::SledPosition> MemsDevice::Locate(Bytes offset) const {
  if (offset < 0 || offset >= params_.capacity) {
    return Status::OutOfRange("offset beyond MEMS capacity");
  }
  const Bytes region_cap = RegionCapacity();
  auto region = static_cast<std::int64_t>(offset / region_cap);
  region = std::min(region, params_.num_regions - 1);
  const double y_frac = std::clamp(
      (offset - static_cast<double>(region) * region_cap) / region_cap,
      0.0, 1.0);
  return SledPosition{region, y_frac};
}

Result<MemsDevice::SledPosition> MemsDevice::EndOf(const IoSpan& io) const {
  auto start = Locate(static_cast<Bytes>(io.offset));
  MEMSTREAM_RETURN_IF_ERROR(start.status());
  if (io.bytes < 0) return Status::InvalidArgument("negative IO size");
  if (static_cast<Bytes>(io.offset) + io.bytes > params_.capacity) {
    return Status::OutOfRange("IO beyond MEMS capacity");
  }
  // The sled advances along Y by the transferred fraction; transfers that
  // exceed a region wrap into subsequent regions (landing in the last).
  const double total_y = start.value().y + io.bytes / RegionCapacity();
  const auto regions_advanced = static_cast<std::int64_t>(total_y);
  SledPosition end;
  end.region = std::min(start.value().region + regions_advanced,
                        params_.num_regions - 1);
  end.y = total_y - static_cast<double>(regions_advanced);
  return end;
}

Result<Seconds> MemsDevice::SeekTimeTo(Bytes offset) const {
  auto target = Locate(offset);
  MEMSTREAM_RETURN_IF_ERROR(target.status());
  return SeekTime(current_region_, current_y_, target.value().region,
                  target.value().y);
}

void MemsDevice::ApplyTipLoss(double fraction) {
  if (fraction < 0) fraction = 0;
  if (fraction >= 1) fraction = 1 - 1e-9;  // a device never quite hits 0
  rate_scale_ *= 1.0 - fraction;
}

Result<Seconds> MemsDevice::Service(const IoSpan& io, Rng* /*rng*/) {
  if (failed_) return Status::Unavailable(name() + " is failed");
  if (io.bytes < 0) return Status::InvalidArgument("negative IO size");
  if (io.offset < 0 ||
      static_cast<Bytes>(io.offset) + io.bytes > params_.capacity) {
    return Status::OutOfRange("IO beyond MEMS capacity");
  }
  auto start = Locate(static_cast<Bytes>(io.offset));
  MEMSTREAM_RETURN_IF_ERROR(start.status());
  auto end = EndOf(io);
  MEMSTREAM_RETURN_IF_ERROR(end.status());

  const Seconds seek = SeekTime(current_region_, current_y_,
                                start.value().region, start.value().y);
  const Seconds transfer = io.bytes / EffectiveTransferRate();
  current_region_ = end.value().region;
  current_y_ = end.value().y;
  const Seconds service = seek + transfer;
  AccountService(service, io.bytes);
  return service;
}

void MemsDevice::Reset() {
  current_region_ = 0;
  current_y_ = 0.0;
}

}  // namespace memstream::device
