#include "device/device_cache.h"

namespace memstream::device {

Result<CachedDevice> CachedDevice::Create(
    BlockDevice* backing, const DeviceCacheParameters& params) {
  if (backing == nullptr) {
    return Status::InvalidArgument("backing device is required");
  }
  if (params.segment_bytes <= 0) {
    return Status::InvalidArgument("segment_bytes must be > 0");
  }
  if (params.cache_bytes < params.segment_bytes) {
    return Status::InvalidArgument(
        "cache_bytes must hold at least one segment");
  }
  if (params.cache_rate <= 0) {
    return Status::InvalidArgument("cache_rate must be > 0");
  }
  return CachedDevice(backing, params);
}

void CachedDevice::Touch(std::int64_t segment) {
  auto it = index_.find(segment);
  if (it != index_.end()) {
    lru_.erase(it->second);
  } else if (lru_.size() >= max_segments_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(segment);
  index_[segment] = lru_.begin();
}

Result<Seconds> CachedDevice::Service(const IoSpan& io, Rng* rng) {
  if (io.bytes < 0) return Status::InvalidArgument("negative IO size");
  if (io.offset < 0 ||
      static_cast<Bytes>(io.offset) + io.bytes > backing_->Capacity()) {
    return Status::OutOfRange("IO beyond device capacity");
  }
  const std::int64_t first = SegmentOf(static_cast<Bytes>(io.offset));
  const std::int64_t last = SegmentOf(
      static_cast<Bytes>(io.offset) + (io.bytes > 0 ? io.bytes - 1 : 0));

  bool hit = true;
  for (std::int64_t s = first; s <= last; ++s) {
    if (!Resident(s)) {
      hit = false;
      break;
    }
  }

  if (hit) {
    ++stats_.hits;
    for (std::int64_t s = first; s <= last; ++s) Touch(s);
    const Seconds service = io.bytes / params_.cache_rate;
    AccountService(service, io.bytes);
    return service;
  }

  ++stats_.misses;
  auto t = backing_->Service(io, rng);
  MEMSTREAM_RETURN_IF_ERROR(t.status());
  for (std::int64_t s = first; s <= last; ++s) Touch(s);
  AccountService(t.value(), io.bytes);
  return t.value();
}

void CachedDevice::Reset() {
  backing_->Reset();
  lru_.clear();
  index_.clear();
  stats_ = DeviceCacheStats{};
}

}  // namespace memstream::device
