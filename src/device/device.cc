#include "device/device.h"

namespace memstream::device {

Result<Bytes> IoSizeForThroughput(BytesPerSecond target, Seconds latency,
                                  BytesPerSecond rate) {
  if (target <= 0) return Status::InvalidArgument("target must be positive");
  if (target >= rate) {
    return Status::Infeasible(
        "target throughput not below the media transfer rate");
  }
  // Solve s / (latency + s/rate) = target for s.
  return target * latency * rate / (rate - target);
}

}  // namespace memstream::device
