// Disk seek-time curve.
//
// The curve has the classical concave-then-linear shape
//     t(d) = t0 + A * sqrt(d/C) + B * (d/C),   d in cylinders, C = total
// with t(0) = 0. Calibrate() fits A and B from three published numbers —
// track-to-track seek, average seek, and full-stroke seek — using the fact
// that for two independent uniform cylinder positions the normalized seek
// distance u = d/C has density 2(1-u), hence E[sqrt(u)] = 8/15 and
// E[u] = 1/3.

#ifndef MEMSTREAM_DEVICE_SEEK_MODEL_H_
#define MEMSTREAM_DEVICE_SEEK_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace memstream::device {

/// Calibrated seek curve over cylinder distances [0, num_cylinders].
class SeekModel {
 public:
  /// Fits the curve to the three published seek figures.
  ///
  /// Requires 0 < track_to_track < average < full_stroke and a fit with
  /// non-negative sqrt and linear coefficients (otherwise the three points
  /// are not realizable by a concave curve and InvalidArgument is
  /// returned).
  static Result<SeekModel> Calibrate(Seconds track_to_track, Seconds average,
                                     Seconds full_stroke,
                                     std::int64_t num_cylinders);

  /// Seek time for a distance of `cylinders` (0 yields 0; values are
  /// clamped to the full stroke).
  Seconds SeekTime(std::int64_t cylinders) const;

  /// Expected seek time for a random pair of cylinder positions; equals
  /// the calibration's `average` by construction.
  Seconds AverageSeekTime() const;

  /// t(num_cylinders).
  Seconds FullStrokeTime() const;

  std::int64_t num_cylinders() const { return num_cylinders_; }

 private:
  SeekModel(Seconds t0, double a, double b, std::int64_t num_cylinders)
      : t0_(t0), a_(a), b_(b), num_cylinders_(num_cylinders) {}

  Seconds t0_;  ///< single-track seek intercept (includes head settle)
  double a_;    ///< sqrt-term coefficient [s]
  double b_;    ///< linear-term coefficient [s]
  std::int64_t num_cylinders_;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_SEEK_MODEL_H_
