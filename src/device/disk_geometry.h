// Zoned-bit-recording geometry: maps byte offsets to cylinders and zones,
// with per-zone media transfer rates interpolated between the outer
// (fastest) and inner (slowest) zones. Cylinder 0 is the outermost.

#ifndef MEMSTREAM_DEVICE_DISK_GEOMETRY_H_
#define MEMSTREAM_DEVICE_DISK_GEOMETRY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace memstream::device {

/// One recording zone: a contiguous cylinder range with a constant media
/// transfer rate. Capacity is distributed across zones proportionally to
/// their rate (more bits per track where the linear density allows it).
struct Zone {
  std::int64_t first_cylinder = 0;
  std::int64_t last_cylinder = 0;   ///< inclusive
  BytesPerSecond transfer_rate = 0;
  Bytes start_offset = 0;           ///< first byte of the zone
  Bytes capacity = 0;               ///< bytes held by the zone
};

/// Immutable geometry computed from capacity, cylinder count, zone count,
/// and the outer/inner transfer rates.
class DiskGeometry {
 public:
  /// Builds the zone table. Requires capacity > 0, num_cylinders >=
  /// num_zones >= 1, and outer_rate >= inner_rate > 0.
  static Result<DiskGeometry> Create(Bytes capacity,
                                     std::int64_t num_cylinders,
                                     std::int64_t num_zones,
                                     BytesPerSecond outer_rate,
                                     BytesPerSecond inner_rate);

  Bytes capacity() const { return capacity_; }
  std::int64_t num_cylinders() const { return num_cylinders_; }
  const std::vector<Zone>& zones() const { return zones_; }

  /// Zone containing the byte offset; OutOfRange beyond capacity.
  Result<const Zone*> ZoneAt(Bytes offset) const;

  /// Cylinder containing the byte offset (linear within a zone).
  Result<std::int64_t> CylinderAt(Bytes offset) const;

  /// Media transfer rate at the byte offset.
  Result<BytesPerSecond> RateAt(Bytes offset) const;

 private:
  DiskGeometry() = default;

  Bytes capacity_ = 0;
  std::int64_t num_cylinders_ = 0;
  std::vector<Zone> zones_;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DISK_GEOMETRY_H_
