#include "device/bank.h"

#include <algorithm>

namespace memstream::device {

const char* BankModeName(BankMode mode) {
  switch (mode) {
    case BankMode::kRoundRobin:
      return "round-robin";
    case BankMode::kStriped:
      return "striped";
    case BankMode::kReplicated:
      return "replicated";
  }
  return "?";
}

Result<DeviceBank> DeviceBank::Create(
    std::vector<std::unique_ptr<BlockDevice>> devices, BankMode mode) {
  if (devices.empty()) {
    return Status::InvalidArgument("bank needs at least one device");
  }
  for (const auto& d : devices) {
    if (d == nullptr) return Status::InvalidArgument("null device in bank");
    if (d->Capacity() != devices[0]->Capacity() ||
        d->MaxTransferRate() != devices[0]->MaxTransferRate()) {
      return Status::InvalidArgument("bank devices must be identical");
    }
  }
  return DeviceBank(std::move(devices), mode);
}

BytesPerSecond DeviceBank::AggregateTransferRate() const {
  return static_cast<double>(size()) * devices_[0]->MaxTransferRate();
}

Seconds DeviceBank::EffectiveAverageLatency() const {
  const Seconds single = devices_[0]->AverageAccessLatency();
  return mode_ == BankMode::kStriped ? single
                                     : single / static_cast<double>(size());
}

Seconds DeviceBank::EffectiveMaxLatency() const {
  const Seconds single = devices_[0]->MaxAccessLatency();
  return mode_ == BankMode::kStriped ? single
                                     : single / static_cast<double>(size());
}

Bytes DeviceBank::EffectiveCapacity() const {
  const Bytes single = devices_[0]->Capacity();
  return mode_ == BankMode::kReplicated
             ? single
             : static_cast<double>(size()) * single;
}

Result<std::size_t> DeviceBank::NextRoundRobinDevice() {
  if (mode_ != BankMode::kRoundRobin) {
    return Status::FailedPrecondition(
        "round-robin routing only valid in kRoundRobin mode");
  }
  const std::size_t idx = rr_cursor_;
  rr_cursor_ = (rr_cursor_ + 1) % devices_.size();
  return idx;
}

Status DeviceBank::SetDeviceFailed(std::size_t i, bool failed) {
  if (i >= devices_.size()) {
    return Status::OutOfRange("device index beyond bank size");
  }
  failed_[i] = failed;
  return Status::OK();
}

std::int64_t DeviceBank::alive_count() const {
  std::int64_t alive = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (!failed_[i]) ++alive;
  }
  return alive;
}

BytesPerSecond DeviceBank::DegradedTransferRate() const {
  return static_cast<double>(alive_count()) * devices_[0]->MaxTransferRate();
}

Result<Seconds> DeviceBank::Service(const IoSpan& io, Rng* rng) {
  if (io.offset < 0 ||
      static_cast<Bytes>(io.offset) + io.bytes > EffectiveCapacity()) {
    return Status::OutOfRange("IO beyond bank capacity");
  }
  if (alive_count() == 0) {
    return Status::Unavailable("no alive device in bank");
  }
  const auto k = static_cast<double>(size());
  switch (mode_) {
    case BankMode::kRoundRobin: {
      // Whole IO to the next alive device; map the bank offset into the
      // device by modulo (streams are placed per-device by the buffer
      // manager).
      while (failed_[rr_cursor_]) {
        rr_cursor_ = (rr_cursor_ + 1) % devices_.size();
      }
      const std::size_t idx = rr_cursor_;
      rr_cursor_ = (rr_cursor_ + 1) % devices_.size();
      IoSpan local = io;
      local.offset = io.offset % static_cast<std::int64_t>(
                                     devices_[idx]->Capacity());
      return devices_[idx]->Service(local, rng);
    }
    case BankMode::kStriped: {
      // Lock-step: every device transfers bytes/k at offset/k. All devices
      // move identically, so the elapsed time is any device's time; we
      // still advance every device's position. A single failed device
      // takes every stripe with it.
      if (alive_count() < size()) {
        return Status::Unavailable("striped bank lost a device");
      }
      IoSpan local;
      local.offset = io.offset / static_cast<std::int64_t>(size());
      local.bytes = io.bytes / k;
      Seconds elapsed = 0;
      for (auto& d : devices_) {
        auto t = d->Service(local, rng);
        MEMSTREAM_RETURN_IF_ERROR(t.status());
        elapsed = std::max(elapsed, t.value());
      }
      return elapsed;
    }
    case BankMode::kReplicated: {
      // Every device holds the full content; rotate over alive devices
      // for load balance (survivors absorb a failed peer's share).
      while (failed_[rr_cursor_]) {
        rr_cursor_ = (rr_cursor_ + 1) % devices_.size();
      }
      const std::size_t idx = rr_cursor_;
      rr_cursor_ = (rr_cursor_ + 1) % devices_.size();
      return devices_[idx]->Service(io, rng);
    }
  }
  return Status::Internal("unreachable bank mode");
}

void DeviceBank::Reset() {
  for (auto& d : devices_) d->Reset();
  rr_cursor_ = 0;
}

}  // namespace memstream::device
