#include "device/dram.h"

namespace memstream::device {

Result<Dram> Dram::Create(const DramParameters& params) {
  if (params.transfer_rate <= 0) {
    return Status::InvalidArgument("transfer_rate must be > 0");
  }
  if (params.capacity <= 0) {
    return Status::InvalidArgument("capacity must be > 0");
  }
  if (params.access_latency < 0) {
    return Status::InvalidArgument("access_latency must be >= 0");
  }
  return Dram(params);
}

Result<Seconds> Dram::Service(const IoSpan& io, Rng* /*rng*/) {
  if (io.bytes < 0) return Status::InvalidArgument("negative IO size");
  if (io.offset < 0 ||
      static_cast<Bytes>(io.offset) + io.bytes > params_.capacity) {
    return Status::OutOfRange("IO beyond DRAM capacity");
  }
  const Seconds service =
      params_.access_latency + io.bytes / params_.transfer_rate;
  AccountService(service, io.bytes);
  return service;
}

}  // namespace memstream::device
