#include "device/seek_model.h"

#include <algorithm>
#include <cmath>

namespace memstream::device {

Result<SeekModel> SeekModel::Calibrate(Seconds track_to_track,
                                       Seconds average, Seconds full_stroke,
                                       std::int64_t num_cylinders) {
  if (num_cylinders < 2) {
    return Status::InvalidArgument("need at least 2 cylinders");
  }
  if (!(track_to_track > 0 && track_to_track < average &&
        average < full_stroke)) {
    return Status::InvalidArgument(
        "require 0 < track_to_track < average < full_stroke");
  }
  // t(u) = t0 + A sqrt(u) + B u on u = d/C in (0,1]. With t0 fixed at the
  // track-to-track time (u ~ 1/C ~ 0), solve
  //   A * 8/15 + B * 1/3 = average - t0
  //   A         + B      = full_stroke - t0
  const Seconds t0 = track_to_track;
  const double rhs_avg = average - t0;
  const double rhs_full = full_stroke - t0;
  // Subtract 1/3 * (second eq) from the first: A * (8/15 - 1/3) = ...
  const double a = (rhs_avg - rhs_full / 3.0) / (8.0 / 15.0 - 1.0 / 3.0);
  const double b = rhs_full - a;
  if (a < 0 || b < 0) {
    return Status::InvalidArgument(
        "seek figures not realizable by a concave sqrt+linear curve");
  }
  return SeekModel(t0, a, b, num_cylinders);
}

Seconds SeekModel::SeekTime(std::int64_t cylinders) const {
  if (cylinders <= 0) return 0.0;
  cylinders = std::min(cylinders, num_cylinders_);
  const double u =
      static_cast<double>(cylinders) / static_cast<double>(num_cylinders_);
  return t0_ + a_ * std::sqrt(u) + b_ * u;
}

Seconds SeekModel::AverageSeekTime() const {
  return t0_ + a_ * (8.0 / 15.0) + b_ / 3.0;
}

Seconds SeekModel::FullStrokeTime() const { return t0_ + a_ + b_; }

}  // namespace memstream::device
