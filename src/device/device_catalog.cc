#include "device/device_catalog.h"

namespace memstream::device {

DiskParameters FutureDisk2007() {
  DiskParameters p;
  p.name = "FutureDisk";
  p.rpm = 20000;
  p.outer_rate = 300 * kMBps;
  p.inner_rate = 170 * kMBps;  // Table 1, 2007: 170-300 MB/s
  p.capacity = 1000 * kGB;
  p.track_to_track_seek = 0.3 * kMillisecond;
  p.average_seek = 2.8 * kMillisecond;
  p.full_stroke_seek = 7.0 * kMillisecond;
  p.num_cylinders = 100000;
  p.num_zones = 16;
  return p;
}

MemsParameters MemsG3() {
  MemsParameters p;
  p.name = "G3 MEMS";
  p.transfer_rate = 320 * kMBps;
  p.capacity = 10 * kGB;
  p.x_full_stroke = 0.45 * kMillisecond;
  p.x_settle = 0.14 * kMillisecond;
  p.y_full_stroke = 0.27 * kMillisecond;
  p.num_regions = 2500;
  p.active_tips = 3200;
  p.cost_per_device = 10;
  return p;
}

DramParameters Dram2007() {
  DramParameters p;
  p.name = "DRAM 2007";
  p.transfer_rate = 10 * kGBps;
  p.access_latency = 0.03 * kMillisecond;
  p.capacity = 5 * kGB;
  p.cost_per_byte = 20.0 / kGB;
  return p;
}

DiskParameters Disk2002() {
  DiskParameters p;
  p.name = "Disk 2002";
  p.rpm = 10000;
  p.outer_rate = 55 * kMBps;
  p.inner_rate = 30 * kMBps;
  p.capacity = 100 * kGB;
  p.track_to_track_seek = 0.4 * kMillisecond;
  p.average_seek = 4.5 * kMillisecond;
  p.full_stroke_seek = 10.5 * kMillisecond;
  p.num_cylinders = 50000;
  p.num_zones = 16;
  return p;
}

DramParameters Dram2002() {
  DramParameters p;
  p.name = "DRAM 2002";
  p.transfer_rate = 2 * kGBps;
  p.access_latency = 0.05 * kMillisecond;
  p.capacity = 0.5 * kGB;
  p.cost_per_byte = 200.0 / kGB;
  return p;
}

MemsParameters MemsG1() {
  // Conservative first-generation postulates of Schlosser et al.: slower
  // sled, fewer concurrently active tips.
  MemsParameters p;
  p.name = "G1 MEMS";
  p.transfer_rate = 25.6 * kMBps;
  p.capacity = 2.56 * kGB;
  p.x_full_stroke = 0.56 * kMillisecond;
  p.x_settle = 0.22 * kMillisecond;
  p.y_full_stroke = 0.45 * kMillisecond;
  p.num_regions = 2500;
  p.active_tips = 640;
  p.cost_per_device = 10;
  return p;
}

MemsParameters MemsG2() {
  MemsParameters p;
  p.name = "G2 MEMS";
  p.transfer_rate = 102.4 * kMBps;
  p.capacity = 5.12 * kGB;
  p.x_full_stroke = 0.50 * kMillisecond;
  p.x_settle = 0.18 * kMillisecond;
  p.y_full_stroke = 0.36 * kMillisecond;
  p.num_regions = 2500;
  p.active_tips = 1280;
  p.cost_per_device = 10;
  return p;
}

std::vector<MediaCharacteristicsRow> Table1Rows() {
  return {
      {2002, "DRAM", "0.5", "0.05", "2000", "$200", "$50-$200"},
      {2002, "MEMS", "n/a", "n/a", "n/a", "n/a", "n/a"},
      {2002, "Disk", "100", "1-11", "30-55", "$2", "$100-$300"},
      {2007, "DRAM", "5", "0.03", "10000", "$20", "$50-$200"},
      {2007, "MEMS", "10", "0.4-1", "320", "$1", "$10"},
      {2007, "Disk", "1000", "0.75-7", "170-300", "$0.2", "$100-$300"},
  };
}

std::vector<DeviceCharacteristics2007> Table3Columns() {
  return {
      {"FutureDisk", "20000", 300, "2.8", "7.0", "-", 1000, 0.2,
       "$100-$300"},
      {"G3 MEMS", "-", 320, "-", "0.45", "0.14", 10, 1, "$10"},
      {"DRAM", "-", 10000, "-", "-", "-", 5, 20, "$50-$200"},
  };
}

}  // namespace memstream::device
