// A bank of k identical MEMS devices, managed in one of the three modes
// the paper analyzes:
//
//  - kRoundRobin (buffer configuration, §3.1.2): each stream is buffered
//    whole on one device; disk IOs are routed round-robin. Corollary 2:
//    the bank behaves as one device with k x throughput AND k x lower
//    average latency.
//  - kStriped (cache, §3.2.1): every stream is bit/byte-striped across all
//    devices, accessed lock-step. Corollary 3: k x throughput, unchanged
//    latency, k x capacity.
//  - kReplicated (cache, §3.2.2): all devices hold identical content; each
//    services 1/k of the streams. Corollary 4: k x throughput, k x lower
//    latency, but capacity of a single device.

#ifndef MEMSTREAM_DEVICE_BANK_H_
#define MEMSTREAM_DEVICE_BANK_H_

#include <memory>
#include <string>
#include <vector>

#include "device/device.h"

namespace memstream::device {

/// Data-management mode for a device bank.
enum class BankMode {
  kRoundRobin,  ///< buffer: whole streams per device, round-robin routing
  kStriped,     ///< cache: lock-step striping across all devices
  kReplicated,  ///< cache: full replication on every device
};

const char* BankModeName(BankMode mode);

/// Owns k identical devices and exposes the aggregate characteristics and
/// routing operations of the chosen mode.
class DeviceBank {
 public:
  /// Takes ownership of the devices. Requires at least one device; all
  /// devices must have identical capacity and transfer rate (the paper's
  /// analysis assumes a homogeneous bank).
  static Result<DeviceBank> Create(
      std::vector<std::unique_ptr<BlockDevice>> devices, BankMode mode);

  std::int64_t size() const { return static_cast<std::int64_t>(devices_.size()); }
  BankMode mode() const { return mode_; }
  BlockDevice& device(std::size_t i) { return *devices_[i]; }
  const BlockDevice& device(std::size_t i) const { return *devices_[i]; }

  /// k x single-device rate (all three modes aggregate bandwidth).
  BytesPerSecond AggregateTransferRate() const;

  /// Effective average access latency per Corollaries 2-4: L/k for
  /// round-robin and replicated banks, L for striped banks.
  Seconds EffectiveAverageLatency() const;

  /// Same reduction applied to the worst-case latency.
  Seconds EffectiveMaxLatency() const;

  /// Usable capacity: k x device capacity except under replication.
  Bytes EffectiveCapacity() const;

  /// Round-robin route selector: returns the device index for the next IO
  /// and advances the cursor. Only valid in kRoundRobin mode.
  Result<std::size_t> NextRoundRobinDevice();

  /// Services an IO according to the bank mode and returns the elapsed
  /// device time:
  ///  - round-robin: the IO goes wholly to the next device in rotation;
  ///  - striped: the IO is split into k sub-IOs at the same relative
  ///    offset on every device, serviced lock-step (time = max over
  ///    devices = the common device time);
  ///  - replicated: the IO is serviced by the least-recently-used device.
  /// Offsets are interpreted against EffectiveCapacity(). Failed devices
  /// are skipped in round-robin/replicated rotation; a striped bank with
  /// any failed device refuses with Unavailable (every stripe needs all k
  /// devices — Corollary 3's lock-step access).
  Result<Seconds> Service(const IoSpan& io, Rng* rng);

  // --- failure hooks (src/fault/) ---

  /// Marks device `i` failed or repaired. Failure survives Reset(): a
  /// repair is an explicit event, not a simulation restart artifact.
  Status SetDeviceFailed(std::size_t i, bool failed);

  bool device_failed(std::size_t i) const { return failed_[i]; }

  /// Devices currently serving (k minus failed). A replicated bank keeps
  /// serving at alive_count()/k of its throughput; a striped bank needs
  /// alive_count() == size().
  std::int64_t alive_count() const;

  /// AggregateTransferRate restricted to surviving devices.
  BytesPerSecond DegradedTransferRate() const;

  /// Resets every device and the routing cursors.
  void Reset();

 private:
  DeviceBank(std::vector<std::unique_ptr<BlockDevice>> devices,
             BankMode mode)
      : devices_(std::move(devices)),
        failed_(devices_.size(), false),
        mode_(mode) {}

  std::vector<std::unique_ptr<BlockDevice>> devices_;
  std::vector<bool> failed_;
  BankMode mode_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_BANK_H_
