// Abstract block-device interface shared by the disk, MEMS, and DRAM
// models, plus the effective-throughput helper used throughout the paper
// (Fig. 2: throughput as a function of average IO size).

#ifndef MEMSTREAM_DEVICE_DEVICE_H_
#define MEMSTREAM_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"

namespace memstream::device {

/// A contiguous IO against a device, in logical block coordinates.
/// `lbn` addresses a logical byte offset (the models are byte-addressed;
/// sector granularity is irrelevant at the paper's modeling level).
struct IoSpan {
  std::int64_t offset = 0;  ///< starting byte offset on the device
  Bytes bytes = 0;          ///< transfer length
};

/// Stateful device model: tracks the current head/sled position so that
/// consecutive Service() calls pay realistic positioning costs.
///
/// Two uses:
///  - the analytical layer reads the scalar characteristics
///    (MaxTransferRate, Average/MaxAccessLatency);
///  - the discrete-event simulator calls Service() per IO.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::string name() const = 0;

  /// Total device capacity in bytes.
  virtual Bytes Capacity() const = 0;

  /// Peak media transfer rate (outermost zone for disks).
  virtual BytesPerSecond MaxTransferRate() const = 0;

  /// Worst-case positioning time (full-stroke seek + max rotational delay
  /// or sled settle, as applicable).
  virtual Seconds MaxAccessLatency() const = 0;

  /// Expected positioning time for a random access from a random position.
  virtual Seconds AverageAccessLatency() const = 0;

  /// Simulates servicing `io` from the current position: returns the total
  /// service time (positioning + transfer) and leaves the head at the end
  /// of the transfer. `rng` supplies rotational phase (may be null, in
  /// which case expected values are used). Returns OutOfRange if the IO
  /// does not fit on the device.
  virtual Result<Seconds> Service(const IoSpan& io, Rng* rng) = 0;

  /// Returns the head/sled to offset zero (used between experiments).
  virtual void Reset() = 0;

  // Cumulative service accounting, maintained by every Service()
  // implementation. busy_seconds() over a simulated horizon is the
  // device's utilization numerator; callers export these into an
  // obs::MetricsRegistry after a run.
  Seconds busy_seconds() const { return busy_seconds_; }
  std::int64_t ios_serviced() const { return ios_serviced_; }
  Bytes bytes_transferred() const { return bytes_transferred_; }

  /// Zeroes the accounting (position state is untouched; see Reset()).
  void ResetStats() {
    busy_seconds_ = 0;
    ios_serviced_ = 0;
    bytes_transferred_ = 0;
  }

 protected:
  /// Subclasses call this once per successful Service().
  void AccountService(Seconds service_time, Bytes bytes) {
    busy_seconds_ += service_time;
    ++ios_serviced_;
    bytes_transferred_ += bytes;
  }

 private:
  Seconds busy_seconds_ = 0;
  std::int64_t ios_serviced_ = 0;
  Bytes bytes_transferred_ = 0;
};

/// Sustained throughput of a device accessed with IOs of `io_size`, paying
/// `latency` of positioning per IO:  io_size / (latency + io_size/rate).
/// This is the quantity plotted in Fig. 2.
inline BytesPerSecond EffectiveThroughput(Bytes io_size, Seconds latency,
                                          BytesPerSecond rate) {
  if (io_size <= 0) return 0;
  return io_size / (latency + io_size / rate);
}

/// Inverse of EffectiveThroughput: IO size needed to sustain `target`
/// throughput. Returns Infeasible if target >= rate.
Result<Bytes> IoSizeForThroughput(BytesPerSecond target, Seconds latency,
                                  BytesPerSecond rate);

}  // namespace memstream::device

#endif  // MEMSTREAM_DEVICE_DEVICE_H_
