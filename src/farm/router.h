// Farm-level admission router: one model-driven AdmissionController per
// shard, fronted by the catalog placement. A request for a title is
// offered to that title's replicas in least-loaded order; each candidate
// re-checks Theorem-1/2 headroom through the controller's incremental
// solver probes, so a stream is only ever admitted where the analytical
// sizing still fits the shard's DRAM budget and bandwidth.
//
// The router also carries the farm's availability state: a shard marked
// down (fault::FaultPlan node failure) is skipped by Route until its
// repair event marks it back up. All calls are made from the single
// orchestration thread (see sharded_farm.cc); the router is not
// internally synchronized and is deliberately clock-free, so routing the
// same request sequence is deterministic at any thread count.

#ifndef MEMSTREAM_FARM_ROUTER_H_
#define MEMSTREAM_FARM_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "farm/placement.h"
#include "model/profiles.h"
#include "server/admission.h"

namespace memstream::farm {

/// Identical per-shard node hardware the controllers size against.
struct RouterConfig {
  Bytes dram_budget_per_shard = 4 * kGB;
  /// Aggregate media rate of one shard node (a striped array modeled as
  /// one device).
  BytesPerSecond node_rate = 300 * kMBps;
  /// L̄_disk(n) of the node, required (see model::DiskLatencyFn).
  model::LatencyFn node_latency;
};

/// Outcome of routing one request.
struct RouteDecision {
  bool admitted = false;
  std::int32_t shard = -1;        ///< admitting shard; -1 on rejection
  std::int64_t streams_on_shard = 0;  ///< shard load after admission
  Bytes dram_required = 0;        ///< shard DRAM at the new load
  std::string reason;             ///< why the last candidate rejected
};

class AdmissionRouter {
 public:
  /// `placement` is not owned and must outlive the router.
  static Result<AdmissionRouter> Create(const Placement* placement,
                                        const RouterConfig& config);

  /// Offers a stream of `bit_rate` for `title` to the title's live
  /// replicas, least-loaded first (ties to the lowest shard id).
  RouteDecision Route(std::int64_t title, BytesPerSecond bit_rate);

  /// Releases one admitted stream of `bit_rate` from `shard`.
  Status Release(std::int32_t shard, BytesPerSecond bit_rate);

  /// Marks a shard down (skipped by Route) or back up.
  Status SetShardUp(std::int32_t shard, bool up);
  bool shard_up(std::int32_t shard) const {
    return up_[static_cast<std::size_t>(shard)];
  }

  std::int64_t num_shards() const {
    return static_cast<std::int64_t>(controllers_.size());
  }
  std::int64_t admitted_on(std::int32_t shard) const {
    return controllers_[static_cast<std::size_t>(shard)].admitted_count();
  }
  Bytes dram_on(std::int32_t shard) const {
    return controllers_[static_cast<std::size_t>(shard)]
        .CurrentDramRequirement();
  }
  const server::AdmissionController& controller(std::int32_t shard) const {
    return controllers_[static_cast<std::size_t>(shard)];
  }

  // Farm-level routing tallies (kept here instead of wall-clock metrics
  // so routing stays deterministic).
  std::int64_t attempts() const { return attempts_; }
  std::int64_t admitted() const { return admitted_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  explicit AdmissionRouter(const Placement* placement)
      : placement_(placement) {}

  const Placement* placement_;
  std::vector<server::AdmissionController> controllers_;  ///< per shard
  std::vector<bool> up_;
  std::int64_t attempts_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace memstream::farm

#endif  // MEMSTREAM_FARM_ROUTER_H_
