// Sharded farm executor: the scale-out study the ROADMAP's north star
// asks for. One simulated time-cycle server per shard node, driven in
// parallel on exp::SweepRunner under its determinism contract, with a
// farm-level admission router (farm/router.h) deciding which shard each
// stream lands on and a fault::FaultPlan failing/repairing whole nodes.
//
// Execution model — epochs between fault events:
//  - The run's timeline is cut at every node fail/repair event. Within
//    an epoch each shard's admitted set is constant, so every shard is
//    one pure (stream set -> ServerReport) task; SweepRunner executes
//    the shards in parallel and collects results in shard order, which
//    makes the merged farm report byte-identical at any thread count.
//  - At an epoch boundary the orchestrator (single thread) applies the
//    fault events: a failed shard's streams are shed; streams of
//    replicated titles fail over to the least-loaded surviving replica
//    through the router (Theorem-1 headroom re-checked); single-copy
//    titles stay shed until the repair event, then re-admit.
//  - The shared StreamJournal / SloMonitor / MetricsRegistry are fed
//    only from the orchestrator thread after each epoch barrier, in
//    shard order, from the per-shard reports — never from inside the
//    parallel tasks — so journal event order and slo.* gauges are also
//    thread-count independent.
//
// Modeling notes: a "node" is one fat DiskParameters (a striped array
// collapsed to a single device, the Corollary-2 idiom); each epoch
// restarts the per-shard servers with cold cycle alignment, which is
// the behavior of a real failover anyway (buffers refill on the new
// shard). See docs/FARM.md.

#ifndef MEMSTREAM_FARM_SHARDED_FARM_H_
#define MEMSTREAM_FARM_SHARDED_FARM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "device/disk.h"
#include "exp/sweep_runner.h"
#include "farm/placement.h"
#include "farm/router.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"

namespace memstream::farm {

struct ShardedFarmConfig {
  std::int64_t num_shards = 4;
  std::int64_t num_titles = 1000;
  double zipf_exponent = 1.0;

  PlacementPolicy policy = PlacementPolicy::kConsistentHash;
  std::int64_t replicas = 1;
  std::int64_t virtual_nodes = 64;
  double replication_budget = 0.05;

  /// Admission attempts at t = 0 (titles drawn Zipf(zipf_exponent)).
  std::int64_t offered_streams = 100;
  BytesPerSecond bit_rate = 100 * kKBps;  ///< every stream (the B̄)

  /// One shard node's hardware: a striped array collapsed to one fat
  /// disk (set outer_rate == inner_rate for the uniform model).
  device::DiskParameters node_disk;
  Bytes dram_budget_per_shard = 4 * kGB;

  Seconds duration = 60;
  /// Node failures: kMemsDeviceFail / kMemsDeviceRepair events with
  /// `device` read as the shard index. Other kinds are ignored.
  fault::FaultPlan faults;

  std::uint64_t seed = 42;
  int threads = 0;  ///< SweepRunner threads; 0 = MEMSTREAM_THREADS / hw

  /// Per-shard QoS auditors (Theorem-1 cycle + DRAM invariants).
  bool audit = true;

  /// Optional farm-level telemetry, all fed deterministically from the
  /// orchestrator thread. Not owned.
  obs::StreamJournal* journal = nullptr;
  obs::SloMonitor* slo = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-shard totals across the whole run.
struct FarmShardReport {
  std::int32_t shard = 0;
  std::int64_t streams = 0;        ///< admitted residents at run end
  std::int64_t ios_completed = 0;
  std::int64_t cycle_overruns = 0;
  std::int64_t underflow_events = 0;
  std::int64_t qos_violations = 0;
  std::int64_t failed_over_in = 0; ///< streams that failed over onto this shard
  std::int64_t shed = 0;           ///< shed actions caused by this shard failing
  Bytes peak_dram_demand = 0;      ///< max across epochs
  double utilization = 0;          ///< busy time / time in service
};

/// Merged farm outcome.
struct FarmRunReport {
  std::string policy;
  std::int64_t shards = 0;
  std::int64_t titles = 0;
  std::int64_t total_copies = 0;   ///< placement storage cost
  std::int64_t offered = 0;
  std::int64_t admitted = 0;       ///< admitted in the t=0 wave
  std::int64_t rejected = 0;
  std::int64_t failovers = 0;      ///< shed -> re-admitted on a replica
  std::int64_t shed_actions = 0;
  std::int64_t readmits = 0;       ///< re-admissions (failover + repair)
  std::int64_t ios_completed = 0;
  std::int64_t cycle_overruns = 0;
  std::int64_t underflow_events = 0;
  std::int64_t qos_violations = 0;
  /// Served stream-seconds / admitted stream-seconds over the run; 1.0
  /// when no stream ever went unserved.
  double availability = 1.0;
  Bytes peak_dram_per_shard = 0;   ///< max over shards
  double mean_utilization = 0;
  Seconds duration = 0;
  exp::SweepStats sweep;           ///< cost of the parallel execution
  std::vector<FarmShardReport> per_shard;
};

/// Runs the farm described by `config` to completion.
Result<FarmRunReport> RunShardedFarm(const ShardedFarmConfig& config);

/// The RunReport "farm" block of a farm run (schema v4, additive).
obs::FarmBlock BuildFarmBlock(const FarmRunReport& report);

}  // namespace memstream::farm

#endif  // MEMSTREAM_FARM_SHARDED_FARM_H_
