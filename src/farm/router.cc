#include "farm/router.h"

#include <algorithm>
#include <utility>

namespace memstream::farm {

Result<AdmissionRouter> AdmissionRouter::Create(const Placement* placement,
                                               const RouterConfig& config) {
  if (placement == nullptr) {
    return Status::InvalidArgument("placement is required");
  }
  if (!config.node_latency) {
    return Status::InvalidArgument("node_latency is required");
  }
  AdmissionRouter router(placement);
  const std::int64_t shards = placement->num_shards();
  router.controllers_.reserve(static_cast<std::size_t>(shards));
  for (std::int64_t s = 0; s < shards; ++s) {
    server::AdmissionConfig ac;
    ac.dram_budget = config.dram_budget_per_shard;
    ac.disk_rate = config.node_rate;
    ac.disk_latency = config.node_latency;
    auto controller = server::AdmissionController::Create(ac);
    MEMSTREAM_RETURN_IF_ERROR(controller.status());
    router.controllers_.push_back(std::move(controller).value());
  }
  router.up_.assign(static_cast<std::size_t>(shards), true);
  return router;
}

RouteDecision AdmissionRouter::Route(std::int64_t title,
                                     BytesPerSecond bit_rate) {
  ++attempts_;
  RouteDecision decision;
  decision.reason = "no live replica";

  ShardSet candidates = placement_->Lookup(title);
  // Least-loaded first, ties to the lowest shard id (insertion sort on
  // the fixed-size set keeps this allocation-free).
  for (std::int32_t i = 1; i < candidates.count; ++i) {
    const std::int32_t s = candidates.shard[static_cast<std::size_t>(i)];
    std::int32_t j = i - 1;
    auto heavier = [this](std::int32_t a, std::int32_t b) {
      const std::int64_t la = admitted_on(a), lb = admitted_on(b);
      return la > lb || (la == lb && a > b);
    };
    while (j >= 0 &&
           heavier(candidates.shard[static_cast<std::size_t>(j)], s)) {
      candidates.shard[static_cast<std::size_t>(j + 1)] =
          candidates.shard[static_cast<std::size_t>(j)];
      --j;
    }
    candidates.shard[static_cast<std::size_t>(j + 1)] = s;
  }

  for (std::int32_t i = 0; i < candidates.count; ++i) {
    const std::int32_t s = candidates.shard[static_cast<std::size_t>(i)];
    if (!up_[static_cast<std::size_t>(s)]) continue;
    server::AdmissionDecision d =
        controllers_[static_cast<std::size_t>(s)].TryAdmit(bit_rate);
    if (d.admitted) {
      ++admitted_;
      decision.admitted = true;
      decision.shard = s;
      decision.streams_on_shard = d.streams_after;
      decision.dram_required = d.dram_required;
      decision.reason.clear();
      return decision;
    }
    decision.reason = std::move(d.reason);
  }
  ++rejected_;
  return decision;
}

Status AdmissionRouter::Release(std::int32_t shard, BytesPerSecond bit_rate) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::OutOfRange("shard index out of range");
  }
  return controllers_[static_cast<std::size_t>(shard)].Release(bit_rate);
}

Status AdmissionRouter::SetShardUp(std::int32_t shard, bool up) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::OutOfRange("shard index out of range");
  }
  up_[static_cast<std::size_t>(shard)] = up;
  return Status::OK();
}

}  // namespace memstream::farm
