#include "farm/sharded_farm.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "model/timecycle.h"
#include "obs/qos_auditor.h"
#include "server/timecycle_server.h"
#include "workload/popularity.h"

namespace memstream::farm {
namespace {

/// One admitted stream's routing state. shard == -1 while shed.
struct StreamRec {
  std::int64_t title = 0;
  std::int32_t shard = -1;
};

/// Per-stream activity of one epoch, collected only when a journal is
/// attached (the million-stream bench runs journal-free).
struct StreamEpoch {
  std::int64_t id = 0;
  std::int64_t ios = 0;
  Bytes bytes = 0;
  Bytes peak = 0;
  std::int64_t underflows = 0;
};

/// What one shard did during one epoch (the SweepRunner task row).
struct ShardEpoch {
  bool ran = false;
  std::string error;  ///< non-empty = the task failed
  std::int64_t streams = 0;
  std::int64_t cycles = 0;
  std::int64_t ios = 0;
  std::int64_t overruns = 0;
  std::int64_t underflows = 0;
  std::int64_t violations = 0;
  Bytes peak_dram = 0;
  Seconds busy = 0;
  std::vector<StreamEpoch> per_stream;
};

Status Validate(const ShardedFarmConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.num_titles < 1) {
    return Status::InvalidArgument("num_titles must be >= 1");
  }
  if (config.offered_streams < 0) {
    return Status::InvalidArgument("offered_streams must be >= 0");
  }
  if (config.bit_rate <= 0) {
    return Status::InvalidArgument("bit_rate must be > 0");
  }
  if (config.duration <= 0) {
    return Status::InvalidArgument("duration must be > 0");
  }
  return Status::OK();
}

/// Fail/repair boundaries inside (0, duration), deduplicated.
std::vector<Seconds> EpochBoundaries(const ShardedFarmConfig& config) {
  std::vector<Seconds> cuts;
  for (const fault::FaultEvent& e : config.faults.events()) {
    const bool node_event = e.kind == fault::FaultKind::kMemsDeviceFail ||
                            e.kind == fault::FaultKind::kMemsDeviceRepair;
    if (!node_event || e.device < 0 || e.device >= config.num_shards) {
      continue;
    }
    if (e.time > 0 && e.time < config.duration) cuts.push_back(e.time);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

}  // namespace

Result<FarmRunReport> RunShardedFarm(const ShardedFarmConfig& config) {
  MEMSTREAM_RETURN_IF_ERROR(Validate(config));

  PlacementConfig pc;
  pc.num_shards = config.num_shards;
  pc.num_titles = config.num_titles;
  pc.replicas = config.replicas;
  pc.virtual_nodes = config.virtual_nodes;
  pc.zipf_exponent = config.zipf_exponent;
  pc.replication_budget = config.replication_budget;
  pc.seed = config.seed;
  auto placement = MakePlacement(config.policy, pc);
  MEMSTREAM_RETURN_IF_ERROR(placement.status());

  // One probe node for the admission model; the per-epoch tasks build
  // their own copies (tasks must not share mutable device state).
  auto probe = device::DiskDrive::Create(config.node_disk);
  MEMSTREAM_RETURN_IF_ERROR(probe.status());

  RouterConfig rc;
  rc.dram_budget_per_shard = config.dram_budget_per_shard;
  rc.node_rate = probe.value().parameters().outer_rate;
  rc.node_latency = model::DiskLatencyFn(probe.value());
  auto router = AdmissionRouter::Create(placement.value().get(), rc);
  MEMSTREAM_RETURN_IF_ERROR(router.status());

  FarmRunReport farm;
  farm.policy = placement.value()->name();
  farm.shards = config.num_shards;
  farm.titles = config.num_titles;
  farm.total_copies = placement.value()->total_copies();
  farm.offered = config.offered_streams;
  farm.duration = config.duration;
  farm.per_shard.resize(static_cast<std::size_t>(config.num_shards));
  for (std::int64_t s = 0; s < config.num_shards; ++s) {
    farm.per_shard[static_cast<std::size_t>(s)].shard =
        static_cast<std::int32_t>(s);
  }

  // --- t = 0 admission wave -------------------------------------------
  auto sampler =
      workload::ZipfSampler::Create(config.num_titles, config.zipf_exponent);
  MEMSTREAM_RETURN_IF_ERROR(sampler.status());
  Rng rng(config.seed);
  std::vector<StreamRec> streams;
  streams.reserve(static_cast<std::size_t>(config.offered_streams));
  for (std::int64_t i = 0; i < config.offered_streams; ++i) {
    const std::int64_t title = sampler.value().Sample(rng);
    RouteDecision d = router.value().Route(title, config.bit_rate);
    if (d.admitted) {
      streams.push_back({title, d.shard});
      ++farm.admitted;
    } else {
      ++farm.rejected;
    }
  }

  // Register the admitted streams with the farm journal under the
  // Theorem-1 envelope of their home shard's steady-state cycle.
  if (config.journal != nullptr) {
    std::vector<Seconds> shard_cycle(
        static_cast<std::size_t>(config.num_shards), 0.0);
    for (std::int64_t s = 0; s < config.num_shards; ++s) {
      const std::int64_t n = router.value().admitted_on(
          static_cast<std::int32_t>(s));
      if (n <= 0) continue;
      auto cycle = model::IoCycleLength(n, config.bit_rate,
                                        model::DiskProfile(probe.value(), n));
      if (cycle.ok()) shard_cycle[static_cast<std::size_t>(s)] = cycle.value();
    }
    for (std::size_t i = 0; i < streams.size(); ++i) {
      const Seconds t =
          shard_cycle[static_cast<std::size_t>(streams[i].shard)];
      config.journal->EnsureStream(static_cast<std::int64_t>(i),
                                   config.bit_rate,
                                   2 * config.bit_rate * t, 0.0);
    }
  }

  obs::Slo* slo_underflow = nullptr;
  obs::Slo* slo_slack = nullptr;
  obs::Slo* slo_availability = nullptr;
  if (config.slo != nullptr) {
    slo_underflow = config.slo->Add(obs::StandardUnderflowSlo());
    slo_slack = config.slo->Add(obs::StandardCycleSlackSlo());
    slo_availability = config.slo->Add(obs::StandardAvailabilitySlo());
  }

  // --- epochs between node-failure events -----------------------------
  std::vector<Seconds> cuts = EpochBoundaries(config);
  std::vector<Seconds> starts;
  starts.push_back(0.0);
  for (Seconds t : cuts) starts.push_back(t);

  exp::SweepOptions so;
  so.threads = config.threads;
  so.base_seed = config.seed;
  exp::SweepRunner runner(so);

  std::vector<double> up_seconds(
      static_cast<std::size_t>(config.num_shards), 0.0);
  double served_stream_seconds = 0;
  double unserved_stream_seconds = 0;

  for (std::size_t epoch = 0; epoch < starts.size(); ++epoch) {
    const Seconds t0 = starts[epoch];
    const Seconds t1 =
        epoch + 1 < starts.size() ? starts[epoch + 1] : config.duration;
    const Seconds len = t1 - t0;

    // Apply this boundary's fault events (plan order) before running.
    if (epoch > 0) {
      for (const fault::FaultEvent& e : config.faults.events()) {
        if (e.time != t0 || e.device < 0 || e.device >= config.num_shards) {
          continue;
        }
        const std::int32_t s = static_cast<std::int32_t>(e.device);
        if (e.kind == fault::FaultKind::kMemsDeviceFail) {
          MEMSTREAM_RETURN_IF_ERROR(router.value().SetShardUp(s, false));
          for (std::size_t i = 0; i < streams.size(); ++i) {
            if (streams[i].shard != s) continue;
            MEMSTREAM_RETURN_IF_ERROR(
                router.value().Release(s, config.bit_rate));
            streams[i].shard = -1;
            ++farm.shed_actions;
            ++farm.per_shard[static_cast<std::size_t>(s)].shed;
            if (config.journal != nullptr) {
              const std::ptrdiff_t slot =
                  config.journal->SlotOf(static_cast<std::int64_t>(i));
              if (slot >= 0) {
                config.journal->MarkShed(static_cast<std::size_t>(slot), t0);
              }
            }
            // Fail over: the dead shard is skipped, so this lands on
            // the least-loaded surviving replica (if the title has one
            // with headroom).
            RouteDecision d =
                router.value().Route(streams[i].title, config.bit_rate);
            if (d.admitted) {
              streams[i].shard = d.shard;
              ++farm.failovers;
              ++farm.readmits;
              ++farm.per_shard[static_cast<std::size_t>(d.shard)]
                    .failed_over_in;
              if (config.journal != nullptr) {
                const std::ptrdiff_t slot =
                    config.journal->SlotOf(static_cast<std::int64_t>(i));
                if (slot >= 0) {
                  config.journal->MarkReadmitted(
                      static_cast<std::size_t>(slot), t0);
                }
              }
            }
          }
        } else if (e.kind == fault::FaultKind::kMemsDeviceRepair) {
          MEMSTREAM_RETURN_IF_ERROR(router.value().SetShardUp(s, true));
          for (std::size_t i = 0; i < streams.size(); ++i) {
            if (streams[i].shard != -1) continue;
            RouteDecision d =
                router.value().Route(streams[i].title, config.bit_rate);
            if (!d.admitted) continue;
            streams[i].shard = d.shard;
            ++farm.readmits;
            if (config.journal != nullptr) {
              const std::ptrdiff_t slot =
                  config.journal->SlotOf(static_cast<std::int64_t>(i));
              if (slot >= 0) {
                config.journal->MarkReadmitted(static_cast<std::size_t>(slot),
                                               t0);
              }
            }
          }
        }
      }
    }

    // Constant per-epoch stream sets, ids ascending per shard.
    std::vector<std::vector<std::int64_t>> shard_streams(
        static_cast<std::size_t>(config.num_shards));
    std::int64_t serving = 0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].shard < 0) continue;
      shard_streams[static_cast<std::size_t>(streams[i].shard)].push_back(
          static_cast<std::int64_t>(i));
      ++serving;
    }
    const std::int64_t shed_now =
        static_cast<std::int64_t>(streams.size()) - serving;
    served_stream_seconds += static_cast<double>(serving) * len;
    unserved_stream_seconds += static_cast<double>(shed_now) * len;

    // One pure task per shard; rows collected in shard order.
    const bool want_per_stream = config.journal != nullptr;
    const ShardedFarmConfig* cfg = &config;
    std::vector<ShardEpoch> rows = runner.Map(
        config.num_shards, [&, cfg](exp::TaskContext& ctx) -> ShardEpoch {
          ShardEpoch row;
          const std::int32_t s = static_cast<std::int32_t>(ctx.index());
          const std::vector<std::int64_t>& ids =
              shard_streams[static_cast<std::size_t>(s)];
          if (!router.value().shard_up(s) || ids.empty()) return row;
          row.streams = static_cast<std::int64_t>(ids.size());

          auto disk = device::DiskDrive::Create(cfg->node_disk);
          if (!disk.ok()) {
            row.error = disk.status().ToString();
            return row;
          }
          const std::int64_t n = row.streams;
          auto cycle = model::IoCycleLength(
              n, cfg->bit_rate, model::DiskProfile(disk.value(), n));
          if (!cycle.ok()) {
            row.error = cycle.status().ToString();
            return row;
          }
          const Seconds t_cycle = cycle.value();
          const Bytes io = cfg->bit_rate * t_cycle;
          const Bytes stride =
              disk.value().Capacity() * 0.9 / static_cast<double>(n);

          std::vector<server::StreamSpec> specs;
          specs.reserve(ids.size());
          for (std::size_t j = 0; j < ids.size(); ++j) {
            server::StreamSpec spec;
            spec.id = ids[j];
            spec.bit_rate = cfg->bit_rate;
            spec.disk_offset = stride * static_cast<double>(j);
            spec.extent = std::max(stride, 2 * io);
            specs.push_back(spec);
          }

          obs::QosAuditorConfig qac;
          qac.disk_cycle = t_cycle;
          obs::QosAuditor auditor(qac);
          server::DirectServerConfig dsc;
          dsc.cycle = t_cycle;
          dsc.deterministic = true;
          dsc.seed = ctx.seed();
          if (cfg->audit) {
            for (const server::StreamSpec& spec : specs) {
              auditor.AddStream(spec.id, spec.bit_rate,
                                2 * spec.bit_rate * t_cycle,
                                obs::QosDomain::kDisk);
            }
            auditor.Seal();
            dsc.auditor = &auditor;
          }

          auto server = server::DirectStreamingServer::Create(
              &disk.value(), std::move(specs), dsc);
          if (!server.ok()) {
            row.error = server.status().ToString();
            return row;
          }
          Status run = server.value().Run(len);
          if (!run.ok()) {
            row.error = run.ToString();
            return row;
          }

          const server::ServerReport& rep = server.value().report();
          row.ran = true;
          row.cycles = rep.cycles;
          row.ios = rep.ios_completed;
          row.overruns = rep.cycle_overruns;
          row.underflows = rep.qos.underflow_events;
          row.violations = cfg->audit ? auditor.total_violations() : 0;
          row.peak_dram = rep.peak_buffer_demand;
          // The server always finishes its last cycle, so raw busy time
          // can spill past the epoch; clamp like device_utilization does.
          row.busy = std::min(rep.total_busy, len);
          ctx.AddEvents(rep.ios_completed);
          if (want_per_stream) {
            row.per_stream.reserve(ids.size());
            for (std::size_t j = 0; j < ids.size(); ++j) {
              server::StreamView v = server.value().session(j);
              StreamEpoch se;
              se.id = v.id();
              se.bytes = v.total_deposited();
              se.peak = v.peak_level();
              se.underflows = v.underflow_events();
              se.ios = io > 0 ? static_cast<std::int64_t>(
                                    std::llround(se.bytes / io))
                              : 0;
              row.per_stream.push_back(se);
            }
          }
          return row;
        });

    // Post-barrier merge, shard order: farm totals, then the shared
    // journal/SLO feeds (single thread, deterministic order).
    for (std::int64_t s = 0; s < config.num_shards; ++s) {
      const ShardEpoch& row = rows[static_cast<std::size_t>(s)];
      if (!row.error.empty()) {
        return Status::Internal("shard " + std::to_string(s) +
                                " epoch failed: " + row.error);
      }
      FarmShardReport& sr = farm.per_shard[static_cast<std::size_t>(s)];
      if (router.value().shard_up(static_cast<std::int32_t>(s))) {
        up_seconds[static_cast<std::size_t>(s)] += len;
      }
      if (!row.ran) continue;
      sr.ios_completed += row.ios;
      sr.cycle_overruns += row.overruns;
      sr.underflow_events += row.underflows;
      sr.qos_violations += row.violations;
      sr.peak_dram_demand = std::max(sr.peak_dram_demand, row.peak_dram);
      sr.utilization += row.busy;  // normalized by up_seconds at the end
      farm.ios_completed += row.ios;
      farm.cycle_overruns += row.overruns;
      farm.underflow_events += row.underflows;
      farm.qos_violations += row.violations;

      if (slo_underflow != nullptr) {
        const std::int64_t stream_cycles = row.streams * row.cycles;
        slo_underflow->Record(t1, stream_cycles - row.underflows,
                              row.underflows);
      }
      if (slo_slack != nullptr) {
        slo_slack->Record(t1, row.cycles - row.overruns, row.overruns);
      }
      if (config.journal != nullptr) {
        for (const StreamEpoch& se : row.per_stream) {
          const std::ptrdiff_t slot = config.journal->SlotOf(se.id);
          if (slot < 0) continue;
          config.journal->RecordIoSummary(static_cast<std::size_t>(slot), t1,
                                          se.ios, se.bytes, se.peak);
          if (se.underflows > 0) {
            config.journal->RecordUnderflows(static_cast<std::size_t>(slot),
                                             t1, se.underflows);
          }
        }
      }
    }
    if (slo_availability != nullptr) {
      slo_availability->Record(
          t1, std::llround(static_cast<double>(serving) * len),
          std::llround(static_cast<double>(shed_now) * len));
    }
  }

  // --- final accounting -----------------------------------------------
  for (std::int64_t s = 0; s < config.num_shards; ++s) {
    FarmShardReport& sr = farm.per_shard[static_cast<std::size_t>(s)];
    sr.streams = router.value().admitted_on(static_cast<std::int32_t>(s));
    const double up = up_seconds[static_cast<std::size_t>(s)];
    sr.utilization = up > 0 ? sr.utilization / up : 0.0;
    farm.peak_dram_per_shard =
        std::max(farm.peak_dram_per_shard, sr.peak_dram_demand);
    farm.mean_utilization +=
        sr.utilization / static_cast<double>(config.num_shards);
  }
  const double total_ss = served_stream_seconds + unserved_stream_seconds;
  farm.availability = total_ss > 0 ? served_stream_seconds / total_ss : 1.0;
  farm.sweep = runner.stats();

  if (config.journal != nullptr) config.journal->Finalize(config.duration);
  if (config.metrics != nullptr) {
    config.metrics->gauge("farm.shards")->Set(
        static_cast<double>(farm.shards));
    config.metrics->gauge("farm.admitted")->Set(
        static_cast<double>(farm.admitted));
    config.metrics->gauge("farm.rejected")->Set(
        static_cast<double>(farm.rejected));
    config.metrics->gauge("farm.failovers")->Set(
        static_cast<double>(farm.failovers));
    config.metrics->gauge("farm.shed")->Set(
        static_cast<double>(farm.shed_actions));
    config.metrics->gauge("farm.readmits")->Set(
        static_cast<double>(farm.readmits));
    config.metrics->gauge("farm.availability")->Set(farm.availability);
    config.metrics->gauge("farm.peak_dram_per_shard")->Set(
        static_cast<double>(farm.peak_dram_per_shard));
    config.metrics->gauge("farm.qos_violations")->Set(
        static_cast<double>(farm.qos_violations));
    // Surface the attached SLOs and journal summary as gauges so the
    // farm's metrics block carries slo.* / stream.* alongside farm.*.
    if (config.slo != nullptr) config.slo->PublishGauges(config.metrics);
    if (config.journal != nullptr) {
      config.journal->PublishSummary(config.metrics);
    }
  }
  return farm;
}

obs::FarmBlock BuildFarmBlock(const FarmRunReport& report) {
  obs::FarmBlock block;
  block.policy = report.policy;
  block.shards = report.shards;
  block.titles = report.titles;
  block.total_copies = report.total_copies;
  block.offered = report.offered;
  block.admitted = report.admitted;
  block.rejected = report.rejected;
  block.failovers = report.failovers;
  block.shed = report.shed_actions;
  block.readmits = report.readmits;
  block.availability = report.availability;
  block.peak_dram_per_shard = report.peak_dram_per_shard;
  block.mean_utilization = report.mean_utilization;
  block.per_shard.reserve(report.per_shard.size());
  for (const FarmShardReport& s : report.per_shard) {
    obs::FarmShardEntry e;
    e.shard = s.shard;
    e.streams = s.streams;
    e.ios = s.ios_completed;
    e.underflow_events = s.underflow_events;
    e.cycle_overruns = s.cycle_overruns;
    e.qos_violations = s.qos_violations;
    e.failed_over_in = s.failed_over_in;
    e.shed = s.shed;
    e.peak_dram_bytes = s.peak_dram_demand;
    e.utilization = s.utilization;
    block.per_shard.push_back(e);
  }
  return block;
}

}  // namespace memstream::farm
