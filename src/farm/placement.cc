#include "farm/placement.h"

#include <algorithm>
#include <cmath>

#include "workload/popularity.h"

namespace memstream::farm {
namespace {

/// SplitMix64 finalizer: the placement hash. Stateless, so the ring and
/// the lookup agree without sharing tables.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t TitleHash(std::uint64_t seed, std::int64_t title) {
  return Mix64(seed ^ Mix64(static_cast<std::uint64_t>(title)));
}

/// High-bit tag separating ring-point inputs from title-id inputs.
constexpr std::uint64_t kRingDomainTag = 1ULL << 56;

Status ValidateCommon(const PlacementConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.num_titles < 1) {
    return Status::InvalidArgument("num_titles must be >= 1");
  }
  if (config.replicas < 1 || config.replicas > kMaxReplicas) {
    return Status::InvalidArgument("replicas must be in [1, kMaxReplicas]");
  }
  return Status::OK();
}

}  // namespace

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kConsistentHash: return "consistent_hash";
    case PlacementPolicy::kPopularityAware: return "popularity_aware";
  }
  return "unknown";
}

Result<std::unique_ptr<ConsistentHashPlacement>>
ConsistentHashPlacement::Create(const PlacementConfig& config) {
  MEMSTREAM_RETURN_IF_ERROR(ValidateCommon(config));
  if (config.virtual_nodes < 1) {
    return Status::InvalidArgument("virtual_nodes must be >= 1");
  }
  auto placement =
      std::unique_ptr<ConsistentHashPlacement>(new ConsistentHashPlacement());
  placement->num_shards_ = config.num_shards;
  placement->num_titles_ = config.num_titles;
  placement->replicas_ = std::min(config.replicas, config.num_shards);
  placement->seed_ = config.seed;
  placement->ring_.reserve(
      static_cast<std::size_t>(config.num_shards * config.virtual_nodes));
  for (std::int64_t s = 0; s < config.num_shards; ++s) {
    for (std::int64_t v = 0; v < config.virtual_nodes; ++v) {
      // Tag the ring's hash domain so a vnode's input can never collide
      // with a title id (titles hash the bare id; an untagged (0, v)
      // vnode would hash identically to title v and capture it).
      const std::uint64_t h = Mix64(
          config.seed ^ Mix64(kRingDomainTag |
                              static_cast<std::uint64_t>(s) << 20 |
                              static_cast<std::uint64_t>(v)));
      placement->ring_.push_back({h, static_cast<std::int32_t>(s)});
    }
  }
  std::sort(placement->ring_.begin(), placement->ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
            });
  return placement;
}

ShardSet ConsistentHashPlacement::Lookup(std::int64_t title) const {
  ShardSet out;
  const std::uint64_t h = TitleHash(seed_, title);
  // First ring point clockwise of the title's hash (wrapping).
  std::size_t lo = 0, hi = ring_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ring_[mid].hash < h) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t n = ring_.size();
  for (std::size_t walked = 0;
       walked < n && out.count < static_cast<std::int32_t>(replicas_);
       ++walked) {
    const std::int32_t s = ring_[(lo + walked) % n].shard;
    if (!out.Contains(s)) {
      out.shard[static_cast<std::size_t>(out.count++)] = s;
    }
  }
  return out;
}

Result<std::unique_ptr<PopularityAwarePlacement>>
PopularityAwarePlacement::Create(const PlacementConfig& config) {
  MEMSTREAM_RETURN_IF_ERROR(ValidateCommon(config));
  if (config.zipf_exponent < 0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  if (config.replication_budget <= 0 || config.replication_budget > 1) {
    return Status::InvalidArgument("replication_budget must be in (0, 1]");
  }
  auto fitted = workload::FitZipfTwoClass(
      config.num_titles, config.zipf_exponent, config.replication_budget);
  MEMSTREAM_RETURN_IF_ERROR(fitted.status());

  auto placement = std::unique_ptr<PopularityAwarePlacement>(
      new PopularityAwarePlacement());
  placement->num_shards_ = config.num_shards;
  placement->num_titles_ = config.num_titles;
  placement->replicas_ = std::min(config.replicas, config.num_shards);
  placement->seed_ = config.seed;
  placement->fitted_ = fitted.value();
  placement->head_titles_ = std::clamp<std::int64_t>(
      std::llround(fitted.value().x * static_cast<double>(config.num_titles)),
      1, config.num_titles);
  // Replicas sit `step` shards apart so every head title's copies spread
  // across the farm instead of clustering next to its hash.
  placement->step_ =
      std::max<std::int64_t>(1, config.num_shards / placement->replicas_);
  return placement;
}

ShardSet PopularityAwarePlacement::Lookup(std::int64_t title) const {
  ShardSet out;
  const std::int64_t first = static_cast<std::int64_t>(
      TitleHash(seed_, title) % static_cast<std::uint64_t>(num_shards_));
  if (title < head_titles_) {
    for (std::int64_t r = 0;
         r < replicas_ && out.count < static_cast<std::int32_t>(replicas_);
         ++r) {
      const std::int32_t s =
          static_cast<std::int32_t>((first + r * step_) % num_shards_);
      if (!out.Contains(s)) {
        out.shard[static_cast<std::size_t>(out.count++)] = s;
      }
    }
  } else {
    out.shard[0] = static_cast<std::int32_t>(first);
    out.count = 1;
  }
  return out;
}

Result<std::unique_ptr<Placement>> MakePlacement(
    PlacementPolicy policy, const PlacementConfig& config) {
  switch (policy) {
    case PlacementPolicy::kConsistentHash: {
      auto p = ConsistentHashPlacement::Create(config);
      MEMSTREAM_RETURN_IF_ERROR(p.status());
      return Result<std::unique_ptr<Placement>>(std::move(p).value());
    }
    case PlacementPolicy::kPopularityAware: {
      auto p = PopularityAwarePlacement::Create(config);
      MEMSTREAM_RETURN_IF_ERROR(p.status());
      return Result<std::unique_ptr<Placement>>(std::move(p).value());
    }
  }
  return Status::InvalidArgument("unknown placement policy");
}

}  // namespace memstream::farm
