// Sharded catalog placement: which shard(s) of the farm hold a copy of
// each title. Two policies, the paper's replicated-vs-striped cache
// tradeoff (§3.2) lifted to farm scale:
//
//  - ConsistentHashPlacement: a virtual-node hash ring over title ids.
//    Every title lives on the `replicas` distinct shards that follow its
//    hash clockwise, so shard joins/leaves move only a 1/num_shards
//    slice of the catalog. With replicas == 1 this is classic consistent
//    hashing: one copy per title, no failover candidates.
//
//  - PopularityAwarePlacement: replicate the head of the Zipf curve
//    across `replicas` shards and hash the tail to a single shard each.
//    The head/tail split is solved from the fitted Zipf exponent via
//    workload::FitZipfTwoClass at the replication budget, so the
//    replicated prefix is exactly the slice of the catalog the budget
//    pays for (Jayarekha & Nair's popularity-aware prefix caching,
//    arXiv:1001.4135, applied to whole-title placement).
//
// Lookup is the admission router's hot path: it returns a fixed-size
// ShardSet by value and performs zero heap allocations (asserted by the
// counting-new harness in placement_test and BM_PlacementLookup).

#ifndef MEMSTREAM_FARM_PLACEMENT_H_
#define MEMSTREAM_FARM_PLACEMENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "model/mems_cache.h"

namespace memstream::farm {

/// Upper bound on copies per title (and so on failover candidates).
inline constexpr std::int32_t kMaxReplicas = 8;

/// The shards holding a copy of one title. Fixed-size value type so the
/// lookup path never touches the heap.
struct ShardSet {
  std::array<std::int32_t, kMaxReplicas> shard{};
  std::int32_t count = 0;

  bool Contains(std::int32_t s) const {
    for (std::int32_t i = 0; i < count; ++i) {
      if (shard[static_cast<std::size_t>(i)] == s) return true;
    }
    return false;
  }
};

enum class PlacementPolicy {
  kConsistentHash,
  kPopularityAware,
};

const char* PlacementPolicyName(PlacementPolicy policy);

/// Knobs shared by both policies.
struct PlacementConfig {
  std::int64_t num_shards = 4;
  std::int64_t num_titles = 1000;
  /// Copies per title (ring successors / head replication factor).
  /// Clamped to num_shards; must be in [1, kMaxReplicas].
  std::int64_t replicas = 1;
  /// Ring points per shard (consistent hashing only). More virtual
  /// nodes = smoother catalog split across shards.
  std::int64_t virtual_nodes = 64;
  /// Zipf exponent of the request distribution (popularity-aware only).
  double zipf_exponent = 1.0;
  /// Fraction of the catalog the farm is willing to hold as extra head
  /// copies (popularity-aware only): the head/tail split is fitted so
  /// the replicated prefix is exactly this title fraction.
  double replication_budget = 0.05;
  /// Salt of every placement hash; same seed = same catalog layout.
  std::uint64_t seed = 0x51ED2700F00DULL;
};

/// Catalog placement: title -> shards. Implementations are immutable
/// after Create and safe to share across threads.
class Placement {
 public:
  virtual ~Placement() = default;

  virtual const char* name() const = 0;

  /// Shards holding a copy of `title`, preference order first.
  /// Allocation-free. `title` must be in [0, num_titles).
  virtual ShardSet Lookup(std::int64_t title) const = 0;

  std::int64_t num_shards() const { return num_shards_; }
  std::int64_t num_titles() const { return num_titles_; }

  /// Total title copies stored across the farm — the storage price of
  /// the policy (num_titles = one copy each; more = replication).
  virtual std::int64_t total_copies() const = 0;

 protected:
  std::int64_t num_shards_ = 0;
  std::int64_t num_titles_ = 0;
};

/// Virtual-node consistent-hash ring over title ids.
class ConsistentHashPlacement : public Placement {
 public:
  static Result<std::unique_ptr<ConsistentHashPlacement>> Create(
      const PlacementConfig& config);

  const char* name() const override { return "consistent_hash"; }
  ShardSet Lookup(std::int64_t title) const override;
  std::int64_t total_copies() const override {
    return num_titles_ * replicas_;
  }

 private:
  struct RingPoint {
    std::uint64_t hash = 0;
    std::int32_t shard = 0;
  };

  ConsistentHashPlacement() = default;

  std::vector<RingPoint> ring_;  ///< sorted by hash
  std::int64_t replicas_ = 1;
  std::uint64_t seed_ = 0;
};

/// Replicated Zipf head, hashed tail.
class PopularityAwarePlacement : public Placement {
 public:
  static Result<std::unique_ptr<PopularityAwarePlacement>> Create(
      const PlacementConfig& config);

  const char* name() const override { return "popularity_aware"; }
  ShardSet Lookup(std::int64_t title) const override;
  std::int64_t total_copies() const override {
    return head_titles_ * replicas_ + (num_titles_ - head_titles_);
  }

  /// Titles in the replicated head ([0, head_titles) by Zipf rank).
  std::int64_t head_titles() const { return head_titles_; }
  /// The fitted X:Y description the split was solved from (x = head
  /// fraction, y = access mass the replicated head captures).
  const model::Popularity& fitted() const { return fitted_; }

 private:
  PopularityAwarePlacement() = default;

  std::int64_t head_titles_ = 0;
  std::int64_t replicas_ = 1;
  std::int64_t step_ = 1;  ///< shard stride between head replicas
  std::uint64_t seed_ = 0;
  model::Popularity fitted_;
};

/// Policy-dispatching factory.
Result<std::unique_ptr<Placement>> MakePlacement(
    PlacementPolicy policy, const PlacementConfig& config);

}  // namespace memstream::farm

#endif  // MEMSTREAM_FARM_PLACEMENT_H_
