// Persistence for sweep cost records: every converted bench appends its
// wall-clock / events-per-second / thread-count record to
// bench_results/BENCH_sweeps.json so the perf trajectory is tracked
// across PRs. The file is a JSON array with one record object per line;
// re-running a bench replaces its own record in place (keyed by the
// bench name) instead of appending duplicates.

#ifndef MEMSTREAM_EXP_SWEEP_STATS_H_
#define MEMSTREAM_EXP_SWEEP_STATS_H_

#include <string>

#include "common/status.h"
#include "exp/sweep_runner.h"

namespace memstream::exp {

/// One bench's sweep cost, as written to BENCH_sweeps.json.
struct BenchSweepRecord {
  std::string bench;          ///< bench binary name (record key)
  std::int64_t tasks = 0;
  int threads = 1;
  double wall_seconds = 0;
  std::int64_t events = 0;
  double events_per_sec = 0;
};

/// Builds the record from a runner's cumulative stats.
BenchSweepRecord MakeBenchSweepRecord(const std::string& bench,
                                      const SweepStats& stats);

/// Serializes one record as a single-line JSON object.
std::string BenchSweepRecordJson(const BenchSweepRecord& record);

/// Inserts or replaces `record` in the JSON-array file at `path`,
/// creating the file when absent. Records of other benches are kept in
/// file order.
Status AppendBenchSweepRecord(const std::string& path,
                              const BenchSweepRecord& record);

}  // namespace memstream::exp

#endif  // MEMSTREAM_EXP_SWEEP_STATS_H_
