#include "exp/thread_pool.h"

#include <utility>

namespace memstream::exp {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace memstream::exp
