#include "exp/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/profiler.h"
#include "exp/thread_pool.h"

namespace memstream::exp {

std::uint64_t TaskSeed(std::uint64_t base_seed, std::int64_t index) {
  // SplitMix64 of the index-th point of the base sequence: decorrelates
  // neighboring tasks while staying a pure function of (seed, index).
  std::uint64_t z =
      base_seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MEMSTREAM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), threads_(ResolveThreadCount(options.threads)) {
  stats_.threads = threads_;
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::RunIndexed(
    std::int64_t n, const std::function<void(TaskContext&)>& body) {
  if (n <= 0) return;
  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> events{0};

  // Per-task registries so concurrent tasks never share a registry and
  // the post-barrier merge (in task order) is deterministic.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  if (options_.metrics != nullptr) {
    registries.resize(static_cast<std::size_t>(n));
    for (auto& r : registries) r = std::make_unique<obs::MetricsRegistry>();
  }

  auto run_one = [&](std::int64_t index) {
    PROF_SCOPE("exp.sweep.task");
    TaskContext ctx(
        index, TaskSeed(options_.base_seed, index),
        registries.empty() ? nullptr
                           : registries[static_cast<std::size_t>(index)].get(),
        &events);
    body(ctx);
  };

  if (pool_ == nullptr) {
    for (std::int64_t i = 0; i < n; ++i) run_one(i);
  } else {
    // One drainer per worker pulling indices from a shared counter:
    // dynamic load balancing without work stealing, and the index fully
    // determines a task's seed/registry, so placement cannot leak into
    // results.
    std::atomic<std::int64_t> next{0};
    const int drainers = static_cast<int>(
        std::min<std::int64_t>(threads_, n));
    for (int d = 0; d < drainers; ++d) {
      pool_->Submit([&run_one, &next, n] {
        for (;;) {
          const std::int64_t i = next.fetch_add(1);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    pool_->Wait();
  }

  if (options_.metrics != nullptr) {
    for (const auto& r : registries) options_.metrics->Merge(*r);
  }

  stats_.tasks += n;
  stats_.events += events.load();
  stats_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
}

}  // namespace memstream::exp
