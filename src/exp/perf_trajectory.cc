#include "exp/perf_trajectory.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json_parser.h"
#include "obs/json_writer.h"

namespace memstream::exp {

namespace {

/// The (bench, kind, smoke) logical key as one comparable string.
std::string RecordKey(const PerfRecord& r) {
  return r.bench + "\x1f" + r.kind + (r.smoke ? "\x1f" "s" : "\x1f" "f");
}

PerfRecord RecordFromJson(const obs::JsonValue& v) {
  PerfRecord r;
  r.schema_version =
      static_cast<std::int64_t>(v.Num("schema_version", kPerfSchemaVersion));
  r.bench = v.Str("bench");
  if (const obs::JsonValue* kind = v.Find("kind"); kind != nullptr) {
    r.kind = kind->string;
  }
  if (const obs::JsonValue* smoke = v.Find("smoke"); smoke != nullptr) {
    r.smoke = smoke->boolean;
  }
  r.run = static_cast<std::int64_t>(v.Num("run", 0));
  r.unix_time = v.Num("unix_time", 0);
  r.repeats = static_cast<std::int64_t>(v.Num("repeats", 1));
  r.wall_seconds = v.Num("wall_seconds", 0);
  r.wall_p50 = v.Num("wall_p50", 0);
  r.wall_p99 = v.Num("wall_p99", 0);
  r.events_per_sec = v.Num("events_per_sec", 0);
  r.allocs_per_event = v.Num("allocs_per_event", -1);
  return r;
}

}  // namespace

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

std::string PerfRecordJson(const PerfRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(record.schema_version);
  w.Key("bench");
  w.String(record.bench);
  w.Key("kind");
  w.String(record.kind);
  w.Key("smoke");
  w.Bool(record.smoke);
  w.Key("run");
  w.Int(record.run);
  w.Key("unix_time");
  w.Number(record.unix_time);
  w.Key("repeats");
  w.Int(record.repeats);
  w.Key("wall_seconds");
  w.Number(record.wall_seconds);
  w.Key("wall_p50");
  w.Number(record.wall_p50);
  w.Key("wall_p99");
  w.Number(record.wall_p99);
  w.Key("events_per_sec");
  w.Number(record.events_per_sec);
  w.Key("allocs_per_event");
  w.Number(record.allocs_per_event);
  w.EndObject();
  return w.str();
}

std::string PerfRecordsJson(const std::vector<PerfRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += PerfRecordJson(records[i]);
    if (i + 1 < records.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

Result<std::vector<PerfRecord>> ParsePerfRecords(const std::string& text) {
  bool ok = false;
  const obs::JsonValue doc = obs::ParseJson(text, &ok);
  if (!ok || !doc.is_array()) {
    return Status::InvalidArgument("not a JSON array of perf records");
  }
  std::vector<PerfRecord> records;
  records.reserve(doc.array.size());
  for (const auto& v : doc.array) {
    if (!v.is_object()) {
      return Status::InvalidArgument("perf record is not an object");
    }
    PerfRecord r = RecordFromJson(v);
    if (r.schema_version > kPerfSchemaVersion) {
      return Status::InvalidArgument(
          "perf record schema v" + std::to_string(r.schema_version) +
          " is newer than this build (v" +
          std::to_string(kPerfSchemaVersion) + ")");
    }
    if (r.bench.empty()) {
      return Status::InvalidArgument("perf record without a bench name");
    }
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<PerfRecord>> LoadPerfRecords(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::vector<PerfRecord>{};
  std::ostringstream content;
  content << in.rdbuf();
  auto parsed = ParsePerfRecords(content.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Status WritePerfRecords(const std::string& path,
                        const std::vector<PerfRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::Internal("cannot write " + path);
  out << PerfRecordsJson(records);
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Status AppendPerfRecords(const std::string& path,
                         std::vector<PerfRecord> records) {
  auto existing = LoadPerfRecords(path);
  MEMSTREAM_RETURN_IF_ERROR(existing.status());
  std::vector<PerfRecord> all = std::move(existing).value();
  std::int64_t next_run = 1;
  for (const auto& r : all) next_run = std::max(next_run, r.run + 1);
  for (auto& r : records) {
    r.run = next_run;
    all.push_back(std::move(r));
  }
  return WritePerfRecords(path, all);
}

std::vector<PerfCheck> CheckAgainstBaseline(
    const std::vector<PerfRecord>& current,
    const std::vector<PerfRecord>& baseline, double tolerance) {
  std::vector<PerfCheck> checks;
  checks.reserve(current.size());
  for (const auto& cur : current) {
    PerfCheck check;
    check.bench = cur.bench;
    check.kind = cur.kind;
    check.smoke = cur.smoke;
    // Latest baseline record for this key (file order = append order).
    const PerfRecord* base = nullptr;
    for (const auto& b : baseline) {
      if (RecordKey(b) == RecordKey(cur)) base = &b;
    }
    if (base == nullptr) {
      check.detail = "no baseline";
      checks.push_back(std::move(check));
      continue;
    }
    check.found_baseline = true;
    if (cur.events_per_sec > 0 && base->events_per_sec > 0) {
      check.metric = "events_per_sec";
      check.baseline = base->events_per_sec;
      check.current = cur.events_per_sec;
      check.ratio = base->events_per_sec / cur.events_per_sec;
    } else if (cur.wall_seconds > 0 && base->wall_seconds > 0) {
      check.metric = "wall_seconds";
      check.baseline = base->wall_seconds;
      check.current = cur.wall_seconds;
      check.ratio = cur.wall_seconds / base->wall_seconds;
    } else {
      check.detail = "no comparable metric";
      checks.push_back(std::move(check));
      continue;
    }
    check.ok = check.ratio <= tolerance;
    std::ostringstream detail;
    detail << check.metric << " " << check.current << " vs baseline "
           << check.baseline << " (x" << check.ratio << " slowdown, limit x"
           << tolerance << ")";
    check.detail = detail.str();
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace memstream::exp
