// Fixed-size thread pool for the experiment engine. Deliberately plain:
// one shared FIFO queue, no work stealing, no priorities — the sweep
// layer above guarantees determinism by making tasks independent and
// collecting results by index, so the pool only needs to be correct and
// cheap. A pool of size 0 or 1 runs tasks inline on the submitting
// thread (no worker threads at all), which is the reference execution
// the determinism tests compare against.

#ifndef MEMSTREAM_EXP_THREAD_POOL_H_
#define MEMSTREAM_EXP_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/move_only_function.h"

namespace memstream::exp {

class ThreadPool {
 public:
  using Task = MoveOnlyFunction<void()>;

  /// Spawns `threads` workers; 0 and 1 both mean inline execution.
  explicit ThreadPool(int threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. With no workers the task runs before Submit
  /// returns. Tasks may Submit follow-up work; calling Wait() from
  /// inside a task deadlocks.
  void Submit(Task task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Worker count (0 = inline mode).
  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<Task> queue_;
  std::int64_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace memstream::exp

#endif  // MEMSTREAM_EXP_THREAD_POOL_H_
