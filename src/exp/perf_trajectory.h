// Perf-trajectory records: the schema behind tools/memstream-perf and
// bench_results/BENCH_trajectory.json. Each harness invocation appends
// one record per bench (median-of-K wall clock, events/s, percentiles,
// allocs/event when measured), so the file accumulates a perf history
// across PRs; committed baselines (bench/baselines/*.json) reuse the
// same record format and CheckAgainstBaseline() turns the comparison
// into a CI gate.

#ifndef MEMSTREAM_EXP_PERF_TRAJECTORY_H_
#define MEMSTREAM_EXP_PERF_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace memstream::exp {

/// Bump when the record layout changes incompatibly. Readers reject
/// records from a NEWER schema; older records load with defaults for
/// fields they predate.
inline constexpr std::int64_t kPerfSchemaVersion = 1;

/// One bench's cost from one harness invocation. The logical key is
/// (bench, kind, smoke): smoke runs are not comparable to full runs, so
/// they carry their own baselines.
struct PerfRecord {
  std::int64_t schema_version = kPerfSchemaVersion;
  std::string bench;           ///< bench binary or micro-benchmark name
  std::string kind = "sweep";  ///< "sweep" | "micro"
  bool smoke = false;          ///< ran under MEMSTREAM_SMOKE trimming
  std::int64_t run = 0;        ///< harness invocation number (stamped on append)
  double unix_time = 0;        ///< seconds since epoch; 0 = unknown
  std::int64_t repeats = 1;    ///< K in median-of-K
  double wall_seconds = 0;     ///< median of the K walls
  double wall_p50 = 0;
  double wall_p99 = 0;
  double events_per_sec = 0;     ///< median of K; 0 = not measured
  double allocs_per_event = -1;  ///< heap allocations per event; -1 = n/a
};

/// Linear-interpolation percentile of `values` at q in [0, 1]; 0 for an
/// empty input. Takes a copy because it sorts.
double Percentile(std::vector<double> values, double q);

/// Percentile(values, 0.5).
double Median(std::vector<double> values);

/// One record as a single-line JSON object.
std::string PerfRecordJson(const PerfRecord& record);

/// All records as a JSON array, one record per line.
std::string PerfRecordsJson(const std::vector<PerfRecord>& records);

/// Parses a JSON-array document of records. Records with a newer
/// schema_version than this build understands are an error; missing
/// fields default.
Result<std::vector<PerfRecord>> ParsePerfRecords(const std::string& text);

/// Loads the JSON array at `path`. A missing file is an empty history.
Result<std::vector<PerfRecord>> LoadPerfRecords(const std::string& path);

/// Overwrites `path` with `records` (baseline updates).
Status WritePerfRecords(const std::string& path,
                        const std::vector<PerfRecord>& records);

/// Appends `records` to the trajectory file at `path` (created when
/// absent), stamping each with run = (max run already on file) + 1.
Status AppendPerfRecords(const std::string& path,
                         std::vector<PerfRecord> records);

/// One current record's verdict against the baseline set.
struct PerfCheck {
  std::string bench;
  std::string kind;
  bool smoke = false;
  bool found_baseline = false;  ///< false = nothing to compare against
  bool ok = true;               ///< false = regression beyond tolerance
  std::string metric;           ///< "events_per_sec" | "wall_seconds"
  double baseline = 0;
  double current = 0;
  double ratio = 1;  ///< slowdown factor; > 1 means slower than baseline
  std::string detail;
};

/// Compares each record in `current` against `baseline`, matching on
/// (bench, kind, smoke) and taking the latest baseline record per key.
/// Throughput (events_per_sec) is compared when both sides measured it,
/// wall clock otherwise; a record fails when its slowdown ratio exceeds
/// `tolerance` (e.g. 1.25 = up to 25% slower passes). Records without a
/// baseline come back found_baseline=false and ok=true.
std::vector<PerfCheck> CheckAgainstBaseline(
    const std::vector<PerfRecord>& current,
    const std::vector<PerfRecord>& baseline, double tolerance);

}  // namespace memstream::exp

#endif  // MEMSTREAM_EXP_PERF_TRAJECTORY_H_
