#include "exp/sweep_stats.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace memstream::exp {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

BenchSweepRecord MakeBenchSweepRecord(const std::string& bench,
                                      const SweepStats& stats) {
  BenchSweepRecord record;
  record.bench = bench;
  record.tasks = stats.tasks;
  record.threads = stats.threads;
  record.wall_seconds = stats.wall_seconds;
  record.events = stats.events;
  record.events_per_sec = stats.events_per_sec();
  return record;
}

std::string BenchSweepRecordJson(const BenchSweepRecord& record) {
  // Bench names are our own binary names (ASCII, no quotes/backslashes),
  // so no escaping pass is needed.
  std::ostringstream out;
  out << "{\"bench\":\"" << record.bench << "\",\"tasks\":" << record.tasks
      << ",\"threads\":" << record.threads
      << ",\"wall_seconds\":" << FormatDouble(record.wall_seconds)
      << ",\"events\":" << record.events
      << ",\"events_per_sec\":" << FormatDouble(record.events_per_sec)
      << "}";
  return out.str();
}

Status AppendBenchSweepRecord(const std::string& path,
                              const BenchSweepRecord& record) {
  // The file keeps one record object per line, so updating a bench's
  // record is a line-level splice — no JSON parser needed.
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto start = line.find('{');
      if (start == std::string::npos) continue;  // "[", "]", blanks
      const auto end = line.rfind('}');
      if (end == std::string::npos || end < start) continue;
      records.push_back(line.substr(start, end - start + 1));
    }
  }

  const std::string key = "\"bench\":\"" + record.bench + "\"";
  const std::string fresh = BenchSweepRecordJson(record);
  bool replaced = false;
  for (auto& existing : records) {
    if (existing.find(key) != std::string::npos) {
      existing = fresh;
      replaced = true;
      break;
    }
  }
  if (!replaced) records.push_back(fresh);

  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::exp
