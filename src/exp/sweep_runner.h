// Parallel experiment engine: fans independent (config -> row) sweep
// evaluations across a ThreadPool while keeping the output bit-identical
// to a serial run. The determinism contract (see docs/PERFORMANCE.md):
//
//  - Tasks are pure functions of (their input, their TaskContext). They
//    must not touch shared mutable state; shared inputs are read-only.
//  - Each task gets its own Rng, seeded as SplitMix64 of (base_seed,
//    task index) — independent of the thread that runs it and of how
//    many threads exist.
//  - Each task gets its own obs::MetricsRegistry; after the barrier the
//    per-task registries are merged into SweepOptions::metrics in task
//    order, so merged values match a serial run exactly.
//  - Map() collects rows by task index, so emission order (tables, CSV)
//    is the submission order regardless of completion order.
//
// Thread count resolution: SweepOptions::threads > 0 wins, else the
// MEMSTREAM_THREADS environment variable, else hardware concurrency.

#ifndef MEMSTREAM_EXP_SWEEP_RUNNER_H_
#define MEMSTREAM_EXP_SWEEP_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace memstream::exp {

struct SweepOptions {
  /// Worker threads; 0 = resolve via MEMSTREAM_THREADS / hardware.
  int threads = 0;
  /// Root of the per-task seed derivation.
  std::uint64_t base_seed = 0x9E3779B97F4A7C15ull;
  /// When set, per-task registries are merged here after each sweep.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What one sweep cost; accumulated across Map() calls on one runner and
/// exported into bench_results/BENCH_sweeps.json by the benches.
struct SweepStats {
  std::int64_t tasks = 0;
  int threads = 1;
  Seconds wall_seconds = 0;
  /// Task-reported work units (sim events, IOs, model evaluations).
  std::int64_t events = 0;
  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
};

/// Per-task execution context, valid for the duration of the task.
class TaskContext {
 public:
  TaskContext(std::int64_t index, std::uint64_t seed,
              obs::MetricsRegistry* metrics,
              std::atomic<std::int64_t>* events)
      : index_(index), seed_(seed), rng_(seed), metrics_(metrics),
        events_(events) {}

  std::int64_t index() const { return index_; }
  std::uint64_t seed() const { return seed_; }
  /// Deterministic per-task stream, identical at any thread count.
  Rng& rng() { return rng_; }
  /// Per-task registry (null when the sweep collects no metrics).
  obs::MetricsRegistry* metrics() { return metrics_; }
  /// Accounts `n` work units toward the sweep's events/sec figure.
  void AddEvents(std::int64_t n) {
    if (n > 0) events_->fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::int64_t index_;
  std::uint64_t seed_;
  Rng rng_;
  obs::MetricsRegistry* metrics_;
  std::atomic<std::int64_t>* events_;
};

/// Derives the task seed: SplitMix64 over base_seed advanced by index.
std::uint64_t TaskSeed(std::uint64_t base_seed, std::int64_t index);

/// Applies the resolution order documented above. `requested <= 0`
/// consults MEMSTREAM_THREADS, then hardware concurrency; result >= 1.
int ResolveThreadCount(int requested);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Evaluates fn(TaskContext&) for indices 0..n-1 in parallel and
  /// returns the results in index order. Row must be default
  /// constructible and movable. Byte-identical to the serial run as
  /// long as fn honors the determinism contract above.
  template <typename Fn>
  auto Map(std::int64_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::declval<TaskContext&>()))> {
    using Row = decltype(fn(std::declval<TaskContext&>()));
    std::vector<Row> rows(static_cast<std::size_t>(n > 0 ? n : 0));
    RunIndexed(n, [&rows, &fn](TaskContext& ctx) {
      rows[static_cast<std::size_t>(ctx.index())] = fn(ctx);
    });
    return rows;
  }

  /// Runs fn for indices 0..n-1 for its side effects on the TaskContext
  /// (metrics, events). fn must not write shared state.
  void ForEach(std::int64_t n,
               const std::function<void(TaskContext&)>& fn) {
    RunIndexed(n, fn);
  }

  /// Resolved worker count for this runner.
  int threads() const { return threads_; }

  /// Cumulative cost of every Map()/ForEach() on this runner so far.
  const SweepStats& stats() const { return stats_; }

 private:
  void RunIndexed(std::int64_t n,
                  const std::function<void(TaskContext&)>& body);

  SweepOptions options_;
  int threads_;
  SweepStats stats_;
  std::unique_ptr<class ThreadPool> pool_;
};

}  // namespace memstream::exp

#endif  // MEMSTREAM_EXP_SWEEP_RUNNER_H_
