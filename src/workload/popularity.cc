#include "workload/popularity.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace memstream::workload {

Result<TwoClassSampler> TwoClassSampler::Create(const model::Popularity& pop,
                                                std::int64_t num_titles) {
  if (!model::IsValidPopularity(pop)) {
    return Status::InvalidArgument("invalid X:Y popularity");
  }
  if (num_titles < 1) {
    return Status::InvalidArgument("num_titles must be >= 1");
  }
  auto num_popular = static_cast<std::int64_t>(
      std::llround(pop.x * static_cast<double>(num_titles)));
  num_popular = std::clamp<std::int64_t>(num_popular, 1, num_titles);
  return TwoClassSampler(pop, num_titles, num_popular);
}

std::int64_t TwoClassSampler::Sample(Rng& rng) const {
  if (num_popular_ == num_titles_) {
    return rng.NextInt(0, num_titles_ - 1);
  }
  if (rng.NextDouble() < pop_.y) {
    return rng.NextInt(0, num_popular_ - 1);
  }
  return rng.NextInt(num_popular_, num_titles_ - 1);
}

double TwoClassSampler::Pmf(std::int64_t title) const {
  if (title < 0 || title >= num_titles_) return 0;
  if (num_popular_ == num_titles_) {
    return 1.0 / static_cast<double>(num_titles_);
  }
  if (title < num_popular_) {
    return pop_.y / static_cast<double>(num_popular_);
  }
  return (1.0 - pop_.y) / static_cast<double>(num_titles_ - num_popular_);
}

Result<ZipfSampler> ZipfSampler::Create(std::int64_t num_titles,
                                        double exponent) {
  if (num_titles < 1) {
    return Status::InvalidArgument("num_titles must be >= 1");
  }
  if (exponent < 0) {
    return Status::InvalidArgument("exponent must be >= 0");
  }
  return ZipfSampler(
      ZipfDistribution(static_cast<std::size_t>(num_titles), exponent));
}

std::int64_t ZipfSampler::Sample(Rng& rng) const {
  // ZipfDistribution ranks are 1-based.
  return static_cast<std::int64_t>(dist_.Sample(rng)) - 1;
}

double ZipfSampler::Pmf(std::int64_t title) const {
  if (title < 0 || title >= num_titles()) return 0;
  return dist_.Pmf(static_cast<std::size_t>(title) + 1);
}

std::int64_t ZipfSampler::num_titles() const {
  return static_cast<std::int64_t>(dist_.size());
}

Result<model::Popularity> FitZipfTwoClass(std::int64_t num_titles,
                                          double exponent,
                                          double cached_fraction) {
  auto sampler = ZipfSampler::Create(num_titles, exponent);
  MEMSTREAM_RETURN_IF_ERROR(sampler.status());
  std::vector<double> pmf;
  pmf.reserve(static_cast<std::size_t>(num_titles));
  for (std::int64_t t = 0; t < num_titles; ++t) {
    pmf.push_back(sampler.value().Pmf(t));
  }
  return FitTwoClass(pmf, cached_fraction);
}

Result<model::Popularity> FitTwoClass(const std::vector<double>& pmf,
                                      double x) {
  if (pmf.empty()) return Status::InvalidArgument("empty pmf");
  if (x <= 0 || x > 1) return Status::InvalidArgument("x must be in (0, 1]");
  std::vector<double> sorted = pmf;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0) return Status::InvalidArgument("pmf sums to zero");

  auto top = static_cast<std::size_t>(
      std::llround(x * static_cast<double>(sorted.size())));
  top = std::clamp<std::size_t>(top, 1, sorted.size());
  const double captured =
      std::accumulate(sorted.begin(), sorted.begin() + top, 0.0) / total;

  model::Popularity fitted;
  fitted.x = static_cast<double>(top) / static_cast<double>(sorted.size());
  // Eq. 11 requires y >= x (the "popular" class is at least as hot as
  // uniform); a sub-uniform head can only happen with ties, where the
  // uniform description is exact.
  fitted.y = std::max(captured, fitted.x);
  return fitted;
}

}  // namespace memstream::workload
