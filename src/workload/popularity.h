// Popularity models over a catalog of titles.
//
// The paper's evaluation uses the X:Y two-class model (X% of the titles
// draw Y% of the accesses, uniform within each class); we also provide a
// Zipf sampler as a more realistic alternative and a helper that fits the
// closest X:Y description to an arbitrary discrete distribution.

#ifndef MEMSTREAM_WORKLOAD_POPULARITY_H_
#define MEMSTREAM_WORKLOAD_POPULARITY_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "model/mems_cache.h"

namespace memstream::workload {

/// Samples title indices in [0, num_titles) under a model::Popularity
/// X:Y distribution: ranks below x*num_titles ("popular") share
/// probability y uniformly; the rest share 1-y.
class TwoClassSampler {
 public:
  /// Requires a valid popularity and num_titles >= 1.
  static Result<TwoClassSampler> Create(const model::Popularity& pop,
                                        std::int64_t num_titles);

  /// Draws a title index; popular titles occupy the low indices.
  std::int64_t Sample(Rng& rng) const;

  /// Exact access probability of a title index.
  double Pmf(std::int64_t title) const;

  std::int64_t num_titles() const { return num_titles_; }
  std::int64_t num_popular() const { return num_popular_; }

 private:
  TwoClassSampler(const model::Popularity& pop, std::int64_t num_titles,
                  std::int64_t num_popular)
      : pop_(pop), num_titles_(num_titles), num_popular_(num_popular) {}

  model::Popularity pop_;
  std::int64_t num_titles_;
  std::int64_t num_popular_;
};

/// Samples title indices under Zipf(s) with rank 0 most popular.
class ZipfSampler {
 public:
  static Result<ZipfSampler> Create(std::int64_t num_titles,
                                    double exponent);

  std::int64_t Sample(Rng& rng) const;
  double Pmf(std::int64_t title) const;
  std::int64_t num_titles() const;

 private:
  explicit ZipfSampler(ZipfDistribution dist) : dist_(std::move(dist)) {}

  ZipfDistribution dist_;
};

/// Fits an X:Y description to an arbitrary access-probability vector
/// (sorted internally): for the given popular fraction x, returns the
/// model::Popularity whose y matches the mass actually captured by the
/// top x fraction of titles. Lets Zipf workloads reuse the paper's
/// Eq. 11 hit-rate machinery.
Result<model::Popularity> FitTwoClass(const std::vector<double>& pmf,
                                      double x);

/// The X:Y description of a Zipf(exponent) catalog of `num_titles`,
/// fitted at the popular fraction the cache can actually hold
/// (`cached_fraction`, e.g. model::CachedFraction(...)). Plugs Zipf
/// workloads straight into the Eq. 11 planners: fit at p so that the
/// head class is exactly the cacheable prefix.
Result<model::Popularity> FitZipfTwoClass(std::int64_t num_titles,
                                          double exponent,
                                          double cached_fraction);

}  // namespace memstream::workload

#endif  // MEMSTREAM_WORKLOAD_POPULARITY_H_
