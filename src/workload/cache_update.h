// Offline cache-update planning (§3.2: "The MEMS cache is updated only
// to account for changes in stream popularity. This can be accomplished
// off-line, during service down-time."). Given the current resident set
// and a new popularity ranking, the planner computes the delta — which
// titles to evict and admit — and the downtime needed to write the new
// content at the bank's write bandwidth.

#ifndef MEMSTREAM_WORKLOAD_CACHE_UPDATE_H_
#define MEMSTREAM_WORKLOAD_CACHE_UPDATE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "model/mems_cache.h"
#include "workload/catalog.h"

namespace memstream::workload {

/// The update delta and its cost.
struct CacheUpdatePlan {
  std::vector<std::int64_t> residents;  ///< new resident set, by rank
  std::vector<std::int64_t> evict;      ///< leaving titles
  std::vector<std::int64_t> admit;      ///< entering titles
  Bytes bytes_to_write = 0;             ///< new content (one copy)
  Seconds downtime = 0;                 ///< to write it, policy-adjusted
};

/// Plans the update:
///  - the new resident set is the longest prefix of `ranking` (most
///    popular first) whose total size fits the policy's cache capacity
///    (k * Size_mems striped, Size_mems replicated);
///  - admit/evict are the set differences vs `current_residents`;
///  - downtime charges one copy of the admitted bytes against the
///    bank's aggregate write bandwidth for striping, and k copies
///    against k devices (one full copy per device at device bandwidth)
///    for replication — identical per-device time, so the same formula
///    bytes / device_write_rate applies; striping divides by k.
///
/// `ranking` must be a permutation of the catalog's title ids.
Result<CacheUpdatePlan> PlanCacheUpdate(
    const Catalog& catalog,
    const std::vector<std::int64_t>& current_residents,
    const std::vector<std::int64_t>& ranking, model::CachePolicy policy,
    std::int64_t k, Bytes mems_capacity_per_device,
    BytesPerSecond device_write_rate);

}  // namespace memstream::workload

#endif  // MEMSTREAM_WORKLOAD_CACHE_UPDATE_H_
