#include "workload/request_gen.h"

#include <algorithm>

namespace memstream::workload {

Result<std::vector<StreamRequest>> GenerateRequests(
    const Catalog& catalog, const TitleSampler& sampler,
    double arrival_rate, Seconds horizon, Rng& rng) {
  if (!sampler) return Status::InvalidArgument("sampler is required");
  if (arrival_rate <= 0) {
    return Status::InvalidArgument("arrival_rate must be > 0");
  }
  if (horizon <= 0) return Status::InvalidArgument("horizon must be > 0");

  std::vector<StreamRequest> requests;
  Seconds t = rng.NextExponential(arrival_rate);
  while (t < horizon) {
    StreamRequest req;
    req.arrival = t;
    req.title_id = sampler(rng);
    if (req.title_id < 0 || req.title_id >= catalog.size()) {
      return Status::OutOfRange("sampler produced an unknown title id");
    }
    req.duration = catalog.title(req.title_id).duration;
    requests.push_back(req);
    t += rng.NextExponential(arrival_rate);
  }
  return requests;
}

TraceHitStats MeasureHitRate(const std::vector<StreamRequest>& requests,
                             const std::vector<std::int64_t>& cached_titles) {
  TraceHitStats stats;
  stats.total = static_cast<std::int64_t>(requests.size());
  for (const auto& req : requests) {
    if (std::binary_search(cached_titles.begin(), cached_titles.end(),
                           req.title_id)) {
      ++stats.hits;
    }
  }
  stats.hit_rate = stats.total
                       ? static_cast<double>(stats.hits) /
                             static_cast<double>(stats.total)
                       : 0.0;
  return stats;
}

}  // namespace memstream::workload
