#include "workload/cache_update.h"

#include <algorithm>
#include <unordered_set>

namespace memstream::workload {

Result<CacheUpdatePlan> PlanCacheUpdate(
    const Catalog& catalog,
    const std::vector<std::int64_t>& current_residents,
    const std::vector<std::int64_t>& ranking, model::CachePolicy policy,
    std::int64_t k, Bytes mems_capacity_per_device,
    BytesPerSecond device_write_rate) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (mems_capacity_per_device <= 0) {
    return Status::InvalidArgument("mems capacity must be > 0");
  }
  if (device_write_rate <= 0) {
    return Status::InvalidArgument("device_write_rate must be > 0");
  }
  if (static_cast<std::int64_t>(ranking.size()) != catalog.size()) {
    return Status::InvalidArgument(
        "ranking must cover the whole catalog");
  }
  std::unordered_set<std::int64_t> seen;
  for (std::int64_t id : ranking) {
    if (id < 0 || id >= catalog.size() || !seen.insert(id).second) {
      return Status::InvalidArgument("ranking is not a permutation");
    }
  }

  const Bytes capacity =
      policy == model::CachePolicy::kStriped
          ? static_cast<double>(k) * mems_capacity_per_device
          : mems_capacity_per_device;

  CacheUpdatePlan plan;
  Bytes used = 0;
  for (std::int64_t id : ranking) {
    const Bytes size = catalog.title(id).size;
    if (used + size > capacity) break;
    plan.residents.push_back(id);
    used += size;
  }

  const std::unordered_set<std::int64_t> old_set(
      current_residents.begin(), current_residents.end());
  std::unordered_set<std::int64_t> new_set(plan.residents.begin(),
                                           plan.residents.end());
  for (std::int64_t id : plan.residents) {
    if (!old_set.count(id)) {
      plan.admit.push_back(id);
      plan.bytes_to_write += catalog.title(id).size;
    }
  }
  for (std::int64_t id : current_residents) {
    if (!new_set.count(id)) plan.evict.push_back(id);
  }
  std::sort(plan.evict.begin(), plan.evict.end());

  // Replication writes a full copy on every device concurrently (the
  // per-device time is bytes/rate); striping spreads one copy over k
  // devices writing in lock-step (bytes/(k*rate)).
  const double effective_rate =
      policy == model::CachePolicy::kStriped
          ? static_cast<double>(k) * device_write_rate
          : device_write_rate;
  plan.downtime = plan.bytes_to_write / effective_rate;
  return plan;
}

}  // namespace memstream::workload
