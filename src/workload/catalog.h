// Media catalog: the set of titles a server stores, their bit-rates,
// durations, sizes, and byte placement on the disk. The cache manager
// decides which titles fit on the MEMS bank from this inventory.

#ifndef MEMSTREAM_WORKLOAD_CATALOG_H_
#define MEMSTREAM_WORKLOAD_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace memstream::workload {

/// One stored title.
struct Title {
  std::int64_t id = 0;
  std::string name;
  BytesPerSecond bit_rate = 0;
  Seconds duration = 0;
  Bytes size = 0;          ///< bit_rate * duration
  Bytes disk_offset = 0;   ///< placement on the disk (contiguous layout)
};

/// An immutable inventory of titles laid out contiguously on disk in id
/// order (title 0 is by convention the most popular).
class Catalog {
 public:
  /// Builds `num_titles` identical-shape titles of the given bit-rate and
  /// duration — the paper's homogeneous-catalog assumption.
  static Result<Catalog> Uniform(std::int64_t num_titles,
                                 BytesPerSecond bit_rate, Seconds duration);

  /// Builds a catalog from explicit (bit_rate, duration) pairs.
  static Result<Catalog> FromSpecs(
      const std::vector<std::pair<BytesPerSecond, Seconds>>& specs);

  std::int64_t size() const {
    return static_cast<std::int64_t>(titles_.size());
  }
  const Title& title(std::int64_t id) const {
    return titles_[static_cast<std::size_t>(id)];
  }
  const std::vector<Title>& titles() const { return titles_; }

  /// Sum of all title sizes (the Sizedisk of Eq. 11's p computation).
  Bytes TotalSize() const { return total_size_; }

  /// Ids of the most popular titles (lowest ids) whose cumulative size
  /// fits in `capacity` bytes — the offline cache-selection step (§3.2:
  /// the cache is updated "off-line, during service down-time").
  std::vector<std::int64_t> SelectCacheResidents(Bytes capacity) const;

 private:
  explicit Catalog(std::vector<Title> titles);

  std::vector<Title> titles_;
  Bytes total_size_ = 0;
};

}  // namespace memstream::workload

#endif  // MEMSTREAM_WORKLOAD_CATALOG_H_
