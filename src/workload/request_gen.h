// Stream-request generation: Poisson arrivals over a catalog with a
// pluggable popularity sampler. Drives the admission-control and
// simulation examples; the analytical benches do not need it.

#ifndef MEMSTREAM_WORKLOAD_REQUEST_GEN_H_
#define MEMSTREAM_WORKLOAD_REQUEST_GEN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "workload/catalog.h"

namespace memstream::workload {

/// One playback request.
struct StreamRequest {
  Seconds arrival = 0;
  std::int64_t title_id = 0;
  Seconds duration = 0;  ///< requested playback length (<= title duration)
};

/// Title sampler signature (TwoClassSampler::Sample, ZipfSampler::Sample,
/// or anything else).
using TitleSampler = std::function<std::int64_t(Rng&)>;

/// Generates requests with exponential inter-arrival times at
/// `arrival_rate` (requests/second) until `horizon`, choosing titles via
/// `sampler`. Durations are the full title length.
Result<std::vector<StreamRequest>> GenerateRequests(
    const Catalog& catalog, const TitleSampler& sampler,
    double arrival_rate, Seconds horizon, Rng& rng);

/// Empirical hit statistics of a request trace against a cached-title
/// set; used to cross-check Eq. 11 in tests.
struct TraceHitStats {
  std::int64_t total = 0;
  std::int64_t hits = 0;
  double hit_rate = 0;
};

TraceHitStats MeasureHitRate(const std::vector<StreamRequest>& requests,
                             const std::vector<std::int64_t>& cached_titles);

}  // namespace memstream::workload

#endif  // MEMSTREAM_WORKLOAD_REQUEST_GEN_H_
