// Session-level load study: plays an arrival trace against a server with
// a fixed admission capacity (the planner's max-N), tracking occupancy
// and rejections over time — the operational view on top of the paper's
// per-cycle analysis. This is a loss system (no queueing: a VoD request
// that cannot start is rejected), so the rejection rate behaves like
// Erlang-B blocking in the offered load a = arrival_rate * duration.

#ifndef MEMSTREAM_WORKLOAD_ARRIVAL_SIM_H_
#define MEMSTREAM_WORKLOAD_ARRIVAL_SIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "workload/request_gen.h"

namespace memstream::workload {

/// Outcome of a load study.
struct LoadStudyResult {
  std::int64_t offered = 0;    ///< requests in the trace
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  double rejection_rate = 0;   ///< rejected / offered
  double mean_occupancy = 0;   ///< time-averaged concurrent sessions
  std::int64_t peak_occupancy = 0;
  double utilization = 0;      ///< mean_occupancy / capacity
};

/// Replays `requests` (ascending arrival times) against a server that
/// can hold `capacity` concurrent sessions; each admitted session stays
/// for its request's duration. Rejected sessions are lost, not queued.
/// `horizon` bounds the occupancy averaging window (sessions may outlive
/// it). Requires capacity >= 1 and a sorted trace.
Result<LoadStudyResult> StudyAdmission(
    const std::vector<StreamRequest>& requests, std::int64_t capacity,
    Seconds horizon);

/// Erlang-B blocking probability for offered load `erlangs` on
/// `capacity` servers (iterative, numerically stable). The loss system
/// above converges to this as the trace grows; exposed so studies can
/// report model-vs-trace agreement.
double ErlangB(double erlangs, std::int64_t capacity);

}  // namespace memstream::workload

#endif  // MEMSTREAM_WORKLOAD_ARRIVAL_SIM_H_
