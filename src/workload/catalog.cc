#include "workload/catalog.h"

namespace memstream::workload {

Catalog::Catalog(std::vector<Title> titles) : titles_(std::move(titles)) {
  Bytes offset = 0;
  for (auto& t : titles_) {
    t.disk_offset = offset;
    offset += t.size;
  }
  total_size_ = offset;
}

Result<Catalog> Catalog::Uniform(std::int64_t num_titles,
                                 BytesPerSecond bit_rate, Seconds duration) {
  if (num_titles < 1) {
    return Status::InvalidArgument("num_titles must be >= 1");
  }
  if (bit_rate <= 0 || duration <= 0) {
    return Status::InvalidArgument("bit_rate and duration must be > 0");
  }
  std::vector<Title> titles;
  titles.reserve(static_cast<std::size_t>(num_titles));
  for (std::int64_t i = 0; i < num_titles; ++i) {
    Title t;
    t.id = i;
    t.name = "title-" + std::to_string(i);
    t.bit_rate = bit_rate;
    t.duration = duration;
    t.size = bit_rate * duration;
    titles.push_back(std::move(t));
  }
  return Catalog(std::move(titles));
}

Result<Catalog> Catalog::FromSpecs(
    const std::vector<std::pair<BytesPerSecond, Seconds>>& specs) {
  if (specs.empty()) return Status::InvalidArgument("empty catalog");
  std::vector<Title> titles;
  titles.reserve(specs.size());
  std::int64_t id = 0;
  for (const auto& [bit_rate, duration] : specs) {
    if (bit_rate <= 0 || duration <= 0) {
      return Status::InvalidArgument("bit_rate and duration must be > 0");
    }
    Title t;
    t.id = id++;
    t.name = "title-" + std::to_string(t.id);
    t.bit_rate = bit_rate;
    t.duration = duration;
    t.size = bit_rate * duration;
    titles.push_back(std::move(t));
  }
  return Catalog(std::move(titles));
}

std::vector<std::int64_t> Catalog::SelectCacheResidents(
    Bytes capacity) const {
  std::vector<std::int64_t> residents;
  Bytes used = 0;
  for (const auto& t : titles_) {
    if (used + t.size > capacity) break;
    residents.push_back(t.id);
    used += t.size;
  }
  return residents;
}

}  // namespace memstream::workload
