#include "workload/arrival_sim.h"

#include <algorithm>
#include <queue>

#include "common/histogram.h"

namespace memstream::workload {

Result<LoadStudyResult> StudyAdmission(
    const std::vector<StreamRequest>& requests, std::int64_t capacity,
    Seconds horizon) {
  if (capacity < 1) return Status::InvalidArgument("capacity must be >= 1");
  if (horizon <= 0) return Status::InvalidArgument("horizon must be > 0");

  LoadStudyResult out;
  out.offered = static_cast<std::int64_t>(requests.size());

  // Min-heap of departure times of active sessions.
  std::priority_queue<Seconds, std::vector<Seconds>, std::greater<>>
      departures;
  TimeWeightedStats occupancy;
  occupancy.Update(0, 0);
  Seconds prev_arrival = 0;

  for (const auto& req : requests) {
    if (req.arrival < prev_arrival) {
      return Status::InvalidArgument("trace not sorted by arrival time");
    }
    prev_arrival = req.arrival;
    // Drain departures up to this arrival.
    while (!departures.empty() && departures.top() <= req.arrival) {
      occupancy.Update(std::min(departures.top(), horizon),
                       static_cast<double>(departures.size()) - 1);
      departures.pop();
    }
    if (static_cast<std::int64_t>(departures.size()) < capacity) {
      departures.push(req.arrival + req.duration);
      ++out.admitted;
      occupancy.Update(std::min(req.arrival, horizon),
                       static_cast<double>(departures.size()));
      out.peak_occupancy = std::max(
          out.peak_occupancy,
          static_cast<std::int64_t>(departures.size()));
    } else {
      ++out.rejected;
    }
  }
  // Drain the remaining departures inside the averaging window.
  while (!departures.empty() && departures.top() <= horizon) {
    occupancy.Update(departures.top(),
                     static_cast<double>(departures.size()) - 1);
    departures.pop();
  }
  occupancy.Update(horizon, static_cast<double>(departures.size()));

  out.rejection_rate =
      out.offered ? static_cast<double>(out.rejected) /
                        static_cast<double>(out.offered)
                  : 0.0;
  out.mean_occupancy = occupancy.TimeAverage();
  out.utilization = out.mean_occupancy / static_cast<double>(capacity);
  return out;
}

double ErlangB(double erlangs, std::int64_t capacity) {
  if (erlangs <= 0 || capacity < 1) return 0.0;
  // B(0, a) = 1; B(k, a) = a*B(k-1, a) / (k + a*B(k-1, a)).
  double b = 1.0;
  for (std::int64_t k = 1; k <= capacity; ++k) {
    b = erlangs * b / (static_cast<double>(k) + erlangs * b);
  }
  return b;
}

}  // namespace memstream::workload
