#include "obs/exporters.h"

#include <algorithm>

namespace memstream::obs {

void ExportDeviceStats(MetricsRegistry* metrics,
                       const device::BlockDevice& device, Seconds horizon) {
  if (metrics == nullptr) return;
  const std::string prefix = "device." + device.name() + ".";
  metrics->gauge(prefix + "busy_seconds")->Set(device.busy_seconds());
  metrics->gauge(prefix + "ios")
      ->Set(static_cast<double>(device.ios_serviced()));
  metrics->gauge(prefix + "bytes")->Set(device.bytes_transferred());
  if (horizon > 0) {
    metrics->gauge(prefix + "utilization")
        ->Set(std::min(device.busy_seconds(), horizon) / horizon);
  }
}

void ExportSimulatorStats(MetricsRegistry* metrics,
                          const sim::Simulator& sim) {
  if (metrics == nullptr) return;
  metrics->gauge("sim.events_processed")
      ->Set(static_cast<double>(sim.events_processed()));
  metrics->gauge("sim.max_queue_depth")
      ->Set(static_cast<double>(sim.max_queue_depth()));
  metrics->gauge("sim.wall_seconds")->Set(sim.last_run_wall_seconds());
  metrics->gauge("sim.events_per_sec_wall")
      ->Set(sim.last_run_events_per_sec());
}

}  // namespace memstream::obs
