#include "obs/exporters.h"

#include <algorithm>

#include "common/logging.h"
#include "common/profiler.h"

namespace memstream::obs {

void ExportDeviceStats(MetricsRegistry* metrics,
                       const device::BlockDevice& device, Seconds horizon) {
  if (metrics == nullptr) return;
  const std::string prefix = "device." + device.name() + ".";
  metrics->gauge(prefix + "busy_seconds")->Set(device.busy_seconds());
  metrics->gauge(prefix + "ios")
      ->Set(static_cast<double>(device.ios_serviced()));
  metrics->gauge(prefix + "bytes")->Set(device.bytes_transferred());
  if (horizon > 0) {
    metrics->gauge(prefix + "utilization")
        ->Set(std::min(device.busy_seconds(), horizon) / horizon);
  }
}

void ExportSimulatorStats(MetricsRegistry* metrics,
                          const sim::Simulator& sim) {
  if (metrics == nullptr) return;
  metrics->gauge("sim.events_processed")
      ->Set(static_cast<double>(sim.events_processed()));
  metrics->gauge("sim.max_queue_depth")
      ->Set(static_cast<double>(sim.max_queue_depth()));
  metrics->gauge("sim.wall_seconds")->Set(sim.last_run_wall_seconds());
  metrics->gauge("sim.events_per_sec_wall")
      ->Set(sim.last_run_events_per_sec());
}

std::int64_t WarnDroppedTelemetry(const sim::TraceLog* trace,
                                  const char* context) {
  const std::int64_t trace_drops =
      trace != nullptr ? trace->dropped_records() : 0;
  const std::int64_t prof_drops = prof::Profiler::Global().dropped_samples();
  const std::int64_t total = trace_drops + prof_drops;
  if (total > 0) {
    MEMSTREAM_LOG(kWarning)
        << context << ": dropped telemetry: trace_records=" << trace_drops
        << " profiler_samples=" << prof_drops
        << "; raise the TraceLog capacity (and, for profiler drops, reduce "
           "the number of distinct PROF_SCOPE names per thread) to keep the "
           "full window";
  }
  return total;
}

}  // namespace memstream::obs
