#include "obs/profiler_export.h"

#include "obs/json_writer.h"

namespace memstream::obs {

namespace {

void WriteNode(JsonWriter* w, const prof::ProfileNode& node) {
  w->BeginObject();
  w->Key("name");
  w->String(node.name);
  w->Key("count");
  w->Int(node.count);
  w->Key("inclusive_ns");
  w->Int(node.inclusive_ns);
  w->Key("exclusive_ns");
  w->Int(node.exclusive_ns);
  w->Key("alloc_delta");
  w->Int(node.alloc_delta);
  w->Key("children");
  w->BeginArray();
  for (const auto& c : node.children) WriteNode(w, c);
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string ProfileJson(const prof::ProfileSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("threads");
  w.Int(snapshot.threads);
  w.Key("dropped_samples");
  w.Int(snapshot.dropped_samples);
  w.Key("total_inclusive_ns");
  w.Int(snapshot.total_inclusive_ns());
  w.Key("roots");
  w.BeginArray();
  for (const auto& r : snapshot.roots) WriteNode(&w, r);
  w.EndArray();
  w.EndObject();
  return w.str();
}

void ExportProfilerStats(MetricsRegistry* metrics,
                         const prof::ProfileSnapshot& snapshot) {
  if (metrics == nullptr) return;
  std::int64_t regions = 0;
  // Count every node in the merged tree iteratively (depth via stack).
  std::vector<const prof::ProfileNode*> stack;
  for (const auto& r : snapshot.roots) stack.push_back(&r);
  while (!stack.empty()) {
    const prof::ProfileNode* n = stack.back();
    stack.pop_back();
    ++regions;
    for (const auto& c : n->children) stack.push_back(&c);
  }
  metrics->gauge("prof.regions")->Set(static_cast<double>(regions));
  metrics->gauge("prof.dropped_samples")
      ->Set(static_cast<double>(snapshot.dropped_samples));
  metrics->gauge("prof.total_inclusive_ms")
      ->Set(static_cast<double>(snapshot.total_inclusive_ns()) / 1e6);
}

}  // namespace memstream::obs
