// Exporters for prof::ProfileSnapshot beyond the collapsed-stack text
// that lives with the core (common/profiler.h): a JSON document for the
// /profilez endpoint and a Chrome trace-event "profiler" track that
// renders the merged tree as a static flamegraph next to the simulation
// timeline (see ChromeTraceExporter).

#ifndef MEMSTREAM_OBS_PROFILER_EXPORT_H_
#define MEMSTREAM_OBS_PROFILER_EXPORT_H_

#include <string>

#include "common/profiler.h"
#include "obs/metrics.h"

namespace memstream::obs {

/// Renders `snapshot` as a JSON document:
///   {"threads": N, "dropped_samples": D, "total_inclusive_ns": T,
///    "roots": [{"name": ..., "count": ..., "inclusive_ns": ...,
///               "exclusive_ns": ..., "alloc_delta": ...,
///               "children": [...]}, ...]}
std::string ProfileJson(const prof::ProfileSnapshot& snapshot);

/// Exports "prof.regions", "prof.dropped_samples", and
/// "prof.total_inclusive_ms" gauges from `snapshot`. No-op when
/// `metrics` is null.
void ExportProfilerStats(MetricsRegistry* metrics,
                         const prof::ProfileSnapshot& snapshot);

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_PROFILER_EXPORT_H_
