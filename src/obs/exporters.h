// Bridges from the always-on lightweight counters kept by the device
// layer and the simulator into a MetricsRegistry. The servers call these
// at the end of a run; with a null registry they are no-ops, so the
// simulation hot loop never pays for telemetry that nobody asked for.

#ifndef MEMSTREAM_OBS_EXPORTERS_H_
#define MEMSTREAM_OBS_EXPORTERS_H_

#include <cstdint>

#include "device/device.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::obs {

/// Exports "device.<name>.busy_seconds|ios|bytes|utilization" gauges.
/// Utilization is busy/horizon clamped to [0, 1]; horizon <= 0 skips it.
void ExportDeviceStats(MetricsRegistry* metrics,
                       const device::BlockDevice& device, Seconds horizon);

/// Exports "sim.events_processed|max_queue_depth|wall_seconds|
/// events_per_sec_wall" gauges from the engine's built-in run telemetry.
void ExportSimulatorStats(MetricsRegistry* metrics,
                          const sim::Simulator& sim);

/// End-of-run check that no telemetry fell on the floor. Emits ONE
/// structured MEMSTREAM_LOG(kWarning) line covering both trace
/// ring-buffer evictions (when `trace` is non-null) and profiler sample
/// drops (node-table overflow in prof::Profiler::Global()); silent when
/// nothing was dropped. Returns trace drops + profiler drops.
std::int64_t WarnDroppedTelemetry(const sim::TraceLog* trace,
                                  const char* context);

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_EXPORTERS_H_
