#include "obs/metrics.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/csv_writer.h"
#include "common/profiler.h"

namespace memstream::obs {

namespace {

constexpr char kCounterKind[] = "counter";
constexpr char kGaugeKind[] = "gauge";
constexpr char kHistogramKind[] = "histogram";
constexpr char kTimeWeightedKind[] = "time_weighted";

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  Entry& e = metrics_[name];
  if (e.kind.empty()) {
    e.kind = kCounterKind;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  Entry& e = metrics_[name];
  if (e.kind.empty()) {
    e.kind = kGaugeKind;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name,
                                            const HistogramOptions& options) {
  Entry& e = metrics_[name];
  if (e.kind.empty()) {
    e.kind = kHistogramKind;
    e.histogram = std::make_unique<HistogramMetric>(options.lo, options.hi,
                                                    options.buckets);
  }
  return e.histogram.get();
}

TimeWeightedGauge* MetricsRegistry::time_weighted(const std::string& name) {
  Entry& e = metrics_[name];
  if (e.kind.empty()) {
    e.kind = kTimeWeightedKind;
    e.time_weighted = std::make_unique<TimeWeightedGauge>();
  }
  return e.time_weighted.get();
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  help_[name] = help;
}

std::string MetricsRegistry::GetHelp(const std::string& name) const {
  auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

void MetricsRegistry::SetLabel(const std::string& name, const std::string& key,
                               const std::string& value) {
  labels_[name][key] = value;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.gauge.get();
}

const HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.histogram.get();
}

const TimeWeightedGauge* MetricsRegistry::FindTimeWeighted(
    const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.time_weighted.get();
}

std::size_t MetricsRegistry::Merge(const MetricsRegistry& other) {
  std::size_t skipped = 0;
  for (const auto& [name, theirs] : other.metrics_) {
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
      // Clone the metric wholesale; merging into nothing is a copy.
      Entry fresh;
      fresh.kind = theirs.kind;
      if (theirs.counter != nullptr) {
        fresh.counter = std::make_unique<Counter>(*theirs.counter);
      } else if (theirs.gauge != nullptr) {
        fresh.gauge = std::make_unique<Gauge>(*theirs.gauge);
      } else if (theirs.histogram != nullptr) {
        fresh.histogram = std::make_unique<HistogramMetric>(*theirs.histogram);
      } else if (theirs.time_weighted != nullptr) {
        fresh.time_weighted =
            std::make_unique<TimeWeightedGauge>(*theirs.time_weighted);
      }
      metrics_.emplace(name, std::move(fresh));
      continue;
    }
    Entry& mine = it->second;
    if (mine.kind != theirs.kind) {
      ++skipped;
      continue;
    }
    if (mine.counter != nullptr && theirs.counter != nullptr) {
      mine.counter->Increment(theirs.counter->value());
    } else if (mine.gauge != nullptr && theirs.gauge != nullptr) {
      mine.gauge->Set(theirs.gauge->value());
    } else if (mine.histogram != nullptr && theirs.histogram != nullptr) {
      if (!mine.histogram->Merge(*theirs.histogram)) ++skipped;
    } else if (mine.time_weighted != nullptr &&
               theirs.time_weighted != nullptr) {
      mine.time_weighted->Merge(*theirs.time_weighted);
    }
  }
  return skipped;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = entry.kind;
    if (entry.counter != nullptr) {
      s.value = entry.counter->value();
      s.count = 1;
    } else if (entry.gauge != nullptr) {
      s.value = entry.gauge->value();
      s.count = 1;
    } else if (entry.histogram != nullptr) {
      const auto& h = entry.histogram->histogram();
      const auto& st = h.stats();
      s.count = st.count();
      s.min = st.min();
      s.max = st.max();
      s.mean = st.mean();
      s.value = st.mean();
      s.p50 = h.Quantile(0.50);
      s.p95 = h.Quantile(0.95);
      s.p99 = h.Quantile(0.99);
    } else if (entry.time_weighted != nullptr) {
      const auto& st = entry.time_weighted->stats();
      s.value = st.TimeAverage();
      s.mean = st.TimeAverage();
      s.max = st.max_value();
      s.count = 1;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  PROF_SCOPE("obs.metrics.export");
  std::ostringstream out;
  for (const auto& [name, entry] : metrics_) {
    const std::string prom = PrometheusName(name);

    // Constant labels, rendered once per metric. Keys go through
    // PrometheusName (the grammar allows no escaping in label names);
    // values are escaped per the exposition format.
    std::string label_body;  // `k1="v1",k2="v2"` without braces
    if (auto it = labels_.find(name); it != labels_.end()) {
      for (const auto& [k, v] : it->second) {
        if (!label_body.empty()) label_body += ",";
        label_body +=
            PrometheusName(k) + "=\"" + PrometheusEscapeLabelValue(v) + "\"";
      }
    }
    const std::string labels =
        label_body.empty() ? std::string() : "{" + label_body + "}";

    if (auto it = help_.find(name); it != help_.end() && !it->second.empty()) {
      out << "# HELP " << prom << " " << PrometheusEscapeHelp(it->second)
          << "\n";
    }
    if (entry.counter != nullptr) {
      out << "# TYPE " << prom << " counter\n";
      out << prom << labels << " " << FormatDouble(entry.counter->value())
          << "\n";
    } else if (entry.gauge != nullptr) {
      out << "# TYPE " << prom << " gauge\n";
      out << prom << labels << " " << FormatDouble(entry.gauge->value())
          << "\n";
    } else if (entry.histogram != nullptr) {
      const auto& h = entry.histogram->histogram();
      const auto& st = h.stats();
      out << "# TYPE " << prom << " summary\n";
      for (double q : {0.5, 0.95, 0.99}) {
        out << prom << "{"
            << (label_body.empty() ? std::string() : label_body + ",")
            << "quantile=\"" << FormatDouble(q) << "\"} "
            << FormatDouble(h.Quantile(q)) << "\n";
      }
      out << prom << "_sum" << labels << " " << FormatDouble(st.sum()) << "\n";
      out << prom << "_count" << labels << " " << st.count() << "\n";
    } else if (entry.time_weighted != nullptr) {
      const auto& st = entry.time_weighted->stats();
      out << "# TYPE " << prom << "_avg gauge\n";
      out << prom << "_avg" << labels << " " << FormatDouble(st.TimeAverage())
          << "\n";
      out << "# TYPE " << prom << "_max gauge\n";
      out << prom << "_max" << labels << " " << FormatDouble(st.max_value())
          << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToCsvText() const {
  PROF_SCOPE("obs.metrics.export");
  std::ostringstream out;
  out << "name,kind,value,count,min,max,mean,p50,p95,p99\n";
  for (const auto& s : Snapshot()) {
    out << CsvEscape(s.name) << "," << s.kind << "," << FormatDouble(s.value)
        << "," << s.count << "," << FormatDouble(s.min) << ","
        << FormatDouble(s.max) << "," << FormatDouble(s.mean) << ","
        << FormatDouble(s.p50) << "," << FormatDouble(s.p95) << ","
        << FormatDouble(s.p99) << "\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << ToCsvText();
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::obs
