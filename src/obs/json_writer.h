// Minimal streaming JSON writer (no external dependencies): enough for
// the Chrome trace exporter and the RunReport. Handles string escaping,
// comma placement, and non-finite doubles (emitted as null, which every
// JSON parser accepts where the trace viewers tolerate missing values).

#ifndef MEMSTREAM_OBS_JSON_WRITER_H_
#define MEMSTREAM_OBS_JSON_WRITER_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace memstream::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// Builder for one JSON document. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("disk");
///   w.Key("events"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string doc = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& key);
  void String(const std::string& value);
  void Number(double value);
  void Int(std::int64_t value);
  void Bool(bool value);
  void Null();

  std::string str() const { return out_.str(); }

 private:
  /// Emits the separating comma if the current scope already has a value.
  void BeforeValue();

  std::ostringstream out_;
  // One flag per open scope: has a value already been written there?
  std::vector<bool> scope_has_value_;
  bool pending_key_ = false;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_JSON_WRITER_H_
