// Online QoS auditor: re-checks the paper's real-time invariants while a
// simulated server runs and, on violation, emits a structured
// counter-example instead of a bare counter.
//
// Invariants audited (see docs/THEORY.md for the equations):
//  - non-negative cycle slack on the disk and MEMS sides (Theorems 1/2:
//    every cycle's batch must finish within its cycle length);
//  - exactly one IO of the expected B̄·T bytes per admitted stream per
//    cycle of its domain (the time-cycle schedule itself);
//  - per-stream DRAM occupancy within the Theorem 1/2/3/4 sizing, and
//    the summed occupancy within the total DRAM budget;
//  - the MEMS storage bound 2·N·T_disk·B̄ ≤ k·Size_mems (Eq. 7) and the
//    rational cycle nesting T_mems/T_disk = M/N (Eq. 8), checked once at
//    Seal() time.
//
// Margins (slack, DRAM headroom) are recorded as histograms in an
// optional MetricsRegistry; each violation captures the stream id, the
// cycle index, the expected and observed values, and — when a TraceLog
// is attached — an anchor record appended to the log plus its global
// index, so the counter-example points into the event window around it.
//
// Contracts (PR 1 / PR 2): servers hold a QosAuditor* that defaults to
// null and call through the null-tolerant free helpers below, so an
// unaudited run costs one pointer test per hook site; the audited hot
// path allocates nothing while no violation fires (per-stream state is
// preallocated at Seal(), the violation list is reserved up front).

#ifndef MEMSTREAM_OBS_QOS_AUDITOR_H_
#define MEMSTREAM_OBS_QOS_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sim/trace.h"

namespace memstream::obs {

/// Which audited invariant a violation breaches.
enum class QosInvariant {
  kDiskCycleOverrun,   ///< disk-side cycle busy time exceeded T_disk
  kMemsCycleOverrun,   ///< MEMS-side cycle busy time exceeded T_mems
  kIoCount,            ///< a stream did not get exactly one IO in a cycle
  kIoBytes,            ///< an IO moved a different size than B̄·T
  kDramBound,          ///< per-stream DRAM occupancy above its sizing
  kDramTotalBound,     ///< summed DRAM occupancy above the total budget
  kMemsStorageBound,   ///< Eq. 7: 2·N·T_disk·B̄ > k·Size_mems
  kCycleNesting,       ///< Eq. 8: T_mems/T_disk is not M/N, integer M
};

const char* QosInvariantName(QosInvariant invariant);

/// One structured counter-example.
struct QosViolation {
  QosInvariant invariant = QosInvariant::kDiskCycleOverrun;
  std::int64_t stream_id = -1;   ///< offending stream; -1 for device-level
  std::int64_t cycle_index = -1; ///< cycle of the relevant domain; -1 = n/a
  Seconds time = 0;              ///< simulated time of the observation
  double expected = 0;           ///< the bound that should have held
  double observed = 0;           ///< what was actually seen
  std::string detail;            ///< free-form context
  /// Global index (appended + previously dropped records) of the anchor
  /// note this violation added to the TraceLog; -1 when no log attached.
  std::int64_t trace_index = -1;

  /// "dram_bound: stream 3 cycle 17: observed 2.1e6 > expected 1.8e6 (...)"
  std::string ToString() const;
};

/// Which cycle domain a stream's one-IO-per-cycle invariant lives in.
enum class QosDomain {
  kDisk,  ///< one IO per disk cycle (direct server, pipeline disk side)
  kMems,  ///< one IO per MEMS cycle (cache-server cached streams)
  kNone,  ///< no per-cycle IO audit (EDF, pipeline MEMS side)
};

/// Expected run shape. Zero/empty members disable the related checks.
struct QosAuditorConfig {
  Seconds disk_cycle = 0;      ///< T (or T_disk); 0 = no disk-cycle audit
  Seconds mems_cycle = 0;      ///< T_mems; 0 = no MEMS-cycle audit
  std::int64_t mems_devices = 0;       ///< k (Eq. 7 / Eq. 8 checks)
  Bytes mems_device_capacity = 0;      ///< Size_mems per device (Eq. 7)
  /// True for the §3.1 pipeline, whose MEMS cycles nest inside the disk
  /// cycle: enables the Eq. 7 storage-bound and Eq. 8 nesting checks.
  bool nested_cycles = false;
  Bytes dram_total_bound = 0;  ///< total DRAM budget; 0 = unchecked
  /// Relative tolerance on every comparison (the simulator's event
  /// arithmetic is exact to ~1e-12; boundary deposits may sit exactly on
  /// the bound).
  double tolerance = 1e-6;
  std::size_t max_violations = 64;  ///< retained counter-examples
  MetricsRegistry* metrics = nullptr;  ///< margin histograms; not owned
  sim::TraceLog* trace = nullptr;      ///< counter-example anchors; not owned
};

/// The auditor. Register streams with AddStream() in the server's spec
/// order (hook sites address streams by that dense index), then Seal()
/// before the run starts; the per-cycle hooks are only valid after.
class QosAuditor {
 public:
  explicit QosAuditor(const QosAuditorConfig& config);
  QosAuditor(const QosAuditor&) = delete;
  QosAuditor& operator=(const QosAuditor&) = delete;

  /// Registers an admitted stream. `dram_bound` is the per-stream DRAM
  /// sizing (0 = unchecked); `domain` selects the one-IO-per-cycle
  /// check; `device` is the stream's MEMS device for kMems domains with
  /// per-device cycles (ignored otherwise). Returns the dense index.
  std::size_t AddStream(std::int64_t id, BytesPerSecond bit_rate,
                        Bytes dram_bound, QosDomain domain = QosDomain::kDisk,
                        std::int64_t device = 0);

  /// Freezes the stream set, allocates the per-stream audit state, and
  /// runs the setup-time checks (Eq. 7 storage bound, Eq. 8 nesting).
  /// Idempotent; hooks before Seal() are ignored.
  void Seal();

  std::size_t num_streams() const { return streams_.size(); }
  bool sealed() const { return sealed_; }

  // --- per-cycle hooks (hot path; allocation-free while clean) ---

  /// A disk-side cycle that began at `t0` finished its batch in `busy`.
  /// Checks slack >= 0 and one IO per kDisk-domain stream, then opens
  /// the next disk cycle.
  void EndDiskCycle(Seconds t0, Seconds busy);

  /// A MEMS-side cycle on `device` finished. Same checks for the kMems
  /// streams assigned to that device.
  void EndMemsCycle(std::int64_t device, Seconds t0, Seconds busy);

  /// Stream `index` received one IO of `bytes` in the current cycle of
  /// its domain.
  void RecordIo(std::size_t index, Bytes bytes);

  /// Stream `index`'s DRAM buffer level observed at `now`.
  void RecordDramLevel(std::size_t index, Seconds now, Bytes level);

  // --- online re-planning hooks (src/fault/ degradation) ---
  //
  // A degradation re-plan changes the run shape mid-flight: cycles get a
  // new length, shed streams stop receiving IOs, fallback streams switch
  // domains. The auditor keeps auditing the *new* plan instead of
  // reporting the old one as violated.

  /// Replaces the disk-side cycle length the invariants check against.
  /// Call at a cycle boundary (the in-flight cycle is judged by the new
  /// length).
  void SetDiskCycle(Seconds cycle) { config_.disk_cycle = cycle; }

  /// Replaces the MEMS-side cycle length.
  void SetMemsCycle(Seconds cycle) { config_.mems_cycle = cycle; }

  /// Marks stream `index` shed (inactive) or re-admitted. Inactive
  /// streams are exempt from the one-IO-per-cycle check; a re-admitted
  /// stream gets one grace cycle to rejoin the schedule.
  void SetStreamActive(std::size_t index, bool active);

  /// Moves stream `index` to a new cycle domain (e.g. kMems -> kDisk on
  /// cache fallback) with one grace cycle before the IO-count check
  /// re-arms.
  void SetStreamDomain(std::size_t index, QosDomain domain,
                       std::int64_t device = 0);

  /// Replaces stream `index`'s per-stream DRAM sizing (a re-plan resizes
  /// buffers; 0 disables the check for that stream).
  void SetStreamDramBound(std::size_t index, Bytes dram_bound);

  /// Replaces the total DRAM budget (a re-plan that resizes per-stream
  /// buffers moves the summed budget with them; 0 disables the check).
  void SetDramTotalBound(Bytes bound) {
    config_.dram_total_bound = bound;
    over_total_ = false;
  }

  // --- results ---

  /// All violations seen, including ones past the retention cap.
  std::int64_t total_violations() const { return total_violations_; }
  /// The first max_violations counter-examples, in detection order.
  const std::vector<QosViolation>& violations() const { return violations_; }
  std::int64_t disk_cycles_audited() const { return disk_cycles_; }
  std::int64_t mems_cycles_audited() const { return mems_cycles_; }

  /// One-line human summary ("qos: 0 violations over 60 disk cycles").
  std::string Summary() const;

 private:
  struct StreamState {
    std::int64_t id = 0;
    BytesPerSecond bit_rate = 0;
    Bytes dram_bound = 0;
    QosDomain domain = QosDomain::kNone;
    std::int64_t device = 0;
    std::int64_t ios_in_cycle = 0;
    Bytes last_level = 0;
    bool over_bound = false;  ///< hysteresis: inside a DRAM excursion
    bool active = true;       ///< false while shed by degradation
    bool grace = false;       ///< skip one CloseCycle after a re-plan
  };

  void Report(QosInvariant invariant, std::int64_t stream_id,
              std::int64_t cycle_index, Seconds time, double expected,
              double observed, const std::string& detail);
  /// Closes the IO-count accounting for every stream of `domain` (and
  /// `device`, for per-device MEMS cycles) at cycle `cycle_index`.
  void CloseCycle(QosDomain domain, std::int64_t device,
                  std::int64_t cycle_index, Seconds time);

  QosAuditorConfig config_;
  std::vector<StreamState> streams_;
  bool sealed_ = false;
  std::int64_t disk_cycles_ = 0;
  std::int64_t mems_cycles_ = 0;  ///< summed across devices
  std::vector<std::int64_t> mems_cycle_index_;  ///< per device
  Bytes dram_level_sum_ = 0;  ///< running sum of per-stream last levels
  bool over_total_ = false;   ///< hysteresis for the total-DRAM bound
  std::int64_t total_violations_ = 0;
  std::vector<QosViolation> violations_;
  // Telemetry handles (null when config_.metrics is null).
  HistogramMetric* disk_slack_hist_ = nullptr;
  HistogramMetric* mems_slack_hist_ = nullptr;
  HistogramMetric* dram_headroom_hist_ = nullptr;
  Counter* violations_metric_ = nullptr;
  Counter* cycles_metric_ = nullptr;
};

// Null-tolerant hook helpers: the instrumentation idiom is a QosAuditor*
// that defaults to null, so an unaudited hot path costs one pointer test.
inline void EndDiskCycle(QosAuditor* a, Seconds t0, Seconds busy) {
  if (a != nullptr) a->EndDiskCycle(t0, busy);
}
inline void EndMemsCycle(QosAuditor* a, std::int64_t device, Seconds t0,
                         Seconds busy) {
  if (a != nullptr) a->EndMemsCycle(device, t0, busy);
}
inline void RecordIo(QosAuditor* a, std::size_t index, Bytes bytes) {
  if (a != nullptr) a->RecordIo(index, bytes);
}
inline void RecordDramLevel(QosAuditor* a, std::size_t index, Seconds now,
                            Bytes level) {
  if (a != nullptr) a->RecordDramLevel(index, now, level);
}

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_QOS_AUDITOR_H_
