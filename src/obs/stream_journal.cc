#include "obs/stream_journal.h"

#include <algorithm>

namespace memstream::obs {

const char* StreamPhaseName(StreamPhase phase) {
  switch (phase) {
    case StreamPhase::kAdmitted:
      return "admitted";
    case StreamPhase::kPlaying:
      return "playing";
    case StreamPhase::kDegraded:
      return "degraded";
    case StreamPhase::kShed:
      return "shed";
    case StreamPhase::kDeparted:
      return "departed";
  }
  return "unknown";
}

const char* StreamEventKindName(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kAdmitted:
      return "admitted";
    case StreamEventKind::kPlaying:
      return "playing";
    case StreamEventKind::kDegraded:
      return "degraded";
    case StreamEventKind::kShed:
      return "shed";
    case StreamEventKind::kReadmitted:
      return "readmitted";
    case StreamEventKind::kDeparted:
      return "departed";
  }
  return "unknown";
}

namespace {

// Occupancy histogram range. A stream admitted under a known envelope
// uses [0, 1.25*envelope) so the top quarter of buckets resolves
// near-bound behaviour and a breach still lands inside the range; with
// no envelope known, fall back to a few seconds of the stream's rate.
double OccupancyHi(double bit_rate, Bytes envelope) {
  if (envelope > 0) return envelope * 1.25;
  if (bit_rate > 0) return bit_rate * 4.0;
  return 1.0;
}

}  // namespace

StreamJournalEntry::StreamJournalEntry(std::int64_t id, double rate,
                                       Bytes envelope,
                                       const StreamJournalOptions& options)
    : stream_id(id),
      bit_rate(rate),
      envelope_bytes(envelope),
      occupancy(0.0, OccupancyHi(rate, envelope),
                std::max<std::size_t>(options.occupancy_buckets, 1)) {
  events.reserve(std::max<std::size_t>(options.events_per_stream, 2));
}

StreamJournal::StreamJournal(StreamJournalOptions options)
    : options_(options) {
  options_.events_per_stream =
      std::max<std::size_t>(options_.events_per_stream, 2);
}

std::size_t StreamJournal::EnsureStream(std::int64_t stream_id,
                                        double bit_rate, Bytes envelope_bytes,
                                        double t) {
  auto it = slot_of_.find(stream_id);
  if (it != slot_of_.end()) return it->second;
  const std::size_t slot = entries_.size();
  entries_.emplace_back(stream_id, bit_rate, envelope_bytes, options_);
  slot_of_.emplace(stream_id, slot);
  Append(entries_.back(), t, StreamEventKind::kAdmitted, 0);
  return slot;
}

std::ptrdiff_t StreamJournal::SlotOf(std::int64_t stream_id) const {
  auto it = slot_of_.find(stream_id);
  if (it == slot_of_.end()) return -1;
  return static_cast<std::ptrdiff_t>(it->second);
}

void StreamJournal::Append(StreamJournalEntry& e, double t,
                           StreamEventKind kind, double detail) {
  if (e.events.size() < e.events.capacity()) {
    e.events.push_back(StreamEvent{t, kind, detail});
  } else {
    ++e.events_dropped;
  }
}

void StreamJournal::RecordIo(std::size_t slot, double t, Bytes bytes,
                             Bytes level) {
  StreamJournalEntry& e = entries_[slot];
  ++e.ios;
  e.bytes += bytes;
  e.peak_level_bytes = std::max(e.peak_level_bytes, level);
  e.occupancy.Add(level);
  if (e.phase == StreamPhase::kAdmitted) {
    e.phase = StreamPhase::kPlaying;
    Append(e, t, StreamEventKind::kPlaying, 0);
  }
}

void StreamJournal::RecordIoSummary(std::size_t slot, double t,
                                    std::int64_t ios, Bytes bytes,
                                    Bytes peak_level) {
  StreamJournalEntry& e = entries_[slot];
  e.ios += ios;
  e.bytes += bytes;
  e.peak_level_bytes = std::max(e.peak_level_bytes, peak_level);
  e.occupancy.Add(peak_level);
  if (ios > 0 && e.phase == StreamPhase::kAdmitted) {
    e.phase = StreamPhase::kPlaying;
    Append(e, t, StreamEventKind::kPlaying, 0);
  }
}

void StreamJournal::RecordUnderflows(std::size_t slot, double t,
                                     std::int64_t count) {
  (void)t;
  entries_[slot].underflows += count;
}

void StreamJournal::MarkDegraded(std::size_t slot, double t, double detail) {
  StreamJournalEntry& e = entries_[slot];
  if (e.phase == StreamPhase::kDeparted) return;
  ++e.degrades;
  e.phase = StreamPhase::kDegraded;
  Append(e, t, StreamEventKind::kDegraded, detail);
}

void StreamJournal::MarkShed(std::size_t slot, double t) {
  StreamJournalEntry& e = entries_[slot];
  if (e.phase == StreamPhase::kDeparted) return;
  ++e.sheds;
  e.phase = StreamPhase::kShed;
  Append(e, t, StreamEventKind::kShed, 0);
}

void StreamJournal::MarkReadmitted(std::size_t slot, double t) {
  StreamJournalEntry& e = entries_[slot];
  if (e.phase == StreamPhase::kDeparted) return;
  ++e.readmits;
  e.phase = StreamPhase::kPlaying;
  Append(e, t, StreamEventKind::kReadmitted, 0);
}

void StreamJournal::MarkDeparted(std::size_t slot, double t) {
  StreamJournalEntry& e = entries_[slot];
  if (e.phase == StreamPhase::kDeparted) return;
  e.phase = StreamPhase::kDeparted;
  Append(e, t, StreamEventKind::kDeparted, 0);
}

void StreamJournal::Finalize(double t) {
  for (std::size_t i = 0; i < entries_.size(); ++i) MarkDeparted(i, t);
}

StreamJournalSummary StreamJournal::Summarize() const {
  StreamJournalSummary s;
  s.count = static_cast<std::int64_t>(entries_.size());
  for (const auto& e : entries_) {
    if (e.phase == StreamPhase::kDeparted) ++s.departed;
    if (e.phase == StreamPhase::kShed) ++s.still_shed;
    if (e.sheds > 0) ++s.shed;
    if (e.readmits > 0) ++s.readmitted;
    if (e.degrades > 0) ++s.degraded;
    if (e.underflows > 0) ++s.underflow_streams;
    s.total_ios += e.ios;
    s.total_underflows += e.underflows;
    s.events_dropped += e.events_dropped;
    s.min_headroom = std::min(s.min_headroom, e.headroom());
  }
  return s;
}

void StreamJournal::PublishSummary(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const StreamJournalSummary s = Summarize();
  metrics->gauge("stream.count")->Set(static_cast<double>(s.count));
  metrics->gauge("stream.departed")->Set(static_cast<double>(s.departed));
  metrics->gauge("stream.shed")->Set(static_cast<double>(s.shed));
  metrics->gauge("stream.still_shed")->Set(static_cast<double>(s.still_shed));
  metrics->gauge("stream.readmitted")
      ->Set(static_cast<double>(s.readmitted));
  metrics->gauge("stream.degraded")->Set(static_cast<double>(s.degraded));
  metrics->gauge("stream.underflow_streams")
      ->Set(static_cast<double>(s.underflow_streams));
  metrics->gauge("stream.total_ios")->Set(static_cast<double>(s.total_ios));
  metrics->gauge("stream.total_underflows")
      ->Set(static_cast<double>(s.total_underflows));
  metrics->gauge("stream.events_dropped")
      ->Set(static_cast<double>(s.events_dropped));
  metrics->gauge("stream.min_headroom")->Set(s.min_headroom);
  metrics->SetHelp("stream.min_headroom",
                   "Tightest per-stream DRAM headroom vs the Theorem-1/2 "
                   "envelope (1 - peak/envelope; negative = breach)");
  metrics->SetHelp("stream.shed",
                   "Streams shed by the degradation manager at least once");
}

}  // namespace memstream::obs
