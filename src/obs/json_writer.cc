#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace memstream::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ << ',';
    scope_has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  scope_has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ << '}';
  scope_has_value_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  scope_has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ << ']';
  scope_has_value_.pop_back();
}

void JsonWriter::Key(const std::string& key) {
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ << ',';
    scope_has_value_.back() = true;
  }
  out_ << '"' << JsonEscape(key) << "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ << buf;
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
}

}  // namespace memstream::obs
