// Minimal JSON parser: enough of RFC 8259 for the report-aggregation
// tooling to read back the artifacts this library writes (run.report.json,
// Chrome traces, BENCH_sweeps.json). Promoted from tests/json_test_util.h
// so production tools and tests share one implementation.
//
// Not a general-purpose parser: \uXXXX escapes are kept opaque (replaced
// by '?'), numbers are doubles (out-of-range magnitudes saturate to
// +/-inf the way strtod does), duplicate object keys keep the first.
//
// Hardened against hostile input: nesting deeper than kMaxDepth is
// rejected (bounds the recursion, so no stack overflow), \uXXXX escapes
// must carry exactly four hex digits, and truncated documents fail
// cleanly with ok() == false.

#ifndef MEMSTREAM_OBS_JSON_PARSER_H_
#define MEMSTREAM_OBS_JSON_PARSER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace memstream::obs {

/// One parsed JSON value; a tagged tree.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  /// object[key].number, or `fallback` when absent.
  double Num(const std::string& key, double fallback = -1) const {
    const JsonValue* v = Find(key);
    return v != nullptr ? v->number : fallback;
  }
  /// object[key].string, or "" when absent.
  std::string Str(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr ? v->string : "";
  }
};

/// Single-use recursive-descent parser over a borrowed string.
class JsonParser {
 public:
  /// Deepest accepted object/array nesting; deeper input is rejected
  /// (ok() == false) instead of recursing without bound.
  static constexpr std::size_t kMaxDepth = 200;

  /// `text` must outlive the parser.
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; ok() reports success and full consumption.
  JsonValue Parse();
  bool ok() const { return ok_; }
  /// Byte offset of the failure (== text size on success).
  std::size_t error_pos() const { return pos_; }

 private:
  void SkipSpace();
  bool Consume(char c);
  bool ConsumeLiteral(const std::string& lit);
  JsonValue ParseValue();
  JsonValue ParseObject();
  JsonValue ParseArray();
  JsonValue ParseString();
  JsonValue ParseNumber();

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  bool ok_ = true;
};

/// Parses `text`; sets `*ok` (when non-null) to whether it was valid JSON.
JsonValue ParseJson(const std::string& text, bool* ok = nullptr);

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_JSON_PARSER_H_
