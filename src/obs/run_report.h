// Structured run report: one JSON document per simulated run that places
// the analytical model's predictions and the simulator's observed
// telemetry side by side, plus an optional embedded metrics snapshot.
// server::BuildRunReport() fills one from a MediaServer run; tests and
// downstream tooling parse the JSON (schema in docs/OBSERVABILITY.md).

#ifndef MEMSTREAM_OBS_RUN_REPORT_H_
#define MEMSTREAM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace memstream::obs {

/// Schema version of the emitted JSON; bump on breaking layout changes.
inline constexpr std::int64_t kRunReportSchemaVersion = 1;

/// One run's worth of side-by-side analytic and simulated quantities.
/// `config` echoes the knobs as strings; `analytic` and `simulated` are
/// numeric so tooling can diff prediction against observation directly.
struct RunReport {
  std::string title;

  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> analytic;
  std::vector<std::pair<std::string, double>> simulated;

  /// Optional: embedded into the JSON as a "metrics" array when set.
  /// Not owned; must outlive ToJson()/WriteFile().
  const MetricsRegistry* metrics = nullptr;

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }
  void AddAnalytic(const std::string& key, double value) {
    analytic.emplace_back(key, value);
  }
  void AddSimulated(const std::string& key, double value) {
    simulated.emplace_back(key, value);
  }

  /// Serializes the report as a JSON object:
  /// {"schema_version":1,"title":...,"config":{...},
  ///  "analytic":{...},"simulated":{...},"metrics":[...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path` (conventionally <name>.report.json).
  Status WriteFile(const std::string& path) const;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_RUN_REPORT_H_
