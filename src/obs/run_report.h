// Structured run report: one JSON document per simulated run that places
// the analytical model's predictions and the simulator's observed
// telemetry side by side, plus an optional embedded metrics snapshot.
// server::BuildRunReport() fills one from a MediaServer run; tests and
// downstream tooling parse the JSON (schema in docs/OBSERVABILITY.md).

#ifndef MEMSTREAM_OBS_RUN_REPORT_H_
#define MEMSTREAM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/timeline.h"

namespace memstream::obs {

/// Schema version of the emitted JSON; bump on breaking layout changes.
/// v2 adds "qos", "timelines" and "trace_dropped_records" (all optional,
/// so v1 consumers keep working on v2 documents).
inline constexpr std::int64_t kRunReportSchemaVersion = 2;

/// One run's worth of side-by-side analytic and simulated quantities.
/// `config` echoes the knobs as strings; `analytic` and `simulated` are
/// numeric so tooling can diff prediction against observation directly.
struct RunReport {
  std::string title;

  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> analytic;
  std::vector<std::pair<std::string, double>> simulated;

  /// Optional: embedded into the JSON as a "metrics" array when set.
  /// Not owned; must outlive ToJson()/WriteFile().
  const MetricsRegistry* metrics = nullptr;

  /// Optional: embedded as a "qos" object (violation counter-examples and
  /// audited-cycle counts) when set. Not owned.
  const QosAuditor* qos = nullptr;

  /// Optional: embedded as a "timelines" array (downsampled series) when
  /// set. Not owned.
  const TimelineRecorder* timelines = nullptr;

  /// TraceLog records evicted by the bounded ring buffer; surfaced so
  /// truncation is no longer silent. -1 = no trace attached to the run.
  std::int64_t trace_dropped_records = -1;

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }
  void AddAnalytic(const std::string& key, double value) {
    analytic.emplace_back(key, value);
  }
  void AddSimulated(const std::string& key, double value) {
    simulated.emplace_back(key, value);
  }

  /// Serializes the report as a JSON object:
  /// {"schema_version":1,"title":...,"config":{...},
  ///  "analytic":{...},"simulated":{...},"metrics":[...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path` (conventionally <name>.report.json).
  Status WriteFile(const std::string& path) const;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_RUN_REPORT_H_
