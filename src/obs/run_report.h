// Structured run report: one JSON document per simulated run that places
// the analytical model's predictions and the simulator's observed
// telemetry side by side, plus an optional embedded metrics snapshot.
// server::BuildRunReport() fills one from a MediaServer run; tests and
// downstream tooling parse the JSON (schema in docs/OBSERVABILITY.md).

#ifndef MEMSTREAM_OBS_RUN_REPORT_H_
#define MEMSTREAM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "obs/timeline.h"

namespace memstream::obs {

/// Schema version of the emitted JSON; bump on breaking layout changes.
/// v2 adds "qos", "timelines" and "trace_dropped_records" (all optional,
/// so v1 consumers keep working on v2 documents). v3 adds the optional
/// "faults" block (injected-fault timeline, shed/re-admit records and
/// degradation counters). v4 adds the optional "streams" block (per-
/// stream lifecycle journal) and "slo" block (SLO attainment and error
/// budgets).
inline constexpr std::int64_t kRunReportSchemaVersion = 4;

/// One entry of the injected-fault timeline: what happened, when, to
/// which device, and what the degradation manager did about it.
struct FaultTimelineEntry {
  Seconds time = 0;
  std::string kind;            ///< FaultKindName of the injected fault
  std::int64_t device = -1;    ///< affected MEMS device; -1 = not device-scoped
  double magnitude = 0;        ///< tip-loss fraction, latency factor, ...
  std::string action;          ///< re-plan outcome ("reshape", "shed 2", ...)
};

/// One stream the degradation manager shed, and when (if ever) it was
/// re-admitted. `readmit_time` < 0 means still shed at run end.
struct ShedRecord {
  std::int64_t stream_id = -1;
  Seconds shed_time = 0;
  std::int64_t shed_cycle = -1;  ///< cycle index the shed took effect in
  Seconds readmit_time = -1;
};

/// Fault-injection summary embedded in the run report ("faults" block).
/// Plain data: filled by the fault layer (which depends on obs, not the
/// other way around).
struct FaultsBlock {
  std::int64_t events = 0;    ///< faults that became active
  std::int64_t repairs = 0;   ///< faults that cleared
  std::int64_t replans = 0;   ///< degradation re-plans applied
  std::int64_t sheds = 0;     ///< stream shed actions
  std::int64_t readmits = 0;  ///< re-admissions after repair
  /// TraceLog records evicted while >= 1 fault was active (satellite for
  /// "did the burst outrun the ring buffer").
  std::int64_t dropped_during_burst = 0;
  Seconds total_shed_time = 0;  ///< summed shed duration across streams
  std::vector<FaultTimelineEntry> timeline;
  std::vector<ShedRecord> shed_streams;
};

/// Per-shard slice of a farm run ("farm.per_shard" array entries).
struct FarmShardEntry {
  std::int64_t shard = 0;
  std::int64_t streams = 0;          ///< admitted residents at run end
  std::int64_t ios = 0;
  std::int64_t underflow_events = 0;
  std::int64_t cycle_overruns = 0;
  std::int64_t qos_violations = 0;
  std::int64_t failed_over_in = 0;   ///< streams re-routed onto this shard
  std::int64_t shed = 0;             ///< sheds caused by this shard failing
  Bytes peak_dram_bytes = 0;
  double utilization = 0;
};

/// Farm-run summary embedded as the "farm" block (schema v4, additive —
/// v4 consumers that don't know the block keep working). Plain data:
/// filled by the farm layer (farm::BuildFarmBlock) or by the legacy
/// server::RunFarm aggregator.
struct FarmBlock {
  std::string policy;            ///< placement policy name
  std::int64_t shards = 0;
  std::int64_t titles = 0;
  std::int64_t total_copies = 0; ///< placement storage cost in titles
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t failovers = 0;    ///< shed -> re-admitted on a replica
  std::int64_t shed = 0;
  std::int64_t readmits = 0;
  double availability = 1.0;     ///< served / admitted stream-seconds
  Bytes peak_dram_per_shard = 0; ///< max over shards
  double mean_utilization = 0;
  std::vector<FarmShardEntry> per_shard;
};

/// One run's worth of side-by-side analytic and simulated quantities.
/// `config` echoes the knobs as strings; `analytic` and `simulated` are
/// numeric so tooling can diff prediction against observation directly.
struct RunReport {
  std::string title;

  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> analytic;
  std::vector<std::pair<std::string, double>> simulated;

  /// Optional: embedded into the JSON as a "metrics" array when set.
  /// Not owned; must outlive ToJson()/WriteFile().
  const MetricsRegistry* metrics = nullptr;

  /// Optional: embedded as a "qos" object (violation counter-examples and
  /// audited-cycle counts) when set. Not owned.
  const QosAuditor* qos = nullptr;

  /// Optional: embedded as a "timelines" array (downsampled series) when
  /// set. Not owned.
  const TimelineRecorder* timelines = nullptr;

  /// Optional: embedded as a "faults" object when set. Not owned.
  const FaultsBlock* faults = nullptr;

  /// Optional: embedded as a "farm" object (per-shard and aggregate
  /// scale-out outcome) when set. Not owned.
  const FarmBlock* farm = nullptr;

  /// Optional: embedded as a "streams" object (per-stream lifecycle
  /// journal: phases, outcome counts, occupancy percentiles, envelope
  /// headroom, first lifecycle events) when set. Not owned.
  const StreamJournal* streams = nullptr;

  /// Optional: embedded as a "slo" object (per-SLO attainment, error
  /// budget remaining, burn rate) when set. Not owned.
  const SloMonitor* slo = nullptr;

  /// TraceLog records evicted by the bounded ring buffer; surfaced so
  /// truncation is no longer silent. -1 = no trace attached to the run.
  std::int64_t trace_dropped_records = -1;

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }
  void AddAnalytic(const std::string& key, double value) {
    analytic.emplace_back(key, value);
  }
  void AddSimulated(const std::string& key, double value) {
    simulated.emplace_back(key, value);
  }

  /// Serializes the report as a JSON object:
  /// {"schema_version":1,"title":...,"config":{...},
  ///  "analytic":{...},"simulated":{...},"metrics":[...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path` (conventionally <name>.report.json).
  Status WriteFile(const std::string& path) const;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_RUN_REPORT_H_
