#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/profiler.h"
#include "obs/profiler_export.h"

namespace memstream::obs {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Path of "GET /metrics HTTP/1.1"; "" when the request line is not a GET.
std::string RequestPath(const std::string& request) {
  if (request.compare(0, 4, "GET ") != 0) return "";
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return "";
  return request.substr(start, end - start);
}

void SendResponse(int fd, const char* status_line,
                  const std::string& content_type,
                  const std::string& body) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.1 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing to recover
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsHttpOptions options)
    : options_(std::move(options)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::SetMetricsProvider(Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_provider_ = std::move(provider);
}

void MetricsHttpServer::SetProfileProvider(Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  profile_provider_ = std::move(provider);
}

void MetricsHttpServer::SetSloProvider(Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  slo_provider_ = std::move(provider);
}

void MetricsHttpServer::SetHealthProvider(HealthProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  health_provider_ = std::move(provider);
}

Status MetricsHttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st = ErrnoStatus("bind " + options_.bind_address + ":" +
                                  std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) != 0) {
    const Status st = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_fds_) != 0) {
    const Status st = ErrnoStatus("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll loop so the thread notices running_ == false.
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_fds_[0], &wake_fds_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void MetricsHttpServer::Loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!running_.load(std::memory_order_acquire)) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request headers (or a size cap — the
  // endpoints take no bodies, so 8 KB is generous).
  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const std::string path = RequestPath(request);
  if (path.empty()) {
    SendResponse(fd, "405 Method Not Allowed", "text/plain",
                 "only GET is supported\n");
    return;
  }
  if (path == "/metrics") {
    Provider provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = metrics_provider_;
    }
    if (!provider) {
      SendResponse(fd, "503 Service Unavailable", "text/plain",
                   "no metrics provider installed\n");
      return;
    }
    SendResponse(fd, "200 OK", "text/plain; version=0.0.4", provider());
    return;
  }
  if (path == "/profilez") {
    Provider provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = profile_provider_;
    }
    const std::string body =
        provider ? provider()
                 : ProfileJson(prof::Profiler::Global().Snapshot());
    SendResponse(fd, "200 OK", "application/json", body);
    return;
  }
  if (path == "/slostatus") {
    Provider provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = slo_provider_;
    }
    if (!provider) {
      SendResponse(fd, "503 Service Unavailable", "text/plain",
                   "no SLO provider installed\n");
      return;
    }
    SendResponse(fd, "200 OK", "application/json", provider());
    return;
  }
  if (path == "/healthz") {
    HealthProvider provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = health_provider_;
    }
    std::string detail;
    if (provider && !provider(&detail)) {
      SendResponse(fd, "503 Service Unavailable", "text/plain",
                   "degraded: " + detail + "\n");
      return;
    }
    SendResponse(fd, "200 OK", "text/plain", "ok\n");
    return;
  }
  if (path == "/") {
    SendResponse(fd, "200 OK", "text/plain",
                 "memstream live observability\n"
                 "  /metrics   Prometheus text exposition\n"
                 "  /profilez  profiler tree (JSON)\n"
                 "  /slostatus SLO attainment + error budgets (JSON)\n"
                 "  /healthz   liveness (503 when a budget is exhausted)\n");
    return;
  }
  SendResponse(fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace memstream::obs
