#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.h"

namespace memstream::obs {

Slo::Slo(SloSpec spec) : spec_(std::move(spec)) {
  spec_.objective = std::clamp(spec_.objective, 1e-9, 1.0 - 1e-9);
  if (!(spec_.window_seconds > 0)) spec_.window_seconds = 60.0;
}

void Slo::Record(double now, std::int64_t good, std::int64_t bad) {
  if (good <= 0 && bad <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  good_ += std::max<std::int64_t>(good, 0);
  bad_ += std::max<std::int64_t>(bad, 0);
  const double bucket_width =
      spec_.window_seconds / static_cast<double>(kBuckets);
  const std::int64_t index =
      static_cast<std::int64_t>(std::floor(now / bucket_width));
  Bucket& b = ring_[static_cast<std::size_t>(
      ((index % static_cast<std::int64_t>(kBuckets)) +
       static_cast<std::int64_t>(kBuckets)) %
      static_cast<std::int64_t>(kBuckets))];
  if (b.index != index) {
    b.index = index;
    b.good = 0;
    b.bad = 0;
  }
  b.good += std::max<std::int64_t>(good, 0);
  b.bad += std::max<std::int64_t>(bad, 0);
  latest_bucket_ = std::max(latest_bucket_, index);
}

double Slo::attainment() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t total = good_ + bad_;
  if (total == 0) return 1.0;
  return static_cast<double>(good_) / static_cast<double>(total);
}

double Slo::budget_remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t total = good_ + bad_;
  if (total == 0) return 1.0;
  const double error_rate =
      static_cast<double>(bad_) / static_cast<double>(total);
  return 1.0 - error_rate / (1.0 - spec_.objective);
}

double Slo::WindowErrorRateLocked() const {
  // Buckets older than the window (index below latest-kBuckets+1) are
  // stale leftovers from a previous lap of the ring; skip them.
  std::int64_t good = 0;
  std::int64_t bad = 0;
  const std::int64_t oldest =
      latest_bucket_ - static_cast<std::int64_t>(kBuckets) + 1;
  for (const Bucket& b : ring_) {
    if (b.index < 0 || b.index < oldest) continue;
    good += b.good;
    bad += b.bad;
  }
  const std::int64_t total = good + bad;
  if (total == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(total);
}

double Slo::burn_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowErrorRateLocked() / (1.0 - spec_.objective);
}

bool Slo::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (bad_ == 0) return false;
  const std::int64_t total = good_ + bad_;
  const double error_rate =
      static_cast<double>(bad_) / static_cast<double>(total);
  return error_rate >= (1.0 - spec_.objective);
}

std::int64_t Slo::good() const {
  std::lock_guard<std::mutex> lock(mu_);
  return good_;
}

std::int64_t Slo::bad() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_;
}

Slo* SloMonitor::Add(const SloSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slo& s : slos_) {
    if (s.spec().name == spec.name) return &s;
  }
  slos_.emplace_back(spec);
  return &slos_.back();
}

Slo* SloMonitor::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slo& s : slos_) {
    if (s.spec().name == name) return &s;
  }
  return nullptr;
}

const Slo* SloMonitor::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slo& s : slos_) {
    if (s.spec().name == name) return &s;
  }
  return nullptr;
}

std::size_t SloMonitor::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slos_.size();
}

bool SloMonitor::healthy(std::string* detail) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slo& s : slos_) {
    if (s.exhausted()) {
      if (detail != nullptr) {
        *detail = "slo " + s.spec().name + " budget exhausted (attainment " +
                  std::to_string(s.attainment()) + " < objective " +
                  std::to_string(s.spec().objective) + ")";
      }
      return false;
    }
  }
  return true;
}

std::string SloMonitor::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  bool all_healthy = true;
  for (const Slo& s : slos_) {
    if (s.exhausted()) all_healthy = false;
  }
  w.Key("healthy");
  w.Bool(all_healthy);
  w.Key("slos");
  w.BeginArray();
  for (const Slo& s : slos_) {
    w.BeginObject();
    w.Key("name");
    w.String(s.spec().name);
    w.Key("description");
    w.String(s.spec().description);
    w.Key("objective");
    w.Number(s.spec().objective);
    w.Key("window_seconds");
    w.Number(s.spec().window_seconds);
    w.Key("good");
    w.Int(s.good());
    w.Key("bad");
    w.Int(s.bad());
    w.Key("attainment");
    w.Number(s.attainment());
    w.Key("budget_remaining");
    w.Number(s.budget_remaining());
    w.Key("burn_rate");
    w.Number(s.burn_rate());
    w.Key("exhausted");
    w.Bool(s.exhausted());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void SloMonitor::PublishGauges(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slo& s : slos_) {
    const std::string base = "slo." + s.spec().name;
    metrics->gauge(base + ".attainment")->Set(s.attainment());
    metrics->gauge(base + ".budget_remaining")->Set(s.budget_remaining());
    metrics->gauge(base + ".burn_rate")->Set(s.burn_rate());
    if (!s.spec().description.empty()) {
      metrics->SetHelp(base + ".attainment", s.spec().description);
    }
  }
}

std::vector<const Slo*> SloMonitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Slo*> out;
  out.reserve(slos_.size());
  for (const Slo& s : slos_) out.push_back(&s);
  return out;
}

SloSpec StandardUnderflowSlo() {
  SloSpec spec;
  spec.name = "underflow";
  spec.description =
      "Stream-cycles completing without a playout buffer underflow";
  spec.objective = 0.999;
  spec.window_seconds = 60.0;
  return spec;
}

SloSpec StandardCycleSlackSlo() {
  SloSpec spec;
  spec.name = "cycle_slack";
  spec.description =
      "IO cycles finishing within their period (non-negative slack)";
  spec.objective = 0.999;
  spec.window_seconds = 60.0;
  return spec;
}

SloSpec StandardAdmissionLatencySlo() {
  SloSpec spec;
  spec.name = "admission_latency";
  spec.description = "Admission decisions returned within 200us wall time";
  spec.objective = 0.99;
  spec.window_seconds = 60.0;
  spec.threshold = 200e-6;
  return spec;
}

SloSpec StandardAvailabilitySlo() {
  SloSpec spec;
  spec.name = "availability";
  spec.description =
      "Stream-cycles in service (not shed) while faults are injected";
  spec.objective = 0.995;
  spec.window_seconds = 60.0;
  return spec;
}

}  // namespace memstream::obs
