#include "obs/report_merge.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json_parser.h"

namespace memstream::obs {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Markdown table cells cannot hold raw '|' or newlines.
std::string MdEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += " ";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// One RFC 4180 CSV line -> cells (handles quoted cells and "" escapes).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

double ToDouble(const std::string& s) {
  try {
    return std::stod(s);
  } catch (...) {
    return 0;
  }
}

constexpr char kMetricsCsvHeader[] = "name,kind,value";

void LoadMetricSamples(const JsonValue& arr,
                       std::vector<MetricSample>* out) {
  for (const auto& m : arr.array) {
    if (!m.is_object()) continue;
    MetricSample s;
    s.name = m.Str("name");
    s.kind = m.Str("kind");
    s.value = m.Num("value", 0);
    s.count = static_cast<std::int64_t>(m.Num("count", 0));
    s.min = m.Num("min", 0);
    s.max = m.Num("max", 0);
    s.mean = m.Num("mean", 0);
    s.p50 = m.Num("p50", 0);
    s.p95 = m.Num("p95", 0);
    s.p99 = m.Num("p99", 0);
    out->push_back(std::move(s));
  }
}

Status ParseRunReport(const std::string& path, const JsonValue& doc,
                      ReportBundle* bundle) {
  LoadedRunReport run;
  run.path = path;
  run.title = doc.Str("title");
  if (run.title.empty()) run.title = path;
  run.schema_version = static_cast<std::int64_t>(doc.Num("schema_version", 0));

  if (const JsonValue* cfg = doc.Find("config"); cfg != nullptr) {
    for (const auto& [k, v] : cfg->object) run.config.emplace_back(k, v.string);
  }
  if (const JsonValue* a = doc.Find("analytic"); a != nullptr) {
    for (const auto& [k, v] : a->object) run.analytic.emplace_back(k, v.number);
  }
  if (const JsonValue* s = doc.Find("simulated"); s != nullptr) {
    for (const auto& [k, v] : s->object) {
      run.simulated.emplace_back(k, v.number);
    }
  }
  if (const JsonValue* m = doc.Find("metrics"); m != nullptr && m->is_array()) {
    LoadMetricSamples(*m, &run.metrics);
  }
  if (const JsonValue* d = doc.Find("trace_dropped_records"); d != nullptr) {
    run.trace_dropped_records = static_cast<std::int64_t>(d->number);
  }
  if (const JsonValue* q = doc.Find("qos"); q != nullptr && q->is_object()) {
    run.has_qos = true;
    run.total_violations =
        static_cast<std::int64_t>(q->Num("total_violations", 0));
    run.disk_cycles_audited =
        static_cast<std::int64_t>(q->Num("disk_cycles_audited", 0));
    run.mems_cycles_audited =
        static_cast<std::int64_t>(q->Num("mems_cycles_audited", 0));
    if (const JsonValue* vs = q->Find("violations");
        vs != nullptr && vs->is_array()) {
      for (const auto& v : vs->array) {
        LoadedViolation lv;
        lv.invariant = v.Str("invariant");
        lv.stream_id = static_cast<std::int64_t>(v.Num("stream_id", -1));
        lv.cycle_index = static_cast<std::int64_t>(v.Num("cycle_index", -1));
        lv.time = v.Num("time", 0);
        lv.expected = v.Num("expected", 0);
        lv.observed = v.Num("observed", 0);
        lv.detail = v.Str("detail");
        lv.trace_index = static_cast<std::int64_t>(v.Num("trace_index", -1));
        run.violations.push_back(std::move(lv));
      }
    }
  }
  if (const JsonValue* f = doc.Find("faults"); f != nullptr && f->is_object()) {
    run.has_faults = true;
    run.faults.events = static_cast<std::int64_t>(f->Num("events", 0));
    run.faults.repairs = static_cast<std::int64_t>(f->Num("repairs", 0));
    run.faults.replans = static_cast<std::int64_t>(f->Num("replans", 0));
    run.faults.sheds = static_cast<std::int64_t>(f->Num("sheds", 0));
    run.faults.readmits = static_cast<std::int64_t>(f->Num("readmits", 0));
    run.faults.dropped_during_burst =
        static_cast<std::int64_t>(f->Num("dropped_during_burst", 0));
    run.faults.total_shed_time = f->Num("total_shed_time", 0);
    if (const JsonValue* tl = f->Find("timeline");
        tl != nullptr && tl->is_array()) {
      for (const auto& e : tl->array) {
        LoadedFaultEntry entry;
        entry.time = e.Num("time", 0);
        entry.kind = e.Str("kind");
        entry.device = static_cast<std::int64_t>(e.Num("device", -1));
        entry.magnitude = e.Num("magnitude", 0);
        entry.action = e.Str("action");
        run.faults.timeline.push_back(std::move(entry));
      }
    }
    if (const JsonValue* ss = f->Find("shed_streams");
        ss != nullptr && ss->is_array()) {
      for (const auto& s : ss->array) {
        LoadedShedRecord rec;
        rec.stream_id = static_cast<std::int64_t>(s.Num("stream_id", -1));
        rec.shed_time = s.Num("shed_time", 0);
        rec.shed_cycle = static_cast<std::int64_t>(s.Num("shed_cycle", -1));
        rec.readmit_time = s.Num("readmit_time", -1);
        run.faults.shed_streams.push_back(std::move(rec));
      }
    }
  }
  if (const JsonValue* fa = doc.Find("farm"); fa != nullptr && fa->is_object()) {
    run.has_farm = true;
    run.farm.policy = fa->Str("policy");
    run.farm.shards = static_cast<std::int64_t>(fa->Num("shards", 0));
    run.farm.titles = static_cast<std::int64_t>(fa->Num("titles", 0));
    run.farm.total_copies =
        static_cast<std::int64_t>(fa->Num("total_copies", 0));
    run.farm.offered = static_cast<std::int64_t>(fa->Num("offered", 0));
    run.farm.admitted = static_cast<std::int64_t>(fa->Num("admitted", 0));
    run.farm.rejected = static_cast<std::int64_t>(fa->Num("rejected", 0));
    run.farm.failovers = static_cast<std::int64_t>(fa->Num("failovers", 0));
    run.farm.shed = static_cast<std::int64_t>(fa->Num("shed", 0));
    run.farm.readmits = static_cast<std::int64_t>(fa->Num("readmits", 0));
    run.farm.availability = fa->Num("availability", 1.0);
    run.farm.peak_dram_per_shard = fa->Num("peak_dram_per_shard", 0);
    run.farm.mean_utilization = fa->Num("mean_utilization", 0);
    if (const JsonValue* ps = fa->Find("per_shard");
        ps != nullptr && ps->is_array()) {
      for (const auto& e : ps->array) {
        LoadedFarmShard shard;
        shard.shard = static_cast<std::int64_t>(e.Num("shard", 0));
        shard.streams = static_cast<std::int64_t>(e.Num("streams", 0));
        shard.ios = static_cast<std::int64_t>(e.Num("ios", 0));
        shard.underflow_events =
            static_cast<std::int64_t>(e.Num("underflow_events", 0));
        shard.cycle_overruns =
            static_cast<std::int64_t>(e.Num("cycle_overruns", 0));
        shard.qos_violations =
            static_cast<std::int64_t>(e.Num("qos_violations", 0));
        shard.failed_over_in =
            static_cast<std::int64_t>(e.Num("failed_over_in", 0));
        shard.shed = static_cast<std::int64_t>(e.Num("shed", 0));
        shard.peak_dram_bytes = e.Num("peak_dram_bytes", 0);
        shard.utilization = e.Num("utilization", 0);
        run.farm.per_shard.push_back(shard);
      }
    }
  }
  if (const JsonValue* st = doc.Find("streams");
      st != nullptr && st->is_object()) {
    run.has_streams = true;
    run.streams.count = static_cast<std::int64_t>(st->Num("count", 0));
    run.streams.departed = static_cast<std::int64_t>(st->Num("departed", 0));
    run.streams.shed = static_cast<std::int64_t>(st->Num("shed", 0));
    run.streams.still_shed =
        static_cast<std::int64_t>(st->Num("still_shed", 0));
    run.streams.readmitted =
        static_cast<std::int64_t>(st->Num("readmitted", 0));
    run.streams.degraded = static_cast<std::int64_t>(st->Num("degraded", 0));
    run.streams.underflow_streams =
        static_cast<std::int64_t>(st->Num("underflow_streams", 0));
    run.streams.total_ios =
        static_cast<std::int64_t>(st->Num("total_ios", 0));
    run.streams.total_underflows =
        static_cast<std::int64_t>(st->Num("total_underflows", 0));
    run.streams.min_headroom = st->Num("min_headroom", 1.0);
    if (const JsonValue* ps = st->Find("per_stream");
        ps != nullptr && ps->is_array()) {
      for (const auto& e : ps->array) {
        LoadedStreamEntry entry;
        entry.id = static_cast<std::int64_t>(e.Num("id", -1));
        entry.phase = e.Str("phase");
        entry.ios = static_cast<std::int64_t>(e.Num("ios", 0));
        entry.underflows =
            static_cast<std::int64_t>(e.Num("underflows", 0));
        entry.sheds = static_cast<std::int64_t>(e.Num("sheds", 0));
        entry.readmits = static_cast<std::int64_t>(e.Num("readmits", 0));
        entry.degrades = static_cast<std::int64_t>(e.Num("degrades", 0));
        entry.headroom = e.Num("headroom", 1.0);
        entry.occ_p95 = e.Num("occ_p95", 0);
        run.streams.per_stream.push_back(std::move(entry));
      }
    }
  }
  if (const JsonValue* sl = doc.Find("slo"); sl != nullptr && sl->is_object()) {
    run.has_slo = true;
    if (const JsonValue* h = sl->Find("healthy"); h != nullptr) {
      run.slo_healthy = h->boolean;
    }
    if (const JsonValue* arr = sl->Find("slos");
        arr != nullptr && arr->is_array()) {
      for (const auto& s : arr->array) {
        LoadedSlo slo;
        slo.name = s.Str("name");
        slo.objective = s.Num("objective", 0);
        slo.good = static_cast<std::int64_t>(s.Num("good", 0));
        slo.bad = static_cast<std::int64_t>(s.Num("bad", 0));
        slo.attainment = s.Num("attainment", 1.0);
        slo.budget_remaining = s.Num("budget_remaining", 1.0);
        slo.burn_rate = s.Num("burn_rate", 0);
        if (const JsonValue* ex = s.Find("exhausted"); ex != nullptr) {
          slo.exhausted = ex->boolean;
        }
        run.slos.push_back(std::move(slo));
      }
    }
  }
  if (const JsonValue* ts = doc.Find("timelines");
      ts != nullptr && ts->is_array()) {
    for (const auto& s : ts->array) {
      LoadedSeries series;
      series.name = s.Str("name");
      series.unit = s.Str("unit");
      if (const JsonValue* pts = s.Find("points");
          pts != nullptr && pts->is_array()) {
        for (const auto& p : pts->array) {
          if (p.is_array() && p.array.size() == 2) {
            series.points.push_back(
                TimelinePoint{p.array[0].number, p.array[1].number});
          }
        }
      }
      run.timelines.push_back(std::move(series));
    }
  }
  bundle->runs.push_back(std::move(run));
  return Status::OK();
}

Status ParsePerfTrajectory(const JsonValue& doc, ReportBundle* bundle) {
  for (const auto& r : doc.array) {
    if (!r.is_object()) continue;
    LoadedPerfRecord rec;
    rec.bench = r.Str("bench");
    rec.kind = r.Str("kind");
    if (const JsonValue* smoke = r.Find("smoke"); smoke != nullptr) {
      rec.smoke = smoke->boolean;
    }
    rec.run = static_cast<std::int64_t>(r.Num("run", 0));
    rec.repeats = static_cast<std::int64_t>(r.Num("repeats", 1));
    rec.wall_seconds = r.Num("wall_seconds", 0);
    rec.wall_p50 = r.Num("wall_p50", 0);
    rec.wall_p99 = r.Num("wall_p99", 0);
    rec.events_per_sec = r.Num("events_per_sec", 0);
    rec.allocs_per_event = r.Num("allocs_per_event", -1);
    bundle->perf.push_back(std::move(rec));
  }
  return Status::OK();
}

Status ParseBenchSweeps(const JsonValue& doc, ReportBundle* bundle) {
  for (const auto& r : doc.array) {
    if (!r.is_object()) continue;
    LoadedBenchRecord rec;
    rec.bench = r.Str("bench");
    rec.tasks = static_cast<std::int64_t>(r.Num("tasks", 0));
    rec.threads = static_cast<std::int64_t>(r.Num("threads", 1));
    rec.wall_seconds = r.Num("wall_seconds", 0);
    rec.events = static_cast<std::int64_t>(r.Num("events", 0));
    rec.events_per_sec = r.Num("events_per_sec", 0);
    bundle->bench.push_back(std::move(rec));
  }
  return Status::OK();
}

Status ParseMetricsCsv(const std::string& path, const std::string& content,
                       ReportBundle* bundle) {
  std::vector<MetricSample> rows;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const auto cells = SplitCsvLine(line);
    if (cells.size() < 10) continue;
    MetricSample s;
    s.name = cells[0];
    s.kind = cells[1];
    s.value = ToDouble(cells[2]);
    s.count = static_cast<std::int64_t>(ToDouble(cells[3]));
    s.min = ToDouble(cells[4]);
    s.max = ToDouble(cells[5]);
    s.mean = ToDouble(cells[6]);
    s.p50 = ToDouble(cells[7]);
    s.p95 = ToDouble(cells[8]);
    s.p99 = ToDouble(cells[9]);
    rows.push_back(std::move(s));
  }
  bundle->csvs.emplace_back(path, std::move(rows));
  return Status::OK();
}

/// Inline SVG sparkline of (x, y) samples: one polyline in a fixed
/// viewBox, scaled to the data range. Returns "" for fewer than 2 points.
std::string SvgSparkline(const std::vector<TimelinePoint>& pts, int width,
                         int height) {
  if (pts.size() < 2) return "";
  double x_lo = pts.front().t, x_hi = pts.front().t;
  double y_lo = pts.front().v, y_hi = pts.front().v;
  for (const auto& p : pts) {
    x_lo = std::min(x_lo, p.t);
    x_hi = std::max(x_hi, p.t);
    y_lo = std::min(y_lo, p.v);
    y_hi = std::max(y_hi, p.v);
  }
  const double x_span = x_hi - x_lo > 0 ? x_hi - x_lo : 1;
  const double y_span = y_hi - y_lo > 0 ? y_hi - y_lo : 1;
  std::ostringstream out;
  out << "<svg viewBox=\"0 0 " << width << " " << height << "\" width=\""
      << width << "\" height=\"" << height
      << "\" preserveAspectRatio=\"none\"><polyline fill=\"none\" "
         "stroke=\"#2a6fb0\" stroke-width=\"1.5\" points=\"";
  const int pad = 2;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double x =
        pad + (pts[i].t - x_lo) / x_span * (width - 2 * pad);
    const double y =
        height - pad - (pts[i].v - y_lo) / y_span * (height - 2 * pad);
    if (i > 0) out << " ";
    out << FormatDouble(x) << "," << FormatDouble(y);
  }
  out << "\"/></svg>";
  return out.str();
}

/// Text sparkline over the eight block-element glyphs, scaled to the
/// data range ("▁▄█"); "" for an empty input.
std::string UnicodeSparkline(const std::vector<double>& values) {
  static const char* const kBars[] = {"▁", "▂", "▃", "▄",
                                      "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values.front(), hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0 ? hi - lo : 1;
  std::string out;
  for (double v : values) {
    const int idx = std::min(7, static_cast<int>((v - lo) / span * 8));
    out += kBars[std::max(0, idx)];
  }
  return out;
}

/// One bench's perf history: records of a (bench, kind, smoke) key in
/// run order, plus the series the sparkline plots.
struct PerfGroup {
  const LoadedPerfRecord* latest = nullptr;
  std::string metric;          ///< "events/s" | "wall (s)"
  std::vector<double> series;  ///< metric value per run, run order
};

/// Groups trajectory records by key, in first-appearance order.
std::vector<PerfGroup> GroupPerfRecords(
    const std::vector<LoadedPerfRecord>& perf) {
  std::vector<std::vector<const LoadedPerfRecord*>> groups;
  auto key_of = [](const LoadedPerfRecord& r) {
    return r.bench + "\x1f" + r.kind + (r.smoke ? "\x1f" "s" : "\x1f" "f");
  };
  std::vector<std::string> keys;
  for (const auto& r : perf) {
    const std::string key = key_of(r);
    std::size_t idx = keys.size();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        idx = i;
        break;
      }
    }
    if (idx == keys.size()) {
      keys.push_back(key);
      groups.emplace_back();
    }
    groups[idx].push_back(&r);
  }
  std::vector<PerfGroup> out;
  out.reserve(groups.size());
  for (auto& g : groups) {
    std::stable_sort(g.begin(), g.end(),
                     [](const LoadedPerfRecord* a,
                        const LoadedPerfRecord* b) { return a->run < b->run; });
    PerfGroup group;
    group.latest = g.back();
    bool has_eps = false;
    for (const auto* r : g) has_eps = has_eps || r->events_per_sec > 0;
    group.metric = has_eps ? "events/s" : "wall (s)";
    for (const auto* r : g) {
      group.series.push_back(has_eps ? r->events_per_sec : r->wall_seconds);
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace

std::vector<LoadedRunReport::Delta> LoadedRunReport::Deltas() const {
  std::vector<Delta> out;
  for (const auto& [key, a] : analytic) {
    for (const auto& [skey, s] : simulated) {
      if (skey != key) continue;
      Delta d;
      d.key = key;
      d.analytic = a;
      d.simulated = s;
      d.delta = s - a;
      d.rel = a != 0 ? d.delta / std::abs(a) : 0;
      out.push_back(std::move(d));
      break;
    }
  }
  return out;
}

std::vector<std::pair<std::string, LoadedViolation>>
ReportBundle::AllViolations() const {
  std::vector<std::pair<std::string, LoadedViolation>> out;
  for (const auto& run : runs) {
    for (const auto& v : run.violations) out.emplace_back(run.title, v);
  }
  return out;
}

std::vector<std::pair<std::string, MetricSample>>
ReportBundle::HistogramsMatching(const std::string& needle) const {
  std::vector<std::pair<std::string, MetricSample>> out;
  for (const auto& run : runs) {
    for (const auto& s : run.metrics) {
      if (s.kind == "histogram" && s.name.find(needle) != std::string::npos) {
        out.emplace_back(run.title, s);
      }
    }
  }
  for (const auto& [path, rows] : csvs) {
    for (const auto& s : rows) {
      if (s.kind == "histogram" && s.name.find(needle) != std::string::npos) {
        out.emplace_back(path, s);
      }
    }
  }
  return out;
}

ReportInputKind ClassifyReportInput(const std::string& content) {
  // Metrics CSV: starts with the snapshot header.
  std::size_t start = 0;
  while (start < content.size() &&
         (content[start] == ' ' || content[start] == '\n' ||
          content[start] == '\r' || content[start] == '\t')) {
    ++start;
  }
  if (content.compare(start, sizeof(kMetricsCsvHeader) - 1,
                      kMetricsCsvHeader) == 0) {
    return ReportInputKind::kMetricsCsv;
  }
  bool ok = false;
  const JsonValue doc = ParseJson(content, &ok);
  if (!ok) return ReportInputKind::kUnknown;
  if (doc.is_object() && doc.Find("schema_version") != nullptr) {
    return ReportInputKind::kRunReport;
  }
  if (doc.is_array()) {
    // Empty arrays count: an empty BENCH_sweeps.json merges to nothing.
    if (doc.array.empty()) return ReportInputKind::kBenchSweeps;
    if (doc.array.front().is_object()) {
      // Trajectory records are schema-versioned; plain sweep records
      // carry only the bench key. Check the version first — trajectory
      // records have both.
      if (doc.array.front().Find("schema_version") != nullptr) {
        return ReportInputKind::kPerfTrajectory;
      }
      if (doc.array.front().Find("bench") != nullptr) {
        return ReportInputKind::kBenchSweeps;
      }
    }
  }
  return ReportInputKind::kUnknown;
}

Status AddReportInput(const std::string& path, const std::string& content,
                      ReportBundle* bundle) {
  const ReportInputKind kind = ClassifyReportInput(content);
  switch (kind) {
    case ReportInputKind::kRunReport: {
      bool ok = false;
      const JsonValue doc = ParseJson(content, &ok);
      if (!ok) break;
      return ParseRunReport(path, doc, bundle);
    }
    case ReportInputKind::kBenchSweeps: {
      bool ok = false;
      const JsonValue doc = ParseJson(content, &ok);
      if (!ok) break;
      return ParseBenchSweeps(doc, bundle);
    }
    case ReportInputKind::kPerfTrajectory: {
      bool ok = false;
      const JsonValue doc = ParseJson(content, &ok);
      if (!ok) break;
      return ParsePerfTrajectory(doc, bundle);
    }
    case ReportInputKind::kMetricsCsv:
      return ParseMetricsCsv(path, content, bundle);
    case ReportInputKind::kUnknown:
      break;
  }
  bundle->errors.push_back(path + ": not a run report, metrics CSV, "
                           "BENCH_sweeps.json, or BENCH_trajectory.json");
  return Status::InvalidArgument(bundle->errors.back());
}

Status LoadReportInput(const std::string& path, ReportBundle* bundle) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    bundle->errors.push_back(path + ": cannot open");
    return Status::NotFound(bundle->errors.back());
  }
  std::ostringstream content;
  content << in.rdbuf();
  return AddReportInput(path, content.str(), bundle);
}

std::string RenderMarkdownReport(const ReportBundle& bundle,
                                 const std::string& title) {
  std::ostringstream out;
  out << "# " << title << "\n\n";
  out << bundle.runs.size() << " run report(s), " << bundle.csvs.size()
      << " metrics CSV(s), " << bundle.bench.size() << " bench record(s), "
      << bundle.perf.size() << " perf record(s)\n\n";
  for (const auto& err : bundle.errors) out << "> warning: " << err << "\n\n";

  for (const auto& run : bundle.runs) {
    out << "## Run: " << MdEscape(run.title) << "\n\n";
    out << "source: `" << run.path << "` (schema v" << run.schema_version
        << ")\n\n";
    if (!run.config.empty()) {
      out << "| config | value |\n|---|---|\n";
      for (const auto& [k, v] : run.config) {
        out << "| " << MdEscape(k) << " | " << MdEscape(v) << " |\n";
      }
      out << "\n";
    }
    const auto deltas = run.Deltas();
    if (!deltas.empty()) {
      out << "### Analytic vs simulated\n\n";
      out << "| key | analytic | simulated | delta | rel |\n"
          << "|---|---|---|---|---|\n";
      for (const auto& d : deltas) {
        out << "| " << MdEscape(d.key) << " | " << FormatDouble(d.analytic)
            << " | " << FormatDouble(d.simulated) << " | "
            << FormatDouble(d.delta) << " | " << FormatDouble(d.rel)
            << " |\n";
      }
      out << "\n";
    }
    if (run.has_qos) {
      out << "QoS: " << run.total_violations << " violation(s) over "
          << run.disk_cycles_audited << " disk + " << run.mems_cycles_audited
          << " MEMS audited cycles\n\n";
    }
    if (run.has_faults) {
      const LoadedFaults& f = run.faults;
      out << "### Faults\n\n";
      out << f.events << " fault(s), " << f.repairs << " repair(s), "
          << f.replans << " re-plan(s); " << f.sheds << " stream(s) shed ("
          << f.readmits << " re-admitted, " << FormatDouble(f.total_shed_time)
          << " s total shed time)\n\n";
      if (f.dropped_during_burst > 0) {
        out << "> warning: trace dropped " << f.dropped_during_burst
            << " records during fault bursts\n\n";
      }
      if (!f.timeline.empty()) {
        out << "| t (s) | fault | device | magnitude | action |\n"
            << "|---|---|---|---|---|\n";
        for (const auto& e : f.timeline) {
          out << "| " << FormatDouble(e.time) << " | " << MdEscape(e.kind)
              << " | " << e.device << " | " << FormatDouble(e.magnitude)
              << " | " << MdEscape(e.action) << " |\n";
        }
        out << "\n";
      }
      if (!f.shed_streams.empty()) {
        out << "| shed stream | shed at (s) | cycle | re-admitted at (s) |\n"
            << "|---|---|---|---|\n";
        for (const auto& s : f.shed_streams) {
          out << "| " << s.stream_id << " | " << FormatDouble(s.shed_time)
              << " | " << s.shed_cycle << " | "
              << (s.readmit_time < 0 ? std::string("never")
                                     : FormatDouble(s.readmit_time))
              << " |\n";
        }
        out << "\n";
      }
    }
    if (run.has_farm) {
      const LoadedFarm& fm = run.farm;
      out << "### Farm\n\n";
      out << MdEscape(fm.policy) << " placement over " << fm.shards
          << " shard(s), " << fm.titles << " title(s) (" << fm.total_copies
          << " placed copies): " << fm.admitted << "/" << fm.offered
          << " stream(s) admitted (" << fm.rejected << " rejected); "
          << fm.failovers << " failover(s), " << fm.shed << " shed, "
          << fm.readmits << " re-admit(s); availability "
          << FormatDouble(fm.availability) << ", peak DRAM/shard "
          << FormatDouble(fm.peak_dram_per_shard) << " B, mean util "
          << FormatDouble(fm.mean_utilization) << "\n\n";
      if (!fm.per_shard.empty()) {
        out << "| shard | streams | ios | underflows | overruns | "
               "violations | failed-over in | shed | peak DRAM (B) | util "
               "|\n|---|---|---|---|---|---|---|---|---|---|\n";
        for (const auto& s : fm.per_shard) {
          out << "| " << s.shard << " | " << s.streams << " | " << s.ios
              << " | " << s.underflow_events << " | " << s.cycle_overruns
              << " | " << s.qos_violations << " | " << s.failed_over_in
              << " | " << s.shed << " | " << FormatDouble(s.peak_dram_bytes)
              << " | " << FormatDouble(s.utilization) << " |\n";
        }
        out << "\n";
      }
    }
    if (run.has_streams) {
      const LoadedStreams& st = run.streams;
      out << "### Streams\n\n";
      out << st.count << " stream(s): " << st.shed << " shed ("
          << st.readmitted << " re-admitted, " << st.still_shed
          << " still shed at end), " << st.degraded << " degraded, "
          << st.underflow_streams << " with underflows; min envelope "
          << "headroom " << FormatDouble(st.min_headroom) << "\n\n";
      // Only the interesting rows: anything shed/degraded/underflowed or
      // envelope-tight. Clean steady-state streams stay in the JSON.
      std::vector<const LoadedStreamEntry*> interesting;
      for (const auto& e : st.per_stream) {
        if (e.sheds > 0 || e.degrades > 0 || e.underflows > 0 ||
            e.headroom < 0.05) {
          interesting.push_back(&e);
        }
      }
      if (!interesting.empty()) {
        constexpr std::size_t kMaxRows = 20;
        out << "| stream | phase | ios | underflows | sheds | readmits | "
               "degrades | headroom |\n|---|---|---|---|---|---|---|---|\n";
        for (std::size_t i = 0;
             i < interesting.size() && i < kMaxRows; ++i) {
          const LoadedStreamEntry& e = *interesting[i];
          out << "| " << e.id << " | " << MdEscape(e.phase) << " | " << e.ios
              << " | " << e.underflows << " | " << e.sheds << " | "
              << e.readmits << " | " << e.degrades << " | "
              << FormatDouble(e.headroom) << " |\n";
        }
        if (interesting.size() > kMaxRows) {
          out << "\n(" << (interesting.size() - kMaxRows)
              << " more affected stream(s) in the JSON)\n";
        }
        out << "\n";
      }
    }
    if (run.has_slo) {
      out << "### SLOs\n\n";
      out << (run.slo_healthy
                  ? "All error budgets healthy.\n\n"
                  : "**At least one error budget exhausted.**\n\n");
      if (!run.slos.empty()) {
        out << "| slo | objective | good | bad | attainment | "
               "budget left | burn rate |\n|---|---|---|---|---|---|---|\n";
        for (const auto& s : run.slos) {
          out << "| " << MdEscape(s.name) << (s.exhausted ? " ⚠" : "")
              << " | " << FormatDouble(s.objective) << " | " << s.good
              << " | " << s.bad << " | " << FormatDouble(s.attainment)
              << " | " << FormatDouble(s.budget_remaining) << " | "
              << FormatDouble(s.burn_rate) << " |\n";
        }
        out << "\n";
      }
    }
    if (run.trace_dropped_records > 0) {
      out << "> warning: trace ring buffer dropped "
          << run.trace_dropped_records << " records\n\n";
    }
  }

  out << "## Violations\n\n";
  const auto violations = bundle.AllViolations();
  if (violations.empty()) {
    out << "No QoS violations recorded.\n\n";
  } else {
    out << "| run | invariant | stream | cycle | t (s) | expected | "
           "observed | detail |\n|---|---|---|---|---|---|---|---|\n";
    for (const auto& [run, v] : violations) {
      out << "| " << MdEscape(run) << " | " << MdEscape(v.invariant) << " | "
          << v.stream_id << " | " << v.cycle_index << " | "
          << FormatDouble(v.time) << " | " << FormatDouble(v.expected)
          << " | " << FormatDouble(v.observed) << " | " << MdEscape(v.detail)
          << " |\n";
    }
    out << "\n";
  }

  const auto slack = bundle.HistogramsMatching("slack");
  out << "## Slack percentiles\n\n";
  if (slack.empty()) {
    out << "No slack histograms found.\n\n";
  } else {
    out << "| source | metric | count | min | p50 | p95 | p99 | max |\n"
        << "|---|---|---|---|---|---|---|---|\n";
    for (const auto& [src, s] : slack) {
      out << "| " << MdEscape(src) << " | " << MdEscape(s.name) << " | "
          << s.count << " | " << FormatDouble(s.min) << " | "
          << FormatDouble(s.p50) << " | " << FormatDouble(s.p95) << " | "
          << FormatDouble(s.p99) << " | " << FormatDouble(s.max) << " |\n";
    }
    out << "\n";
  }

  out << "## Bench trajectory\n\n";
  if (bundle.bench.empty()) {
    out << "No bench sweep records found.\n\n";
  } else {
    out << "| bench | tasks | threads | wall (s) | events | events/s |\n"
        << "|---|---|---|---|---|---|\n";
    for (const auto& b : bundle.bench) {
      out << "| " << MdEscape(b.bench) << " | " << b.tasks << " | "
          << b.threads << " | " << FormatDouble(b.wall_seconds) << " | "
          << b.events << " | " << FormatDouble(b.events_per_sec) << " |\n";
    }
    out << "\n";
  }

  out << "## Perf trajectory\n\n";
  if (bundle.perf.empty()) {
    out << "No perf-trajectory records found.\n\n";
  } else {
    out << "| bench | kind | smoke | runs | metric | latest | trend |\n"
        << "|---|---|---|---|---|---|---|\n";
    for (const auto& g : GroupPerfRecords(bundle.perf)) {
      const LoadedPerfRecord& r = *g.latest;
      out << "| " << MdEscape(r.bench) << " | " << MdEscape(r.kind) << " | "
          << (r.smoke ? "yes" : "no") << " | " << g.series.size() << " | "
          << g.metric << " | " << FormatDouble(g.series.back()) << " | "
          << UnicodeSparkline(g.series) << " |\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderHtmlDashboard(const ReportBundle& bundle,
                                const std::string& title) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n<title>" << HtmlEscape(title)
      << "</title>\n<style>\n"
      << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
         "max-width:70em;padding:0 1em;color:#1c2733}\n"
      << "h1,h2{border-bottom:1px solid #d8dee4;padding-bottom:.2em}\n"
      << "table{border-collapse:collapse;margin:.8em 0}\n"
      << "th,td{border:1px solid #d8dee4;padding:.25em .6em;"
         "text-align:left}\n"
      << "th{background:#f3f6f9}\n"
      << ".warn{color:#9a3b00;background:#fff4e8;padding:.4em .8em;"
         "border-left:3px solid #e08030}\n"
      << ".ok{color:#1a6b2f}\n.bad{color:#b01818;font-weight:600}\n"
      << ".src{color:#5a6b7a;font-size:12px}\n"
      << "</style>\n</head>\n<body>\n";
  out << "<h1>" << HtmlEscape(title) << "</h1>\n";
  out << "<p class=\"src\">" << bundle.runs.size() << " run report(s), "
      << bundle.csvs.size() << " metrics CSV(s), " << bundle.bench.size()
      << " bench record(s), " << bundle.perf.size()
      << " perf record(s)</p>\n";
  for (const auto& err : bundle.errors) {
    out << "<p class=\"warn\">" << HtmlEscape(err) << "</p>\n";
  }

  // Per-run config and analytic-vs-simulated deltas.
  for (const auto& run : bundle.runs) {
    out << "<h2>Run: " << HtmlEscape(run.title) << "</h2>\n";
    out << "<p class=\"src\">" << HtmlEscape(run.path) << " · schema v"
        << run.schema_version;
    if (run.has_qos) {
      out << " · <span class=\""
          << (run.total_violations == 0 ? "ok" : "bad") << "\">"
          << run.total_violations << " QoS violation(s)</span> over "
          << run.disk_cycles_audited << " disk + " << run.mems_cycles_audited
          << " MEMS cycles";
    }
    out << "</p>\n";
    if (run.trace_dropped_records > 0) {
      out << "<p class=\"warn\">trace ring buffer dropped "
          << run.trace_dropped_records << " records</p>\n";
    }
    if (!run.config.empty()) {
      out << "<table><tr><th>config</th><th>value</th></tr>\n";
      for (const auto& [k, v] : run.config) {
        out << "<tr><td>" << HtmlEscape(k) << "</td><td>" << HtmlEscape(v)
            << "</td></tr>\n";
      }
      out << "</table>\n";
    }
    const auto deltas = run.Deltas();
    if (!deltas.empty()) {
      out << "<h3>Analytic vs simulated</h3>\n"
          << "<table><tr><th>key</th><th>analytic</th><th>simulated</th>"
          << "<th>delta</th><th>rel</th></tr>\n";
      for (const auto& d : deltas) {
        out << "<tr><td>" << HtmlEscape(d.key) << "</td><td>"
            << FormatDouble(d.analytic) << "</td><td>"
            << FormatDouble(d.simulated) << "</td><td>"
            << FormatDouble(d.delta) << "</td><td>" << FormatDouble(d.rel)
            << "</td></tr>\n";
      }
      out << "</table>\n";
    }
    if (run.has_faults) {
      const LoadedFaults& f = run.faults;
      out << "<h3>Faults</h3>\n<p>" << f.events << " fault(s), " << f.repairs
          << " repair(s), " << f.replans << " re-plan(s); <span class=\""
          << (f.sheds == 0 ? "ok" : "bad") << "\">" << f.sheds
          << " stream(s) shed</span> (" << f.readmits << " re-admitted, "
          << FormatDouble(f.total_shed_time) << " s total shed time)</p>\n";
      if (f.dropped_during_burst > 0) {
        out << "<p class=\"warn\">trace dropped " << f.dropped_during_burst
            << " records during fault bursts</p>\n";
      }
      if (!f.timeline.empty()) {
        out << "<table><tr><th>t (s)</th><th>fault</th><th>device</th>"
            << "<th>magnitude</th><th>action</th></tr>\n";
        for (const auto& e : f.timeline) {
          out << "<tr><td>" << FormatDouble(e.time) << "</td><td>"
              << HtmlEscape(e.kind) << "</td><td>" << e.device << "</td><td>"
              << FormatDouble(e.magnitude) << "</td><td>"
              << HtmlEscape(e.action) << "</td></tr>\n";
        }
        out << "</table>\n";
      }
      if (!f.shed_streams.empty()) {
        out << "<table><tr><th>shed stream</th><th>shed at (s)</th>"
            << "<th>cycle</th><th>re-admitted at (s)</th></tr>\n";
        for (const auto& s : f.shed_streams) {
          out << "<tr><td>" << s.stream_id << "</td><td>"
              << FormatDouble(s.shed_time) << "</td><td>" << s.shed_cycle
              << "</td><td>"
              << (s.readmit_time < 0 ? std::string("never")
                                     : FormatDouble(s.readmit_time))
              << "</td></tr>\n";
        }
        out << "</table>\n";
      }
    }
    if (run.has_farm) {
      const LoadedFarm& fm = run.farm;
      out << "<h3>Farm</h3>\n<p>" << HtmlEscape(fm.policy)
          << " placement over " << fm.shards << " shard(s), " << fm.titles
          << " title(s) (" << fm.total_copies << " placed copies): "
          << fm.admitted << "/" << fm.offered << " admitted ("
          << fm.rejected << " rejected); <span class=\""
          << (fm.shed == 0 ? "ok" : "bad") << "\">" << fm.failovers
          << " failover(s), " << fm.shed << " shed</span>, " << fm.readmits
          << " re-admit(s); availability "
          << FormatDouble(fm.availability) << ", peak DRAM/shard "
          << FormatDouble(fm.peak_dram_per_shard) << " B, mean util "
          << FormatDouble(fm.mean_utilization) << "</p>\n";
      if (!fm.per_shard.empty()) {
        out << "<table><tr><th>shard</th><th>streams</th><th>ios</th>"
            << "<th>underflows</th><th>overruns</th><th>violations</th>"
            << "<th>failed-over in</th><th>shed</th>"
            << "<th>peak DRAM (B)</th><th>util</th></tr>\n";
        for (const auto& s : fm.per_shard) {
          out << "<tr><td>" << s.shard << "</td><td>" << s.streams
              << "</td><td>" << s.ios << "</td><td>" << s.underflow_events
              << "</td><td>" << s.cycle_overruns << "</td><td>"
              << s.qos_violations << "</td><td>" << s.failed_over_in
              << "</td><td>" << s.shed << "</td><td>"
              << FormatDouble(s.peak_dram_bytes) << "</td><td>"
              << FormatDouble(s.utilization) << "</td></tr>\n";
        }
        out << "</table>\n";
      }
    }
    if (run.has_streams) {
      const LoadedStreams& st = run.streams;
      out << "<h3>Streams</h3>\n<p>" << st.count << " stream(s): "
          << "<span class=\"" << (st.shed == 0 ? "ok" : "bad") << "\">"
          << st.shed << " shed</span> (" << st.readmitted
          << " re-admitted, " << st.still_shed << " still shed), "
          << st.degraded << " degraded, " << st.underflow_streams
          << " with underflows; min envelope headroom "
          << FormatDouble(st.min_headroom) << "</p>\n";
      std::vector<const LoadedStreamEntry*> interesting;
      for (const auto& e : st.per_stream) {
        if (e.sheds > 0 || e.degrades > 0 || e.underflows > 0 ||
            e.headroom < 0.05) {
          interesting.push_back(&e);
        }
      }
      if (!interesting.empty()) {
        constexpr std::size_t kMaxRows = 20;
        out << "<table><tr><th>stream</th><th>phase</th><th>ios</th>"
            << "<th>underflows</th><th>sheds</th><th>readmits</th>"
            << "<th>degrades</th><th>headroom</th></tr>\n";
        for (std::size_t i = 0;
             i < interesting.size() && i < kMaxRows; ++i) {
          const LoadedStreamEntry& e = *interesting[i];
          out << "<tr><td>" << e.id << "</td><td>" << HtmlEscape(e.phase)
              << "</td><td>" << e.ios << "</td><td>" << e.underflows
              << "</td><td>" << e.sheds << "</td><td>" << e.readmits
              << "</td><td>" << e.degrades << "</td><td>"
              << FormatDouble(e.headroom) << "</td></tr>\n";
        }
        out << "</table>\n";
        if (interesting.size() > kMaxRows) {
          out << "<p class=\"src\">" << (interesting.size() - kMaxRows)
              << " more affected stream(s) in the JSON</p>\n";
        }
      }
    }
    if (run.has_slo) {
      out << "<h3>SLOs</h3>\n<p class=\""
          << (run.slo_healthy ? "ok" : "bad") << "\">"
          << (run.slo_healthy ? "All error budgets healthy."
                              : "At least one error budget exhausted.")
          << "</p>\n";
      if (!run.slos.empty()) {
        out << "<table><tr><th>slo</th><th>objective</th><th>good</th>"
            << "<th>bad</th><th>attainment</th><th>budget left</th>"
            << "<th>burn rate</th></tr>\n";
        for (const auto& s : run.slos) {
          out << "<tr><td" << (s.exhausted ? " class=\"bad\"" : "") << ">"
              << HtmlEscape(s.name) << "</td><td>"
              << FormatDouble(s.objective) << "</td><td>" << s.good
              << "</td><td>" << s.bad << "</td><td>"
              << FormatDouble(s.attainment) << "</td><td>"
              << FormatDouble(s.budget_remaining) << "</td><td>"
              << FormatDouble(s.burn_rate) << "</td></tr>\n";
        }
        out << "</table>\n";
      }
    }
    if (!run.timelines.empty()) {
      out << "<h3>Timelines</h3>\n<table><tr><th>series</th>"
          << "<th>unit</th><th>points</th><th>shape</th></tr>\n";
      for (const auto& s : run.timelines) {
        out << "<tr><td>" << HtmlEscape(s.name) << "</td><td>"
            << HtmlEscape(s.unit) << "</td><td>" << s.points.size()
            << "</td><td>" << SvgSparkline(s.points, 240, 36)
            << "</td></tr>\n";
      }
      out << "</table>\n";
    }
  }

  // Merged violation table.
  out << "<h2>Violations</h2>\n";
  const auto violations = bundle.AllViolations();
  if (violations.empty()) {
    out << "<p class=\"ok\">No QoS violations recorded.</p>\n";
  } else {
    out << "<table><tr><th>run</th><th>invariant</th><th>stream</th>"
        << "<th>cycle</th><th>t (s)</th><th>expected</th><th>observed</th>"
        << "<th>detail</th><th>trace idx</th></tr>\n";
    for (const auto& [run, v] : violations) {
      out << "<tr><td>" << HtmlEscape(run) << "</td><td class=\"bad\">"
          << HtmlEscape(v.invariant) << "</td><td>" << v.stream_id
          << "</td><td>" << v.cycle_index << "</td><td>"
          << FormatDouble(v.time) << "</td><td>" << FormatDouble(v.expected)
          << "</td><td>" << FormatDouble(v.observed) << "</td><td>"
          << HtmlEscape(v.detail) << "</td><td>" << v.trace_index
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  // Slack percentiles across every attached metrics source.
  out << "<h2>Slack percentiles</h2>\n";
  const auto slack = bundle.HistogramsMatching("slack");
  if (slack.empty()) {
    out << "<p class=\"src\">No slack histograms found.</p>\n";
  } else {
    out << "<table><tr><th>source</th><th>metric</th><th>count</th>"
        << "<th>min</th><th>p50</th><th>p95</th><th>p99</th><th>max</th>"
        << "</tr>\n";
    for (const auto& [src, s] : slack) {
      out << "<tr><td>" << HtmlEscape(src) << "</td><td>"
          << HtmlEscape(s.name) << "</td><td>" << s.count << "</td><td>"
          << FormatDouble(s.min) << "</td><td>" << FormatDouble(s.p50)
          << "</td><td>" << FormatDouble(s.p95) << "</td><td>"
          << FormatDouble(s.p99) << "</td><td>" << FormatDouble(s.max)
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  // Bench wall-clock trajectory.
  out << "<h2>Bench trajectory</h2>\n";
  if (bundle.bench.empty()) {
    out << "<p class=\"src\">No bench sweep records found.</p>\n";
  } else {
    out << "<table><tr><th>bench</th><th>tasks</th><th>threads</th>"
        << "<th>wall (s)</th><th>events</th><th>events/s</th></tr>\n";
    for (const auto& b : bundle.bench) {
      out << "<tr><td>" << HtmlEscape(b.bench) << "</td><td>" << b.tasks
          << "</td><td>" << b.threads << "</td><td>"
          << FormatDouble(b.wall_seconds) << "</td><td>" << b.events
          << "</td><td>" << FormatDouble(b.events_per_sec)
          << "</td></tr>\n";
    }
    out << "</table>\n";
    std::vector<TimelinePoint> wall;
    for (std::size_t i = 0; i < bundle.bench.size(); ++i) {
      wall.push_back(TimelinePoint{static_cast<double>(i),
                                   bundle.bench[i].wall_seconds});
    }
    const std::string spark = SvgSparkline(wall, 480, 80);
    if (!spark.empty()) {
      out << "<p>wall-clock across records: " << spark << "</p>\n";
    }
  }

  // Perf trajectory: one row per (bench, kind, smoke) key with an SVG
  // sparkline of its metric across harness runs.
  out << "<h2>Perf trajectory</h2>\n";
  if (bundle.perf.empty()) {
    out << "<p class=\"src\">No perf-trajectory records found.</p>\n";
  } else {
    out << "<table><tr><th>bench</th><th>kind</th><th>smoke</th>"
        << "<th>runs</th><th>metric</th><th>latest</th>"
        << "<th>wall p99 (s)</th><th>allocs/op</th><th>trend</th></tr>\n";
    for (const auto& g : GroupPerfRecords(bundle.perf)) {
      const LoadedPerfRecord& r = *g.latest;
      std::vector<TimelinePoint> pts;
      for (std::size_t i = 0; i < g.series.size(); ++i) {
        pts.push_back(TimelinePoint{static_cast<double>(i), g.series[i]});
      }
      out << "<tr><td>" << HtmlEscape(r.bench) << "</td><td>"
          << HtmlEscape(r.kind) << "</td><td>" << (r.smoke ? "yes" : "no")
          << "</td><td>" << g.series.size() << "</td><td>" << g.metric
          << "</td><td>" << FormatDouble(g.series.back()) << "</td><td>"
          << FormatDouble(r.wall_p99) << "</td><td>"
          << (r.allocs_per_event >= 0 ? FormatDouble(r.allocs_per_event)
                                      : std::string("-"))
          << "</td><td>" << SvgSparkline(pts, 160, 36) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "</body>\n</html>\n";
  return out.str();
}

// --- differential run comparison ---

namespace {

using KeyValues = std::vector<std::pair<std::string, double>>;

/// Matches two key/value lists into diff rows: keys in `a`'s order, then
/// `b`-only keys in `b`'s order. First occurrence wins on duplicates.
std::vector<DiffRow> DiffKeyValues(const KeyValues& a, const KeyValues& b,
                                   const DiffOptions& options) {
  std::vector<DiffRow> out;
  auto find = [](const KeyValues& kv, const std::string& key) {
    for (const auto& [k, v] : kv) {
      if (k == key) return std::make_pair(true, v);
    }
    return std::make_pair(false, 0.0);
  };
  auto seen = [&out](const std::string& key) {
    for (const auto& row : out) {
      if (row.key == key) return true;
    }
    return false;
  };
  auto classify = [&options](DiffRow* row) {
    if (row->only_a || row->only_b) {
      row->significant =
          std::abs(row->a) + std::abs(row->b) > options.abs_epsilon;
      return;
    }
    row->delta = row->b - row->a;
    row->rel = row->a != 0 ? row->delta / std::abs(row->a) : 0;
    row->significant =
        std::abs(row->delta) > options.abs_epsilon &&
        (row->a == 0 || std::abs(row->rel) > options.rel_threshold);
  };
  for (const auto& [key, va] : a) {
    if (seen(key)) continue;
    DiffRow row;
    row.key = key;
    row.a = va;
    const auto [found, vb] = find(b, key);
    if (found) {
      row.b = vb;
    } else {
      row.only_a = true;
    }
    classify(&row);
    out.push_back(std::move(row));
  }
  for (const auto& [key, vb] : b) {
    if (seen(key)) continue;
    DiffRow row;
    row.key = key;
    row.b = vb;
    row.only_b = true;
    classify(&row);
    out.push_back(std::move(row));
  }
  return out;
}

KeyValues QosKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  if (!run.has_qos) return kv;
  kv.emplace_back("total_violations",
                  static_cast<double>(run.total_violations));
  kv.emplace_back("disk_cycles_audited",
                  static_cast<double>(run.disk_cycles_audited));
  kv.emplace_back("mems_cycles_audited",
                  static_cast<double>(run.mems_cycles_audited));
  return kv;
}

KeyValues FaultKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  if (!run.has_faults) return kv;
  const LoadedFaults& f = run.faults;
  kv.emplace_back("events", static_cast<double>(f.events));
  kv.emplace_back("repairs", static_cast<double>(f.repairs));
  kv.emplace_back("replans", static_cast<double>(f.replans));
  kv.emplace_back("sheds", static_cast<double>(f.sheds));
  kv.emplace_back("readmits", static_cast<double>(f.readmits));
  kv.emplace_back("total_shed_time", f.total_shed_time);
  return kv;
}

KeyValues StreamKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  if (!run.has_streams) return kv;
  const LoadedStreams& s = run.streams;
  kv.emplace_back("count", static_cast<double>(s.count));
  kv.emplace_back("shed", static_cast<double>(s.shed));
  kv.emplace_back("readmitted", static_cast<double>(s.readmitted));
  kv.emplace_back("still_shed", static_cast<double>(s.still_shed));
  kv.emplace_back("degraded", static_cast<double>(s.degraded));
  kv.emplace_back("underflow_streams",
                  static_cast<double>(s.underflow_streams));
  kv.emplace_back("total_underflows",
                  static_cast<double>(s.total_underflows));
  kv.emplace_back("min_headroom", s.min_headroom);
  return kv;
}

KeyValues FarmKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  if (!run.has_farm) return kv;
  const LoadedFarm& f = run.farm;
  kv.emplace_back("shards", static_cast<double>(f.shards));
  kv.emplace_back("total_copies", static_cast<double>(f.total_copies));
  kv.emplace_back("offered", static_cast<double>(f.offered));
  kv.emplace_back("admitted", static_cast<double>(f.admitted));
  kv.emplace_back("rejected", static_cast<double>(f.rejected));
  kv.emplace_back("failovers", static_cast<double>(f.failovers));
  kv.emplace_back("shed", static_cast<double>(f.shed));
  kv.emplace_back("readmits", static_cast<double>(f.readmits));
  kv.emplace_back("availability", f.availability);
  kv.emplace_back("peak_dram_per_shard", f.peak_dram_per_shard);
  kv.emplace_back("mean_utilization", f.mean_utilization);
  for (const auto& s : f.per_shard) {
    const std::string prefix = "shard" + std::to_string(s.shard) + ".";
    kv.emplace_back(prefix + "streams", static_cast<double>(s.streams));
    kv.emplace_back(prefix + "ios", static_cast<double>(s.ios));
    kv.emplace_back(prefix + "underflow_events",
                    static_cast<double>(s.underflow_events));
    kv.emplace_back(prefix + "peak_dram_bytes", s.peak_dram_bytes);
    kv.emplace_back(prefix + "utilization", s.utilization);
  }
  return kv;
}

KeyValues SloKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  for (const auto& s : run.slos) {
    kv.emplace_back(s.name + ".attainment", s.attainment);
    kv.emplace_back(s.name + ".budget_remaining", s.budget_remaining);
    kv.emplace_back(s.name + ".burn_rate", s.burn_rate);
  }
  return kv;
}

KeyValues MetricKeyValues(const LoadedRunReport& run) {
  KeyValues kv;
  for (const auto& m : run.metrics) kv.emplace_back(m.name, m.value);
  return kv;
}

/// Wall seconds of the latest perf/bench record per bench key.
KeyValues PerfKeyValues(const ReportBundle& bundle) {
  KeyValues kv;
  auto upsert = [&kv](const std::string& key, double value) {
    for (auto& [k, v] : kv) {
      if (k == key) {
        v = value;  // later records win (run order)
        return;
      }
    }
    kv.emplace_back(key, value);
  };
  for (const auto& b : bundle.bench) {
    upsert(b.bench + " (sweep wall s)", b.wall_seconds);
  }
  for (const auto& p : bundle.perf) {
    upsert(p.bench + "/" + p.kind + " (wall s)", p.wall_seconds);
  }
  return kv;
}

struct DiffSection {
  const char* name;
  const std::vector<DiffRow>* rows;
  std::size_t elided = 0;
};

std::vector<DiffSection> Sections(const RunPairDiff& pair) {
  return {
      {"analytic", &pair.analytic},
      {"simulated", &pair.simulated},
      {"qos", &pair.qos},
      {"faults", &pair.faults},
      {"farm", &pair.farm},
      {"streams", &pair.streams},
      {"slo", &pair.slo},
      {"metrics", &pair.metrics, pair.metrics_elided},
  };
}

std::size_t CountSignificant(const std::vector<DiffRow>& rows) {
  std::size_t n = 0;
  for (const auto& r : rows) n += r.significant ? 1 : 0;
  return n;
}

std::string DiffCell(const DiffRow& r) {
  if (r.only_a) return "only in A";
  if (r.only_b) return "only in B";
  return FormatDouble(r.delta) + " (" + FormatDouble(r.rel * 100) + "%)";
}

}  // namespace

std::size_t BundleDiff::SignificantCount() const {
  std::size_t n = CountSignificant(perf);
  for (const auto& pair : pairs) {
    for (const auto& section : Sections(pair)) {
      n += CountSignificant(*section.rows);
    }
  }
  return n;
}

BundleDiff ComputeBundleDiff(const ReportBundle& a, const ReportBundle& b,
                             const DiffOptions& options,
                             const std::string& label_a,
                             const std::string& label_b) {
  BundleDiff diff;
  diff.label_a = label_a;
  diff.label_b = label_b;

  // Match runs by title first; leftovers pair up in input order, so two
  // single-run bundles always compare even when titled differently.
  std::vector<const LoadedRunReport*> unmatched_b;
  for (const auto& run : b.runs) unmatched_b.push_back(&run);
  std::vector<std::pair<const LoadedRunReport*, const LoadedRunReport*>>
      matched;
  std::vector<const LoadedRunReport*> leftover_a;
  for (const auto& run : a.runs) {
    bool found = false;
    for (auto& candidate : unmatched_b) {
      if (candidate != nullptr && candidate->title == run.title) {
        matched.emplace_back(&run, candidate);
        candidate = nullptr;
        found = true;
        break;
      }
    }
    if (!found) leftover_a.push_back(&run);
  }
  for (const auto* run : leftover_a) {
    bool found = false;
    for (auto& candidate : unmatched_b) {
      if (candidate != nullptr) {
        matched.emplace_back(run, candidate);
        candidate = nullptr;
        found = true;
        break;
      }
    }
    if (!found) diff.only_in_a.push_back(run->title);
  }
  for (const auto* candidate : unmatched_b) {
    if (candidate != nullptr) diff.only_in_b.push_back(candidate->title);
  }

  for (const auto& [ra, rb] : matched) {
    RunPairDiff pair;
    pair.title = ra->title == rb->title
                     ? ra->title
                     : ra->title + " vs " + rb->title;
    pair.analytic = DiffKeyValues(ra->analytic, rb->analytic, options);
    pair.simulated = DiffKeyValues(ra->simulated, rb->simulated, options);
    pair.qos = DiffKeyValues(QosKeyValues(*ra), QosKeyValues(*rb), options);
    pair.faults =
        DiffKeyValues(FaultKeyValues(*ra), FaultKeyValues(*rb), options);
    pair.farm =
        DiffKeyValues(FarmKeyValues(*ra), FarmKeyValues(*rb), options);
    pair.streams =
        DiffKeyValues(StreamKeyValues(*ra), StreamKeyValues(*rb), options);
    pair.slo = DiffKeyValues(SloKeyValues(*ra), SloKeyValues(*rb), options);
    pair.metrics =
        DiffKeyValues(MetricKeyValues(*ra), MetricKeyValues(*rb), options);
    // Metrics arrays are the big section; keep every significant row but
    // cap the unchanged ones so the diff stays a triage document.
    std::vector<DiffRow> kept;
    std::size_t insignificant = 0;
    for (auto& row : pair.metrics) {
      if (row.significant ||
          insignificant < options.max_insignificant_metric_rows) {
        insignificant += row.significant ? 0 : 1;
        kept.push_back(std::move(row));
      } else {
        ++pair.metrics_elided;
      }
    }
    pair.metrics = std::move(kept);
    diff.pairs.push_back(std::move(pair));
  }

  diff.perf = DiffKeyValues(PerfKeyValues(a), PerfKeyValues(b), options);
  return diff;
}

std::string RenderMarkdownDiff(const BundleDiff& diff,
                               const std::string& title) {
  std::ostringstream out;
  out << "# " << title << "\n\n";
  out << "A: `" << diff.label_a << "`\n";
  out << "B: `" << diff.label_b << "`\n\n";
  out << diff.SignificantCount() << " significant difference(s)\n\n";
  for (const auto& t : diff.only_in_a) {
    out << "> run only in A: " << MdEscape(t) << "\n\n";
  }
  for (const auto& t : diff.only_in_b) {
    out << "> run only in B: " << MdEscape(t) << "\n\n";
  }
  for (const auto& pair : diff.pairs) {
    out << "## " << MdEscape(pair.title) << "\n\n";
    for (const auto& section : Sections(pair)) {
      if (section.rows->empty() && section.elided == 0) continue;
      const std::size_t significant = CountSignificant(*section.rows);
      out << "### " << section.name << "\n\n";
      if (significant == 0) {
        out << "No significant differences ("
            << section.rows->size() + section.elided
            << " compared).\n\n";
        continue;
      }
      out << "| key | A | B | delta |\n|---|---|---|---|\n";
      for (const auto& r : *section.rows) {
        if (!r.significant) continue;
        out << "| **" << MdEscape(r.key) << "** | "
            << (r.only_b ? std::string("-") : FormatDouble(r.a)) << " | "
            << (r.only_a ? std::string("-") : FormatDouble(r.b)) << " | "
            << DiffCell(r) << " |\n";
      }
      out << "\n("
          << section.rows->size() + section.elided - significant
          << " insignificant row(s) elided)\n\n";
    }
  }
  out << "## Perf\n\n";
  if (diff.perf.empty()) {
    out << "No perf/bench records on either side.\n\n";
  } else if (CountSignificant(diff.perf) == 0) {
    out << "No significant perf differences (" << diff.perf.size()
        << " compared).\n\n";
  } else {
    out << "| bench | A | B | delta |\n|---|---|---|---|\n";
    for (const auto& r : diff.perf) {
      if (!r.significant) continue;
      out << "| **" << MdEscape(r.key) << "** | "
          << (r.only_b ? std::string("-") : FormatDouble(r.a)) << " | "
          << (r.only_a ? std::string("-") : FormatDouble(r.b)) << " | "
          << DiffCell(r) << " |\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderHtmlDiff(const BundleDiff& diff, const std::string& title) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n<title>" << HtmlEscape(title)
      << "</title>\n<style>\n"
      << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
         "max-width:70em;padding:0 1em;color:#1c2733}\n"
      << "h1,h2{border-bottom:1px solid #d8dee4;padding-bottom:.2em}\n"
      << "table{border-collapse:collapse;margin:.8em 0}\n"
      << "th,td{border:1px solid #d8dee4;padding:.25em .6em;"
         "text-align:left}\n"
      << "th{background:#f3f6f9}\n"
      << "tr.sig td{background:#fff4e8;font-weight:600}\n"
      << ".src{color:#5a6b7a;font-size:12px}\n"
      << ".ok{color:#1a6b2f}\n"
      << "</style>\n</head>\n<body>\n";
  out << "<h1>" << HtmlEscape(title) << "</h1>\n";
  out << "<p class=\"src\">A: " << HtmlEscape(diff.label_a) << "<br>B: "
      << HtmlEscape(diff.label_b) << "</p>\n";
  out << "<p>" << diff.SignificantCount()
      << " significant difference(s)</p>\n";
  for (const auto& t : diff.only_in_a) {
    out << "<p class=\"src\">run only in A: " << HtmlEscape(t) << "</p>\n";
  }
  for (const auto& t : diff.only_in_b) {
    out << "<p class=\"src\">run only in B: " << HtmlEscape(t) << "</p>\n";
  }
  auto render_rows = [&out](const std::vector<DiffRow>& rows) {
    out << "<table><tr><th>key</th><th>A</th><th>B</th><th>delta</th>"
        << "</tr>\n";
    for (const auto& r : rows) {
      if (!r.significant) continue;
      out << "<tr class=\"sig\"><td>" << HtmlEscape(r.key) << "</td><td>"
          << (r.only_b ? std::string("-") : FormatDouble(r.a))
          << "</td><td>"
          << (r.only_a ? std::string("-") : FormatDouble(r.b))
          << "</td><td>" << HtmlEscape(DiffCell(r)) << "</td></tr>\n";
    }
    out << "</table>\n";
  };
  for (const auto& pair : diff.pairs) {
    out << "<h2>" << HtmlEscape(pair.title) << "</h2>\n";
    for (const auto& section : Sections(pair)) {
      if (section.rows->empty() && section.elided == 0) continue;
      const std::size_t significant = CountSignificant(*section.rows);
      out << "<h3>" << section.name << "</h3>\n";
      if (significant == 0) {
        out << "<p class=\"ok\">No significant differences ("
            << section.rows->size() + section.elided << " compared).</p>\n";
        continue;
      }
      render_rows(*section.rows);
      out << "<p class=\"src\">"
          << section.rows->size() + section.elided - significant
          << " insignificant row(s) elided</p>\n";
    }
  }
  out << "<h2>Perf</h2>\n";
  if (CountSignificant(diff.perf) == 0) {
    out << "<p class=\"ok\">No significant perf differences ("
        << diff.perf.size() << " compared).</p>\n";
  } else {
    render_rows(diff.perf);
  }
  out << "</body>\n</html>\n";
  return out.str();
}

}  // namespace memstream::obs
