#include "obs/qos_auditor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/profiler.h"

namespace memstream::obs {

namespace {

/// Index of the next record appended to `log` in the global (including
/// evicted) sequence.
std::int64_t NextTraceIndex(const sim::TraceLog& log) {
  return log.dropped_records() +
         static_cast<std::int64_t>(log.records().size());
}

}  // namespace

const char* QosInvariantName(QosInvariant invariant) {
  switch (invariant) {
    case QosInvariant::kDiskCycleOverrun:
      return "disk_cycle_overrun";
    case QosInvariant::kMemsCycleOverrun:
      return "mems_cycle_overrun";
    case QosInvariant::kIoCount:
      return "io_count";
    case QosInvariant::kIoBytes:
      return "io_bytes";
    case QosInvariant::kDramBound:
      return "dram_bound";
    case QosInvariant::kDramTotalBound:
      return "dram_total_bound";
    case QosInvariant::kMemsStorageBound:
      return "mems_storage_bound";
    case QosInvariant::kCycleNesting:
      return "cycle_nesting";
  }
  return "?";
}

std::string QosViolation::ToString() const {
  std::ostringstream out;
  out << QosInvariantName(invariant);
  if (stream_id >= 0) out << ": stream " << stream_id;
  if (cycle_index >= 0) out << " cycle " << cycle_index;
  out << " t=" << time << "s: observed " << observed << " vs expected "
      << expected;
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

QosAuditor::QosAuditor(const QosAuditorConfig& config) : config_(config) {
  if (config_.tolerance < 0) config_.tolerance = 0;
  violations_.reserve(config_.max_violations);
  if (MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    if (config_.disk_cycle > 0) {
      const double ms = config_.disk_cycle / kMillisecond;
      disk_slack_hist_ =
          metrics->histogram("qos.disk.cycle_slack_ms", {-ms, ms, 40});
    }
    if (config_.mems_cycle > 0) {
      const double ms = config_.mems_cycle / kMillisecond;
      mems_slack_hist_ =
          metrics->histogram("qos.mems.cycle_slack_ms", {-ms, ms, 40});
    }
    // Headroom as a fraction of the per-stream bound: 1 = empty buffer,
    // 0 = exactly at the bound, negative = violation.
    dram_headroom_hist_ =
        metrics->histogram("qos.dram_headroom_frac", {-0.5, 1.0, 30});
    violations_metric_ = metrics->counter("qos.violations");
    cycles_metric_ = metrics->counter("qos.cycles_audited");
    metrics->SetHelp("qos.violations",
                     "Invariant breaches detected by the online QoS "
                     "auditor (distinct excursions, not samples)");
    metrics->SetHelp("qos.dram_headroom_frac",
                     "Per-stream DRAM headroom (bound - level) / bound "
                     "at every occupancy sample");
  }
}

std::size_t QosAuditor::AddStream(std::int64_t id, BytesPerSecond bit_rate,
                                  Bytes dram_bound, QosDomain domain,
                                  std::int64_t device) {
  StreamState st;
  st.id = id;
  st.bit_rate = bit_rate;
  st.dram_bound = dram_bound;
  st.domain = domain;
  st.device = device < 0 ? 0 : device;
  streams_.push_back(st);
  sealed_ = false;
  return streams_.size() - 1;
}

void QosAuditor::Seal() {
  if (sealed_) return;
  sealed_ = true;

  std::int64_t max_device = 0;
  for (const auto& st : streams_) max_device = std::max(max_device, st.device);
  mems_cycle_index_.assign(
      static_cast<std::size_t>(
          std::max({config_.mems_devices, max_device + 1,
                    static_cast<std::int64_t>(1)})),
      0);

  if (!config_.nested_cycles) return;
  const auto n = static_cast<double>(streams_.size());
  if (n <= 0 || config_.disk_cycle <= 0) return;

  // Eq. 7: the MEMS bank stores every byte twice (written once, read
  // once), so 2 * T_disk * sum(B̄_i) must fit in k * Size_mems.
  if (config_.mems_devices > 0 && config_.mems_device_capacity > 0) {
    Bytes rate_sum = 0;
    for (const auto& st : streams_) rate_sum += st.bit_rate;
    const Bytes used = 2.0 * config_.disk_cycle * rate_sum;
    const Bytes avail = static_cast<double>(config_.mems_devices) *
                        config_.mems_device_capacity;
    if (used > avail * (1.0 + config_.tolerance)) {
      Report(QosInvariant::kMemsStorageBound, -1, -1, 0, avail, used,
             "Eq. 7: 2*N*T_disk*B exceeds k*Size_mems");
    }
  }

  // Eq. 8: T_mems / T_disk must equal M/N for an integer M, so that M
  // MEMS cycles nest exactly inside one disk cycle.
  if (config_.mems_cycle > 0) {
    const double m = n * config_.mems_cycle / config_.disk_cycle;
    if (std::abs(m - std::round(m)) > config_.tolerance * n) {
      Report(QosInvariant::kCycleNesting, -1, -1, 0, std::round(m), m,
             "Eq. 8: N*T_mems/T_disk is not an integer M");
    }
  }
}

void QosAuditor::Report(QosInvariant invariant, std::int64_t stream_id,
                        std::int64_t cycle_index, Seconds time,
                        double expected, double observed,
                        const std::string& detail) {
  ++total_violations_;
  Increment(violations_metric_);

  QosViolation v;
  v.invariant = invariant;
  v.stream_id = stream_id;
  v.cycle_index = cycle_index;
  v.time = time;
  v.expected = expected;
  v.observed = observed;
  v.detail = detail;
  if (config_.trace != nullptr) {
    v.trace_index = NextTraceIndex(*config_.trace);
    config_.trace->Append({time, sim::TraceKind::kNote, "qos", stream_id, 0,
                           "QOS " + v.ToString()});
  }
  if (violations_.size() < config_.max_violations) {
    violations_.push_back(std::move(v));
  }
}

void QosAuditor::SetStreamActive(std::size_t index, bool active) {
  if (index >= streams_.size()) return;
  StreamState& st = streams_[index];
  if (!st.active && active) st.grace = true;  // rejoin at the next boundary
  st.active = active;
  st.ios_in_cycle = 0;
}

void QosAuditor::SetStreamDomain(std::size_t index, QosDomain domain,
                                 std::int64_t device) {
  if (index >= streams_.size()) return;
  StreamState& st = streams_[index];
  st.domain = domain;
  st.device = device < 0 ? 0 : device;
  st.grace = true;  // mid-cycle switch: the old domain owes no IO
  st.ios_in_cycle = 0;
}

void QosAuditor::SetStreamDramBound(std::size_t index, Bytes dram_bound) {
  if (index >= streams_.size()) return;
  streams_[index].dram_bound = dram_bound;
  streams_[index].over_bound = false;
}

void QosAuditor::CloseCycle(QosDomain domain, std::int64_t device,
                            std::int64_t cycle_index, Seconds time) {
  for (auto& st : streams_) {
    if (st.domain != domain) continue;
    if (domain == QosDomain::kMems && device >= 0 && st.device != device) {
      continue;
    }
    if (!st.active) {
      st.ios_in_cycle = 0;
      continue;
    }
    if (st.grace) {
      st.grace = false;
      st.ios_in_cycle = 0;
      continue;
    }
    if (st.ios_in_cycle != 1) {
      Report(QosInvariant::kIoCount, st.id, cycle_index, time, 1.0,
             static_cast<double>(st.ios_in_cycle),
             "not exactly one IO this cycle");
    }
    st.ios_in_cycle = 0;
  }
}

void QosAuditor::EndDiskCycle(Seconds t0, Seconds busy) {
  PROF_SCOPE("obs.qos.disk_cycle_audit");
  if (!sealed_ || config_.disk_cycle <= 0) return;
  Increment(cycles_metric_);
  Observe(disk_slack_hist_, (config_.disk_cycle - busy) / kMillisecond);
  if (busy > config_.disk_cycle * (1.0 + config_.tolerance)) {
    Report(QosInvariant::kDiskCycleOverrun, -1, disk_cycles_, t0 + busy,
           config_.disk_cycle, busy, "disk batch overran its cycle");
  }
  CloseCycle(QosDomain::kDisk, -1, disk_cycles_, t0 + busy);
  ++disk_cycles_;
}

void QosAuditor::EndMemsCycle(std::int64_t device, Seconds t0, Seconds busy) {
  PROF_SCOPE("obs.qos.mems_cycle_audit");
  if (!sealed_ || config_.mems_cycle <= 0) return;
  Increment(cycles_metric_);
  Observe(mems_slack_hist_, (config_.mems_cycle - busy) / kMillisecond);
  const std::size_t idx =
      device >= 0 &&
              device < static_cast<std::int64_t>(mems_cycle_index_.size())
          ? static_cast<std::size_t>(device)
          : 0;
  if (busy > config_.mems_cycle * (1.0 + config_.tolerance)) {
    Report(QosInvariant::kMemsCycleOverrun, -1, mems_cycle_index_[idx],
           t0 + busy, config_.mems_cycle, busy,
           "MEMS batch overran its cycle (device " + std::to_string(device) +
               ")");
  }
  CloseCycle(QosDomain::kMems, device, mems_cycle_index_[idx], t0 + busy);
  ++mems_cycle_index_[idx];
  ++mems_cycles_;
}

void QosAuditor::RecordIo(std::size_t index, Bytes bytes) {
  if (!sealed_ || index >= streams_.size()) return;
  StreamState& st = streams_[index];
  ++st.ios_in_cycle;
  const Seconds cycle = st.domain == QosDomain::kMems ? config_.mems_cycle
                                                      : config_.disk_cycle;
  if (cycle <= 0 || st.domain == QosDomain::kNone) return;
  const Bytes expected = st.bit_rate * cycle;
  if (std::abs(bytes - expected) > expected * config_.tolerance) {
    const std::size_t dev_idx =
        st.device < static_cast<std::int64_t>(mems_cycle_index_.size())
            ? static_cast<std::size_t>(st.device)
            : 0;
    const std::int64_t cycle_index = st.domain == QosDomain::kMems
                                         ? mems_cycle_index_[dev_idx]
                                         : disk_cycles_;
    Report(QosInvariant::kIoBytes, st.id, cycle_index, 0, expected, bytes,
           "IO size differs from bit_rate * cycle");
  }
}

void QosAuditor::RecordDramLevel(std::size_t index, Seconds now,
                                 Bytes level) {
  if (!sealed_ || index >= streams_.size()) return;
  StreamState& st = streams_[index];
  dram_level_sum_ += level - st.last_level;
  st.last_level = level;

  const std::int64_t cycle_index =
      st.domain == QosDomain::kMems
          ? mems_cycle_index_[st.device <
                                      static_cast<std::int64_t>(
                                          mems_cycle_index_.size())
                                  ? static_cast<std::size_t>(st.device)
                                  : 0]
          : (st.domain == QosDomain::kDisk ? disk_cycles_ : -1);

  if (st.dram_bound > 0) {
    Observe(dram_headroom_hist_, (st.dram_bound - level) / st.dram_bound);
    const bool over = level > st.dram_bound * (1.0 + config_.tolerance);
    if (over && !st.over_bound) {
      Report(QosInvariant::kDramBound, st.id, cycle_index, now,
             st.dram_bound, level,
             "per-stream DRAM occupancy above its sizing");
    }
    st.over_bound = over;
  }
  if (config_.dram_total_bound > 0) {
    const bool over = dram_level_sum_ >
                      config_.dram_total_bound * (1.0 + config_.tolerance);
    if (over && !over_total_) {
      Report(QosInvariant::kDramTotalBound, st.id, cycle_index, now,
             config_.dram_total_bound, dram_level_sum_,
             "summed DRAM occupancy above the total budget");
    }
    over_total_ = over;
  }
}

std::string QosAuditor::Summary() const {
  std::ostringstream out;
  out << "qos: " << total_violations_ << " violation"
      << (total_violations_ == 1 ? "" : "s") << " over " << disk_cycles_
      << " disk + " << mems_cycles_ << " MEMS cycles (" << streams_.size()
      << " streams)";
  return out.str();
}

}  // namespace memstream::obs
