// Run-report aggregation: loads one-or-many run.report.json documents,
// metrics CSV snapshots, and BENCH_sweeps.json files into a single
// bundle and renders it as merged Markdown or a standalone single-file
// HTML dashboard (inline CSS + SVG, no external assets). This is the
// library behind tools/memstream-report; the CLI is a thin argv shim so
// tests exercise the real logic in-process.

#ifndef MEMSTREAM_OBS_REPORT_MERGE_H_
#define MEMSTREAM_OBS_REPORT_MERGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace memstream::obs {

/// What a given input file parsed as.
enum class ReportInputKind {
  kRunReport,       ///< a RunReport JSON document (schema v1 or v2)
  kBenchSweeps,     ///< a BENCH_sweeps.json array of bench cost records
  kPerfTrajectory,  ///< a BENCH_trajectory.json array of perf records
  kMetricsCsv,      ///< a MetricsRegistry::ToCsvText() snapshot
  kUnknown,
};

/// One QoS violation as read back from a report (invariant kept as its
/// wire name; the reader does not need the enum).
struct LoadedViolation {
  std::string invariant;
  std::int64_t stream_id = -1;
  std::int64_t cycle_index = -1;
  double time = 0;
  double expected = 0;
  double observed = 0;
  std::string detail;
  std::int64_t trace_index = -1;
};

/// One timeline series as read back from a report.
struct LoadedSeries {
  std::string name;
  std::string unit;
  std::vector<TimelinePoint> points;
};

/// One fault timeline entry as read back from a report's "faults" block.
struct LoadedFaultEntry {
  double time = 0;
  std::string kind;
  std::int64_t device = -1;
  double magnitude = 0;
  std::string action;  ///< re-plan applied / "cleared"; "" = none
};

/// One shed/re-admit ledger row from the "faults" block.
struct LoadedShedRecord {
  std::int64_t stream_id = -1;
  double shed_time = 0;
  std::int64_t shed_cycle = -1;
  double readmit_time = -1;  ///< -1 = never re-admitted
};

/// The "faults" block of one run, loaded.
struct LoadedFaults {
  std::int64_t events = 0;
  std::int64_t repairs = 0;
  std::int64_t replans = 0;
  std::int64_t sheds = 0;
  std::int64_t readmits = 0;
  std::int64_t dropped_during_burst = 0;
  double total_shed_time = 0;
  std::vector<LoadedFaultEntry> timeline;
  std::vector<LoadedShedRecord> shed_streams;
};

/// One per-stream row of a report's "streams" block (schema v4).
struct LoadedStreamEntry {
  std::int64_t id = -1;
  std::string phase;  ///< "admitted"|"playing"|"degraded"|"shed"|"departed"
  std::int64_t ios = 0;
  std::int64_t underflows = 0;
  std::int64_t sheds = 0;
  std::int64_t readmits = 0;
  std::int64_t degrades = 0;
  double headroom = 1.0;
  double occ_p95 = 0;
};

/// The "streams" block (per-stream lifecycle journal) of one run.
struct LoadedStreams {
  std::int64_t count = 0;
  std::int64_t departed = 0;
  std::int64_t shed = 0;
  std::int64_t still_shed = 0;
  std::int64_t readmitted = 0;
  std::int64_t degraded = 0;
  std::int64_t underflow_streams = 0;
  std::int64_t total_ios = 0;
  std::int64_t total_underflows = 0;
  double min_headroom = 1.0;
  std::vector<LoadedStreamEntry> per_stream;
};

/// One per-shard row of a report's "farm" block (schema v4 additive).
struct LoadedFarmShard {
  std::int64_t shard = 0;
  std::int64_t streams = 0;
  std::int64_t ios = 0;
  std::int64_t underflow_events = 0;
  std::int64_t cycle_overruns = 0;
  std::int64_t qos_violations = 0;
  std::int64_t failed_over_in = 0;
  std::int64_t shed = 0;
  double peak_dram_bytes = 0;
  double utilization = 0;
};

/// The "farm" block (sharded scale-out run) of one run.
struct LoadedFarm {
  std::string policy;
  std::int64_t shards = 0;
  std::int64_t titles = 0;
  std::int64_t total_copies = 0;
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t failovers = 0;
  std::int64_t shed = 0;
  std::int64_t readmits = 0;
  double availability = 1.0;
  double peak_dram_per_shard = 0;
  double mean_utilization = 0;
  std::vector<LoadedFarmShard> per_shard;
};

/// One SLO row of a report's "slo" block (schema v4).
struct LoadedSlo {
  std::string name;
  double objective = 0;
  std::int64_t good = 0;
  std::int64_t bad = 0;
  double attainment = 1.0;
  double budget_remaining = 1.0;
  double burn_rate = 0;
  bool exhausted = false;
};

/// One run.report.json, loaded.
struct LoadedRunReport {
  std::string path;
  std::string title;
  std::int64_t schema_version = 0;
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> analytic;
  std::vector<std::pair<std::string, double>> simulated;
  std::vector<MetricSample> metrics;

  bool has_qos = false;
  std::int64_t total_violations = 0;
  std::int64_t disk_cycles_audited = 0;
  std::int64_t mems_cycles_audited = 0;
  std::vector<LoadedViolation> violations;

  bool has_faults = false;
  LoadedFaults faults;

  bool has_streams = false;
  LoadedStreams streams;

  bool has_farm = false;
  LoadedFarm farm;

  bool has_slo = false;
  bool slo_healthy = true;
  std::vector<LoadedSlo> slos;

  std::int64_t trace_dropped_records = -1;
  std::vector<LoadedSeries> timelines;

  /// simulated[key] - analytic[key] for keys present in both.
  struct Delta {
    std::string key;
    double analytic = 0;
    double simulated = 0;
    double delta = 0;
    double rel = 0;  ///< delta / |analytic| (0 when analytic == 0)
  };
  std::vector<Delta> Deltas() const;
};

/// One bench cost record from BENCH_sweeps.json (mirrors
/// exp::BenchSweepRecord without the exp dependency).
struct LoadedBenchRecord {
  std::string bench;
  std::int64_t tasks = 0;
  std::int64_t threads = 1;
  double wall_seconds = 0;
  std::int64_t events = 0;
  double events_per_sec = 0;
};

/// One perf-trajectory record from BENCH_trajectory.json (mirrors
/// exp::PerfRecord without the exp dependency).
struct LoadedPerfRecord {
  std::string bench;
  std::string kind;  ///< "sweep" | "micro"
  bool smoke = false;
  std::int64_t run = 0;
  std::int64_t repeats = 1;
  double wall_seconds = 0;
  double wall_p50 = 0;
  double wall_p99 = 0;
  double events_per_sec = 0;
  double allocs_per_event = -1;
};

/// Everything the dashboard renders, merged across input files.
struct ReportBundle {
  std::vector<LoadedRunReport> runs;
  /// Metrics CSV snapshots: (source path, parsed rows).
  std::vector<std::pair<std::string, std::vector<MetricSample>>> csvs;
  std::vector<LoadedBenchRecord> bench;
  std::vector<LoadedPerfRecord> perf;
  /// Per-file load problems (file kept out of the bundle).
  std::vector<std::string> errors;

  /// All violations across runs, tagged with the run title.
  std::vector<std::pair<std::string, LoadedViolation>> AllViolations() const;
  /// Histogram-kind metric samples whose name mentions `needle`
  /// (e.g. "slack"), tagged with their source (run title or CSV path).
  std::vector<std::pair<std::string, MetricSample>> HistogramsMatching(
      const std::string& needle) const;
};

/// Sniffs content (not filename): JSON object with "schema_version" ->
/// run report; JSON array of objects with "schema_version" -> perf
/// trajectory; JSON array of objects with "bench" -> bench sweeps; text
/// starting with the metrics CSV header -> metrics CSV.
ReportInputKind ClassifyReportInput(const std::string& content);

/// Parses `content` (from `path`, used for labels/errors) into `bundle`.
/// Unknown or malformed inputs append to bundle->errors and return a
/// non-OK status.
Status AddReportInput(const std::string& path, const std::string& content,
                      ReportBundle* bundle);

/// Reads the file at `path` and forwards to AddReportInput().
Status LoadReportInput(const std::string& path, ReportBundle* bundle);

/// Renders the merged Markdown report.
std::string RenderMarkdownReport(const ReportBundle& bundle,
                                 const std::string& title);

/// Renders the standalone single-file HTML dashboard (inline CSS and
/// SVG sparklines; no scripts, no external assets).
std::string RenderHtmlDashboard(const ReportBundle& bundle,
                                const std::string& title);

// --- differential run comparison (memstream-report --diff) ---

/// Significance thresholds for the diff: a row is significant when
/// |delta| > abs_epsilon AND (|rel| > rel_threshold OR the key exists on
/// only one side).
struct DiffOptions {
  double rel_threshold = 0.02;  ///< 2% relative change
  double abs_epsilon = 1e-12;   ///< ignore float noise
  /// Insignificant metric rows beyond this many per run pair are elided
  /// (metrics arrays can be large); significant rows are always kept.
  std::size_t max_insignificant_metric_rows = 40;
};

/// One compared quantity. `only_a`/`only_b` mark keys present on a
/// single side (the other value is 0 and delta/rel are not meaningful).
struct DiffRow {
  std::string key;
  double a = 0;
  double b = 0;
  double delta = 0;  ///< b - a
  double rel = 0;    ///< delta / |a| (0 when a == 0)
  bool only_a = false;
  bool only_b = false;
  bool significant = false;
};

/// All compared sections for one pair of runs matched across bundles.
struct RunPairDiff {
  std::string title;
  std::vector<DiffRow> analytic;
  std::vector<DiffRow> simulated;
  std::vector<DiffRow> qos;      ///< violation/audit counters
  std::vector<DiffRow> faults;   ///< fault/shed/availability counters
  std::vector<DiffRow> farm;     ///< farm aggregates + per-shard keys
  std::vector<DiffRow> streams;  ///< journal outcome counts + headroom
  std::vector<DiffRow> slo;      ///< per-SLO attainment/budget/burn
  std::vector<DiffRow> metrics;  ///< embedded metric samples by name
  std::size_t metrics_elided = 0;  ///< insignificant rows dropped
};

/// The full comparison of two bundles.
struct BundleDiff {
  std::string label_a;
  std::string label_b;
  std::vector<RunPairDiff> pairs;
  std::vector<std::string> only_in_a;  ///< run titles without a partner
  std::vector<std::string> only_in_b;
  std::vector<DiffRow> perf;  ///< wall seconds by bench/kind key

  /// Significant rows across every section of every pair (+ perf).
  std::size_t SignificantCount() const;
};

/// Aligns the runs of two bundles (by title; unmatched titles pair up in
/// input order) and compares every section. `label_a`/`label_b` name the
/// sides in the rendered output (conventionally the input paths).
BundleDiff ComputeBundleDiff(const ReportBundle& a, const ReportBundle& b,
                             const DiffOptions& options,
                             const std::string& label_a,
                             const std::string& label_b);

/// Renders the diff as Markdown (significant rows bolded).
std::string RenderMarkdownDiff(const BundleDiff& diff,
                               const std::string& title);

/// Renders the diff as a standalone single-file HTML page (significant
/// rows highlighted; improvement/regression colored by sign).
std::string RenderHtmlDiff(const BundleDiff& diff, const std::string& title);

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_REPORT_MERGE_H_
