#include "obs/timeline.h"

namespace memstream::obs {

TimelineSeries* TimelineRecorder::AddSeries(const std::string& name,
                                            const std::string& unit) {
  for (auto& s : series_) {
    if (s.name() == name) return &s;
  }
  series_.emplace_back(name, unit, options_.max_points_per_series);
  return &series_.back();
}

std::size_t TimelineRecorder::total_points() const {
  std::size_t n = 0;
  for (const auto& s : series_) n += s.points().size();
  return n;
}

}  // namespace memstream::obs
