#include "obs/json_parser.h"

#include <cctype>
#include <cstdlib>

namespace memstream::obs {

JsonValue JsonParser::Parse() {
  JsonValue v = ParseValue();
  SkipSpace();
  ok_ = ok_ && pos_ == text_.size();
  return v;
}

void JsonParser::SkipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::Consume(char c) {
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonParser::ConsumeLiteral(const std::string& lit) {
  if (text_.compare(pos_, lit.size(), lit) == 0) {
    pos_ += lit.size();
    return true;
  }
  ok_ = false;
  return false;
}

JsonValue JsonParser::ParseValue() {
  SkipSpace();
  if (pos_ >= text_.size()) {
    ok_ = false;
    return {};
  }
  switch (text_[pos_]) {
    case '{': {
      // Bound the recursion: hostile deep nesting must fail, not smash
      // the stack.
      if (depth_ >= kMaxDepth) {
        ok_ = false;
        return {};
      }
      ++depth_;
      JsonValue v = ParseObject();
      --depth_;
      return v;
    }
    case '[': {
      if (depth_ >= kMaxDepth) {
        ok_ = false;
        return {};
      }
      ++depth_;
      JsonValue v = ParseArray();
      --depth_;
      return v;
    }
    case '"':
      return ParseString();
    case 't': {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      ConsumeLiteral("true");
      return v;
    }
    case 'f': {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      ConsumeLiteral("false");
      return v;
    }
    case 'n':
      ConsumeLiteral("null");
      return {};
    default:
      return ParseNumber();
  }
}

JsonValue JsonParser::ParseObject() {
  JsonValue v;
  v.type = JsonValue::Type::kObject;
  if (!Consume('{')) {
    ok_ = false;
    return v;
  }
  SkipSpace();
  if (Consume('}')) return v;
  while (ok_) {
    SkipSpace();
    JsonValue key = ParseString();
    if (!ok_ || !Consume(':')) {
      ok_ = false;
      return v;
    }
    v.object.emplace(key.string, ParseValue());
    if (Consume(',')) continue;
    if (Consume('}')) return v;
    ok_ = false;
  }
  return v;
}

JsonValue JsonParser::ParseArray() {
  JsonValue v;
  v.type = JsonValue::Type::kArray;
  if (!Consume('[')) {
    ok_ = false;
    return v;
  }
  SkipSpace();
  if (Consume(']')) return v;
  while (ok_) {
    v.array.push_back(ParseValue());
    if (Consume(',')) continue;
    if (Consume(']')) return v;
    ok_ = false;
  }
  return v;
}

JsonValue JsonParser::ParseString() {
  JsonValue v;
  v.type = JsonValue::Type::kString;
  if (pos_ >= text_.size() || text_[pos_] != '"') {
    ok_ = false;
    return v;
  }
  ++pos_;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_];
    if (c == '\\') {
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_];
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u':
          // Keep the escape opaque; the tooling never needs the glyph.
          // The four hex digits must actually be present and valid — a
          // truncated or malformed escape used to skip blindly past the
          // end of the document.
          if (pos_ + 4 >= text_.size()) {
            ok_ = false;
            return v;
          }
          for (std::size_t i = 1; i <= 4; ++i) {
            if (!std::isxdigit(
                    static_cast<unsigned char>(text_[pos_ + i]))) {
              ok_ = false;
              return v;
            }
          }
          pos_ += 4;
          v.string.push_back('?');
          break;
        default:
          ok_ = false;
          return v;
      }
      ++pos_;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      ok_ = false;  // raw control characters are invalid inside strings
      return v;
    } else {
      v.string.push_back(c);
      ++pos_;
    }
  }
  if (pos_ >= text_.size()) {
    ok_ = false;
    return v;
  }
  ++pos_;  // closing quote
  return v;
}

JsonValue JsonParser::ParseNumber() {
  JsonValue v;
  v.type = JsonValue::Type::kNumber;
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (start == pos_) {
    ok_ = false;
    return v;
  }
  const std::string token = text_.substr(start, pos_ - start);
  char* end = nullptr;
  v.number = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') ok_ = false;
  return v;
}

JsonValue ParseJson(const std::string& text, bool* ok) {
  JsonParser parser(text);
  JsonValue doc = parser.Parse();
  if (ok != nullptr) *ok = parser.ok();
  return doc;
}

}  // namespace memstream::obs
