#include "obs/run_report.h"

#include <fstream>

#include "obs/json_writer.h"

namespace memstream::obs {

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kRunReportSchemaVersion);
  w.Key("title");
  w.String(title);

  w.Key("config");
  w.BeginObject();
  for (const auto& [key, value] : config) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();

  w.Key("analytic");
  w.BeginObject();
  for (const auto& [key, value] : analytic) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  w.Key("simulated");
  w.BeginObject();
  for (const auto& [key, value] : simulated) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  if (trace_dropped_records >= 0) {
    w.Key("trace_dropped_records");
    w.Int(trace_dropped_records);
  }

  if (qos != nullptr) {
    w.Key("qos");
    w.BeginObject();
    w.Key("total_violations");
    w.Int(qos->total_violations());
    w.Key("disk_cycles_audited");
    w.Int(qos->disk_cycles_audited());
    w.Key("mems_cycles_audited");
    w.Int(qos->mems_cycles_audited());
    w.Key("violations");
    w.BeginArray();
    for (const auto& v : qos->violations()) {
      w.BeginObject();
      w.Key("invariant");
      w.String(QosInvariantName(v.invariant));
      w.Key("stream_id");
      w.Int(v.stream_id);
      w.Key("cycle_index");
      w.Int(v.cycle_index);
      w.Key("time");
      w.Number(v.time);
      w.Key("expected");
      w.Number(v.expected);
      w.Key("observed");
      w.Number(v.observed);
      w.Key("detail");
      w.String(v.detail);
      w.Key("trace_index");
      w.Int(v.trace_index);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (faults != nullptr) {
    w.Key("faults");
    w.BeginObject();
    w.Key("events");
    w.Int(faults->events);
    w.Key("repairs");
    w.Int(faults->repairs);
    w.Key("replans");
    w.Int(faults->replans);
    w.Key("sheds");
    w.Int(faults->sheds);
    w.Key("readmits");
    w.Int(faults->readmits);
    w.Key("dropped_during_burst");
    w.Int(faults->dropped_during_burst);
    w.Key("total_shed_time");
    w.Number(faults->total_shed_time);
    w.Key("timeline");
    w.BeginArray();
    for (const auto& e : faults->timeline) {
      w.BeginObject();
      w.Key("time");
      w.Number(e.time);
      w.Key("kind");
      w.String(e.kind);
      w.Key("device");
      w.Int(e.device);
      w.Key("magnitude");
      w.Number(e.magnitude);
      w.Key("action");
      w.String(e.action);
      w.EndObject();
    }
    w.EndArray();
    w.Key("shed_streams");
    w.BeginArray();
    for (const auto& s : faults->shed_streams) {
      w.BeginObject();
      w.Key("stream_id");
      w.Int(s.stream_id);
      w.Key("shed_time");
      w.Number(s.shed_time);
      w.Key("shed_cycle");
      w.Int(s.shed_cycle);
      w.Key("readmit_time");
      w.Number(s.readmit_time);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (farm != nullptr) {
    w.Key("farm");
    w.BeginObject();
    w.Key("policy");
    w.String(farm->policy);
    w.Key("shards");
    w.Int(farm->shards);
    w.Key("titles");
    w.Int(farm->titles);
    w.Key("total_copies");
    w.Int(farm->total_copies);
    w.Key("offered");
    w.Int(farm->offered);
    w.Key("admitted");
    w.Int(farm->admitted);
    w.Key("rejected");
    w.Int(farm->rejected);
    w.Key("failovers");
    w.Int(farm->failovers);
    w.Key("shed");
    w.Int(farm->shed);
    w.Key("readmits");
    w.Int(farm->readmits);
    w.Key("availability");
    w.Number(farm->availability);
    w.Key("peak_dram_per_shard");
    w.Number(farm->peak_dram_per_shard);
    w.Key("mean_utilization");
    w.Number(farm->mean_utilization);
    w.Key("per_shard");
    w.BeginArray();
    for (const FarmShardEntry& s : farm->per_shard) {
      w.BeginObject();
      w.Key("shard");
      w.Int(s.shard);
      w.Key("streams");
      w.Int(s.streams);
      w.Key("ios");
      w.Int(s.ios);
      w.Key("underflow_events");
      w.Int(s.underflow_events);
      w.Key("cycle_overruns");
      w.Int(s.cycle_overruns);
      w.Key("qos_violations");
      w.Int(s.qos_violations);
      w.Key("failed_over_in");
      w.Int(s.failed_over_in);
      w.Key("shed");
      w.Int(s.shed);
      w.Key("peak_dram_bytes");
      w.Number(s.peak_dram_bytes);
      w.Key("utilization");
      w.Number(s.utilization);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (streams != nullptr && streams->size() > 0) {
    const StreamJournalSummary summary = streams->Summarize();
    w.Key("streams");
    w.BeginObject();
    w.Key("count");
    w.Int(summary.count);
    w.Key("departed");
    w.Int(summary.departed);
    w.Key("shed");
    w.Int(summary.shed);
    w.Key("still_shed");
    w.Int(summary.still_shed);
    w.Key("readmitted");
    w.Int(summary.readmitted);
    w.Key("degraded");
    w.Int(summary.degraded);
    w.Key("underflow_streams");
    w.Int(summary.underflow_streams);
    w.Key("total_ios");
    w.Int(summary.total_ios);
    w.Key("total_underflows");
    w.Int(summary.total_underflows);
    w.Key("events_dropped");
    w.Int(summary.events_dropped);
    w.Key("min_headroom");
    w.Number(summary.min_headroom);
    w.Key("per_stream");
    w.BeginArray();
    for (std::size_t i = 0; i < streams->size(); ++i) {
      const StreamJournalEntry& e = streams->entry(i);
      w.BeginObject();
      w.Key("id");
      w.Int(e.stream_id);
      w.Key("bit_rate");
      w.Number(e.bit_rate);
      w.Key("phase");
      w.String(StreamPhaseName(e.phase));
      w.Key("ios");
      w.Int(e.ios);
      w.Key("bytes");
      w.Number(e.bytes);
      w.Key("underflows");
      w.Int(e.underflows);
      w.Key("sheds");
      w.Int(e.sheds);
      w.Key("readmits");
      w.Int(e.readmits);
      w.Key("degrades");
      w.Int(e.degrades);
      w.Key("envelope_bytes");
      w.Number(e.envelope_bytes);
      w.Key("peak_level_bytes");
      w.Number(e.peak_level_bytes);
      w.Key("headroom");
      w.Number(e.headroom());
      w.Key("occ_p50");
      w.Number(e.occupancy.Quantile(0.5));
      w.Key("occ_p95");
      w.Number(e.occupancy.Quantile(0.95));
      w.Key("occ_p99");
      w.Number(e.occupancy.Quantile(0.99));
      w.Key("events");
      w.BeginArray();
      for (const StreamEvent& ev : e.events) {
        w.BeginObject();
        w.Key("t");
        w.Number(ev.t);
        w.Key("kind");
        w.String(StreamEventKindName(ev.kind));
        if (ev.detail != 0) {
          w.Key("detail");
          w.Number(ev.detail);
        }
        w.EndObject();
      }
      w.EndArray();
      if (e.events_dropped > 0) {
        w.Key("events_dropped");
        w.Int(e.events_dropped);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (slo != nullptr && slo->size() > 0) {
    w.Key("slo");
    w.BeginObject();
    std::string detail;
    w.Key("healthy");
    w.Bool(slo->healthy(&detail));
    w.Key("slos");
    w.BeginArray();
    for (const Slo* s : slo->Snapshot()) {
      w.BeginObject();
      w.Key("name");
      w.String(s->spec().name);
      w.Key("description");
      w.String(s->spec().description);
      w.Key("objective");
      w.Number(s->spec().objective);
      w.Key("window_seconds");
      w.Number(s->spec().window_seconds);
      w.Key("good");
      w.Int(s->good());
      w.Key("bad");
      w.Int(s->bad());
      w.Key("attainment");
      w.Number(s->attainment());
      w.Key("budget_remaining");
      w.Number(s->budget_remaining());
      w.Key("burn_rate");
      w.Number(s->burn_rate());
      w.Key("exhausted");
      w.Bool(s->exhausted());
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (timelines != nullptr && timelines->size() > 0) {
    w.Key("timelines");
    w.BeginArray();
    for (const auto& s : timelines->series()) {
      w.BeginObject();
      w.Key("name");
      w.String(s.name());
      w.Key("unit");
      w.String(s.unit());
      w.Key("stride");
      w.Int(static_cast<std::int64_t>(s.stride()));
      w.Key("samples_seen");
      w.Int(static_cast<std::int64_t>(s.samples_seen()));
      w.Key("points");
      w.BeginArray();
      for (const auto& p : s.points()) {
        w.BeginArray();
        w.Number(p.t);
        w.Number(p.v);
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }

  if (metrics != nullptr) {
    w.Key("metrics");
    w.BeginArray();
    for (const auto& s : metrics->Snapshot()) {
      w.BeginObject();
      w.Key("name");
      w.String(s.name);
      w.Key("kind");
      w.String(s.kind);
      w.Key("value");
      w.Number(s.value);
      if (s.kind == "histogram") {
        w.Key("count");
        w.Int(s.count);
        w.Key("min");
        w.Number(s.min);
        w.Key("max");
        w.Number(s.max);
        w.Key("mean");
        w.Number(s.mean);
        w.Key("p50");
        w.Number(s.p50);
        w.Key("p95");
        w.Number(s.p95);
        w.Key("p99");
        w.Number(s.p99);
      } else if (s.kind == "time_weighted") {
        w.Key("max");
        w.Number(s.max);
      }
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
  return w.str();
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << ToJson();
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::obs
