#include "obs/run_report.h"

#include <fstream>

#include "obs/json_writer.h"

namespace memstream::obs {

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kRunReportSchemaVersion);
  w.Key("title");
  w.String(title);

  w.Key("config");
  w.BeginObject();
  for (const auto& [key, value] : config) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();

  w.Key("analytic");
  w.BeginObject();
  for (const auto& [key, value] : analytic) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  w.Key("simulated");
  w.BeginObject();
  for (const auto& [key, value] : simulated) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  if (trace_dropped_records >= 0) {
    w.Key("trace_dropped_records");
    w.Int(trace_dropped_records);
  }

  if (qos != nullptr) {
    w.Key("qos");
    w.BeginObject();
    w.Key("total_violations");
    w.Int(qos->total_violations());
    w.Key("disk_cycles_audited");
    w.Int(qos->disk_cycles_audited());
    w.Key("mems_cycles_audited");
    w.Int(qos->mems_cycles_audited());
    w.Key("violations");
    w.BeginArray();
    for (const auto& v : qos->violations()) {
      w.BeginObject();
      w.Key("invariant");
      w.String(QosInvariantName(v.invariant));
      w.Key("stream_id");
      w.Int(v.stream_id);
      w.Key("cycle_index");
      w.Int(v.cycle_index);
      w.Key("time");
      w.Number(v.time);
      w.Key("expected");
      w.Number(v.expected);
      w.Key("observed");
      w.Number(v.observed);
      w.Key("detail");
      w.String(v.detail);
      w.Key("trace_index");
      w.Int(v.trace_index);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (faults != nullptr) {
    w.Key("faults");
    w.BeginObject();
    w.Key("events");
    w.Int(faults->events);
    w.Key("repairs");
    w.Int(faults->repairs);
    w.Key("replans");
    w.Int(faults->replans);
    w.Key("sheds");
    w.Int(faults->sheds);
    w.Key("readmits");
    w.Int(faults->readmits);
    w.Key("dropped_during_burst");
    w.Int(faults->dropped_during_burst);
    w.Key("total_shed_time");
    w.Number(faults->total_shed_time);
    w.Key("timeline");
    w.BeginArray();
    for (const auto& e : faults->timeline) {
      w.BeginObject();
      w.Key("time");
      w.Number(e.time);
      w.Key("kind");
      w.String(e.kind);
      w.Key("device");
      w.Int(e.device);
      w.Key("magnitude");
      w.Number(e.magnitude);
      w.Key("action");
      w.String(e.action);
      w.EndObject();
    }
    w.EndArray();
    w.Key("shed_streams");
    w.BeginArray();
    for (const auto& s : faults->shed_streams) {
      w.BeginObject();
      w.Key("stream_id");
      w.Int(s.stream_id);
      w.Key("shed_time");
      w.Number(s.shed_time);
      w.Key("shed_cycle");
      w.Int(s.shed_cycle);
      w.Key("readmit_time");
      w.Number(s.readmit_time);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (timelines != nullptr && timelines->size() > 0) {
    w.Key("timelines");
    w.BeginArray();
    for (const auto& s : timelines->series()) {
      w.BeginObject();
      w.Key("name");
      w.String(s.name());
      w.Key("unit");
      w.String(s.unit());
      w.Key("stride");
      w.Int(static_cast<std::int64_t>(s.stride()));
      w.Key("samples_seen");
      w.Int(static_cast<std::int64_t>(s.samples_seen()));
      w.Key("points");
      w.BeginArray();
      for (const auto& p : s.points()) {
        w.BeginArray();
        w.Number(p.t);
        w.Number(p.v);
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }

  if (metrics != nullptr) {
    w.Key("metrics");
    w.BeginArray();
    for (const auto& s : metrics->Snapshot()) {
      w.BeginObject();
      w.Key("name");
      w.String(s.name);
      w.Key("kind");
      w.String(s.kind);
      w.Key("value");
      w.Number(s.value);
      if (s.kind == "histogram") {
        w.Key("count");
        w.Int(s.count);
        w.Key("min");
        w.Number(s.min);
        w.Key("max");
        w.Number(s.max);
        w.Key("mean");
        w.Number(s.mean);
        w.Key("p50");
        w.Number(s.p50);
        w.Key("p95");
        w.Number(s.p95);
        w.Key("p99");
        w.Number(s.p99);
      } else if (s.kind == "time_weighted") {
        w.Key("max");
        w.Number(s.max);
      }
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
  return w.str();
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << ToJson();
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::obs
