#include "obs/run_report.h"

#include <fstream>

#include "obs/json_writer.h"

namespace memstream::obs {

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kRunReportSchemaVersion);
  w.Key("title");
  w.String(title);

  w.Key("config");
  w.BeginObject();
  for (const auto& [key, value] : config) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();

  w.Key("analytic");
  w.BeginObject();
  for (const auto& [key, value] : analytic) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  w.Key("simulated");
  w.BeginObject();
  for (const auto& [key, value] : simulated) {
    w.Key(key);
    w.Number(value);
  }
  w.EndObject();

  if (metrics != nullptr) {
    w.Key("metrics");
    w.BeginArray();
    for (const auto& s : metrics->Snapshot()) {
      w.BeginObject();
      w.Key("name");
      w.String(s.name);
      w.Key("kind");
      w.String(s.kind);
      w.Key("value");
      w.Number(s.value);
      if (s.kind == "histogram") {
        w.Key("count");
        w.Int(s.count);
        w.Key("min");
        w.Number(s.min);
        w.Key("max");
        w.Number(s.max);
        w.Key("mean");
        w.Number(s.mean);
        w.Key("p50");
        w.Number(s.p50);
        w.Key("p95");
        w.Number(s.p95);
        w.Key("p99");
        w.Number(s.p99);
      } else if (s.kind == "time_weighted") {
        w.Key("max");
        w.Number(s.max);
      }
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
  return w.str();
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << ToJson();
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::obs
