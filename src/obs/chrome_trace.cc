#include "obs/chrome_trace.h"

#include <fstream>
#include <map>
#include <set>

#include "obs/json_writer.h"

namespace memstream::obs {

namespace {

constexpr std::int64_t kDevicesPid = 1;
constexpr std::int64_t kStreamsPid = 2;
constexpr std::int64_t kTimelinesPid = 3;
constexpr std::int64_t kProfilerPid = 4;
constexpr std::int64_t kLifecyclePid = 5;

constexpr double kMicrosPerSecond = 1e6;

void MetadataEvent(JsonWriter& w, const char* name, std::int64_t pid,
                   std::int64_t tid, const std::string& value) {
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Int(pid);
  w.Key("tid");
  w.Int(tid);
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String(value);
  w.EndObject();
  w.EndObject();
}

void EventHeader(JsonWriter& w, const std::string& name, const char* phase,
                 double ts_us, std::int64_t pid, std::int64_t tid) {
  w.Key("name");
  w.String(name);
  w.Key("ph");
  w.String(phase);
  w.Key("ts");
  w.Number(ts_us);
  w.Key("pid");
  w.Int(pid);
  w.Key("tid");
  w.Int(tid);
}

/// Lays one merged profiler region out as an "X" span starting at
/// `offset_ns` (children packed sequentially inside the parent) and
/// recurses. Durations are inclusive ns rendered as microseconds.
void ProfileSpan(JsonWriter& w, const prof::ProfileNode& node,
                 std::int64_t offset_ns) {
  w.BeginObject();
  EventHeader(w, node.name, "X", static_cast<double>(offset_ns) / 1e3,
              kProfilerPid, 1);
  w.Key("dur");
  w.Number(static_cast<double>(node.inclusive_ns) / 1e3);
  w.Key("args");
  w.BeginObject();
  w.Key("count");
  w.Int(node.count);
  w.Key("exclusive_ns");
  w.Int(node.exclusive_ns);
  if (node.alloc_delta != 0) {
    w.Key("alloc_delta");
    w.Int(node.alloc_delta);
  }
  w.EndObject();
  w.EndObject();
  std::int64_t child_offset = offset_ns;
  for (const auto& c : node.children) {
    ProfileSpan(w, c, child_offset);
    child_offset += c.inclusive_ns;
  }
}

}  // namespace

std::string ChromeTraceExporter::ToJson(
    const sim::TraceLog& log, const TimelineRecorder* timelines,
    const prof::ProfileSnapshot* profile, const StreamJournal* journal) const {
  // First pass: assign device tids in order of first appearance and
  // collect the stream-id set, so metadata can label every track.
  std::map<std::string, std::int64_t> device_tid;
  std::set<std::int64_t> stream_ids;
  for (const auto& r : log.records()) {
    switch (r.kind) {
      case sim::TraceKind::kCycleStart:
      case sim::TraceKind::kCycleEnd:
      case sim::TraceKind::kIoIssued:
      case sim::TraceKind::kIoCompleted:
      case sim::TraceKind::kFaultStart:
      case sim::TraceKind::kFaultEnd:
        if (!r.actor.empty() && device_tid.find(r.actor) == device_tid.end()) {
          const auto tid = static_cast<std::int64_t>(device_tid.size()) + 1;
          device_tid[r.actor] = tid;
        }
        break;
      case sim::TraceKind::kUnderflow:
      case sim::TraceKind::kOverflow:
      case sim::TraceKind::kBufferLevel:
        break;
      case sim::TraceKind::kNote:
        break;
    }
    if (r.stream_id >= 0) stream_ids.insert(r.stream_id);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();

  if (!log.records().empty()) {
    MetadataEvent(w, "process_name", kDevicesPid, 0, "devices");
    for (const auto& [actor, tid] : device_tid) {
      MetadataEvent(w, "thread_name", kDevicesPid, tid, actor);
    }
  }
  if (!stream_ids.empty()) {
    MetadataEvent(w, "process_name", kStreamsPid, 0, "streams");
    for (std::int64_t id : stream_ids) {
      MetadataEvent(w, "thread_name", kStreamsPid, id + 1,
                    "stream " + std::to_string(id));
    }
  }

  for (const auto& r : log.records()) {
    const double ts = r.time * kMicrosPerSecond;
    switch (r.kind) {
      case sim::TraceKind::kCycleEnd:
      case sim::TraceKind::kIoCompleted: {
        const std::int64_t tid = device_tid.count(r.actor)
                                     ? device_tid[r.actor]
                                     : 0;
        const std::string name =
            r.kind == sim::TraceKind::kCycleEnd
                ? "cycle"
                : (r.detail.empty() ? "io" : r.detail);
        w.BeginObject();
        if (r.duration > 0) {
          // Span ending at r.time.
          EventHeader(w, name, "X", ts - r.duration * kMicrosPerSecond,
                      kDevicesPid, tid);
          w.Key("dur");
          w.Number(r.duration * kMicrosPerSecond);
        } else {
          EventHeader(w, name, "i", ts, kDevicesPid, tid);
          w.Key("s");
          w.String("t");
        }
        w.Key("args");
        w.BeginObject();
        if (r.stream_id >= 0) {
          w.Key("stream");
          w.Int(r.stream_id);
        }
        if (r.bytes > 0) {
          w.Key("bytes");
          w.Number(r.bytes);
        }
        if (r.kind == sim::TraceKind::kIoCompleted && !r.detail.empty()) {
          w.Key("detail");
          w.String(r.detail);
        }
        if (r.kind == sim::TraceKind::kCycleEnd && !r.detail.empty()) {
          w.Key("detail");
          w.String(r.detail);
        }
        w.EndObject();
        w.EndObject();
        break;
      }
      case sim::TraceKind::kCycleStart:
      case sim::TraceKind::kIoIssued: {
        if (!options_.include_instants) break;
        const std::int64_t tid = device_tid.count(r.actor)
                                     ? device_tid[r.actor]
                                     : 0;
        w.BeginObject();
        EventHeader(w, TraceKindName(r.kind), "i", ts, kDevicesPid, tid);
        w.Key("s");
        w.String("t");
        w.Key("args");
        w.BeginObject();
        if (!r.detail.empty()) {
          w.Key("detail");
          w.String(r.detail);
        }
        w.EndObject();
        w.EndObject();
        break;
      }
      case sim::TraceKind::kUnderflow:
      case sim::TraceKind::kOverflow: {
        const bool on_stream = r.stream_id >= 0;
        w.BeginObject();
        EventHeader(w, TraceKindName(r.kind), "i", ts,
                    on_stream ? kStreamsPid : kDevicesPid,
                    on_stream ? r.stream_id + 1
                              : (device_tid.count(r.actor)
                                     ? device_tid[r.actor]
                                     : 0));
        w.Key("s");
        w.String("g");  // global scope: draw a full-height marker
        w.Key("args");
        w.BeginObject();
        w.Key("actor");
        w.String(r.actor);
        if (!r.detail.empty()) {
          w.Key("detail");
          w.String(r.detail);
        }
        w.EndObject();
        w.EndObject();
        break;
      }
      case sim::TraceKind::kBufferLevel: {
        if (!options_.include_buffer_counters || r.stream_id < 0) break;
        w.BeginObject();
        EventHeader(w,
                    "stream" + std::to_string(r.stream_id) + ".buffer_bytes",
                    "C", ts, kStreamsPid, r.stream_id + 1);
        w.Key("args");
        w.BeginObject();
        w.Key("bytes");
        w.Number(r.bytes);
        w.EndObject();
        w.EndObject();
        break;
      }
      case sim::TraceKind::kFaultStart:
      case sim::TraceKind::kFaultEnd: {
        // Fault activations are full-height markers on the affected
        // device track; a kFaultEnd carrying a duration doubles as a span
        // covering the whole degraded window.
        const std::int64_t tid =
            device_tid.count(r.actor) ? device_tid[r.actor] : 0;
        const std::string name = r.detail.empty()
                                     ? std::string(TraceKindName(r.kind))
                                     : r.detail;
        w.BeginObject();
        if (r.kind == sim::TraceKind::kFaultEnd && r.duration > 0) {
          EventHeader(w, name, "X", ts - r.duration * kMicrosPerSecond,
                      kDevicesPid, tid);
          w.Key("dur");
          w.Number(r.duration * kMicrosPerSecond);
        } else {
          EventHeader(w, name, "i", ts, kDevicesPid, tid);
          w.Key("s");
          w.String("g");  // global scope: faults are run-wide landmarks
        }
        w.Key("args");
        w.BeginObject();
        w.Key("actor");
        w.String(r.actor);
        if (r.stream_id >= 0) {
          w.Key("stream");
          w.Int(r.stream_id);
        }
        w.EndObject();
        w.EndObject();
        break;
      }
      case sim::TraceKind::kNote: {
        if (!options_.include_instants) break;
        w.BeginObject();
        EventHeader(w, r.detail.empty() ? "note" : r.detail, "i", ts,
                    kDevicesPid, 0);
        w.Key("s");
        w.String("t");
        w.Key("args");
        w.BeginObject();
        w.Key("actor");
        w.String(r.actor);
        w.EndObject();
        w.EndObject();
        break;
      }
    }
  }

  if (timelines != nullptr && timelines->size() > 0) {
    MetadataEvent(w, "process_name", kTimelinesPid, 0, "timelines");
    std::int64_t tid = 0;
    for (const auto& s : timelines->series()) {
      ++tid;
      MetadataEvent(w, "thread_name", kTimelinesPid, tid, s.name());
      const std::string value_key = s.unit().empty() ? "value" : s.unit();
      for (const auto& p : s.points()) {
        w.BeginObject();
        EventHeader(w, s.name(), "C", p.t * kMicrosPerSecond, kTimelinesPid,
                    tid);
        w.Key("args");
        w.BeginObject();
        w.Key(value_key);
        w.Number(p.v);
        w.EndObject();
        w.EndObject();
      }
    }
  }

  if (journal != nullptr && journal->size() > 0) {
    MetadataEvent(w, "process_name", kLifecyclePid, 0, "lifecycle");
    for (std::size_t slot = 0; slot < journal->size(); ++slot) {
      const StreamJournalEntry& e = journal->entry(slot);
      const auto tid = static_cast<std::int64_t>(slot) + 1;
      MetadataEvent(w, "thread_name", kLifecyclePid, tid,
                    "stream " + std::to_string(e.stream_id) + " lifecycle");
      for (const StreamEvent& ev : e.events) {
        w.BeginObject();
        EventHeader(w, StreamEventKindName(ev.kind), "i",
                    ev.t * kMicrosPerSecond, kLifecyclePid, tid);
        w.Key("s");
        // Shed/re-admit are run-level landmarks; the rest stay local.
        w.String(ev.kind == StreamEventKind::kShed ||
                         ev.kind == StreamEventKind::kReadmitted
                     ? "g"
                     : "t");
        w.Key("args");
        w.BeginObject();
        w.Key("stream");
        w.Int(e.stream_id);
        if (ev.kind == StreamEventKind::kDegraded) {
          w.Key("detail");
          w.String(ev.detail == 1 ? "disk fallback" : "reshaped cycle");
        }
        w.EndObject();
        w.EndObject();
      }
    }
  }

  if (profile != nullptr && !profile->roots.empty()) {
    MetadataEvent(w, "process_name", kProfilerPid, 0, "profiler");
    MetadataEvent(w, "thread_name", kProfilerPid, 1,
                  "merged profile (CPU ns)");
    std::int64_t offset_ns = 0;
    for (const auto& r : profile->roots) {
      ProfileSpan(w, r, offset_ns);
      offset_ns += r.inclusive_ns;
    }
  }

  w.EndArray();
  if (log.dropped_records() > 0) {
    w.Key("otherData");
    w.BeginObject();
    w.Key("dropped_records");
    w.Int(log.dropped_records());
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

Status ChromeTraceExporter::WriteFile(
    const sim::TraceLog& log, const std::string& path,
    const TimelineRecorder* timelines,
    const prof::ProfileSnapshot* profile, const StreamJournal* journal) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << ToJson(log, timelines, profile, journal);
  out.close();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace memstream::obs
