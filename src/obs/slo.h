// Online SLO / error-budget monitor: declarative service-level
// objectives evaluated continuously while the simulation runs.
//
// An SLO is "fraction of good events >= objective" — e.g. "99.9% of
// stream-cycles complete without underflow". Each Slo keeps
//  - lifetime good/bad counts -> attainment and error-budget remaining
//    (budget = the bad events the objective allows; remaining = the
//    unspent fraction of that allowance), and
//  - a rolling ring of time buckets -> the burn rate over the recent
//    window (observed error rate / allowed error rate; 1.0 = spending
//    the budget exactly at the sustainable pace, >1 = on course to
//    exhaust it).
//
// Servers feed SLOs from existing per-cycle callbacks (no new sim
// events, so wiring a monitor never perturbs event order or bench
// CSVs); the hot path is allocation-free and a null monitor costs one
// pointer test via the free helpers below. The monitor is
// mutex-guarded so the metrics_http thread can serve /slostatus and a
// degraded /healthz while the simulation thread records.
//
// Standard objectives for this codebase (factories below): zero
// underflows, non-negative cycle slack, admission-decision latency,
// and availability under faults.

#ifndef MEMSTREAM_OBS_SLO_H_
#define MEMSTREAM_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace memstream::obs {

/// Declarative definition of one SLO.
struct SloSpec {
  std::string name;         ///< metric-safe slug, e.g. "underflow"
  std::string description;  ///< human sentence for dashboards
  /// Target good fraction in (0, 1). The error budget is 1-objective.
  double objective = 0.999;
  /// Rolling window the burn rate is computed over (simulated seconds).
  double window_seconds = 60.0;
  /// Spec-specific threshold carried for documentation (e.g. the
  /// admission-latency cutoff in seconds that separates good from bad).
  double threshold = 0.0;
};

/// Live state of one SLO. Stable-address (owned by SloMonitor's deque);
/// Record() is allocation-free. Thread-safe: one internal mutex guards
/// recording against the HTTP reader.
class Slo {
 public:
  explicit Slo(SloSpec spec);
  Slo(const Slo&) = delete;
  Slo& operator=(const Slo&) = delete;

  /// Records `good` conforming and `bad` non-conforming events observed
  /// at simulated time `now` (non-decreasing per producer).
  void Record(double now, std::int64_t good, std::int64_t bad);

  const SloSpec& spec() const { return spec_; }

  /// Lifetime good fraction; 1.0 before any event.
  double attainment() const;
  /// Fraction of the lifetime error budget still unspent: 1 when no
  /// errors, 0 when the observed error rate equals the allowance
  /// (1-objective), negative when past it.
  double budget_remaining() const;
  /// Observed error rate over the rolling window divided by the allowed
  /// rate. 0 = clean window, 1 = spending at exactly the sustainable
  /// pace, >1 = on course to exhaust the budget.
  double burn_rate() const;
  /// True once the lifetime budget is overspent (budget_remaining <= 0
  /// with at least one bad event) — drives the degraded /healthz.
  bool exhausted() const;

  std::int64_t good() const;
  std::int64_t bad() const;

 private:
  static constexpr std::size_t kBuckets = 32;

  struct Bucket {
    std::int64_t index = -1;  ///< absolute bucket number; -1 = empty
    std::int64_t good = 0;
    std::int64_t bad = 0;
  };

  // Callers hold mu_.
  double WindowErrorRateLocked() const;

  SloSpec spec_;
  mutable std::mutex mu_;
  std::int64_t good_ = 0;
  std::int64_t bad_ = 0;
  std::array<Bucket, kBuckets> ring_;
  std::int64_t latest_bucket_ = -1;
};

/// Owner of all SLOs for one run. Add() is get-or-create by name so the
/// facade can pre-register with custom objectives before a server asks
/// for the standard spec. Publish*/StatusJson may run concurrently with
/// Record() on the contained Slos.
class SloMonitor {
 public:
  SloMonitor() = default;
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Get-or-create: an existing `spec.name` returns the existing Slo
  /// (its spec unchanged); otherwise the SLO is created from `spec`.
  Slo* Add(const SloSpec& spec);

  /// Lookup without creation; null when absent.
  Slo* Find(const std::string& name);
  const Slo* Find(const std::string& name) const;

  std::size_t size() const;

  /// False when any SLO's error budget is exhausted. `detail`, when
  /// non-null, receives a short "slo <name> budget exhausted ..." line
  /// for the degraded /healthz body.
  bool healthy(std::string* detail = nullptr) const;

  /// JSON document for /slostatus:
  /// {"healthy":bool,"slos":[{"name":...,"objective":...,"good":...,
  ///   "bad":...,"attainment":...,"budget_remaining":...,
  ///   "burn_rate":...,"exhausted":...},...]}
  std::string StatusJson() const;

  /// Publishes slo.<name>.{attainment,budget_remaining,burn_rate} gauges.
  void PublishGauges(MetricsRegistry* metrics) const;

  /// Stable pointers to every registered SLO, in registration order
  /// (valid while the monitor lives).
  std::vector<const Slo*> Snapshot() const;

 private:
  mutable std::mutex mu_;   ///< guards the container, not the Slos
  std::deque<Slo> slos_;    ///< deque: stable addresses for handles
};

// Standard SLO specs. Get them through monitor->Add(StandardXxxSlo()) so
// every producer shares one SLO per objective.
SloSpec StandardUnderflowSlo();        ///< stream-cycles without underflow
SloSpec StandardCycleSlackSlo();       ///< cycles with non-negative slack
SloSpec StandardAdmissionLatencySlo(); ///< admission decisions under 200us
SloSpec StandardAvailabilitySlo();     ///< stream-cycles in service (faults)

// Null-tolerant helper: the per-cycle hot-path idiom.
inline void SloRecord(Slo* slo, double now, std::int64_t good,
                      std::int64_t bad) {
  if (slo != nullptr) slo->Record(now, good, bad);
}

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_SLO_H_
