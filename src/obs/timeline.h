// Timeline recorder: bounded per-series time-series capture for
// per-stream buffer occupancy and per-device utilization, exportable
// into the RunReport JSON and as Chrome-trace counter tracks.
//
// Design rules (the PR 1 / PR 2 telemetry contracts):
//  - Handles returned by AddSeries() are stable pointers; instrumented
//    code resolves them once at construction and records through the
//    null-tolerant free helper, so a null recorder costs one pointer
//    test per sample site.
//  - The hot path is allocation-free: every series reserves its point
//    budget up front. When a series fills up it decimates in place
//    (keeps every other point) and doubles its sampling stride, so a
//    run of any length fits the budget while preserving the overall
//    shape of the signal — a classic bounded reservoir.

#ifndef MEMSTREAM_OBS_TIMELINE_H_
#define MEMSTREAM_OBS_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace memstream::obs {

/// One downsampled sample: simulated time (seconds) and a value.
struct TimelinePoint {
  double t = 0;
  double v = 0;
};

/// Capture knobs for every series of one recorder.
struct TimelineOptions {
  /// Retained points per series; on overflow the series decimates to
  /// half and doubles its stride. Must be >= 2.
  std::size_t max_points_per_series = 512;
};

/// One named, bounded time-series. Created via TimelineRecorder.
class TimelineSeries {
 public:
  TimelineSeries(std::string name, std::string unit, std::size_t capacity)
      : name_(std::move(name)), unit_(std::move(unit)),
        capacity_(capacity < 2 ? 2 : capacity) {
    points_.reserve(capacity_);
  }

  /// Records a sample (stride-gated; see the header comment). Monotone
  /// non-decreasing `t` is expected but not enforced.
  void Record(double t, double v) {
    ++seen_;
    if ((seen_ - 1) % stride_ != 0) return;
    if (points_.size() >= capacity_) Decimate();
    points_.push_back(TimelinePoint{t, v});
  }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  const std::vector<TimelinePoint>& points() const { return points_; }
  /// Samples offered to Record(), including ones the stride skipped.
  std::uint64_t samples_seen() const { return seen_; }
  /// Current sampling stride (1 until the first decimation).
  std::uint64_t stride() const { return stride_; }

 private:
  void Decimate() {
    // Keep every other point, in place; no allocation.
    std::size_t w = 0;
    for (std::size_t r = 0; r < points_.size(); r += 2) {
      points_[w++] = points_[r];
    }
    points_.resize(w);
    stride_ *= 2;
  }

  std::string name_;
  std::string unit_;
  std::size_t capacity_;
  std::vector<TimelinePoint> points_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
};

/// Owner of all timeline series for one run. Get-or-create semantics by
/// series name; handles are stable for the recorder's lifetime.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(TimelineOptions options = {})
      : options_(options) {}
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  /// Returns the series named `name`, creating it (with `unit`) first if
  /// needed. The pointer stays valid until the recorder is destroyed.
  TimelineSeries* AddSeries(const std::string& name,
                            const std::string& unit = "");

  const std::deque<TimelineSeries>& series() const { return series_; }
  std::size_t size() const { return series_.size(); }

  /// Retained points summed across series.
  std::size_t total_points() const;

 private:
  TimelineOptions options_;
  std::deque<TimelineSeries> series_;  ///< deque: stable element addresses
};

/// Null-tolerant sample helper, mirroring the obs::metrics idiom: resolve
/// the series handle once, call this in hot paths.
inline void Record(TimelineSeries* series, double t, double v) {
  if (series != nullptr) series->Record(t, v);
}

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_TIMELINE_H_
