// Metrics registry: named counters, gauges, histograms, and time-weighted
// gauges, snapshotable to CSV and to a Prometheus-style text format.
//
// Design rules:
//  - Handles returned by the registry are stable pointers; instrumented
//    code resolves them once (at construction) and updates through the
//    null-tolerant free helpers below. A null registry therefore costs
//    one pointer test per update site — near-zero overhead when
//    telemetry is disabled.
//  - Names are dot-separated, lowercase, with a unit suffix
//    (e.g. "server.disk.cycle_slack_ms", "device.mems#0.busy_seconds");
//    see docs/OBSERVABILITY.md for the full scheme. The Prometheus
//    export rewrites them to the usual underscore form.
//  - Distribution state reuses common/histogram.h (RunningStats,
//    Histogram, TimeWeightedStats) so telemetry and the analytical
//    benches agree on statistics.

#ifndef MEMSTREAM_OBS_METRICS_H_
#define MEMSTREAM_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace memstream::obs {

/// Monotonically increasing count (events, bytes, IOs).
class Counter {
 public:
  void Increment(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Last-write-wins instantaneous value (utilization, queue depth).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket distribution of observed samples (latencies, slack).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : histogram_(lo, hi, buckets) {}

  void Observe(double sample) { histogram_.Add(sample); }
  const Histogram& histogram() const { return histogram_; }
  const RunningStats& stats() const { return histogram_.stats(); }

  /// Bucket-wise merge; false (no-op) on layout mismatch.
  bool Merge(const HistogramMetric& other) {
    return histogram_.Merge(other.histogram_);
  }

 private:
  Histogram histogram_;
};

/// Piecewise-constant signal tracked by its time-average (occupancy).
class TimeWeightedGauge {
 public:
  /// Signal held `value` from the previous update until `now` (simulated
  /// seconds, non-decreasing).
  void Update(double now, double value) { stats_.Update(now, value); }
  const TimeWeightedStats& stats() const { return stats_; }
  void Merge(const TimeWeightedGauge& other) { stats_.Merge(other.stats_); }

 private:
  TimeWeightedStats stats_;
};

/// Bucket layout for histogram registration.
struct HistogramOptions {
  double lo = 0;
  double hi = 1;
  std::size_t buckets = 20;
};

/// One flattened metric snapshot row (see MetricsRegistry::Snapshot).
struct MetricSample {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram" | "time_weighted"
  double value = 0;  ///< counter/gauge value; histogram mean; tw average
  std::int64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Owner of all metrics for one run. Get-or-create semantics: asking for
/// an existing name returns the same handle (kind mismatches return the
/// existing metric of the requested kind's accessor as nullptr).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name,
                             const HistogramOptions& options);
  TimeWeightedGauge* time_weighted(const std::string& name);

  /// Attaches a help string to `name`, emitted as a `# HELP` line in the
  /// Prometheus export (with `\` and newlines escaped per the exposition
  /// format). May be called before or after the metric is registered.
  void SetHelp(const std::string& name, const std::string& help);
  /// Help string for `name`, or "" when none was set.
  std::string GetHelp(const std::string& name) const;

  /// Attaches a constant label to `name`, emitted on every sample line of
  /// that metric (value escaped per the exposition format). Labels set
  /// before registration are kept, like SetHelp.
  void SetLabel(const std::string& name, const std::string& key,
                const std::string& value);

  /// Lookup without creation; null if absent or of a different kind.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const HistogramMetric* FindHistogram(const std::string& name) const;
  const TimeWeightedGauge* FindTimeWeighted(const std::string& name) const;

  std::size_t size() const { return metrics_.size(); }

  /// All metrics, flattened, in name order.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition (counters/gauges as-is, histograms as
  /// summaries with quantile labels, time-weighted gauges as _avg/_max).
  std::string ToPrometheusText() const;

  /// Snapshot as CSV text (header + one row per metric).
  std::string ToCsvText() const;

  /// Writes ToCsvText() to `path`.
  Status WriteCsv(const std::string& path) const;

  /// Folds `other`'s metrics into this registry (the sweep engine's
  /// post-barrier combine — see docs/OBSERVABILITY.md). Per kind:
  /// counters add, gauges take `other`'s value (last-writer-wins, so
  /// merging per-task registries in task order is deterministic),
  /// histograms merge bucket-wise, time-weighted gauges add durations.
  /// Metrics only in `other` are created here. A name present in both
  /// with different kinds — or histograms with different bucket layouts —
  /// is skipped and counted in the return value.
  std::size_t Merge(const MetricsRegistry& other);

  /// Drops every metric (handles become dangling; re-resolve after).
  void Clear() { metrics_.clear(); }

 private:
  struct Entry {
    // Exactly one of these is set, according to `kind`.
    std::string kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::unique_ptr<TimeWeightedGauge> time_weighted;
  };

  std::map<std::string, Entry> metrics_;
  // Annotation maps are kept separate from metrics_ so SetHelp/SetLabel
  // on a not-yet-registered name never creates a phantom metric.
  std::map<std::string, std::string> help_;
  std::map<std::string, std::map<std::string, std::string>> labels_;
};

// Null-tolerant update helpers: the instrumentation idiom is to resolve
// handles once (null when telemetry is off) and call these in hot paths.
inline void Increment(Counter* c, double delta = 1.0) {
  if (c != nullptr) c->Increment(delta);
}
inline void Set(Gauge* g, double value) {
  if (g != nullptr) g->Set(value);
}
inline void Observe(HistogramMetric* h, double sample) {
  if (h != nullptr) h->Observe(sample);
}
inline void Update(TimeWeightedGauge* g, double now, double value) {
  if (g != nullptr) g->Update(now, value);
}

/// "server.disk.cycle_slack_ms" -> "server_disk_cycle_slack_ms": rewrites
/// the library's dotted names into the Prometheus grammar.
std::string PrometheusName(const std::string& name);

/// Escapes a HELP string per the text exposition format: `\` -> `\\`,
/// newline -> `\n`.
std::string PrometheusEscapeHelp(const std::string& text);

/// Escapes a label value per the text exposition format: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`.
std::string PrometheusEscapeLabelValue(const std::string& text);

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_METRICS_H_
