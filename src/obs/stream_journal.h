// Stream lifecycle journal: an allocation-free, bounded per-stream event
// record tracking every stream's journey through the server — admitted →
// playing → degraded → shed → re-admitted → departed — together with its
// cumulative IO/byte counts, underflow tally, buffer-occupancy
// distribution, and measured headroom against the Theorem-1/2 DRAM
// envelope it was admitted under.
//
// The paper's guarantees are *per-stream* promises (no starvation,
// bounded DRAM per admitted stream); aggregate counters cannot show
// which stream was shed or how close an individual buffer sailed to its
// bound. The journal is the stream-granular complement to the aggregate
// QoS auditor, in the spirit of puffer's per-client monitoring.
//
// Design rules (the PR 1/2 telemetry contracts):
//  - Registration (EnsureStream) is a cold-path operation that allocates
//    the per-stream slot: a fixed event buffer and a fixed-bucket
//    occupancy histogram. All hot-path calls (RecordIo, RecordUnderflows,
//    the Mark* transitions) touch only preallocated storage — the
//    cycle_alloc_test proves a journal-wired server's steady-state cycle
//    performs zero heap allocations.
//  - A null journal costs one pointer test per site via the free helpers
//    at the bottom (the obs::metrics idiom). Servers resolve slots once
//    at construction.
//  - Per-stream event storage is bounded (StreamJournalOptions); once a
//    stream's buffer fills, later events are counted in events_dropped
//    but the first `events_per_stream` transitions — the interesting
//    early lifecycle — are preserved verbatim.
//
// Exports: a "streams" block in RunReport (schema v4), per-stream
// Chrome-trace lifecycle tracks (ChromeTraceExporter), and stream.*
// summary metrics (PublishSummary).

#ifndef MEMSTREAM_OBS_STREAM_JOURNAL_H_
#define MEMSTREAM_OBS_STREAM_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace memstream::obs {

/// Lifecycle phase of one journaled stream.
enum class StreamPhase : std::uint8_t {
  kAdmitted,  ///< registered; no data delivered yet
  kPlaying,   ///< first IO landed; in steady service
  kDegraded,  ///< still served, but off its healthy plan (disk fallback,
              ///< reshaped cycle)
  kShed,      ///< dropped by the degradation manager; no service
  kDeparted,  ///< run over (or stream released)
};

const char* StreamPhaseName(StreamPhase phase);

/// Journal event kinds. kReadmitted returns a shed stream to kPlaying.
enum class StreamEventKind : std::uint8_t {
  kAdmitted,
  kPlaying,
  kDegraded,
  kShed,
  kReadmitted,
  kDeparted,
};

const char* StreamEventKindName(StreamEventKind kind);

/// One recorded lifecycle transition.
struct StreamEvent {
  double t = 0;
  StreamEventKind kind = StreamEventKind::kAdmitted;
  /// Kind-specific annotation: for kDegraded 0 = reshaped cycle,
  /// 1 = disk fallback; otherwise 0.
  double detail = 0;
};

struct StreamJournalOptions {
  /// Lifecycle events retained per stream (>= 2). Later events only
  /// count in events_dropped.
  std::size_t events_per_stream = 16;
  /// Buckets of the per-stream occupancy histogram.
  std::size_t occupancy_buckets = 32;
};

/// Everything the journal knows about one stream. Fields are cumulative
/// over the run; `occupancy` holds the per-deposit DRAM level samples.
struct StreamJournalEntry {
  std::int64_t stream_id = -1;
  double bit_rate = 0;          ///< bytes/second
  Bytes envelope_bytes = 0;     ///< Theorem-1/2 per-stream DRAM bound
  StreamPhase phase = StreamPhase::kAdmitted;
  std::int64_t ios = 0;
  Bytes bytes = 0;
  std::int64_t underflows = 0;  ///< cumulative underflow events
  std::int64_t sheds = 0;
  std::int64_t readmits = 0;
  std::int64_t degrades = 0;
  Bytes peak_level_bytes = 0;
  Histogram occupancy;          ///< DRAM level at each deposit
  std::vector<StreamEvent> events;  ///< first N transitions, time order
  std::int64_t events_dropped = 0;

  StreamJournalEntry(std::int64_t id, double rate, Bytes envelope,
                     const StreamJournalOptions& options);

  /// 1 - peak/envelope: how much of the admitted DRAM envelope was never
  /// used. Negative = the envelope was breached (an audit-grade signal).
  /// 1 when the envelope is unknown (0) and nothing was measured.
  double headroom() const {
    if (envelope_bytes <= 0) return peak_level_bytes > 0 ? 0.0 : 1.0;
    return 1.0 - peak_level_bytes / envelope_bytes;
  }
};

/// Aggregate outcome counts across the journal (the RunReport summary
/// and the `stream.*` metrics).
struct StreamJournalSummary {
  std::int64_t count = 0;
  std::int64_t departed = 0;
  std::int64_t shed = 0;        ///< streams shed at least once
  std::int64_t still_shed = 0;  ///< phase == kShed at the end
  std::int64_t readmitted = 0;  ///< streams re-admitted at least once
  std::int64_t degraded = 0;    ///< streams degraded at least once
  std::int64_t underflow_streams = 0;  ///< streams with >= 1 underflow
  std::int64_t total_ios = 0;
  std::int64_t total_underflows = 0;
  std::int64_t events_dropped = 0;
  double min_headroom = 1.0;    ///< tightest stream vs. its envelope
};

/// Owner of all per-stream journal slots for one run (or one farm of
/// runs — stream ids must then be globally unique). Not synchronized:
/// feed it from one simulation thread.
class StreamJournal {
 public:
  explicit StreamJournal(StreamJournalOptions options = {});
  StreamJournal(const StreamJournal&) = delete;
  StreamJournal& operator=(const StreamJournal&) = delete;

  /// Registers `stream_id` (cold path; allocates the slot) and records
  /// the kAdmitted event at `t`. Re-registering an existing id returns
  /// the existing slot unchanged — the facade may pre-register with a
  /// precise envelope before the server self-registers.
  std::size_t EnsureStream(std::int64_t stream_id, double bit_rate,
                           Bytes envelope_bytes, double t);

  /// Dense slot of `stream_id`, or -1 when never registered.
  std::ptrdiff_t SlotOf(std::int64_t stream_id) const;

  // --- hot path (allocation-free) ---

  /// One IO of `bytes` landed for the stream at `t`, leaving its DRAM
  /// buffer at `level`. The first IO moves kAdmitted -> kPlaying.
  void RecordIo(std::size_t slot, double t, Bytes bytes, Bytes level);

  /// Folds a whole execution slice (e.g. one farm epoch) into the
  /// stream in one call: `ios` IOs moving `bytes` total with the DRAM
  /// buffer peaking at `peak_level`. The occupancy histogram observes
  /// the peak once. The first non-empty summary moves kAdmitted ->
  /// kPlaying, like RecordIo.
  void RecordIoSummary(std::size_t slot, double t, std::int64_t ios,
                       Bytes bytes, Bytes peak_level);

  /// `count` new underflow events were observed for the stream.
  void RecordUnderflows(std::size_t slot, double t, std::int64_t count);

  /// The stream left its healthy plan but is still served. `detail`:
  /// 0 = reshaped cycle, 1 = disk fallback.
  void MarkDegraded(std::size_t slot, double t, double detail);

  /// The degradation manager dropped the stream from service.
  void MarkShed(std::size_t slot, double t);

  /// A shed stream rejoined service (back to kPlaying).
  void MarkReadmitted(std::size_t slot, double t);

  /// The run is over for this stream (any phase; the prior phase stays
  /// visible in the event record).
  void MarkDeparted(std::size_t slot, double t);

  /// Marks every not-yet-departed stream departed at `t`.
  void Finalize(double t);

  // --- reads ---

  std::size_t size() const { return entries_.size(); }
  const StreamJournalEntry& entry(std::size_t slot) const {
    return entries_[slot];
  }

  StreamJournalSummary Summarize() const;

  /// Publishes the summary as `stream.*` gauges (count, shed, readmitted,
  /// degraded, underflow_streams, min_headroom, events_dropped, ...).
  void PublishSummary(MetricsRegistry* metrics) const;

 private:
  void Append(StreamJournalEntry& e, double t, StreamEventKind kind,
              double detail);

  StreamJournalOptions options_;
  std::deque<StreamJournalEntry> entries_;  ///< deque: stable addresses
  std::unordered_map<std::int64_t, std::size_t> slot_of_;
};

// Null-tolerant hot-path helpers (resolve the journal pointer and slot
// once at construction; slot < 0 = stream not journaled).
inline void JournalIo(StreamJournal* j, std::ptrdiff_t slot, double t,
                      Bytes bytes, Bytes level) {
  if (j != nullptr && slot >= 0) {
    j->RecordIo(static_cast<std::size_t>(slot), t, bytes, level);
  }
}
inline void JournalUnderflows(StreamJournal* j, std::ptrdiff_t slot,
                              double t, std::int64_t count) {
  if (j != nullptr && slot >= 0 && count > 0) {
    j->RecordUnderflows(static_cast<std::size_t>(slot), t, count);
  }
}

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_STREAM_JOURNAL_H_
