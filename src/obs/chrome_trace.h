// Chrome trace-event export: converts a sim::TraceLog into the JSON
// Object Format understood by chrome://tracing and Perfetto, so a whole
// MEMS-buffer run can be inspected on a timeline — one track for the
// disk, one per MEMS device, one per stream.
//
// Mapping (see docs/OBSERVABILITY.md):
//  - pid 1 "devices": one tid per distinct actor, in order of first
//    appearance. kCycleEnd / kIoCompleted records with a duration become
//    complete ("X") span events ending at record.time; kCycleStart and
//    kIoIssued become instants.
//  - pid 2 "streams": one tid per stream id. kUnderflow / kOverflow are
//    instants; kBufferLevel becomes a counter ("C") series
//    "stream<id>.buffer_bytes", which Perfetto renders as a staircase of
//    per-stream occupancy.
//  - Metadata ("M") events name every process and thread.
//
// Timestamps are microseconds of simulated time.

#ifndef MEMSTREAM_OBS_CHROME_TRACE_H_
#define MEMSTREAM_OBS_CHROME_TRACE_H_

#include <string>

#include "common/profiler.h"
#include "common/status.h"
#include "obs/stream_journal.h"
#include "obs/timeline.h"
#include "sim/trace.h"

namespace memstream::obs {

/// Options for the exporter.
struct ChromeTraceOptions {
  bool include_buffer_counters = true;  ///< emit kBufferLevel "C" events
  bool include_instants = true;  ///< emit instants (issues, notes, starts)
};

class ChromeTraceExporter {
 public:
  explicit ChromeTraceExporter(ChromeTraceOptions options = {})
      : options_(options) {}

  /// Renders `log` as a Chrome trace-event JSON document. When
  /// `timelines` is non-null its series are appended as counter ("C")
  /// tracks under pid 3 "timelines", one tid per series, so recorder
  /// signals (occupancy, utilization) render next to the event tracks.
  /// When `profile` is non-null the merged profiler tree is appended as
  /// pid 4 "profiler": nested complete ("X") spans laid out from t=0
  /// with durations equal to each region's inclusive CPU time — a
  /// static flamegraph track beside the simulated timeline.
  /// When `journal` is non-null its per-stream lifecycle records are
  /// appended as pid 5 "lifecycle": one tid per journaled stream, each
  /// transition (admitted, playing, degraded, shed, readmitted,
  /// departed) an instant on that stream's track, so shed/re-admit
  /// windows line up against the device cycles and fault spans above.
  std::string ToJson(const sim::TraceLog& log,
                     const TimelineRecorder* timelines = nullptr,
                     const prof::ProfileSnapshot* profile = nullptr,
                     const StreamJournal* journal = nullptr) const;

  /// Writes ToJson() to `path` (conventionally <name>.trace.json).
  Status WriteFile(const sim::TraceLog& log, const std::string& path,
                   const TimelineRecorder* timelines = nullptr,
                   const prof::ProfileSnapshot* profile = nullptr,
                   const StreamJournal* journal = nullptr) const;

 private:
  ChromeTraceOptions options_;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_CHROME_TRACE_H_
