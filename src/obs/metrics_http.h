// A tiny dependency-free HTTP/1.1 server exposing live observability
// endpoints for long-running sim/farm runs — the first concrete step of
// the ROADMAP's "simulator to service" item:
//
//   GET /          -> text index of the endpoints
//   GET /metrics   -> Prometheus text exposition (the metrics provider)
//   GET /profilez  -> current profiler tree as JSON (see ProfileJson)
//   GET /slostatus -> SLO attainment/error-budget JSON (the SLO provider)
//   GET /healthz   -> "ok", or 503 "degraded: ..." when the health
//                     provider reports an exhausted error budget
//
// Design rules:
//  - POSIX sockets only, one background thread, sequential request
//    handling (responses are small text documents; no keep-alive). The
//    accept loop multiplexes the listen socket against a self-pipe so
//    Stop() wakes it immediately.
//  - Content is produced by caller-supplied provider callbacks invoked
//    on the server thread per request. MetricsRegistry is not itself
//    thread-safe, so providers must do their own synchronization — e.g.
//    snapshot under the mutex that also guards registry writers. The
//    default /profilez provider reads prof::Profiler::Global(), whose
//    Snapshot() is safe against live instrumented threads.
//  - Bind to 127.0.0.1 by default; port 0 picks an ephemeral port
//    (read it back with port() after Start()).

#ifndef MEMSTREAM_OBS_METRICS_HTTP_H_
#define MEMSTREAM_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace memstream::obs {

struct MetricsHttpOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read back via port()
};

class MetricsHttpServer {
 public:
  /// Returns a response body; invoked on the server thread per request.
  using Provider = std::function<std::string()>;

  explicit MetricsHttpServer(MetricsHttpOptions options = {});
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Provider for /metrics (served as text/plain; version=0.0.4, the
  /// Prometheus exposition content type). Unset -> 503 on /metrics.
  void SetMetricsProvider(Provider provider);

  /// Provider for /profilez (served as application/json). Defaults to a
  /// JSON dump of prof::Profiler::Global()'s current snapshot.
  void SetProfileProvider(Provider provider);

  /// Provider for /slostatus (served as application/json; conventionally
  /// SloMonitor::StatusJson). Unset -> 503 on /slostatus.
  void SetSloProvider(Provider provider);

  /// Returns liveness; a false return (with optional detail) turns
  /// /healthz into "503 degraded: <detail>". Conventionally bound to
  /// SloMonitor::healthy. Unset -> /healthz always "ok".
  using HealthProvider = std::function<bool(std::string* detail)>;
  void SetHealthProvider(HealthProvider provider);

  /// Binds, listens, and starts the server thread. FailedPrecondition
  /// when already started; Internal with errno detail on socket errors.
  Status Start();

  /// Stops the server thread and closes the socket. Idempotent.
  void Stop();

  /// The bound port (resolved after Start()); 0 before Start().
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests served since Start(); for tests and idle-telemetry.
  std::int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void HandleConnection(int fd);

  MetricsHttpOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Stop() writes, Loop() wakes
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> requests_served_{0};
  std::mutex mu_;  ///< guards the providers
  Provider metrics_provider_;
  Provider profile_provider_;
  Provider slo_provider_;
  HealthProvider health_provider_;
};

}  // namespace memstream::obs

#endif  // MEMSTREAM_OBS_METRICS_HTTP_H_
