// Units and literals used throughout the library.
//
// Convention: sizes are in bytes (double, because the analytical model
// works with fractional per-stream buffer sizes), times in seconds, and
// rates in bytes/second. The helpers below keep call sites readable
// ("10 * MiBps" rather than 1.0e7) and make unit mistakes greppable.
//
// The paper quotes device rates in decimal megabytes (MB = 1e6 B); we
// follow that convention for all device parameters, matching Tables 1 & 3.

#ifndef MEMSTREAM_COMMON_UNITS_H_
#define MEMSTREAM_COMMON_UNITS_H_

#include <cstdint>

namespace memstream {

using Bytes = double;        ///< size in bytes (fractional allowed)
using Seconds = double;      ///< duration in seconds
using BytesPerSecond = double;  ///< transfer rate
using Dollars = double;      ///< cost
using DollarsPerByte = double;  ///< unit cost

// Decimal size units (storage-industry convention, as in the paper).
inline constexpr Bytes kKB = 1e3;
inline constexpr Bytes kMB = 1e6;
inline constexpr Bytes kGB = 1e9;
inline constexpr Bytes kTB = 1e12;

// Time units.
inline constexpr Seconds kMillisecond = 1e-3;
inline constexpr Seconds kMicrosecond = 1e-6;

// Rate units.
inline constexpr BytesPerSecond kKBps = 1e3;
inline constexpr BytesPerSecond kMBps = 1e6;
inline constexpr BytesPerSecond kGBps = 1e9;

/// Converts a byte count to decimal gigabytes (for reporting).
inline constexpr double ToGB(Bytes b) { return b / kGB; }
/// Converts a byte count to decimal megabytes (for reporting).
inline constexpr double ToMB(Bytes b) { return b / kMB; }
/// Converts seconds to milliseconds (for reporting).
inline constexpr double ToMs(Seconds s) { return s / kMillisecond; }

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_UNITS_H_
