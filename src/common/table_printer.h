// Aligned ASCII tables for the bench harnesses: every figure/table
// regenerator prints its series through this, so output stays uniform.

#ifndef MEMSTREAM_COMMON_TABLE_PRINTER_H_
#define MEMSTREAM_COMMON_TABLE_PRINTER_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace memstream {

/// Collects rows of string cells and renders them with per-column
/// alignment. Numeric-looking cells are right-aligned, text left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// an error (asserted).
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision and appends row-building
  /// helpers; see Cell() overloads.
  static std::string Cell(double v, int precision = 3);
  static std::string Cell(std::int64_t v);
  static std::string Cell(const std::string& v) { return v; }

  /// Renders the full table (header, separator, rows).
  std::string ToString() const;

  /// Writes ToString() to the stream.
  void Print(std::ostream& os) const;

  std::size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_TABLE_PRINTER_H_
