// Minimal leveled logger. The library itself logs nothing at Info by
// default; the simulator and benches use it for progress and diagnostics.
// Every emitted line carries a wall-clock timestamp and a level tag; the
// output sink is injectable (tests capture lines instead of scraping
// stderr).

#ifndef MEMSTREAM_COMMON_LOGGING_H_
#define MEMSTREAM_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace memstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Human-readable tag ("DEBUG", "INFO", "WARN", "ERROR").
const char* LogLevelName(LogLevel level);

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every message that passes the threshold. The message is the
/// raw text without timestamp or level decoration — sinks decide the
/// framing.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink. Null restores the default sink, which writes
/// "[YYYY-MM-DD HH:MM:SS.mmm] [LEVEL] message" lines to stderr.
void SetLogSink(LogSink sink);

/// Emits a message if `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the MEMSTREAM_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace memstream

/// Usage: MEMSTREAM_LOG(kInfo) << "admitted " << n << " streams";
#define MEMSTREAM_LOG(level) \
  ::memstream::internal::LogLine(::memstream::LogLevel::level)

#endif  // MEMSTREAM_COMMON_LOGGING_H_
