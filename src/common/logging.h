// Minimal leveled logger. The library itself logs nothing at Info by
// default; the simulator and benches use it for progress and diagnostics.

#ifndef MEMSTREAM_COMMON_LOGGING_H_
#define MEMSTREAM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace memstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a message to stderr if `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the MEMSTREAM_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace memstream

/// Usage: MEMSTREAM_LOG(kInfo) << "admitted " << n << " streams";
#define MEMSTREAM_LOG(level) \
  ::memstream::internal::LogLine(::memstream::LogLevel::level)

#endif  // MEMSTREAM_COMMON_LOGGING_H_
