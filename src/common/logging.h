// Minimal leveled logger. The library itself logs nothing at Info by
// default; the simulator and benches use it for progress and diagnostics.
// Every emitted line carries a wall-clock timestamp and a level tag; the
// output sink is injectable (tests capture lines instead of scraping
// stderr).

#ifndef MEMSTREAM_COMMON_LOGGING_H_
#define MEMSTREAM_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace memstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Human-readable tag ("DEBUG", "INFO", "WARN", "ERROR").
const char* LogLevelName(LogLevel level);

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every message that passes the threshold. The message is the
/// raw text without timestamp or level decoration — sinks decide the
/// framing.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink. Null restores the default sink, which writes
/// "[YYYY-MM-DD HH:MM:SS.mmm] [LEVEL] message" lines to stderr.
///
/// Thread-safety: SetLogSink and LogMessage may race freely — the slot
/// is mutex-protected and LogMessage snapshots the sink before invoking
/// it, so a concurrent swap never tears a call. The sink itself must be
/// thread-safe once benches run multi-threaded sweeps: it can be invoked
/// from any pool worker concurrently. Prefer installing the sink before
/// a sweep starts and leaving it in place until the sweep's barrier.
void SetLogSink(LogSink sink);

/// Emits a message if `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the MEMSTREAM_LOG macro. Checks the
/// level once at construction: a filtered line never formats its
/// operands and never reaches LogMessage (no sink-mutex traffic), so
/// disabled-level logging in hot loops costs one atomic load.
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : level_(level),
        enabled_(static_cast<int>(level) >=
                 static_cast<int>(GetLogLevel())) {}
  ~LogLine() {
    if (enabled_) LogMessage(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace memstream

/// Usage: MEMSTREAM_LOG(kInfo) << "admitted " << n << " streams";
#define MEMSTREAM_LOG(level) \
  ::memstream::internal::LogLine(::memstream::LogLevel::level)

#endif  // MEMSTREAM_COMMON_LOGGING_H_
