#include "common/csv_writer.h"

#include <cstdio>

namespace memstream {

std::string CsvEscape(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path) {
  if (out_.is_open()) WriteRow(headers);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << CsvEscape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  WriteRow(cells);
}

void CsvWriter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    text.emplace_back(buf);
  }
  WriteRow(text);
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { Close(); }

}  // namespace memstream
