// Streaming statistics for the simulator: a scalar accumulator, a
// fixed-bucket histogram for latency distributions, and a time-weighted
// accumulator for occupancy-style series (buffer fill over time).

#ifndef MEMSTREAM_COMMON_HISTOGRAM_H_
#define MEMSTREAM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace memstream {

/// Running min/max/mean/variance over a stream of samples (Welford).
class RunningStats {
 public:
  void Add(double x);

  /// Folds another accumulator in, as if every sample it saw had been
  /// Add()ed here (Chan et al. parallel combine). Order-independent up
  /// to floating-point rounding; the sweep engine merges per-task stats
  /// in task order so results stay bit-reproducible.
  void Merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-bucket histogram over [lo, hi); out-of-range samples land in
/// saturating edge buckets so totals are never lost.
class Histogram {
 public:
  /// Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  /// Adds another histogram's samples bucket-by-bucket. Returns false
  /// (and changes nothing) unless `other` has the identical [lo, hi)
  /// range and bucket count.
  bool Merge(const Histogram& other);

  std::int64_t TotalCount() const { return total_; }
  std::int64_t BucketCount(std::size_t i) const { return counts_[i]; }
  std::size_t NumBuckets() const { return counts_.size(); }
  double BucketLow(std::size_t i) const;

  /// Value below which `q` (in [0,1]) of the samples fall, interpolated
  /// within the containing bucket. Well-defined at the edges: an empty
  /// histogram returns `lo`, and any non-empty result is clamped to the
  /// observed [min, max] — so a single sample (or all-equal samples)
  /// yields exactly that value at every q, and q=0 / q=1 return the
  /// true min / max rather than a bucket boundary.
  double Quantile(double q) const;

  const RunningStats& stats() const { return stats_; }

  /// Multi-line ASCII rendering (bucket ranges + bar chart), for logs.
  std::string ToAscii(int width = 40) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  RunningStats stats_;
};

/// Time-weighted average of a piecewise-constant signal, e.g. DRAM buffer
/// occupancy as a function of simulated time.
class TimeWeightedStats {
 public:
  /// Records that the signal held `value` from the previous update time
  /// until `now`. Times must be non-decreasing.
  void Update(double now, double value);

  /// Combines two independently observed signals (e.g. the same gauge
  /// tracked in per-task registries): durations and weighted sums add,
  /// max is the overall max, and last_value follows `other` when it saw
  /// any update — so merging in task order keeps last-writer-wins
  /// semantics deterministic.
  void Merge(const TimeWeightedStats& other);

  double TimeAverage() const;
  double last_value() const { return last_value_; }
  double max_value() const { return max_value_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double max_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_HISTOGRAM_H_
