// CSV output for experiment series, so bench results can be re-plotted.
// Each bench binary writes one CSV per figure panel next to its stdout
// table. Quoting follows RFC 4180 (quote cells containing , " or \n).

#ifndef MEMSTREAM_COMMON_CSV_WRITER_H_
#define MEMSTREAM_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace memstream {

/// Writes rows to a CSV file. Construction opens the file; Close() (or the
/// destructor) flushes it.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Returns an error Status via ok() if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// True if the file opened successfully.
  bool ok() const { return out_.is_open() && out_.good(); }

  /// Appends one data row; cells are quoted as needed.
  void AddRow(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with full round-trip precision.
  void AddRow(const std::vector<double>& cells);

  /// Flushes and closes the file.
  void Close();

  ~CsvWriter();

 private:
  void WriteRow(const std::vector<std::string>& cells);

  std::ofstream out_;
};

/// Escapes a single CSV cell per RFC 4180.
std::string CsvEscape(const std::string& cell);

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_CSV_WRITER_H_
