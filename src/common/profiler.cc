#include "common/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace memstream::prof {

namespace internal {

ThreadState::ThreadState() : nodes(new Node[kMaxNodes]) {
  nodes[kRoot].name = "";
  nodes[kRoot].parent = kNone;
}

}  // namespace internal

using internal::ThreadState;

Profiler& Profiler::Global() {
  // Leaked singleton: instrumented scopes and the atexit dump may run
  // during static destruction, so the profiler must never be destroyed.
  static Profiler* instance = new Profiler();
  return *instance;
}

void Profiler::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_.load(std::memory_order_relaxed) != 0) return;
  ++epoch_;
  enabled_.store(epoch_, std::memory_order_release);
}

void Profiler::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(0, std::memory_order_release);
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  states_.clear();
  // Bump the epoch so cached thread-local pointers into the dropped
  // tables are revalidated (and re-registered) on the next scope.
  ++epoch_;
  if (enabled_.load(std::memory_order_relaxed) != 0) {
    enabled_.store(epoch_, std::memory_order_release);
  }
}

std::int64_t Profiler::NowNs() {
  const ClockFn fn = Global().clock_.load(std::memory_order_acquire);
  if (fn != nullptr) return fn();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::SetClockForTesting(ClockFn fn) {
  clock_.store(fn, std::memory_order_release);
}

void Profiler::SetAllocCounter(AllocCounterFn fn) {
  alloc_counter_.store(fn, std::memory_order_release);
}

ThreadState* Profiler::CurrentThreadState() {
  const std::uint64_t word = enabled_.load(std::memory_order_acquire);
  if (word == 0) return nullptr;
  thread_local ThreadState* cached = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  if (cached_epoch == word && cached != nullptr) return cached;
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_unique<ThreadState>();
  cached = state.get();
  cached_epoch = word;
  states_.push_back(std::move(state));
  return cached;
}

std::uint32_t Profiler::FindOrCreateNode(ThreadState* ts, const char* name) {
  internal::ThreadState::Node* nodes = ts->nodes.get();
  const std::uint32_t parent = ts->current;
  for (std::uint32_t c = nodes[parent].first_child;
       c != ThreadState::kNone; c = nodes[c].next_sibling) {
    // Pointer equality first: literals usually dedupe within a binary.
    if (nodes[c].name == name || std::strcmp(nodes[c].name, name) == 0) {
      return c;
    }
  }
  // New region under this parent: rare, so the registry mutex (which
  // also serializes Snapshot() traversals) is acceptable here.
  std::lock_guard<std::mutex> lock(mu_);
  if (ts->node_count >= ThreadState::kMaxNodes) return ThreadState::kNone;
  const std::uint32_t idx = ts->node_count;
  internal::ThreadState::Node& n = nodes[idx];
  n.name = name;
  n.parent = parent;
  n.next_sibling = nodes[parent].first_child;
  ts->node_count = idx + 1;
  nodes[parent].first_child = idx;
  return idx;
}

void ProfScope::Enter(const char* name) {
  ThreadState* ts = ts_;
  if (ts->overflow > 0) {
    // An ancestor was dropped; attaching this region to the grandparent
    // would misattribute its time, so drop it too (still counted).
    ++ts->overflow;
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t node = Profiler::Global().FindOrCreateNode(ts, name);
  if (node == ThreadState::kNone) {
    ts->overflow = 1;
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  node_ = node;
  ts->current = node;
  alloc_fn_ = Profiler::Global().alloc_counter();
  if (alloc_fn_ != nullptr) start_allocs_ = alloc_fn_();
  start_ns_ = Profiler::NowNs();
}

void ProfScope::Exit() {
  ThreadState* ts = ts_;
  if (node_ == ThreadState::kNone) {
    --ts->overflow;
    return;
  }
  const std::int64_t elapsed = Profiler::NowNs() - start_ns_;
  internal::ThreadState::Node& n = ts->nodes[node_];
  n.count.fetch_add(1, std::memory_order_relaxed);
  n.inclusive_ns.fetch_add(elapsed, std::memory_order_relaxed);
  if (alloc_fn_ != nullptr) {
    n.alloc_delta.fetch_add(alloc_fn_() - start_allocs_,
                            std::memory_order_relaxed);
  }
  ts->current = n.parent;
}

namespace {

/// Folds one per-thread subtree into the merged children vector, which
/// is kept sorted by name so the merge is order-independent.
void MergeInto(const internal::ThreadState::Node* nodes, std::uint32_t idx,
               std::vector<ProfileNode>* out) {
  for (std::uint32_t c = nodes[idx].first_child;
       c != ThreadState::kNone; c = nodes[c].next_sibling) {
    const char* name = nodes[c].name;
    auto it = std::lower_bound(
        out->begin(), out->end(), name,
        [](const ProfileNode& n, const char* key) { return n.name < key; });
    if (it == out->end() || it->name != name) {
      ProfileNode fresh;
      fresh.name = name;
      it = out->insert(it, std::move(fresh));
    }
    it->count += nodes[c].count.load(std::memory_order_relaxed);
    it->inclusive_ns +=
        nodes[c].inclusive_ns.load(std::memory_order_relaxed);
    it->alloc_delta +=
        nodes[c].alloc_delta.load(std::memory_order_relaxed);
    MergeInto(nodes, c, &it->children);
  }
}

void ComputeExclusive(ProfileNode* node) {
  std::int64_t child_sum = 0;
  for (auto& c : node->children) {
    ComputeExclusive(&c);
    child_sum += c.inclusive_ns;
  }
  node->exclusive_ns = std::max<std::int64_t>(0, node->inclusive_ns -
                                                     child_sum);
}

void AppendCollapsed(const ProfileNode& node, const std::string& prefix,
                     std::string* out) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  if (node.exclusive_ns > 0) {
    out->append(path);
    out->push_back(' ');
    out->append(std::to_string(node.exclusive_ns));
    out->push_back('\n');
  }
  for (const auto& c : node.children) AppendCollapsed(c, path, out);
}

}  // namespace

ProfileSnapshot Profiler::Snapshot() const {
  ProfileSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& state : states_) {
    MergeInto(state->nodes.get(), ThreadState::kRoot, &snap.roots);
    snap.dropped_samples +=
        state->dropped.load(std::memory_order_relaxed);
  }
  snap.threads = static_cast<int>(states_.size());
  for (auto& r : snap.roots) ComputeExclusive(&r);
  return snap;
}

std::int64_t Profiler::dropped_samples() const {
  std::int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& state : states_) {
    total += state->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t ProfileSnapshot::total_inclusive_ns() const {
  std::int64_t total = 0;
  for (const auto& r : roots) total += r.inclusive_ns;
  return total;
}

std::string CollapsedStackText(const ProfileSnapshot& snapshot) {
  std::string out;
  for (const auto& r : snapshot.roots) AppendCollapsed(r, "", &out);
  return out;
}

namespace {

void DumpAtExit() {
  Profiler& profiler = Profiler::Global();
  if (!profiler.enabled()) return;
  const ProfileSnapshot snap = profiler.Snapshot();
  const char* env_out = std::getenv("MEMSTREAM_PROFILE_OUT");
  const std::string path = env_out != nullptr ? env_out : "profile.folded";
  if (std::FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
    const std::string text = CollapsedStackText(snap);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr,
               "profiler: %d thread(s), %.3f ms inclusive, %lld dropped "
               "sample(s) -> %s\n",
               snap.threads,
               static_cast<double>(snap.total_inclusive_ns()) / 1e6,
               static_cast<long long>(snap.dropped_samples), path.c_str());
}

/// MEMSTREAM_PROFILE=1 in the environment enables the profiler for any
/// binary (benches, tools, tests) without code changes and dumps a
/// collapsed-stack profile at exit.
struct EnvInit {
  EnvInit() {
    const char* v = std::getenv("MEMSTREAM_PROFILE");
    if (v == nullptr || v[0] == '\0' ||
        (v[0] == '0' && v[1] == '\0')) {
      return;
    }
    Profiler::Global().Enable();
    std::atexit(DumpAtExit);
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace memstream::prof
