// Status and Result<T>: exception-free error propagation for the public API.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T> when they also produce a value); callers must check
// ok() before using the value.

#ifndef MEMSTREAM_COMMON_STATUS_H_
#define MEMSTREAM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace memstream {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed a parameter outside the valid domain
  kInfeasible,        ///< no configuration satisfies the real-time constraints
  kOutOfRange,        ///< index/address outside device or model bounds
  kResourceExhausted, ///< buffer pool, bandwidth, or capacity exhausted
  kFailedPrecondition,///< object not in the required state for the call
  kNotFound,          ///< lookup missed (catalog title, cached stream, ...)
  kAlreadyExists,     ///< duplicate insert (stream id, event id, ...)
  kUnavailable,       ///< component is down (failed device, offline bank)
  kInternal,          ///< invariant violation; indicates a library bug
};

/// Human-readable name of a StatusCode (e.g. "Infeasible").
const char* StatusCodeName(StatusCode code);

/// Success-or-error result of an operation, with an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct errors through
/// the named factories: `Status::InvalidArgument("N must be positive")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or the Status explaining why it could not be produced.
///
/// Accessing value() on an error Result is a programming error (asserts in
/// debug builds, undefined in release); always check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status: `return Status::Infeasible(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace memstream

/// Propagates an error Status from a callee to the caller.
#define MEMSTREAM_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::memstream::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // MEMSTREAM_COMMON_STATUS_H_
