// Monotonic bump allocator for per-cycle scratch. The simulated servers
// build a batch (IO spans, service order, drained writes) at the top of
// every IO cycle and throw it away at the end; vector churn there was the
// last steady-state allocation source in the cycle engine. A CycleArena
// hands out trivially-destructible scratch with a pointer bump and
// recycles the whole block with Reset() — after a one-cycle warmup the
// hot loop performs zero heap allocations (asserted by cycle_alloc_test).

#ifndef MEMSTREAM_COMMON_ARENA_H_
#define MEMSTREAM_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace memstream {

/// Bump allocator with cycle-granular reuse. Alloc() pointers stay valid
/// until the next Reset(); blocks are never returned to the heap, so the
/// arena converges on the high-water footprint and stops allocating.
class CycleArena {
 public:
  CycleArena() = default;
  CycleArena(const CycleArena&) = delete;
  CycleArena& operator=(const CycleArena&) = delete;
  CycleArena(CycleArena&&) = default;
  CycleArena& operator=(CycleArena&&) = default;

  /// Uninitialized scratch for `n` elements of a trivially destructible
  /// type (the arena never runs destructors). Never returns null for
  /// n == 0 — a zero-length request yields a valid one-past pointer.
  template <typename T>
  T* Alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "CycleArena scratch is reclaimed without destructors");
    const std::size_t bytes = n * sizeof(T);
    std::size_t offset = Align(used_, alignof(T));
    if (offset + bytes > block_size_) {
      Grow(offset + bytes);
      offset = Align(used_, alignof(T));
    }
    used_ = offset + bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return reinterpret_cast<T*>(block_.get() + offset);
  }

  /// Recycles every outstanding allocation; capacity is kept. Blocks a
  /// mid-cycle spill parked to keep old pointers alive are released here,
  /// outside the hot loop.
  void Reset() {
    if (!parked_.empty()) parked_.clear();
    used_ = 0;
  }

  /// Largest byte footprint any cycle has needed so far.
  std::size_t high_water() const { return high_water_; }
  /// Current backing-block size in bytes.
  std::size_t capacity() const { return block_size_; }

 private:
  static std::size_t Align(std::size_t offset, std::size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  void Grow(std::size_t need) {
    // Mid-cycle spill: move to a block that holds the whole cycle's
    // scratch. Earlier allocations of this cycle must stay valid, so the
    // old block is parked until Reset() (its live pointers die there).
    std::size_t size = block_size_ == 0 ? 256 : block_size_;
    while (size < need) size *= 2;
    auto bigger = std::make_unique<std::byte[]>(size);
    if (block_ != nullptr && used_ > 0) {
      // Keep this cycle's prefix addressable: copy is unnecessary (the
      // callers still point into the old block), just retain it.
      parked_.push_back(std::move(block_));
    }
    block_ = std::move(bigger);
    block_size_ = size;
    used_ = Align(used_, alignof(std::max_align_t));
    // Allocations continue at `used_` in the new block; the prefix
    // [0, used_) is dead space for the remainder of this cycle. The next
    // Reset() starts the bigger block from zero, so a steady-state cycle
    // fits without growing again.
  }

  std::unique_ptr<std::byte[]> block_;
  std::vector<std::unique_ptr<std::byte[]>> parked_;  ///< pre-spill blocks
  std::size_t block_size_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_ARENA_H_
