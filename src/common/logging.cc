#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

namespace memstream {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

/// "[YYYY-MM-DD HH:MM:SS.mmm]" from the wall clock.
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif
  char text[64];
  std::snprintf(text, sizeof(text),
                "%04d-%02d-%02d %02d:%02d:%02d.%03d", tm_buf.tm_year + 1900,
                tm_buf.tm_mon + 1, tm_buf.tm_mday, tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));
  return text;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkSlot();
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] [%s] %s\n", Timestamp().c_str(),
               LogLevelName(level), message.c_str());
}

}  // namespace memstream
