#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace memstream {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with SplitMix64 per the xoshiro authors' advice.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for span << 2^64; acceptable for workloads.
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(1.0 - u) / rate;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  assert(n >= 1);
  assert(exponent >= 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  assert(rank >= 1 && rank <= cdf_.size());
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace memstream
