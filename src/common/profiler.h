// In-process hierarchical profiler: allocation-free RAII scopes
// (PROF_SCOPE("sim.cycle.io")) aggregated per thread into a tree of
// (inclusive ns, call count, optional alloc delta) keyed by the region
// name path, then merged deterministically across threads on export.
//
// Design rules:
//  - The hot path is lock-free and allocation-free: entering a scope is
//    one atomic load (the global enabled word), a walk over the parent's
//    child list (region fan-out is small), and one clock read; leaving
//    is one clock read plus relaxed atomic adds. When the profiler is
//    disabled the whole scope is one atomic load and one branch — the
//    runtime null-sink path.
//  - Region names must be string literals (or otherwise outlive the
//    profiler); nodes store the pointer and compare by pointer first,
//    falling back to strcmp so duplicated literals across translation
//    units merge.
//  - Per-thread node tables are fixed-capacity and preallocated on a
//    thread's first scope; when the table fills, further new regions are
//    counted in dropped_samples() instead of recorded — truncation is
//    never silent (see obs::WarnDroppedTelemetry).
//  - Node counters are relaxed atomics and structural mutation happens
//    under the registry mutex, so Snapshot() may run concurrently with
//    live instrumented threads (the /profilez endpoint does exactly
//    that) and stays clean under TSan. Counter triples read mid-update
//    may be slightly inconsistent; totals are exact once writers pause.
//  - Building with -DMEMSTREAM_PROFILE=OFF (which defines
//    MEMSTREAM_PROFILE_ENABLED=0) compiles PROF_SCOPE to nothing:
//    exactly zero code at every instrumentation site.
//
// The profiler is a process-wide singleton. Setting the environment
// variable MEMSTREAM_PROFILE=1 enables it at startup and dumps a
// collapsed-stack profile (flamegraph.pl-ready) at exit to
// $MEMSTREAM_PROFILE_OUT (default ./profile.folded), so any bench or
// tool can be profiled without code changes.

#ifndef MEMSTREAM_COMMON_PROFILER_H_
#define MEMSTREAM_COMMON_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef MEMSTREAM_PROFILE_ENABLED
#define MEMSTREAM_PROFILE_ENABLED 1
#endif

namespace memstream::prof {

/// One merged region in a profile snapshot. exclusive_ns is inclusive_ns
/// minus the children's inclusive time (clamped at zero: concurrent
/// updates can transiently make children sum past the parent).
struct ProfileNode {
  std::string name;
  std::int64_t count = 0;
  std::int64_t inclusive_ns = 0;
  std::int64_t exclusive_ns = 0;
  std::int64_t alloc_delta = 0;  ///< allocations inside the region (0 when
                                 ///< no alloc counter is installed)
  std::vector<ProfileNode> children;  ///< sorted by name
};

/// Deterministic cross-thread merge of everything recorded so far.
struct ProfileSnapshot {
  std::vector<ProfileNode> roots;  ///< sorted by name
  std::int64_t dropped_samples = 0;
  int threads = 0;  ///< thread states merged

  /// Sum of the roots' inclusive time.
  std::int64_t total_inclusive_ns() const;
};

namespace internal {

/// Per-thread region table. Single-writer (the owning thread); snapshot
/// readers take the registry mutex, which also serializes node creation.
struct ThreadState {
  static constexpr std::uint32_t kMaxNodes = 4096;
  static constexpr std::uint32_t kRoot = 0;
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Node {
    const char* name = nullptr;
    std::uint32_t parent = kNone;
    std::uint32_t first_child = kNone;
    std::uint32_t next_sibling = kNone;
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> inclusive_ns{0};
    std::atomic<std::int64_t> alloc_delta{0};
  };

  ThreadState();

  std::unique_ptr<Node[]> nodes;  ///< kMaxNodes, node 0 is the root
  std::uint32_t node_count = 1;
  std::uint32_t current = kRoot;   ///< innermost open region
  std::uint32_t overflow = 0;      ///< open scopes dropped by a full table
  std::atomic<std::int64_t> dropped{0};
};

}  // namespace internal

/// Process-wide profiler singleton. See the file comment for the
/// threading and lifetime rules.
class Profiler {
 public:
  static Profiler& Global();

  /// Turns recording on. Scopes opened while disabled cost one atomic
  /// load; scopes opened while enabled accumulate into the tree.
  void Enable();
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire) != 0;
  }

  /// Drops all recorded data and thread tables. Callers must guarantee
  /// no instrumented scope is open on any thread (tests and end-of-run
  /// paths only); live threads re-register on their next scope.
  void Reset();

  /// Merged tree across every thread that recorded since the last
  /// Reset(), children sorted by name — identical regardless of thread
  /// scheduling or registration order.
  ProfileSnapshot Snapshot() const;

  /// Scopes dropped because a thread's node table filled.
  std::int64_t dropped_samples() const;

  /// Clock override for deterministic tests; null restores the steady
  /// clock. The function must return monotonic nanoseconds.
  using ClockFn = std::int64_t (*)();
  void SetClockForTesting(ClockFn fn);

  /// Optional allocation counter (e.g. a counting operator new in the
  /// test binary). When installed, every region also records the number
  /// of allocations performed inside it. Null disables.
  using AllocCounterFn = std::int64_t (*)();
  void SetAllocCounter(AllocCounterFn fn);
  AllocCounterFn alloc_counter() const {
    return alloc_counter_.load(std::memory_order_acquire);
  }

  /// Monotonic nanoseconds via the installed clock.
  static std::int64_t NowNs();

  // -- internal, used by ProfScope ---------------------------------------

  /// The calling thread's table for the current epoch, registering it on
  /// first use; null when the profiler is disabled.
  internal::ThreadState* CurrentThreadState();

 private:
  Profiler() = default;

  mutable std::mutex mu_;  ///< guards states_ and node creation/linking
  std::vector<std::unique_ptr<internal::ThreadState>> states_;
  /// 0 = disabled; otherwise the current epoch. Thread-local cached
  /// states are revalidated against this word, so Reset() (which bumps
  /// the epoch) safely invalidates every thread's cache.
  std::atomic<std::uint64_t> enabled_{0};
  std::uint64_t epoch_ = 0;
  std::atomic<ClockFn> clock_{nullptr};
  std::atomic<AllocCounterFn> alloc_counter_{nullptr};

  friend class ProfScope;
  std::uint32_t FindOrCreateNode(internal::ThreadState* ts,
                                 const char* name);
};

/// RAII region scope. Prefer the PROF_SCOPE macro, which compiles out
/// entirely under MEMSTREAM_PROFILE_ENABLED=0.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    internal::ThreadState* ts = Profiler::Global().CurrentThreadState();
    if (ts == nullptr) return;  // disabled: the one-branch null sink
    ts_ = ts;
    Enter(name);
  }
  ~ProfScope() {
    if (ts_ != nullptr) Exit();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  void Enter(const char* name);
  void Exit();

  internal::ThreadState* ts_ = nullptr;
  std::uint32_t node_ = internal::ThreadState::kNone;
  std::int64_t start_ns_ = 0;
  std::int64_t start_allocs_ = 0;
  Profiler::AllocCounterFn alloc_fn_ = nullptr;
};

/// Flamegraph-ready collapsed-stack text: one "a;b;c <weight>" line per
/// region with nonzero exclusive time, weight in nanoseconds, lines in
/// deterministic (depth-first, name-sorted) order.
std::string CollapsedStackText(const ProfileSnapshot& snapshot);

}  // namespace memstream::prof

#if MEMSTREAM_PROFILE_ENABLED
#define MEMSTREAM_PROF_CAT2(a, b) a##b
#define MEMSTREAM_PROF_CAT(a, b) MEMSTREAM_PROF_CAT2(a, b)
/// Profiles the enclosing scope under `name` (a string literal).
#define PROF_SCOPE(name) \
  ::memstream::prof::ProfScope MEMSTREAM_PROF_CAT(prof_scope_, \
                                                  __LINE__)(name)
#else
#define PROF_SCOPE(name) ((void)0)
#endif

#endif  // MEMSTREAM_COMMON_PROFILER_H_
