// Small-buffer move-only callable wrapper for hot paths that cannot
// afford std::function's copyability tax. Captures up to kInlineCapacity
// bytes live inside the object itself (no heap allocation); larger or
// over-aligned callables fall back to a single heap cell. Unlike
// std::function, moving never allocates and the wrapper accepts
// move-only captures (e.g. lambdas owning unique_ptr state).
//
// This is the event-queue payload type: the discrete-event hot loop
// pushes and pops millions of these, so steady-state operation must be
// allocation-free (see tests/move_only_function_test.cc, which asserts
// the inline threshold with a counting operator new).

#ifndef MEMSTREAM_COMMON_MOVE_ONLY_FUNCTION_H_
#define MEMSTREAM_COMMON_MOVE_ONLY_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace memstream {

template <typename Signature>
class MoveOnlyFunction;  // undefined; only the R(Args...) form exists

template <typename R, typename... Args>
class MoveOnlyFunction<R(Args...)> {
 public:
  /// Largest capture stored inline. 48 bytes fits six pointers — every
  /// event lambda in the simulator today — while keeping the wrapper at
  /// one cache line alongside the heap-fallback pointer slot.
  static constexpr std::size_t kInlineCapacity = 48;

  /// True when a callable of type F is stored inline (no allocation).
  template <typename F>
  static constexpr bool kStoredInline =
      sizeof(F) <= kInlineCapacity &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  MoveOnlyFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveOnlyFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveOnlyFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (kStoredInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &InlineInvoke<D>;
      manage_ = &InlineManage<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      invoke_ = &HeapInvoke<D>;
      manage_ = &HeapManage<D>;
    }
  }

  MoveOnlyFunction(MoveOnlyFunction&& other) noexcept { MoveFrom(other); }

  MoveOnlyFunction& operator=(MoveOnlyFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  MoveOnlyFunction(const MoveOnlyFunction&) = delete;
  MoveOnlyFunction& operator=(const MoveOnlyFunction&) = delete;

  ~MoveOnlyFunction() { Destroy(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the held callable lives in the inline buffer (test hook;
  /// meaningless when empty).
  bool is_inline() const { return manage_ != nullptr && manage_(kQueryInline, nullptr, nullptr); }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum ManageOp { kDestroy, kMove, kQueryInline };

  using InvokeFn = R (*)(void*, Args&&...);
  // kDestroy: tear down `self`. kMove: move-construct `self`'s payload
  // into `dst` raw storage (and destroy self's). kQueryInline: report
  // inline-ness. Returns true for inline storage.
  using ManageFn = bool (*)(ManageOp, void* self, void* dst);

  template <typename D>
  static R InlineInvoke(void* storage, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(storage)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static bool InlineManage(ManageOp op, void* self, void* dst) {
    switch (op) {
      case kDestroy:
        std::launder(reinterpret_cast<D*>(self))->~D();
        break;
      case kMove: {
        D* src = std::launder(reinterpret_cast<D*>(self));
        ::new (dst) D(std::move(*src));
        src->~D();
        break;
      }
      case kQueryInline:
        break;
    }
    return true;
  }

  template <typename D>
  static R HeapInvoke(void* storage, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(storage)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static bool HeapManage(ManageOp op, void* self, void* dst) {
    switch (op) {
      case kDestroy:
        delete *std::launder(reinterpret_cast<D**>(self));
        break;
      case kMove: {
        D** src = std::launder(reinterpret_cast<D**>(self));
        ::new (dst) D*(*src);  // steal the heap cell; no allocation
        *src = nullptr;
        break;
      }
      case kQueryInline:
        return false;
    }
    return false;
  }

  void MoveFrom(MoveOnlyFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(kMove, other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Destroy() noexcept {
    if (manage_ != nullptr) manage_(kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_MOVE_ONLY_FUNCTION_H_
