// Numeric utilities: root finding, 1-D minimization, and rational snapping.
//
// The analytical model needs three small solvers:
//  - bisection, to invert monotone feasibility conditions (e.g. the largest
//    N such that the DRAM budget holds);
//  - golden-section search, to minimize the total buffering cost over the
//    disk IO-cycle length T_disk (Fig. 8 uses per-byte MEMS pricing, which
//    makes the cost U-shaped in T_disk);
//  - rational snapping, for Theorem 2's scheduling constraint (Eq. 8):
//    T_mems / T_disk must equal M/N with integer M < N.

#ifndef MEMSTREAM_COMMON_MATH_UTILS_H_
#define MEMSTREAM_COMMON_MATH_UTILS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace memstream {

/// Options controlling iterative solvers.
struct SolverOptions {
  double tolerance = 1e-9;   ///< absolute interval width at convergence
  int max_iterations = 200;  ///< hard iteration cap
};

/// Finds a root of `f` in [lo, hi] by bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (or one of them to be
/// zero). Returns the approximate root, or InvalidArgument if the bracket
/// is invalid.
Result<double> Bisect(const std::function<double(double)>& f, double lo,
                      double hi, const SolverOptions& opts = {});

/// Returns the largest integer n in [lo, hi] with pred(n) true.
///
/// Requires pred to be monotone non-increasing over [lo, hi] (true ...
/// true false ... false). Returns NotFound if pred(lo) is false.
Result<std::int64_t> LargestTrue(
    const std::function<bool(std::int64_t)>& pred, std::int64_t lo,
    std::int64_t hi);

/// Minimizes a unimodal function over [lo, hi] by golden-section search.
///
/// Returns the minimizing abscissa. Tolerance is on the abscissa interval.
Result<double> GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const SolverOptions& opts = {});

/// A reduced fraction M/N.
struct Rational {
  std::int64_t num = 0;
  std::int64_t den = 1;

  double Value() const { return static_cast<double>(num) / den; }
  bool operator==(const Rational&) const = default;
};

/// Largest fraction M/denominator <= x with integer 0 <= M, given a fixed
/// denominator. Used to snap T_mems/T_disk to M/N per Eq. 8.
Rational FloorToDenominator(double x, std::int64_t denominator);

/// Smallest fraction M/denominator >= x with integer M >= 0.
Rational CeilToDenominator(double x, std::int64_t denominator);

/// Greatest common divisor (non-negative inputs).
std::int64_t Gcd(std::int64_t a, std::int64_t b);

/// True if |a-b| <= tol * max(1, |a|, |b|).
bool AlmostEqual(double a, double b, double tol = 1e-9);

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_MATH_UTILS_H_
