#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace memstream {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  mean_ += delta * n_b / n;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(lo < hi);
  assert(buckets >= 1);
}

void Histogram::Add(double x) {
  stats_.Add(x);
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

bool Histogram::Merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  stats_.Merge(other.stats_);
  return true;
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  // Clamping to the observed sample range keeps the edges well-defined:
  // bucket interpolation alone would report values past the max for
  // all-equal samples (e.g. p95 of {5,5,5} landing at 5.475) and bucket
  // lows below the min at small q.
  const double clamp_lo = stats_.min();
  const double clamp_hi = stats_.max();
  const double target = q * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - acc) / static_cast<double>(counts_[i]) : 0.0;
      return std::clamp(BucketLow(i) + frac * bucket_width_, clamp_lo,
                        clamp_hi);
    }
    acc = next;
  }
  return clamp_hi;
}

std::string Histogram::ToAscii(int width) const {
  std::ostringstream out;
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
    out << "[" << BucketLow(i) << ", " << BucketLow(i) + bucket_width_
        << ") " << std::string(static_cast<std::size_t>(bar), '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

void TimeWeightedStats::Update(double now, double value) {
  if (started_) {
    assert(now >= last_time_);
    const double dt = now - last_time_;
    weighted_sum_ += last_value_ * dt;
    total_time_ += dt;
  }
  started_ = true;
  last_time_ = now;
  last_value_ = value;
  max_value_ = std::max(max_value_, value);
}

void TimeWeightedStats::Merge(const TimeWeightedStats& other) {
  weighted_sum_ += other.weighted_sum_;
  total_time_ += other.total_time_;
  max_value_ = std::max(max_value_, other.max_value_);
  if (other.started_) {
    started_ = true;
    last_time_ = other.last_time_;
    last_value_ = other.last_value_;
  }
}

double TimeWeightedStats::TimeAverage() const {
  if (total_time_ <= 0.0) return last_value_;
  return weighted_sum_ / total_time_;
}

}  // namespace memstream
