#include "common/math_utils.h"

#include <algorithm>
#include <cmath>

namespace memstream {

Result<double> Bisect(const std::function<double(double)>& f, double lo,
                      double hi, const SolverOptions& opts) {
  if (!(lo <= hi)) {
    return Status::InvalidArgument("Bisect: lo must be <= hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0)) {
    return Status::InvalidArgument("Bisect: f(lo) and f(hi) have same sign");
  }
  for (int i = 0; i < opts.max_iterations && (hi - lo) > opts.tolerance; ++i) {
    double mid = 0.5 * (lo + hi);
    double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0) == (flo > 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Result<std::int64_t> LargestTrue(
    const std::function<bool(std::int64_t)>& pred, std::int64_t lo,
    std::int64_t hi) {
  if (lo > hi) return Status::InvalidArgument("LargestTrue: empty range");
  if (!pred(lo)) return Status::NotFound("LargestTrue: pred(lo) is false");
  if (pred(hi)) return hi;
  // Invariant: pred(lo) true, pred(hi) false.
  while (hi - lo > 1) {
    std::int64_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<double> GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const SolverOptions& opts) {
  if (!(lo <= hi)) {
    return Status::InvalidArgument("GoldenSectionMinimize: lo must be <= hi");
  }
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  for (int i = 0; i < opts.max_iterations && (b - a) > opts.tolerance; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

std::int64_t Gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

namespace {

Rational Reduce(std::int64_t num, std::int64_t den) {
  if (num == 0) return Rational{0, 1};
  std::int64_t g = Gcd(num, den);
  return Rational{num / g, den / g};
}

}  // namespace

Rational FloorToDenominator(double x, std::int64_t denominator) {
  auto m = static_cast<std::int64_t>(std::floor(x * denominator + 1e-12));
  m = std::max<std::int64_t>(m, 0);
  return Reduce(m, denominator);
}

Rational CeilToDenominator(double x, std::int64_t denominator) {
  auto m = static_cast<std::int64_t>(std::ceil(x * denominator - 1e-12));
  m = std::max<std::int64_t>(m, 0);
  return Reduce(m, denominator);
}

bool AlmostEqual(double a, double b, double tol) {
  return std::fabs(a - b) <=
         tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace memstream
