#include "common/table_printer.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace memstream {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%')) {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Cell(std::int64_t v) {
  return std::to_string(v);
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool numeric_align) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = numeric_align && LooksNumeric(row[c]);
      out << (c == 0 ? "| " : " ");
      if (right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
      out << " |";
    }
    out << "\n";
  };
  emit_row(headers_, false);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace memstream
