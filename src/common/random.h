// Deterministic pseudo-random generation for workloads and simulation.
//
// A small xoshiro256** engine plus the distributions the workload layer
// needs: uniform, exponential (Poisson arrivals), Zipf (popularity), and
// the paper's X:Y two-class popularity sampler lives in workload/.

#ifndef MEMSTREAM_COMMON_RANDOM_H_
#define MEMSTREAM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace memstream {

/// xoshiro256** PRNG. Deterministic across platforms for a given seed,
/// unlike std::mt19937 paired with std:: distributions.
class Rng {
 public:
  /// Seeds the engine; the same seed always produces the same sequence.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double NextExponential(double rate);

 private:
  std::uint64_t s_[4];
};

/// Discrete Zipf(s) distribution over ranks 1..n: P(rank k) ~ 1/k^s.
///
/// Sampling is O(log n) via a precomputed CDF. Used to model stream
/// popularity skew beyond the paper's two-class X:Y model.
class ZipfDistribution {
 public:
  /// Builds the CDF. Requires n >= 1 and s >= 0 (s == 0 is uniform).
  ZipfDistribution(std::size_t n, double exponent);

  /// Samples a rank in [1, n].
  std::size_t Sample(Rng& rng) const;

  /// Probability of the given rank (1-based).
  double Pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace memstream

#endif  // MEMSTREAM_COMMON_RANDOM_H_
