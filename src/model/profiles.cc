#include "model/profiles.h"

#include <algorithm>
#include <cmath>

namespace memstream::model {

DeviceProfile DiskProfile(const device::DiskDrive& disk, std::int64_t n) {
  DeviceProfile p;
  p.rate = disk.MaxTransferRate();
  p.latency = disk.SchedulerDeterminedLatency(n).value_or(
      disk.AverageAccessLatency());
  p.capacity = disk.Capacity();
  return p;
}

DeviceProfile DiskProfileAverage(const device::DiskDrive& disk) {
  DeviceProfile p;
  p.rate = disk.MaxTransferRate();
  p.latency = disk.AverageAccessLatency();
  p.capacity = disk.Capacity();
  return p;
}

DeviceProfile DiskProfileConservative(const device::DiskDrive& disk,
                                      std::int64_t n) {
  DeviceProfile p = DiskProfile(disk, n);
  p.rate = disk.parameters().inner_rate;
  return p;
}

LatencyFn DiskLatencyFn(const device::DiskDrive& disk) {
  // Capture the pieces by value so the function outlives the drive.
  const auto seek = disk.seek_model();
  const Seconds half_rotation = 0.5 * disk.RotationPeriod();
  const std::int64_t cylinders = disk.parameters().num_cylinders;
  return [seek, half_rotation, cylinders](std::int64_t n) -> Seconds {
    if (n < 1) n = 1;
    // Mirrors DiskDrive::SchedulerDeterminedLatency exactly.
    const auto gap = static_cast<std::int64_t>(
        std::llround(static_cast<double>(cylinders) /
                     static_cast<double>(n + 1)));
    const Seconds gap_seek = seek.SeekTime(std::max<std::int64_t>(gap, 1));
    const Seconds wrap =
        (seek.FullStrokeTime() - gap_seek) / static_cast<double>(n);
    return gap_seek + wrap + half_rotation;
  };
}

DeviceProfile MemsProfileMaxLatency(const device::MemsDevice& mems) {
  DeviceProfile p;
  p.rate = mems.MaxTransferRate();
  p.latency = mems.MaxAccessLatency();
  p.capacity = mems.Capacity();
  p.cost_per_device = mems.parameters().cost_per_device;
  p.cost_per_byte = mems.parameters().cost_per_device / mems.Capacity();
  return p;
}

DeviceProfile ScaledBankProfile(const DeviceProfile& single, std::int64_t k,
                                bool replicated_capacity) {
  DeviceProfile p = single;
  p.rate = single.rate * static_cast<double>(k);
  p.latency = single.latency / static_cast<double>(k);
  p.capacity = replicated_capacity
                   ? single.capacity
                   : single.capacity * static_cast<double>(k);
  p.cost_per_device = single.cost_per_device * static_cast<double>(k);
  return p;
}

}  // namespace memstream::model
