#include "model/hybrid.h"

#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "model/incremental.h"

namespace memstream::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<CacheSystemThroughput> EvaluateHybridSplit(const HybridConfig& config,
                                                  std::int64_t k_buffer,
                                                  std::int64_t k_cache) {
  const CacheSystemConfig& base = config.base;
  if (!base.disk_latency) {
    return Status::InvalidArgument("disk_latency function is required");
  }
  if (k_buffer < 0 || k_cache < 0) {
    return Status::InvalidArgument("split counts must be >= 0");
  }
  const Dollars devices_cost =
      static_cast<double>(k_buffer + k_cache) * base.mems_device_cost;
  if (devices_cost > base.total_budget) {
    return Status::Infeasible("budget cannot buy the split's devices");
  }

  CacheSystemThroughput out;
  out.dram_bytes = (base.total_budget - devices_cost) / base.dram_per_byte;
  if (k_cache > 0) {
    out.cached_fraction = CachedFraction(base.policy, k_cache,
                                         base.mems_capacity,
                                         base.content_size);
    auto h = HitRate(base.popularity, out.cached_fraction);
    MEMSTREAM_RETURN_IF_ERROR(h.status());
    out.hit_rate = h.value();
  }

  const double b = base.bit_rate;
  const double h = out.hit_rate;

  auto dram_needed = [&](std::int64_t total) -> Bytes {
    const auto n_cache = static_cast<std::int64_t>(
        std::llround(h * static_cast<double>(total)));
    const std::int64_t n_disk = total - n_cache;
    Bytes used = 0;
    if (n_disk > 0) {
      const Seconds latency = base.disk_latency(n_disk);
      Bytes disk_side =
          ProbeTheorem1Total(n_disk, b, base.disk_rate, latency);
      if (std::isnan(disk_side)) return kInf;
      // The buffered sizing is only reachable past the Eq. 5 bandwidth
      // domain; gating on it keeps the search's infeasible probes free of
      // Status allocation (SolveMemsBuffer would reject them anyway).
      if (k_buffer > 0 && n_disk >= 2 &&
          MemsBankCanBuffer(n_disk, b, k_buffer, base.mems.rate)) {
        MemsBufferParams buffer;
        buffer.k = k_buffer;
        buffer.disk.rate = base.disk_rate;
        buffer.disk.latency = latency;
        buffer.mems = base.mems;
        buffer.mems_capacity_override = config.mems_buffer_capacity;
        auto sized = SolveMemsBuffer(n_disk, b, buffer);
        // An infeasible buffer (e.g. too many streams for the bank's 2x
        // bandwidth requirement) just means the split streams directly.
        if (sized.ok()) {
          disk_side = std::min(disk_side, sized.value().dram_total);
        }
      }
      used += disk_side;
    }
    if (n_cache > 0) {
      const Bytes cache_side =
          ProbeCacheTotal(n_cache, b, k_cache, base.mems, base.policy);
      if (std::isnan(cache_side)) return kInf;
      used += cache_side;
    }
    return used;
  };

  const std::int64_t disk_cap = MaxStreamsBandwidthBound(base.disk_rate, b);
  const std::int64_t cache_cap =
      k_cache > 0 ? MaxCacheStreamsBandwidthBound(b, k_cache,
                                                  base.mems.rate,
                                                  base.policy)
                  : 0;
  auto feasible = [&](std::int64_t total) {
    return dram_needed(total) <= out.dram_bytes;
  };
  const std::int64_t best =
      LargestTrueInline(feasible, 1, disk_cap + cache_cap + 2);
  if (best < 1) return out;

  out.total_streams = best;
  out.cache_streams = static_cast<std::int64_t>(
      std::llround(h * static_cast<double>(out.total_streams)));
  out.disk_streams = out.total_streams - out.cache_streams;
  out.dram_used = dram_needed(out.total_streams);
  return out;
}

Result<HybridPlan> PlanHybrid(const HybridConfig& config) {
  if (config.max_devices < 0) {
    return Status::InvalidArgument("max_devices must be >= 0");
  }
  HybridPlan best;
  std::int64_t best_streams = -1;
  for (std::int64_t kb = 0; kb <= config.max_devices; ++kb) {
    for (std::int64_t kc = 0; kb + kc <= config.max_devices; ++kc) {
      auto result = EvaluateHybridSplit(config, kb, kc);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kInfeasible) continue;
        return result.status();
      }
      if (result.value().total_streams > best_streams) {
        best_streams = result.value().total_streams;
        best = HybridPlan{kb, kc, result.value()};
      }
    }
  }
  if (best_streams < 0) {
    return Status::Infeasible("no split fits the budget");
  }
  return best;
}

}  // namespace memstream::model
