// DeviceProfile: the analytic view of a device — the (R_d, L̄_d) pair the
// paper's formulas consume — plus adapters from the mechanical device
// models. The paper's convention (§5): disk IOs use the
// scheduler-determined (elevator) average latency; MEMS IOs are charged
// the maximum device latency "to minimize the mis-prediction of
// seek-access characteristics".

#ifndef MEMSTREAM_MODEL_PROFILES_H_
#define MEMSTREAM_MODEL_PROFILES_H_

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "device/disk.h"
#include "device/mems_device.h"

namespace memstream::model {

/// Scalar device characteristics consumed by the analytical formulas.
struct DeviceProfile {
  BytesPerSecond rate = 0;        ///< R_d: media transfer rate [B/s]
  Seconds latency = 0;            ///< L̄_d: per-IO access latency [s]
  Bytes capacity = 0;             ///< per-device capacity [B]
  Dollars cost_per_device = 0;    ///< entry cost (per-device price model)
  DollarsPerByte cost_per_byte = 0;  ///< unit cost (per-byte price model)
};

/// Latency as a function of the number of concurrently scheduled streams
/// (the disk's elevator latency improves with deeper batches).
using LatencyFn = std::function<Seconds(std::int64_t n)>;

/// Disk profile charging the elevator latency for batches of `n` streams.
DeviceProfile DiskProfile(const device::DiskDrive& disk, std::int64_t n);

/// Disk profile charging the unscheduled average latency (Fig. 2's
/// "Disk (avg. latency)" curve).
DeviceProfile DiskProfileAverage(const device::DiskDrive& disk);

/// Like DiskProfile but with the inner-zone (minimum) transfer rate, so
/// sizing stays safe wherever data lands on a zoned disk. The analytical
/// benches follow the paper and use the maximum rate; the simulating
/// facade uses this conservative profile.
DeviceProfile DiskProfileConservative(const device::DiskDrive& disk,
                                      std::int64_t n);

/// LatencyFn wrapping DiskDrive::SchedulerDeterminedLatency.
LatencyFn DiskLatencyFn(const device::DiskDrive& disk);

/// MEMS profile charging the maximum device latency (paper §5).
DeviceProfile MemsProfileMaxLatency(const device::MemsDevice& mems);

/// The bank-level profile implied by Corollary 2 (round-robin buffer) and
/// Corollary 4 (replicated cache): k x rate, latency / k. Capacity
/// aggregates except under replication, where it stays per-device.
DeviceProfile ScaledBankProfile(const DeviceProfile& single, std::int64_t k,
                                bool replicated_capacity);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_PROFILES_H_
