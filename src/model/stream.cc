#include "model/stream.h"

namespace memstream::model {

StreamClass Mp3() { return {"mp3", 10 * kKBps}; }
StreamClass DivX() { return {"DivX", 100 * kKBps}; }
StreamClass Dvd() { return {"DVD", 1 * kMBps}; }
StreamClass Hdtv() { return {"HDTV", 10 * kMBps}; }

std::vector<StreamClass> PaperStreamClasses() {
  return {Mp3(), DivX(), Dvd(), Hdtv()};
}

Bytes VbrCushion(const VbrProfile& profile, Seconds io_cycle) {
  if (profile.peak_rate <= profile.mean_rate) return 0;
  return (profile.peak_rate - profile.mean_rate) * io_cycle;
}

}  // namespace memstream::model
