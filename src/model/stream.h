// Stream classes used throughout the paper's evaluation (§5): mp3 at
// 10 KB/s, DivX at 100 KB/s, DVD at 1 MB/s, HDTV at 10 MB/s — all CBR.
// VBR is modeled, per the paper's footnote 1, as CBR plus a memory
// cushion absorbing the bit-rate variability.

#ifndef MEMSTREAM_MODEL_STREAM_H_
#define MEMSTREAM_MODEL_STREAM_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace memstream::model {

/// A constant-bit-rate stream class.
struct StreamClass {
  std::string name;
  BytesPerSecond bit_rate = 0;
};

/// mp3 audio, 10 KB/s.
StreamClass Mp3();
/// DivX (MPEG-4) video, 100 KB/s.
StreamClass DivX();
/// DVD-quality MPEG-2 video, 1 MB/s.
StreamClass Dvd();
/// High-definition video, 10 MB/s.
StreamClass Hdtv();

/// The four classes above, in increasing bit-rate order (the series of
/// Figs. 6-8).
std::vector<StreamClass> PaperStreamClasses();

/// A variable-bit-rate stream summarized by its mean and peak rates.
struct VbrProfile {
  std::string name;
  BytesPerSecond mean_rate = 0;
  BytesPerSecond peak_rate = 0;
};

/// Memory cushion for a VBR stream scheduled as CBR at its mean rate
/// (footnote 1): the extra per-stream buffer that absorbs one IO cycle of
/// worst-case variability, (peak - mean) * cycle.
Bytes VbrCushion(const VbrProfile& profile, Seconds io_cycle);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_STREAM_H_
