#include "model/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "model/incremental.h"

namespace memstream::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<TdiskOptimum> OptimalTdiskPerByte(std::int64_t n,
                                         BytesPerSecond bit_rate,
                                         const MemsBufferParams& params,
                                         const CostInputs& prices) {
  auto range_result = FeasibleTdiskRange(n, bit_rate, params);
  MEMSTREAM_RETURN_IF_ERROR(range_result.status());
  const TdiskRange& range = range_result.value();

  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(params.k);
  const double b = bit_rate;
  const double imbalance = 1.0 + (2.0 * kk - 2.0) / nn;

  // cost(T) = alpha*T + beta*T/(T-C); minimum at T* = C + sqrt(beta*C/alpha).
  const double alpha = prices.mems_per_byte * 2.0 * nn * b;
  const double beta = prices.dram_per_byte * nn * b * range.c * imbalance;
  Seconds t_star = alpha > 0 ? range.c + std::sqrt(beta * range.c / alpha)
                             : range.upper;
  t_star = std::clamp(t_star, range.lower,
                      range.upper == kInf ? t_star : range.upper);
  if (t_star == kInf) {
    return Status::Infeasible(
        "per-byte optimum unbounded (free MEMS storage?)");
  }

  auto sizing = SolveMemsBuffer(n, bit_rate, params, t_star);
  MEMSTREAM_RETURN_IF_ERROR(sizing.status());

  TdiskOptimum out;
  out.t_disk = t_star;
  out.sizing = sizing.value();
  out.total_cost = CostWithMemsBufferPerByte(
      n, out.sizing.mems_used, out.sizing.s_mems_dram, prices);
  return out;
}

Result<CacheSystemThroughput> MaxCacheSystemThroughput(
    const CacheSystemConfig& config) {
  if (!config.disk_latency) {
    return Status::InvalidArgument("disk_latency function is required");
  }
  if (config.k < 0) return Status::InvalidArgument("k must be >= 0");
  if (config.bit_rate <= 0) {
    return Status::InvalidArgument("bit_rate must be > 0");
  }
  const Dollars cache_cost =
      static_cast<double>(config.k) * config.mems_device_cost;
  if (cache_cost > config.total_budget) {
    return Status::Infeasible("budget cannot buy k cache devices");
  }

  CacheSystemThroughput out;
  out.dram_bytes =
      (config.total_budget - cache_cost) / config.dram_per_byte;
  if (config.k > 0) {
    out.cached_fraction =
        CachedFraction(config.policy, config.k, config.mems_capacity,
                       config.content_size);
    auto h = HitRate(config.popularity, out.cached_fraction);
    MEMSTREAM_RETURN_IF_ERROR(h.status());
    out.hit_rate = h.value();
  }

  const double b = config.bit_rate;
  const double h = out.hit_rate;

  // The DRAM actually needed for a total of `total` streams, split h:1-h
  // between the cache and the disk; infinity when either side is over
  // its bandwidth bound. Evaluated through the NaN-based probe kernels:
  // the feasibility search below probes this O(log n) times per solve
  // and the Result-returning solvers would heap-allocate an Infeasible
  // message on every miss (the probes are bit-identical on hits, so the
  // reported dram_used does not change).
  auto dram_needed = [&](std::int64_t total) -> Bytes {
    const auto n_cache =
        static_cast<std::int64_t>(std::llround(h * static_cast<double>(total)));
    const std::int64_t n_disk = total - n_cache;
    Bytes used = 0;
    if (n_disk > 0) {
      const double total_disk = ProbeTheorem1Total(
          n_disk, b, config.disk_rate, config.disk_latency(n_disk));
      if (std::isnan(total_disk)) return kInf;
      used += total_disk;
    }
    if (n_cache > 0) {
      const double total_cache =
          ProbeCacheTotal(n_cache, b, config.k, config.mems, config.policy);
      if (std::isnan(total_cache)) return kInf;
      used += total_cache;
    }
    return used;
  };

  const std::int64_t disk_cap =
      MaxStreamsBandwidthBound(config.disk_rate, b);
  const std::int64_t cache_cap =
      config.k > 0 ? MaxCacheStreamsBandwidthBound(b, config.k,
                                                   config.mems.rate,
                                                   config.policy)
                   : 0;
  const std::int64_t hi = disk_cap + cache_cap + 2;

  auto feasible = [&](std::int64_t total) {
    return dram_needed(total) <= out.dram_bytes;
  };
  const std::int64_t best = LargestTrueInline(feasible, 1, hi);
  if (best < 1) return out;  // zero streams is a valid answer

  out.total_streams = best;
  out.cache_streams = static_cast<std::int64_t>(
      std::llround(h * static_cast<double>(out.total_streams)));
  out.disk_streams = out.total_streams - out.cache_streams;
  out.dram_used = dram_needed(out.total_streams);
  return out;
}

Result<std::int64_t> BestCacheBankSize(const CacheSystemConfig& config,
                                       std::int64_t max_k) {
  if (max_k < 0) return Status::InvalidArgument("max_k must be >= 0");
  std::int64_t best_k = 0;
  std::int64_t best_streams = -1;
  for (std::int64_t k = 0; k <= max_k; ++k) {
    CacheSystemConfig candidate = config;
    candidate.k = k;
    auto result = MaxCacheSystemThroughput(candidate);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kInfeasible) continue;
      return result.status();
    }
    if (result.value().total_streams > best_streams) {
      best_streams = result.value().total_streams;
      best_k = k;
    }
  }
  if (best_streams < 0) {
    return Status::Infeasible("no bank size fits the budget");
  }
  return best_k;
}

}  // namespace memstream::model
