// Multi-disk scale-out planning. A production media server stripes its
// catalog over a farm of disks (the disk-array work the paper builds on
// in §6 — Chervenak & Patterson, DASD Dancing); with balanced stream
// placement each disk runs its own time cycle and the analysis of one
// disk (plus its optional per-disk MEMS buffer bank) applies
// independently. The planner maximizes farm throughput under a shared
// DRAM budget.

#ifndef MEMSTREAM_MODEL_SCALE_OUT_H_
#define MEMSTREAM_MODEL_SCALE_OUT_H_

#include <cstdint>

#include "common/status.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::model {

/// Farm description.
struct ScaleOutConfig {
  std::int64_t num_disks = 4;
  BytesPerSecond disk_rate = 300 * kMBps;
  LatencyFn disk_latency;       ///< per-disk elevator latency, required
  BytesPerSecond bit_rate = 1 * kMBps;
  Bytes dram_budget = 5 * kGB;  ///< shared across the farm
  /// Per-disk MEMS buffer bank; 0 disables buffering.
  std::int64_t buffer_k_per_disk = 0;
  DeviceProfile mems;           ///< used when buffer_k_per_disk > 0
};

/// Planned farm operating point.
struct ScaleOutPlan {
  std::int64_t streams_per_disk = 0;
  std::int64_t total_streams = 0;
  Bytes dram_per_disk = 0;   ///< DRAM needed by one disk's streams
  Bytes dram_total = 0;
  std::int64_t mems_devices_total = 0;
  double disk_utilization = 0;  ///< bandwidth fraction per disk
};

/// Largest balanced stream count: maximizes per-disk streams such that
/// num_disks * dram_per_disk fits the budget (Theorem 1, or Theorem 2
/// when a per-disk buffer bank is configured).
Result<ScaleOutPlan> PlanScaleOut(const ScaleOutConfig& config);

/// Throughput-per-DRAM-dollar style comparison helper: the factor by
/// which adding per-disk MEMS banks increases the farm's stream count
/// at the same DRAM budget. Returns 1.0 when buffering is infeasible.
Result<double> ScaleOutBufferGain(const ScaleOutConfig& config);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_SCALE_OUT_H_
