#include "model/timecycle.h"

#include <cmath>

#include "common/math_utils.h"
#include "model/incremental.h"

namespace memstream::model {

bool CanSustain(std::int64_t n, BytesPerSecond bit_rate,
                const DeviceProfile& dev) {
  return n >= 0 && dev.rate > static_cast<double>(n) * bit_rate;
}

std::int64_t MaxStreamsBandwidthBound(BytesPerSecond device_rate,
                                      BytesPerSecond bit_rate) {
  if (bit_rate <= 0 || device_rate <= 0) return 0;
  const double ratio = device_rate / bit_rate;
  auto n = static_cast<std::int64_t>(std::ceil(ratio)) - 1;
  // Guard the exact-divisibility case: need strictly R > n * B̄.
  while (n > 0 && static_cast<double>(n) * bit_rate >= device_rate) --n;
  return n;
}

Result<Bytes> PerStreamBufferSize(std::int64_t n, BytesPerSecond bit_rate,
                                  const DeviceProfile& dev) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (bit_rate <= 0) return Status::InvalidArgument("bit_rate must be > 0");
  if (dev.rate <= 0 || dev.latency < 0) {
    return Status::InvalidArgument("device profile not positive");
  }
  if (!CanSustain(n, bit_rate, dev)) {
    return Status::Infeasible("device rate <= n * bit_rate (Theorem 1)");
  }
  const double nn = static_cast<double>(n);
  return nn * dev.latency * dev.rate * bit_rate / (dev.rate - nn * bit_rate);
}

Result<Bytes> TotalBufferSize(std::int64_t n, BytesPerSecond bit_rate,
                              const DeviceProfile& dev) {
  auto s = PerStreamBufferSize(n, bit_rate, dev);
  MEMSTREAM_RETURN_IF_ERROR(s.status());
  return static_cast<double>(n) * s.value();
}

Result<Seconds> IoCycleLength(std::int64_t n, BytesPerSecond bit_rate,
                              const DeviceProfile& dev) {
  auto s = PerStreamBufferSize(n, bit_rate, dev);
  MEMSTREAM_RETURN_IF_ERROR(s.status());
  return s.value() / bit_rate;
}

Result<Bytes> PerStreamBufferSizeVbr(std::int64_t n,
                                     const VbrProfile& profile,
                                     const DeviceProfile& dev) {
  if (profile.peak_rate < profile.mean_rate) {
    return Status::InvalidArgument("peak_rate must be >= mean_rate");
  }
  auto base = PerStreamBufferSize(n, profile.mean_rate, dev);
  MEMSTREAM_RETURN_IF_ERROR(base.status());
  const Seconds cycle = base.value() / profile.mean_rate;
  return base.value() + VbrCushion(profile, cycle);
}

std::int64_t MaxStreamsWithBuffer(Bytes buffer_budget,
                                  BytesPerSecond bit_rate,
                                  BytesPerSecond device_rate,
                                  const LatencyFn& latency_of_n) {
  if (buffer_budget <= 0 || bit_rate <= 0 || device_rate <= 0) return 0;
  const std::int64_t hard_cap =
      MaxStreamsBandwidthBound(device_rate, bit_rate);
  if (hard_cap < 1) return 0;

  // Probe kernel instead of TotalBufferSize: the binary search hits the
  // infeasible side on about half its probes, and each such Result would
  // heap-allocate its Infeasible message.
  auto fits = [&](std::int64_t n) {
    const double total =
        ProbeTheorem1Total(n, bit_rate, device_rate, latency_of_n(n));
    return !std::isnan(total) && total <= buffer_budget;
  };
  const std::int64_t best = LargestTrueInline(fits, 1, hard_cap);
  return best >= 1 ? best : 0;
}

}  // namespace memstream::model
