#include "model/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_utils.h"
#include "model/cost.h"

namespace memstream::model {

namespace {

/// The cost-factor-independent part of EvaluateSensitivity: the
/// throughput target n, the DRAM-only cost, and every candidate bank
/// sizing that fits the DRAM ceiling. Only the device price
/// (dram_per_byte / cost_factor) moves between evaluations at different
/// factors, so BreakEvenCostFactor's bisection re-prices these cached
/// candidates instead of re-running the Theorem 2 solves on every probe.
struct SensitivitySolve {
  Status status = Status::OK();  ///< why the evaluation is infeasible
  std::int64_t n = 0;
  Dollars cost_without = 0;
  /// (k, dram_total) for each bank size with a feasible sizing under the
  /// DRAM cap, in ascending k (the tie-break order of the k scan).
  struct Candidate {
    std::int64_t k = 0;
    Bytes dram_total = 0;
  };
  std::vector<Candidate> candidates;
};

SensitivitySolve SolveOnce(const SensitivityInputs& inputs,
                           double bandwidth_factor) {
  SensitivitySolve solve;
  if (!inputs.disk_latency) {
    solve.status =
        Status::InvalidArgument("disk_latency function is required");
    return solve;
  }
  if (bandwidth_factor <= 0) {
    solve.status = Status::InvalidArgument("factors must be > 0");
    return solve;
  }

  // Throughput target: what the MEMS-less box supports.
  solve.n = MaxStreamsWithBuffer(inputs.dram_cap, inputs.bit_rate,
                                 inputs.disk_rate, inputs.disk_latency);
  if (solve.n < 2) {
    solve.status = Status::Infeasible("fewer than two streams fit");
    return solve;
  }

  DeviceProfile disk;
  disk.rate = inputs.disk_rate;
  disk.latency = inputs.disk_latency(solve.n);
  auto without = TotalBufferSize(solve.n, inputs.bit_rate, disk);
  if (!without.ok()) {
    solve.status = without.status();
    return solve;
  }
  solve.cost_without = without.value() * inputs.dram_per_byte;

  // Bank: start from the smallest k that sustains twice the disk
  // bandwidth (§3.1) and the doubled stream load, then keep adding
  // devices while that lowers the total cost — a small-capacity bank can
  // be storage-bound (condition 7), leaving T_disk too short and the
  // DRAM bill high.
  const BytesPerSecond mems_rate = bandwidth_factor * inputs.disk_rate;
  std::int64_t k_min = std::max<std::int64_t>(
      DevicesForFullDiskUtilization(inputs.disk_rate, mems_rate), 1);
  while (k_min <= 4096 &&
         !MemsBankCanBuffer(solve.n, inputs.bit_rate, k_min, mems_rate)) {
    ++k_min;
  }
  if (k_min > 4096) {
    solve.status = Status::Infeasible("no bank size sustains the stream load");
    return solve;
  }

  for (std::int64_t k = k_min; k <= k_min + 16; ++k) {
    MemsBufferParams params;
    params.k = k;
    params.disk = disk;
    params.mems.rate = mems_rate;
    params.mems.latency = inputs.mems_latency;
    params.mems.capacity = inputs.mems_capacity;
    auto sized = SolveMemsBuffer(solve.n, inputs.bit_rate, params);
    if (!sized.ok()) continue;
    if (sized.value().dram_total > inputs.dram_cap) continue;
    solve.candidates.push_back({k, sized.value().dram_total});
  }
  if (solve.candidates.empty()) {
    solve.status = Status::Infeasible(
        "no bank size fits the DRAM ceiling and the storage bound");
  }
  return solve;
}

/// Prices the cached candidates at one cost factor and fills the
/// factor-dependent outcome fields. Mirrors the original scan exactly:
/// ascending k with a strict-less update keeps the first minimal k.
void PriceAtFactor(const SensitivitySolve& solve,
                   const SensitivityInputs& inputs, double cost_factor,
                   SensitivityOutcome* out) {
  const DollarsPerByte mems_per_byte = inputs.dram_per_byte / cost_factor;
  bool found = false;
  for (const auto& cand : solve.candidates) {
    const Dollars cost =
        static_cast<double>(cand.k) * mems_per_byte * inputs.mems_capacity +
        cand.dram_total * inputs.dram_per_byte;
    if (!found || cost < out->cost_with) {
      out->cost_with = cost;
      out->k = cand.k;
      found = true;
    }
  }
  out->percent_reduction = PercentReduction(out->cost_without, out->cost_with);
  out->mems_wins = out->cost_with < out->cost_without;
}

}  // namespace

Result<SensitivityOutcome> EvaluateSensitivity(
    const SensitivityInputs& inputs, double cost_factor,
    double bandwidth_factor) {
  if (cost_factor <= 0) {
    return Status::InvalidArgument("factors must be > 0");
  }
  const SensitivitySolve solve = SolveOnce(inputs, bandwidth_factor);
  if (!solve.status.ok()) return solve.status;

  SensitivityOutcome out;
  out.n = solve.n;
  out.cost_without = solve.cost_without;
  PriceAtFactor(solve, inputs, cost_factor, &out);
  return out;
}

Result<double> BreakEvenCostFactor(const SensitivityInputs& inputs,
                                   double bandwidth_factor,
                                   double max_factor) {
  // Incremental re-solve: everything expensive about EvaluateSensitivity
  // (the throughput search and the 17 Theorem 2 sizings) is independent
  // of the cost factor, so solve once and let the bisection's ~30 probes
  // re-price the cached candidates — identical margins to calling the
  // full evaluation at every probe (incremental_model_test checks this).
  const SensitivitySolve solve = SolveOnce(inputs, bandwidth_factor);

  // cost_with is strictly decreasing in the cost factor (only the device
  // term depends on it), so the win condition is monotone: bisect.
  auto margin = [&](double factor) -> double {
    if (!solve.status.ok()) return -1.0;  // infeasible = "not winning"
    SensitivityOutcome out;
    out.cost_without = solve.cost_without;
    PriceAtFactor(solve, inputs, factor, &out);
    return out.cost_without - out.cost_with;
  };
  const double at_min = margin(1.0);
  const double at_max = margin(max_factor);
  if (at_min > 0) return 1.0;  // wins even at cost parity
  if (at_max <= 0) {
    return Status::NotFound(
        "MEMS never breaks even below max_factor at this bandwidth");
  }
  return Bisect(margin, 1.0, max_factor, {1e-6, 200});
}

}  // namespace memstream::model
