#include "model/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "model/cost.h"

namespace memstream::model {

Result<SensitivityOutcome> EvaluateSensitivity(
    const SensitivityInputs& inputs, double cost_factor,
    double bandwidth_factor) {
  if (!inputs.disk_latency) {
    return Status::InvalidArgument("disk_latency function is required");
  }
  if (cost_factor <= 0 || bandwidth_factor <= 0) {
    return Status::InvalidArgument("factors must be > 0");
  }

  SensitivityOutcome out;
  // Throughput target: what the MEMS-less box supports.
  out.n = MaxStreamsWithBuffer(inputs.dram_cap, inputs.bit_rate,
                               inputs.disk_rate, inputs.disk_latency);
  if (out.n < 2) return Status::Infeasible("fewer than two streams fit");

  DeviceProfile disk;
  disk.rate = inputs.disk_rate;
  disk.latency = inputs.disk_latency(out.n);
  auto without = TotalBufferSize(out.n, inputs.bit_rate, disk);
  MEMSTREAM_RETURN_IF_ERROR(without.status());
  out.cost_without = without.value() * inputs.dram_per_byte;

  // Bank: start from the smallest k that sustains twice the disk
  // bandwidth (§3.1) and the doubled stream load, then keep adding
  // devices while that lowers the total cost — a small-capacity bank can
  // be storage-bound (condition 7), leaving T_disk too short and the
  // DRAM bill high.
  const BytesPerSecond mems_rate = bandwidth_factor * inputs.disk_rate;
  std::int64_t k_min = std::max<std::int64_t>(
      DevicesForFullDiskUtilization(inputs.disk_rate, mems_rate), 1);
  while (k_min <= 4096 &&
         !MemsBankCanBuffer(out.n, inputs.bit_rate, k_min, mems_rate)) {
    ++k_min;
  }
  if (k_min > 4096) {
    return Status::Infeasible("no bank size sustains the stream load");
  }

  const DollarsPerByte mems_per_byte = inputs.dram_per_byte / cost_factor;
  bool found = false;
  for (std::int64_t k = k_min; k <= k_min + 16; ++k) {
    MemsBufferParams params;
    params.k = k;
    params.disk = disk;
    params.mems.rate = mems_rate;
    params.mems.latency = inputs.mems_latency;
    params.mems.capacity = inputs.mems_capacity;
    auto sized = SolveMemsBuffer(out.n, inputs.bit_rate, params);
    if (!sized.ok()) continue;
    if (sized.value().dram_total > inputs.dram_cap) continue;
    const Dollars cost =
        static_cast<double>(k) * mems_per_byte * inputs.mems_capacity +
        sized.value().dram_total * inputs.dram_per_byte;
    if (!found || cost < out.cost_with) {
      out.cost_with = cost;
      out.k = k;
      found = true;
    }
  }
  if (!found) {
    return Status::Infeasible(
        "no bank size fits the DRAM ceiling and the storage bound");
  }
  out.percent_reduction = PercentReduction(out.cost_without, out.cost_with);
  out.mems_wins = out.cost_with < out.cost_without;
  return out;
}

Result<double> BreakEvenCostFactor(const SensitivityInputs& inputs,
                                   double bandwidth_factor,
                                   double max_factor) {
  // cost_with is strictly decreasing in the cost factor (only the device
  // term depends on it), so the win condition is monotone: bisect.
  auto margin = [&](double factor) -> double {
    auto outcome = EvaluateSensitivity(inputs, factor, bandwidth_factor);
    if (!outcome.ok()) return -1.0;  // infeasible counts as "not winning"
    return outcome.value().cost_without - outcome.value().cost_with;
  };
  const double at_min = margin(1.0);
  const double at_max = margin(max_factor);
  if (at_min > 0) return 1.0;  // wins even at cost parity
  if (at_max <= 0) {
    return Status::NotFound(
        "MEMS never breaks even below max_factor at this bandwidth");
  }
  return Bisect(margin, 1.0, max_factor, {1e-6, 200});
}

}  // namespace memstream::model
