#include "model/scale_out.h"

#include <algorithm>

#include "common/math_utils.h"

namespace memstream::model {

namespace {

/// DRAM one disk needs for n streams under the configured hierarchy;
/// negative when infeasible.
Bytes DramPerDisk(const ScaleOutConfig& config, std::int64_t n) {
  DeviceProfile disk;
  disk.rate = config.disk_rate;
  disk.latency = config.disk_latency(n);
  if (config.buffer_k_per_disk > 0 && n >= 2) {
    MemsBufferParams params;
    params.k = config.buffer_k_per_disk;
    params.disk = disk;
    params.mems = config.mems;
    auto sized = SolveMemsBuffer(n, config.bit_rate, params);
    if (!sized.ok()) return -1;
    return sized.value().dram_total;
  }
  auto total = TotalBufferSize(n, config.bit_rate, disk);
  if (!total.ok()) return -1;
  return total.value();
}

}  // namespace

Result<ScaleOutPlan> PlanScaleOut(const ScaleOutConfig& config) {
  if (!config.disk_latency) {
    return Status::InvalidArgument("disk_latency function is required");
  }
  if (config.num_disks < 1) {
    return Status::InvalidArgument("num_disks must be >= 1");
  }
  if (config.bit_rate <= 0) {
    return Status::InvalidArgument("bit_rate must be > 0");
  }
  if (config.dram_budget <= 0) {
    return Status::InvalidArgument("dram_budget must be > 0");
  }
  if (config.buffer_k_per_disk > 0 && config.mems.rate <= 0) {
    return Status::InvalidArgument("mems profile required for buffering");
  }

  const std::int64_t cap =
      MaxStreamsBandwidthBound(config.disk_rate, config.bit_rate);
  if (cap < 1) return Status::Infeasible("bit_rate saturates one disk");

  const Bytes per_disk_budget =
      config.dram_budget / static_cast<double>(config.num_disks);
  auto fits = [&](std::int64_t n) {
    const Bytes dram = DramPerDisk(config, n);
    return dram >= 0 && dram <= per_disk_budget;
  };
  auto best = LargestTrue(fits, 1, cap);
  if (!best.ok()) {
    return Status::Infeasible("not even one stream per disk fits");
  }

  ScaleOutPlan plan;
  plan.streams_per_disk = best.value();
  plan.total_streams = plan.streams_per_disk * config.num_disks;
  plan.dram_per_disk = DramPerDisk(config, plan.streams_per_disk);
  plan.dram_total =
      plan.dram_per_disk * static_cast<double>(config.num_disks);
  plan.mems_devices_total =
      config.buffer_k_per_disk * config.num_disks;
  plan.disk_utilization =
      static_cast<double>(plan.streams_per_disk) * config.bit_rate /
      config.disk_rate;
  return plan;
}

Result<double> ScaleOutBufferGain(const ScaleOutConfig& config) {
  ScaleOutConfig direct = config;
  direct.buffer_k_per_disk = 0;
  auto base = PlanScaleOut(direct);
  MEMSTREAM_RETURN_IF_ERROR(base.status());
  auto buffered = PlanScaleOut(config);
  if (!buffered.ok()) return 1.0;
  if (base.value().total_streams == 0) return 1.0;
  return static_cast<double>(buffered.value().total_streams) /
         static_cast<double>(base.value().total_streams);
}

}  // namespace memstream::model
