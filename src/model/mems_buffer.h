// Theorem 2: DRAM buffer sizing when a bank of k MEMS devices buffers all
// disk traffic (disk -> MEMS -> DRAM, §3.1 / §4.1).
//
// The MEMS bank carries the disk traffic twice (written once, read once),
// so with per-device rate Rm the bank must satisfy
//     k * Rm > 2 * (N + k - 1) * B̄                                  (*)
// where the k-1 slack covers round-robin imbalance (one device may carry
// ceil(N/k) streams). The minimum MEMS IO cycle is then
//     C = N * L̄m * Rm / (k * Rm - 2 * (N + k - 1) * B̄)              (Eq. 5)
// and for a chosen disk cycle T_disk the actual MEMS cycle is the fixed
// point  T_mems = C * T_disk / (T_disk - C),  giving the per-stream DRAM
// buffer
//     S_mems-dram = B̄ * C * (1 + (2k-2)/N) * T_disk / (T_disk - C).  (Eq. 5)
//
// T_disk must be the largest value satisfying
//   (6) T_disk >= N * L̄d * Rd / (Rd - N * B̄)       (disk real-time bound)
//   (7) 2 * N * T_disk * B̄ <= k * Size_mems         (MEMS storage bound)
//   (8) T_mems / T_disk = M / N, integer M < N       (cycle nesting)
// Constraint (8) additionally forces T_disk >= C * (2N-1)/(N-1) so that
// an integer M exists; Solve() reports which constraint failed.

#ifndef MEMSTREAM_MODEL_MEMS_BUFFER_H_
#define MEMSTREAM_MODEL_MEMS_BUFFER_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "model/profiles.h"

namespace memstream::model {

/// How stream data is placed across the buffer bank (§3.1.2). The paper
/// argues for — and Theorem 2 assumes — routing each disk IO whole to
/// one device (kRoundRobinStreams). The rejected alternative, splitting
/// every disk IO k ways (kStripedIos), keeps perfect balance but makes
/// every device pay the positioning cost of every IO: its minimum cycle
/// is  C_striped = N * L̄m * (k*Rm) / (k*Rm - 2*N*B̄) — roughly k times
/// Theorem 2's C — so the DRAM requirement balloons accordingly. Both
/// are implemented so the design choice is checkable.
enum class BufferPlacement {
  kRoundRobinStreams,  ///< whole IOs, streams split across devices
  kStripedIos,         ///< every IO striped across all k devices
};

const char* BufferPlacementName(BufferPlacement placement);

/// Inputs of the Theorem 2 solver.
struct MemsBufferParams {
  std::int64_t k = 2;          ///< number of MEMS devices in the bank
  DeviceProfile disk;          ///< R_disk and the elevator latency L̄_disk
  DeviceProfile mems;          ///< R_mems per device and the max latency
  /// Per-device MEMS capacity available for buffering; defaults to
  /// mems.capacity when zero. Set to infinity for the paper's
  /// "unlimited buffering" experiments (Figs. 6 and 8).
  Bytes mems_capacity_override = 0;
  BufferPlacement placement = BufferPlacement::kRoundRobinStreams;
};

/// Outputs of the Theorem 2 solver.
struct MemsBufferSizing {
  Seconds c = 0;             ///< Eq. 5's C: the minimum MEMS IO cycle
  Seconds t_disk = 0;        ///< chosen disk IO cycle T_disk
  Seconds t_mems = 0;        ///< resulting MEMS IO cycle (before snapping)
  std::int64_t m = 0;        ///< Eq. 8's M (disk IOs per MEMS cycle), from
                             ///< snapping T_mems/T_disk up to M/N
  Seconds t_mems_snapped = 0;  ///< M/N * T_disk, the schedulable cycle
  Bytes s_disk_mems = 0;     ///< per-stream disk-side IO size, B̄ * T_disk
  Bytes s_mems_dram = 0;     ///< Eq. 5: per-stream DRAM buffer
  /// Per-stream DRAM buffer sized from the *snapped* cycle
  /// (B̄ * t_mems_snapped * (N+2k-2)/N >= s_mems_dram): what the
  /// executable schedule actually needs; the simulator uses this.
  Bytes s_mems_dram_schedulable = 0;
  Bytes dram_total = 0;      ///< N * s_mems_dram (Fig. 6b's quantity)
  Bytes mems_used = 0;       ///< 2 * N * T_disk * B̄ of MEMS storage
};

/// The feasibility window for the disk cycle T_disk, combining
/// conditions (6)-(8): any T_disk in [lower, upper] is schedulable.
/// `upper` is infinite when the MEMS capacity is unbounded.
struct TdiskRange {
  Seconds c = 0;      ///< Eq. 5's C
  Seconds lower = 0;  ///< max of the real-time (6) and nesting (8) bounds
  Seconds upper = 0;  ///< storage bound (7)
};

/// Computes the window, or Infeasible when it is empty (with a message
/// naming the violated condition).
Result<TdiskRange> FeasibleTdiskRange(std::int64_t n,
                                      BytesPerSecond bit_rate,
                                      const MemsBufferParams& params);

/// Solves Theorem 2 for n streams of the given bit-rate.
///
/// When `t_disk` is not provided, picks the largest T_disk allowed by the
/// storage bound (7) — buffer cost under per-device MEMS pricing only
/// falls with T_disk. With an unbounded MEMS capacity the supremum sizing
/// (T_disk -> infinity, S -> B̄ * C * (N+2k-2)/N) is returned with
/// t_disk = infinity. Pass an explicit finite `t_disk` (e.g. from
/// OptimalTdiskPerByte in planner.h) for per-byte pricing.
Result<MemsBufferSizing> SolveMemsBuffer(
    std::int64_t n, BytesPerSecond bit_rate, const MemsBufferParams& params,
    std::optional<Seconds> t_disk = std::nullopt);

/// The feasibility condition (*) above: bank bandwidth covers twice the
/// stream load, with round-robin imbalance slack.
bool MemsBankCanBuffer(std::int64_t n, BytesPerSecond bit_rate,
                       std::int64_t k, BytesPerSecond mems_rate);

/// Smallest k satisfying (*) for n streams; returns Infeasible if no k up
/// to `max_k` works (each added device also adds 2*B̄ of imbalance load,
/// so large n may admit no k).
Result<std::int64_t> MinBufferDevices(std::int64_t n,
                                      BytesPerSecond bit_rate,
                                      BytesPerSecond mems_rate,
                                      std::int64_t max_k = 1024);

/// The paper's §5.1 sizing rule for saturating the disk: enough devices
/// that the bank sustains twice the disk streaming bandwidth
/// (ceil(2 * disk_rate / mems_rate); two G3 devices for the FutureDisk).
std::int64_t DevicesForFullDiskUtilization(BytesPerSecond disk_rate,
                                           BytesPerSecond mems_rate);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_MEMS_BUFFER_H_
