// Hybrid MEMS configuration (paper §7, future work): the MEMS bank is
// split between buffering and caching — k_cache devices hold popular
// content, k_buffer devices speed-match the disk traffic for the misses.
// When the popularity skew is too mild for caching to pay off, the
// planner naturally shifts devices to buffering (and vice versa).

#ifndef MEMSTREAM_MODEL_HYBRID_H_
#define MEMSTREAM_MODEL_HYBRID_H_

#include <cstdint>

#include "common/status.h"
#include "model/planner.h"

namespace memstream::model {

/// Inputs for the hybrid planner: a CacheSystemConfig (whose `k` is
/// ignored) plus the maximum number of MEMS devices to consider.
struct HybridConfig {
  CacheSystemConfig base;      ///< budget, prices, devices, workload
  std::int64_t max_devices = 8;
  /// Disk profile for the Theorem 2 buffer sizing (rate + elevator
  /// latency are taken from base.disk_rate / base.disk_latency).
  Bytes mems_buffer_capacity = 10 * kGB;  ///< per buffering device
};

/// A chosen split and its predicted throughput.
struct HybridPlan {
  std::int64_t k_buffer = 0;
  std::int64_t k_cache = 0;
  CacheSystemThroughput throughput;  ///< at the chosen split
};

/// Evaluates the throughput of one explicit split (k_buffer buffering
/// devices, k_cache caching devices). Disk-side streams use Theorem 2
/// sizing when k_buffer > 0 (falling back to Theorem 1 if the buffer is
/// infeasible for that stream count), cache-side streams use
/// Theorems 3/4.
Result<CacheSystemThroughput> EvaluateHybridSplit(
    const HybridConfig& config, std::int64_t k_buffer,
    std::int64_t k_cache);

/// Exhaustively searches all splits with k_buffer + k_cache <=
/// max_devices that fit the budget and returns the best.
Result<HybridPlan> PlanHybrid(const HybridConfig& config);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_HYBRID_H_
