#include "model/mems_cache.h"

#include <algorithm>
#include <cmath>

namespace memstream::model {

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kStriped:
      return "striped";
    case CachePolicy::kReplicated:
      return "replicated";
  }
  return "?";
}

bool IsValidPopularity(const Popularity& pop) {
  return pop.x > 0.0 && pop.x <= 1.0 && pop.y >= pop.x && pop.y <= 1.0;
}

Result<double> HitRate(const Popularity& pop, double p) {
  if (!IsValidPopularity(pop)) {
    return Status::InvalidArgument("popularity must satisfy 0 < x <= y <= 1");
  }
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("cached fraction p must be in [0, 1]");
  }
  // Eq. 11: titles are cached most-popular first; within a class access
  // is uniform, so hits scale linearly with the cached share of the class.
  if (p <= pop.x) {
    return (p / pop.x) * pop.y;
  }
  if (pop.x >= 1.0) return 1.0;
  return pop.y + (p - pop.x) / (1.0 - pop.x) * (1.0 - pop.y);
}

double CachedFraction(CachePolicy policy, std::int64_t k,
                      Bytes mems_capacity_per_device, Bytes content_size) {
  if (content_size <= 0 || k < 1 || mems_capacity_per_device <= 0) return 0;
  const Bytes cache = policy == CachePolicy::kStriped
                          ? static_cast<double>(k) * mems_capacity_per_device
                          : mems_capacity_per_device;
  return std::min(cache / content_size, 1.0);
}

namespace {

// Effective seek count in a cycle, per policy: striped banks seek for
// every stream on every device in lock-step (n effective positioning
// delays at single-device latency); replicated banks split the streams,
// ceil(n/k) <= (n+k-1)/k per device.
double EffectiveSeekStreams(std::int64_t n, std::int64_t k,
                            CachePolicy policy) {
  if (policy == CachePolicy::kStriped) return static_cast<double>(n);
  return static_cast<double>(n + k - 1) / static_cast<double>(k);
}

}  // namespace

bool CacheCanSustain(std::int64_t n, BytesPerSecond bit_rate,
                     std::int64_t k, BytesPerSecond mems_rate,
                     CachePolicy policy) {
  if (n < 0 || k < 1) return false;
  if (n == 0) return true;
  const double bank_rate = static_cast<double>(k) * mems_rate;
  const double load = policy == CachePolicy::kStriped
                          ? static_cast<double>(n) * bit_rate
                          : static_cast<double>(n + k - 1) * bit_rate;
  return bank_rate > load;
}

std::int64_t MaxCacheStreamsBandwidthBound(BytesPerSecond bit_rate,
                                           std::int64_t k,
                                           BytesPerSecond mems_rate,
                                           CachePolicy policy) {
  if (bit_rate <= 0 || k < 1 || mems_rate <= 0) return 0;
  const double bank_rate = static_cast<double>(k) * mems_rate;
  double n_max = bank_rate / bit_rate;
  if (policy == CachePolicy::kReplicated) {
    n_max -= static_cast<double>(k - 1);
  }
  auto n = static_cast<std::int64_t>(std::ceil(n_max)) - 1;
  while (n > 0 && !CacheCanSustain(n, bit_rate, k, mems_rate, policy)) --n;
  return std::max<std::int64_t>(n, 0);
}

Result<Bytes> CachePerStreamBuffer(std::int64_t n, BytesPerSecond bit_rate,
                                   std::int64_t k, const DeviceProfile& mems,
                                   CachePolicy policy) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (bit_rate <= 0) return Status::InvalidArgument("bit_rate must be > 0");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!CacheCanSustain(n, bit_rate, k, mems.rate, policy)) {
    return Status::Infeasible("cache bank rate below the stream load");
  }
  // Theorems 3/4 share one shape: S = E * L̄m * (k*Rm) * B̄ /
  // (k*Rm - E' * B̄), where E is the effective number of positioning
  // delays per cycle and E' the effective bandwidth load factor.
  const double bank_rate = static_cast<double>(k) * mems.rate;
  const double seeks = EffectiveSeekStreams(n, k, policy);
  const double load = policy == CachePolicy::kStriped
                          ? static_cast<double>(n)
                          : static_cast<double>(n + k - 1);
  return seeks * mems.latency * bank_rate * bit_rate /
         (bank_rate - load * bit_rate);
}

Result<Bytes> CacheTotalBuffer(std::int64_t n, BytesPerSecond bit_rate,
                               std::int64_t k, const DeviceProfile& mems,
                               CachePolicy policy) {
  auto s = CachePerStreamBuffer(n, bit_rate, k, mems, policy);
  MEMSTREAM_RETURN_IF_ERROR(s.status());
  return static_cast<double>(n) * s.value();
}

}  // namespace memstream::model
