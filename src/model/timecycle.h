// Time-cycle-based IO scheduling model (Rangan et al. 1992), as used by
// the paper for every device: in each IO cycle the device performs exactly
// one IO per stream, sized so no stream underflows before its next IO.
//
// Theorem 1 (disk -> DRAM) and Corollary 1 (MEMS -> DRAM): the minimum
// per-stream buffer satisfying the real-time requirement is
//
//   S = N * L̄_d * R_d * B̄ / (R_d - N * B̄),    valid when R_d > N * B̄.
//
// Derivation (also the invariant the tests check): the cycle must cover N
// IOs, T = N * (L̄_d + S / R_d), while each stream consumes exactly one
// IO per cycle, S = B̄ * T; solving the fixed point gives the formula.

#ifndef MEMSTREAM_MODEL_TIMECYCLE_H_
#define MEMSTREAM_MODEL_TIMECYCLE_H_

#include <cstdint>

#include "common/status.h"
#include "model/profiles.h"
#include "model/stream.h"

namespace memstream::model {

/// True when the device has the raw bandwidth for n streams (R > n * B̄),
/// the necessary condition of Theorem 1.
bool CanSustain(std::int64_t n, BytesPerSecond bit_rate,
                const DeviceProfile& dev);

/// Largest n with dev.rate > n * bit_rate (bandwidth bound only; the DRAM
/// requirement diverges as n approaches it).
std::int64_t MaxStreamsBandwidthBound(BytesPerSecond device_rate,
                                      BytesPerSecond bit_rate);

/// Theorem 1 / Corollary 1: minimum per-stream buffer (bytes).
/// Returns Infeasible when R_d <= n * B̄.
Result<Bytes> PerStreamBufferSize(std::int64_t n, BytesPerSecond bit_rate,
                                  const DeviceProfile& dev);

/// n * PerStreamBufferSize: the system-wide DRAM requirement (Fig. 6a).
Result<Bytes> TotalBufferSize(std::int64_t n, BytesPerSecond bit_rate,
                              const DeviceProfile& dev);

/// The IO cycle T implied by Theorem 1's sizing: T = S / B̄
/// (equivalently N * (L̄_d + S/R_d)).
Result<Seconds> IoCycleLength(std::int64_t n, BytesPerSecond bit_rate,
                              const DeviceProfile& dev);

/// VBR extension (the paper's footnote 1): a VBR stream scheduled as CBR
/// at its mean rate needs the Theorem 1 buffer plus a cushion absorbing
/// one IO cycle of worst-case variability, (peak - mean) * T. The cycle
/// T is sized at the mean rate (the device schedule is unchanged).
/// Returns Infeasible when even the mean rates saturate the device.
Result<Bytes> PerStreamBufferSizeVbr(std::int64_t n,
                                     const VbrProfile& profile,
                                     const DeviceProfile& dev);

/// Inverse use of Theorem 1: the largest n sustainable from `dev` when
/// the total buffer must fit in `buffer_budget` bytes. `latency_of_n`
/// supplies L̄_d for each candidate n (elevator latency improves with n);
/// pass a constant function for a fixed latency. Returns 0 if even one
/// stream does not fit.
std::int64_t MaxStreamsWithBuffer(Bytes buffer_budget,
                                  BytesPerSecond bit_rate,
                                  BytesPerSecond device_rate,
                                  const LatencyFn& latency_of_n);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_TIMECYCLE_H_
