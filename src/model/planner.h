// Capacity planning on top of the analytical model:
//
//  - OptimalTdiskPerByte: the disk IO-cycle length minimizing total
//    buffering cost under per-byte MEMS pricing (Fig. 8's configuration;
//    closed form, see below);
//  - MaxCacheSystemThroughput: the server throughput at a fixed total
//    budget split between a k-device MEMS cache and DRAM (Figs. 9, 10);
//  - BestCacheBankSize: the k maximizing that throughput (Fig. 10's
//    per-distribution optimum).
//
// Closed form for the per-byte optimum: total cost as a function of the
// disk cycle T is  cost(T) = alpha * T + beta * T / (T - C)  with
// alpha = C_mems * 2 N B̄ (MEMS bytes grow with T) and
// beta = C_dram * N * B̄ * C * (N + 2k - 2)/N (DRAM shrinks toward its
// floor), which is strictly convex on (C, inf) with minimum at
// T* = C + sqrt(beta * C / alpha).

#ifndef MEMSTREAM_MODEL_PLANNER_H_
#define MEMSTREAM_MODEL_PLANNER_H_

#include <cstdint>

#include "common/status.h"
#include "model/cost.h"
#include "model/mems_buffer.h"
#include "model/mems_cache.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::model {

/// Result of the per-byte T_disk optimization.
struct TdiskOptimum {
  Seconds t_disk = 0;       ///< cost-minimizing disk cycle
  Dollars total_cost = 0;   ///< cost at the optimum (per-byte pricing)
  MemsBufferSizing sizing;  ///< full Theorem 2 sizing at the optimum
};

/// Minimizes CostWithMemsBufferPerByte over T_disk, honoring Theorem 2's
/// feasibility window. Returns Infeasible when no T_disk works.
Result<TdiskOptimum> OptimalTdiskPerByte(std::int64_t n,
                                         BytesPerSecond bit_rate,
                                         const MemsBufferParams& params,
                                         const CostInputs& prices);

/// A fixed-budget server with an optional k-device MEMS cache: the budget
/// buys the cache devices first, DRAM with the remainder (§5.2: each
/// cache device displaces 500 MB of DRAM at 2007 prices).
struct CacheSystemConfig {
  Dollars total_budget = 100;               ///< buffering + caching budget
  DollarsPerByte dram_per_byte = 20.0 / kGB;
  Dollars mems_device_cost = 10;
  std::int64_t k = 1;                       ///< cache devices (0 = no cache)
  CachePolicy policy = CachePolicy::kStriped;
  Popularity popularity{0.1, 0.9};
  Bytes mems_capacity = 10 * kGB;           ///< per device
  Bytes content_size = 1000 * kGB;          ///< total catalog size on disk
  BytesPerSecond bit_rate = 100 * kKBps;
  BytesPerSecond disk_rate = 300 * kMBps;
  LatencyFn disk_latency;                   ///< L̄_disk as a function of n
  DeviceProfile mems;                       ///< single cache device (Rm, L̄m)
};

/// Throughput report for a CacheSystemConfig.
struct CacheSystemThroughput {
  std::int64_t total_streams = 0;
  std::int64_t cache_streams = 0;  ///< h * N, served from the MEMS bank
  std::int64_t disk_streams = 0;   ///< (1-h) * N, served from the disk
  double hit_rate = 0;             ///< Eq. 11's h
  double cached_fraction = 0;      ///< Eq. 11's p
  Bytes dram_bytes = 0;            ///< DRAM purchasable after the cache
  Bytes dram_used = 0;             ///< DRAM actually needed at the optimum
};

/// Largest stream count the configuration sustains: disk and bank
/// bandwidth bounds plus the DRAM bound with Theorem 1 (disk side,
/// Eq. 10) and Theorems 3/4 (cache side) sizing. Requires a disk_latency
/// function. k = 0 degenerates to the no-cache baseline.
Result<CacheSystemThroughput> MaxCacheSystemThroughput(
    const CacheSystemConfig& config);

/// Sweeps k in [0, max_k] and returns the throughput-maximizing k
/// (ties break toward fewer devices).
Result<std::int64_t> BestCacheBankSize(const CacheSystemConfig& config,
                                       std::int64_t max_k);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_PLANNER_H_
