#include "model/cost.h"

namespace memstream::model {

Dollars CostWithoutMems(std::int64_t n, Bytes s_disk_dram,
                        const CostInputs& prices) {
  return static_cast<double>(n) * prices.dram_per_byte * s_disk_dram;
}

Dollars CostWithMemsBufferPerDevice(std::int64_t n, std::int64_t k,
                                    Bytes s_mems_dram,
                                    const CostInputs& prices) {
  return static_cast<double>(k) * prices.mems_per_byte *
             prices.mems_capacity +
         static_cast<double>(n) * prices.dram_per_byte * s_mems_dram;
}

Dollars CostWithMemsBufferPerByte(std::int64_t n, Bytes mems_bytes_used,
                                  Bytes s_mems_dram,
                                  const CostInputs& prices) {
  return prices.mems_per_byte * mems_bytes_used +
         static_cast<double>(n) * prices.dram_per_byte * s_mems_dram;
}

Dollars CostWithMemsCache(std::int64_t n, std::int64_t k, double hit_rate,
                          Bytes s_mems_dram, Bytes s_disk_dram,
                          const CostInputs& prices) {
  const double nn = static_cast<double>(n);
  return static_cast<double>(k) * prices.mems_per_byte *
             prices.mems_capacity +
         hit_rate * nn * prices.dram_per_byte * s_mems_dram +
         (1.0 - hit_rate) * nn * prices.dram_per_byte * s_disk_dram;
}

double PercentReduction(Dollars before, Dollars after) {
  if (before <= 0) return 0;
  return 100.0 * (before - after) / before;
}

}  // namespace memstream::model
