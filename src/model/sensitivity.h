// Sensitivity analysis of the MEMS-buffer conclusion (paper §5.1.3,
// footnote 2): "Our conclusion (that MEMS buffering is effective for low
// and medium bit-rate traffic) holds true as long as the MEMS device is
// an order of magnitude cheaper than DRAM and provides streaming
// bandwidths comparable to or greater than those of disk-drives."
//
// This module makes that claim checkable: it sweeps the two prediction
// risks — the DRAM/MEMS unit-cost ratio and the MEMS/disk bandwidth
// ratio — re-derives the whole Fig.-7-style cost comparison at each
// point, and finds the break-even cost ratio.

#ifndef MEMSTREAM_MODEL_SENSITIVITY_H_
#define MEMSTREAM_MODEL_SENSITIVITY_H_

#include <cstdint>

#include "common/status.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::model {

/// The fixed system around the sweep (the §5.1.3 off-the-shelf box).
struct SensitivityInputs {
  BytesPerSecond bit_rate = 100 * kKBps;
  Bytes dram_cap = 5 * kGB;            ///< DRAM ceiling of the box
  BytesPerSecond disk_rate = 300 * kMBps;
  LatencyFn disk_latency;              ///< required
  Seconds mems_latency = 0.86 * kMillisecond;  ///< max device latency
  Bytes mems_capacity = 10 * kGB;      ///< per device
  DollarsPerByte dram_per_byte = 20.0 / kGB;
};

/// One evaluated point of the sweep.
struct SensitivityOutcome {
  std::int64_t n = 0;        ///< throughput target (no-MEMS maximum)
  std::int64_t k = 0;        ///< buffer devices used at this bandwidth
  Dollars cost_without = 0;  ///< DRAM-only buffering cost for n streams
  Dollars cost_with = 0;     ///< k devices + reduced DRAM
  double percent_reduction = 0;
  bool mems_wins = false;    ///< cost_with < cost_without
};

/// Evaluates the cost comparison with
///   C_mems = dram_per_byte / cost_factor     (cost_factor = Cdram/Cmems)
///   R_mems = bandwidth_factor * disk_rate.
/// The bank size k is the smallest that sustains twice the disk
/// bandwidth and the stream load. Returns Infeasible when no bank works.
Result<SensitivityOutcome> EvaluateSensitivity(
    const SensitivityInputs& inputs, double cost_factor,
    double bandwidth_factor);

/// Smallest Cdram/Cmems ratio at which the MEMS buffer breaks even
/// (cost_with == cost_without), at the given bandwidth factor. Searched
/// over [1, max_factor]; NotFound if MEMS never/always wins there.
Result<double> BreakEvenCostFactor(const SensitivityInputs& inputs,
                                   double bandwidth_factor,
                                   double max_factor = 1000.0);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_SENSITIVITY_H_
