// Buffering-cost model (§4, Eqs. 1, 2, and 9).
//
// Two MEMS pricing modes appear in the paper's evaluation:
//  - per-device (Eq. 2): k devices cost k * Cmems * Size_mems even when
//    partially used — the §5.1.3 case study and the cache experiments;
//  - per-byte: only the bytes actually used for buffering are charged —
//    the relaxation used by the Fig. 8 experiment.

#ifndef MEMSTREAM_MODEL_COST_H_
#define MEMSTREAM_MODEL_COST_H_

#include <cstdint>

#include "common/status.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"

namespace memstream::model {

/// Unit prices for the buffering media.
struct CostInputs {
  DollarsPerByte dram_per_byte = 20.0 / kGB;   ///< C_dram
  DollarsPerByte mems_per_byte = 1.0 / kGB;    ///< C_mems
  Bytes mems_capacity = 10 * kGB;              ///< Size_mems per device
};

/// Eq. 1: DRAM-only buffering cost, N * C_dram * S_disk-dram.
Dollars CostWithoutMems(std::int64_t n, Bytes s_disk_dram,
                        const CostInputs& prices);

/// Eq. 2: k MEMS devices (charged whole) + the reduced DRAM buffer,
/// k * C_mems * Size_mems + N * C_dram * S_mems-dram.
Dollars CostWithMemsBufferPerDevice(std::int64_t n, std::int64_t k,
                                    Bytes s_mems_dram,
                                    const CostInputs& prices);

/// Per-byte variant (Fig. 8): C_mems * mems_bytes_used +
/// N * C_dram * S_mems-dram.
Dollars CostWithMemsBufferPerByte(std::int64_t n, Bytes mems_bytes_used,
                                  Bytes s_mems_dram,
                                  const CostInputs& prices);

/// Eq. 9: cache configuration — k devices (charged whole), h*N streams
/// buffered for MEMS service and (1-h)*N for disk service.
Dollars CostWithMemsCache(std::int64_t n, std::int64_t k, double hit_rate,
                          Bytes s_mems_dram, Bytes s_disk_dram,
                          const CostInputs& prices);

/// 100 * (before - after) / before; 0 when before == 0.
double PercentReduction(Dollars before, Dollars after);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_COST_H_
