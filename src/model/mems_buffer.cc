#include "model/mems_buffer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace memstream::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* BufferPlacementName(BufferPlacement placement) {
  switch (placement) {
    case BufferPlacement::kRoundRobinStreams:
      return "round-robin";
    case BufferPlacement::kStripedIos:
      return "striped";
  }
  return "?";
}

bool MemsBankCanBuffer(std::int64_t n, BytesPerSecond bit_rate,
                       std::int64_t k, BytesPerSecond mems_rate) {
  if (n < 1 || k < 1) return false;
  return static_cast<double>(k) * mems_rate >
         2.0 * static_cast<double>(n + k - 1) * bit_rate;
}

Result<std::int64_t> MinBufferDevices(std::int64_t n,
                                      BytesPerSecond bit_rate,
                                      BytesPerSecond mems_rate,
                                      std::int64_t max_k) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  for (std::int64_t k = 1; k <= max_k; ++k) {
    if (MemsBankCanBuffer(n, bit_rate, k, mems_rate)) return k;
  }
  return Status::Infeasible("no bank size up to max_k can buffer n streams");
}

std::int64_t DevicesForFullDiskUtilization(BytesPerSecond disk_rate,
                                           BytesPerSecond mems_rate) {
  if (disk_rate <= 0 || mems_rate <= 0) return 0;
  return static_cast<std::int64_t>(std::ceil(2.0 * disk_rate / mems_rate));
}

Result<TdiskRange> FeasibleTdiskRange(std::int64_t n,
                                      BytesPerSecond bit_rate,
                                      const MemsBufferParams& params) {
  if (n < 2) {
    // Eq. 8 needs an integer M with 1 <= M < N; a single stream has no
    // valid nested MEMS cycle (and needs no speed-matching buffer).
    return Status::InvalidArgument("Theorem 2 requires n >= 2");
  }
  if (bit_rate <= 0) return Status::InvalidArgument("bit_rate must be > 0");
  if (params.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (params.disk.rate <= 0 || params.mems.rate <= 0) {
    return Status::InvalidArgument("device rates must be > 0");
  }

  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(params.k);
  const double b = bit_rate;

  if (params.disk.rate <= nn * b) {
    return Status::Infeasible("disk rate <= N * bit_rate (condition 6)");
  }
  const bool striped = params.placement == BufferPlacement::kStripedIos;
  if (striped) {
    if (kk * params.mems.rate <= 2.0 * nn * b) {
      return Status::Infeasible(
          "k * R_mems <= 2 * N * bit_rate (striped-placement domain)");
    }
  } else if (!MemsBankCanBuffer(n, bit_rate, params.k,
                                params.mems.rate)) {
    return Status::Infeasible(
        "k * R_mems <= 2 * (N + k - 1) * bit_rate (Eq. 5 domain)");
  }

  TdiskRange range;
  // Round-robin (Theorem 2): each device handles ~(N+M)/k IOs per cycle.
  // Striped IOs: every device participates in every IO, so all N+M
  // positioning delays land on each device — the denominator loses its
  // factor k (equivalently C grows ~k-fold).
  range.c = striped
                ? nn * params.mems.latency * kk * params.mems.rate /
                      (kk * params.mems.rate - 2.0 * nn * b)
                : nn * params.mems.latency * params.mems.rate /
                      (kk * params.mems.rate -
                       2.0 * (nn + kk - 1.0) * b);

  // Condition (6): the disk cycle must be long enough for N disk IOs.
  const Seconds t_lower_rt = nn * params.disk.latency * params.disk.rate /
                             (params.disk.rate - nn * b);
  // Condition (8): an integer M < N must exist, i.e. the fixed-point
  // T_mems = C*T/(T-C) must not exceed (N-1)/N * T.
  const Seconds t_lower_m = range.c * (2.0 * nn - 1.0) / (nn - 1.0);
  range.lower = std::max(t_lower_rt, t_lower_m);

  // Condition (7): the buffered data (written once, drained once -> two
  // cycles' worth resident) must fit in the bank.
  const Bytes capacity = params.mems_capacity_override > 0
                             ? params.mems_capacity_override
                             : params.mems.capacity;
  range.upper = capacity == kInf ? kInf : kk * capacity / (2.0 * nn * b);

  if (range.upper < range.lower) {
    return Status::Infeasible(
        "MEMS storage bound (7) conflicts with the real-time bound (6)");
  }
  return range;
}

Result<MemsBufferSizing> SolveMemsBuffer(std::int64_t n,
                                         BytesPerSecond bit_rate,
                                         const MemsBufferParams& params,
                                         std::optional<Seconds> t_disk) {
  auto range_result = FeasibleTdiskRange(n, bit_rate, params);
  MEMSTREAM_RETURN_IF_ERROR(range_result.status());
  const TdiskRange& range = range_result.value();

  Seconds t = 0;
  if (t_disk.has_value()) {
    t = *t_disk;
    if (t < range.lower) {
      return Status::Infeasible(
          "requested T_disk below the real-time/cycle-nesting bound");
    }
    if (t > range.upper) {
      return Status::Infeasible(
          "requested T_disk exceeds the MEMS storage bound (condition 7)");
    }
  } else {
    t = range.upper;  // the theorem's "largest value" choice
  }

  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(params.k);
  const double b = bit_rate;
  // Striped placement is perfectly balanced, so no ceil(N/k) correction.
  const double imbalance =
      params.placement == BufferPlacement::kStripedIos
          ? 1.0
          : 1.0 + (2.0 * kk - 2.0) / nn;

  MemsBufferSizing out;
  out.c = range.c;
  out.t_disk = t;
  if (t == kInf) {
    // Supremum sizing: T_mems -> C, the disk-side share of the MEMS
    // schedule vanishes (M/N -> 0).
    out.t_mems = out.c;
    out.m = 0;
    out.t_mems_snapped = out.c;
    out.s_disk_mems = kInf;
    out.mems_used = kInf;
    out.s_mems_dram = b * out.c * imbalance;
    out.s_mems_dram_schedulable = out.s_mems_dram;
  } else {
    out.t_mems = out.c * t / (t - out.c);
    // Snap the cycle ratio up to the next integer M (Eq. 8); the snapped
    // cycle is longer, which only loosens the real-time requirement on
    // the disk side while the schedulable DRAM sizing accounts for it.
    out.m = static_cast<std::int64_t>(std::ceil(nn * out.t_mems / t - 1e-9));
    if (out.m >= n) {
      return Status::Internal("cycle snapping produced M >= N");
    }
    out.m = std::max<std::int64_t>(out.m, 1);
    out.t_mems_snapped = static_cast<double>(out.m) * t / nn;
    out.s_disk_mems = b * t;
    out.mems_used = 2.0 * nn * t * b;
    out.s_mems_dram = b * out.c * imbalance * t / (t - out.c);
    out.s_mems_dram_schedulable = b * out.t_mems_snapped * imbalance;
  }
  out.dram_total = nn * out.s_mems_dram;
  return out;
}

}  // namespace memstream::model
