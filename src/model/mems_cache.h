// MEMS multimedia cache model (§3.2 / §4.2): popular streams are stored
// in their entirety on a bank of k MEMS devices and serviced with
// time-cycle scheduling, under one of two load-balanced management
// policies:
//
//  - striped (Theorem 3 / Eq. 12): lock-step bit/byte striping; k x
//    throughput, single-device latency, capacity k * Size_mems;
//  - replicated (Theorem 4 / Eq. 13): identical content everywhere; k x
//    throughput AND k x effective latency (each device seeks for only
//    ceil(n/k) streams), capacity Size_mems.
//
// Eq. 11 gives the hit rate for an X:Y two-class popularity when a
// fraction p of the content (most popular first) is cached.

#ifndef MEMSTREAM_MODEL_MEMS_CACHE_H_
#define MEMSTREAM_MODEL_MEMS_CACHE_H_

#include <cstdint>

#include "common/status.h"
#include "model/profiles.h"

namespace memstream::model {

/// Cache data-management policy across the MEMS bank.
enum class CachePolicy {
  kStriped,     ///< Theorem 3: lock-step striping
  kReplicated,  ///< Theorem 4: full replication
};

const char* CachePolicyName(CachePolicy policy);

/// An X:Y two-class popularity: fraction `x` of the titles receives
/// fraction `y` of the accesses, uniformly within each class. The paper's
/// "1:99" is {0.01, 0.99}; "50:50" is the uniform distribution.
struct Popularity {
  double x = 0.1;  ///< popular fraction of titles, in (0, 1]
  double y = 0.9;  ///< fraction of accesses they receive, in [x, 1]
};

/// True when the two fractions form a valid, skew-ordered distribution
/// (0 < x <= 1, x <= y <= 1; y >= x keeps "popular" meaningful).
bool IsValidPopularity(const Popularity& pop);

/// Eq. 11: cache hit rate when the fraction `p` (in [0, 1]) of titles,
/// most popular first, is cached.
Result<double> HitRate(const Popularity& pop, double p);

/// Fraction of the content a k-device bank can cache under `policy`:
/// striping aggregates capacity (k * Size_mems / content), replication
/// does not (Size_mems / content). Clamped to 1.
double CachedFraction(CachePolicy policy, std::int64_t k,
                      Bytes mems_capacity_per_device, Bytes content_size);

/// True when the bank has the bandwidth for n cache-serviced streams:
/// striped needs k*Rm > n*B̄; replicated needs k*Rm > (n+k-1)*B̄ (the
/// ceil(n/k) imbalance).
bool CacheCanSustain(std::int64_t n, BytesPerSecond bit_rate,
                     std::int64_t k, BytesPerSecond mems_rate,
                     CachePolicy policy);

/// Largest n with CacheCanSustain true.
std::int64_t MaxCacheStreamsBandwidthBound(BytesPerSecond bit_rate,
                                           std::int64_t k,
                                           BytesPerSecond mems_rate,
                                           CachePolicy policy);

/// Theorems 3 and 4: minimum per-stream DRAM buffer for n streams served
/// from the cache. `mems` describes a single device (rate Rm, latency
/// L̄m); the policy determines how the bank aggregates.
Result<Bytes> CachePerStreamBuffer(std::int64_t n, BytesPerSecond bit_rate,
                                   std::int64_t k, const DeviceProfile& mems,
                                   CachePolicy policy);

/// n * CachePerStreamBuffer.
Result<Bytes> CacheTotalBuffer(std::int64_t n, BytesPerSecond bit_rate,
                               std::int64_t k, const DeviceProfile& mems,
                               CachePolicy policy);

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_MEMS_CACHE_H_
