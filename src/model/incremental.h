// Incremental Theorem re-solves: the perf layer over the analytical
// model. Two complementary pieces.
//
// 1. Probe kernels. The capacity planners answer "largest n whose sizing
//    fits" questions by searching over n (or bisecting over a price
//    factor), and every *infeasible* probe of the Result-returning
//    solvers pays a Status-with-message heap allocation. ProbeTheorem1* /
//    ProbeCache* evaluate the identical closed forms — the same
//    operations in the same order, so a feasible probe produces the
//    bit-identical double — but signal infeasibility with NaN, and
//    LargestTrueInline drives them without std::function indirection.
//    incremental_model_test cross-checks the probes against the full
//    solvers over randomized parameters.
//
// 2. Re-solve memos. Online admission and degradation re-plans evaluate
//    the same solver at the same handful of keys over and over: every
//    admit + depart pair returns to the previous (n, B̄) — the aggregate
//    terms (stream count, summed bit-rate) are already maintained by
//    O(1) deltas — and every fault + repair pair returns to the previous
//    (alive, rate_scale). SolveMemo caches solver outcomes on the
//    bit-exact key so a revisit costs a hash probe instead of a full
//    re-derivation. In debug builds (or with set_cross_check(true))
//    every hit re-runs the full solver and counts disagreements in
//    stats().mismatches — the incremental path is only trusted where it
//    is provably equal to the full one.
//
// A SolveMemo belongs to one controller / manager instance and is not
// internally synchronized; instances must not be shared across
// concurrently running servers (the servers own their managers, so this
// holds today — the TSan CI job guards it).

#ifndef MEMSTREAM_MODEL_INCREMENTAL_H_
#define MEMSTREAM_MODEL_INCREMENTAL_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/units.h"
#include "model/mems_cache.h"
#include "model/profiles.h"

namespace memstream::model {

/// Bit pattern of a double, for bit-exact memo keys (and equality that
/// distinguishes nothing a full re-solve would not).
inline std::uint64_t DoubleBits(double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

inline double QuietNaN() {
  return std::numeric_limits<double>::quiet_NaN();
}

// --- probe kernels -------------------------------------------------------

/// Theorem 1 / Corollary 1 per-stream buffer, mirroring
/// PerStreamBufferSize() term for term; NaN where the full solver returns
/// a non-OK Status (invalid domain or R <= n * B̄).
inline double ProbeTheorem1PerStream(std::int64_t n, BytesPerSecond bit_rate,
                                     BytesPerSecond rate, Seconds latency) {
  if (n < 1 || bit_rate <= 0 || rate <= 0 || latency < 0) return QuietNaN();
  const double nn = static_cast<double>(n);
  if (!(rate > nn * bit_rate)) return QuietNaN();
  return nn * latency * rate * bit_rate / (rate - nn * bit_rate);
}

/// n * ProbeTheorem1PerStream, mirroring TotalBufferSize().
inline double ProbeTheorem1Total(std::int64_t n, BytesPerSecond bit_rate,
                                 BytesPerSecond rate, Seconds latency) {
  const double s = ProbeTheorem1PerStream(n, bit_rate, rate, latency);
  return static_cast<double>(n) * s;  // NaN propagates
}

/// Theorems 3/4 per-stream buffer, mirroring CachePerStreamBuffer();
/// NaN where the full solver returns a non-OK Status.
inline double ProbeCachePerStream(std::int64_t n, BytesPerSecond bit_rate,
                                  std::int64_t k, const DeviceProfile& mems,
                                  CachePolicy policy) {
  if (n < 1 || bit_rate <= 0 || k < 1) return QuietNaN();
  if (!CacheCanSustain(n, bit_rate, k, mems.rate, policy)) return QuietNaN();
  const double bank_rate = static_cast<double>(k) * mems.rate;
  const double seeks =
      policy == CachePolicy::kStriped
          ? static_cast<double>(n)
          : static_cast<double>(n + k - 1) / static_cast<double>(k);
  const double load = policy == CachePolicy::kStriped
                          ? static_cast<double>(n)
                          : static_cast<double>(n + k - 1);
  return seeks * mems.latency * bank_rate * bit_rate /
         (bank_rate - load * bit_rate);
}

/// n * ProbeCachePerStream, mirroring CacheTotalBuffer().
inline double ProbeCacheTotal(std::int64_t n, BytesPerSecond bit_rate,
                              std::int64_t k, const DeviceProfile& mems,
                              CachePolicy policy) {
  const double s = ProbeCachePerStream(n, bit_rate, k, mems, policy);
  return static_cast<double>(n) * s;
}

/// Largest n in [lo, hi] with pred(n) true, or lo - 1 when pred(lo) is
/// false. Same contract as math_utils' LargestTrue (pred monotone
/// non-increasing) but monomorphized on the predicate: a probe costs a
/// handful of flops, so the std::function hop would dominate it.
template <typename Pred>
std::int64_t LargestTrueInline(Pred&& pred, std::int64_t lo,
                               std::int64_t hi) {
  if (lo > hi || !pred(lo)) return lo - 1;
  std::int64_t known_true = lo;
  std::int64_t known_false = hi + 1;
  while (known_false - known_true > 1) {
    const std::int64_t mid = known_true + (known_false - known_true) / 2;
    if (pred(mid)) {
      known_true = mid;
    } else {
      known_false = mid;
    }
  }
  return known_true;
}

// --- re-solve memos ------------------------------------------------------

/// One solver invocation's identity: an integer term and up to two real
/// terms, reals keyed by bit pattern. Two keys are equal exactly when a
/// full re-derivation would be handed the identical inputs.
struct SolveKey {
  std::int64_t n = 0;
  std::uint64_t x_bits = 0;
  std::uint64_t y_bits = 0;

  bool operator==(const SolveKey&) const = default;
};

struct SolveKeyHash {
  std::size_t operator()(const SolveKey& key) const {
    std::uint64_t h =
        0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(key.n);
    h = (h ^ key.x_bits) * 0xFF51AFD7ED558CCDull;
    h = (h ^ key.y_bits) * 0xC4CEB9FE1A85EC53ull;
    return static_cast<std::size_t>(h ^ (h >> 33));
  }
};

/// Hit/miss accounting, exported as prof.* gauges by the owners and
/// asserted on by incremental_model_test (mismatches must stay 0).
struct SolveMemoStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t cross_checks = 0;
  std::int64_t mismatches = 0;
};

#ifndef NDEBUG
inline constexpr bool kSolveMemoCrossCheckDefault = true;
#else
inline constexpr bool kSolveMemoCrossCheckDefault = false;
#endif

/// Memo of a pure solve. Lookup() returns the cached value for a known
/// key, otherwise runs `full`, stores, and returns. In cross-check mode
/// every hit re-runs `full` anyway and compares via `equal`.
template <typename V>
class SolveMemo {
 public:
  template <typename FullFn, typename EqFn>
  const V& Lookup(const SolveKey& key, FullFn&& full, EqFn&& equal) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      if (cross_check_) {
        ++stats_.cross_checks;
        if (!equal(full(), it->second)) ++stats_.mismatches;
      }
      return it->second;
    }
    ++stats_.misses;
    return map_.emplace(key, full()).first->second;
  }

  /// Drops every cached solve (e.g. when the owning config changes).
  void Clear() { map_.clear(); }

  const SolveMemoStats& stats() const { return stats_; }
  bool cross_check() const { return cross_check_; }
  void set_cross_check(bool on) { cross_check_ = on; }

 private:
  std::unordered_map<SolveKey, V, SolveKeyHash> map_;
  SolveMemoStats stats_;
  bool cross_check_ = kSolveMemoCrossCheckDefault;
};

}  // namespace memstream::model

#endif  // MEMSTREAM_MODEL_INCREMENTAL_H_
