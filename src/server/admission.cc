#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace memstream::server {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<AdmissionController> AdmissionController::Create(
    AdmissionConfig config) {
  if (!config.disk_latency) {
    return Status::InvalidArgument("disk_latency function is required");
  }
  if (config.dram_budget <= 0) {
    return Status::InvalidArgument("dram_budget must be > 0");
  }
  if (config.buffer_k < 0) {
    return Status::InvalidArgument("buffer_k must be >= 0");
  }
  if (config.buffer_k > 0 && config.mems.rate <= 0) {
    return Status::InvalidArgument("mems profile required when buffer_k > 0");
  }
  return AdmissionController(std::move(config));
}

Bytes AdmissionController::DramFor(std::int64_t n, BytesPerSecond avg,
                                   std::string* reason) const {
  if (n == 0) return 0;
  model::DeviceProfile disk;
  disk.rate = config_.disk_rate;
  disk.latency = config_.disk_latency(n);

  if (config_.buffer_k > 0 && n >= 2) {
    model::MemsBufferParams params;
    params.k = config_.buffer_k;
    params.disk = disk;
    params.mems = config_.mems;
    auto sized = model::SolveMemsBuffer(n, avg, params);
    if (sized.ok()) return sized.value().dram_total;
    if (reason != nullptr) *reason = sized.status().ToString();
    return kInf;
  }

  auto total = model::TotalBufferSize(n, avg, disk);
  if (total.ok()) return total.value();
  if (reason != nullptr) *reason = total.status().ToString();
  return kInf;
}

const AdmissionController::DramSolve& AdmissionController::DramForCached(
    std::int64_t n, BytesPerSecond avg) const {
  const model::SolveKey key{n, model::DoubleBits(avg), 0};
  return memo_.Lookup(
      key,
      [&] {
        DramSolve solve;
        solve.dram = DramFor(n, avg, &solve.reason);
        return solve;
      },
      [](const DramSolve& a, const DramSolve& b) {
        return model::DoubleBits(a.dram) == model::DoubleBits(b.dram) &&
               a.reason == b.reason;
      });
}

AdmissionDecision AdmissionController::TryAdmit(BytesPerSecond bit_rate) {
  // The wall clock runs only when a latency consumer is installed, so
  // untelemetered admission stays clock-free (and deterministic tests
  // see no syscalls).
  const bool timed = slo_latency_ != nullptr || latency_hist_ != nullptr;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};

  AdmissionDecision decision;
  decision.streams_after = admitted_count() + 1;
  if (bit_rate <= 0) {
    decision.reason = "bit_rate must be > 0";
  } else {
    const BytesPerSecond avg =
        (total_rate_ + bit_rate) /
        static_cast<double>(decision.streams_after);
    const DramSolve& solve = DramForCached(decision.streams_after, avg);
    decision.dram_required = solve.dram;
    if (solve.dram > config_.dram_budget) {
      decision.reason =
          solve.dram == kInf ? solve.reason : "DRAM budget exceeded";
    } else {
      admitted_.push_back(bit_rate);
      total_rate_ += bit_rate;
      decision.admitted = true;
    }
  }
  if (!decision.admitted) decision.streams_after = admitted_count();

  obs::Increment(attempts_metric_);
  obs::Increment(decision.admitted ? admitted_metric_ : rejected_metric_);
  if (timed) {
    const auto end = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(end - start).count();
    obs::Observe(latency_hist_, elapsed * 1e6);
    if (slo_latency_ != nullptr) {
      const double now =
          std::chrono::duration<double>(end.time_since_epoch()).count();
      const bool good = elapsed <= slo_latency_->spec().threshold;
      slo_latency_->Record(now, good ? 1 : 0, good ? 0 : 1);
    }
  }
  return decision;
}

Status AdmissionController::Release(BytesPerSecond bit_rate) {
  auto it = std::find(admitted_.begin(), admitted_.end(), bit_rate);
  if (it == admitted_.end()) {
    return Status::NotFound("no admitted stream with that bit_rate");
  }
  admitted_.erase(it);
  total_rate_ = std::max(0.0, total_rate_ - bit_rate);
  return Status::OK();
}

Bytes AdmissionController::CurrentDramRequirement() const {
  if (admitted_.empty()) return 0;
  const auto n = static_cast<std::int64_t>(admitted_.size());
  return DramForCached(n, total_rate_ / static_cast<double>(n)).dram;
}

}  // namespace memstream::server
