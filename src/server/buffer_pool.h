// DRAM buffer-pool accounting: reservation-based, with peak tracking so
// simulations can report the DRAM actually needed and compare it with the
// analytical sizing.

#ifndef MEMSTREAM_SERVER_BUFFER_POOL_H_
#define MEMSTREAM_SERVER_BUFFER_POOL_H_

#include <string>

#include "common/status.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace memstream::server {

/// Byte-granular buffer accounting (no actual memory is held; the
/// simulator only needs the bookkeeping).
class BufferPool {
 public:
  /// A pool of `capacity` bytes. Requires capacity >= 0.
  explicit BufferPool(Bytes capacity) : capacity_(capacity) {}

  /// Publishes the pool into `metrics` under `prefix` (e.g. "pool.dram"):
  /// a used-bytes gauge, a reservation-failure counter, and a peak gauge
  /// kept current on every Reserve(). Null detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics,
                     const std::string& prefix);

  /// Reserves `bytes`; ResourceExhausted if it would exceed capacity.
  Status Reserve(Bytes bytes);

  /// Releases `bytes`; InvalidArgument on over-release (indicates an
  /// accounting bug in the caller).
  Status Release(Bytes bytes);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  Bytes peak_used() const { return peak_used_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes peak_used_ = 0;
  obs::Gauge* used_gauge_ = nullptr;
  obs::Gauge* peak_gauge_ = nullptr;
  obs::Counter* exhausted_metric_ = nullptr;
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_BUFFER_POOL_H_
