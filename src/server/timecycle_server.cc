#include "server/timecycle_server.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

Result<DirectStreamingServer> DirectStreamingServer::Create(
    device::DiskDrive* disk, std::vector<StreamSpec> streams,
    const DirectServerConfig& config, sim::TraceLog* trace) {
  if (disk == nullptr) return Status::InvalidArgument("disk is required");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.cycle <= 0) return Status::InvalidArgument("cycle must be > 0");
  if (config.staging_ios < 1.0) {
    return Status::InvalidArgument("staging_ios must be >= 1");
  }
  for (const auto& s : streams) {
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0 ||
        s.disk_offset + s.extent > disk->Capacity()) {
      return Status::OutOfRange("stream extent beyond disk capacity");
    }
    // An IO must fit inside the extent for the wrap logic to be sound.
    if (s.bit_rate * config.cycle > s.extent) {
      return Status::InvalidArgument("extent smaller than one IO");
    }
  }
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return DirectStreamingServer(disk, std::move(streams), config, trace);
}

DirectStreamingServer::DirectStreamingServer(device::DiskDrive* disk,
                                             std::vector<StreamSpec> streams,
                                             const DirectServerConfig& config,
                                             sim::TraceLog* trace)
    : disk_(disk),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  play_cursor_.assign(streams_.size(), 0);
  session_index_.reserve(streams_.size());
  for (const auto& s : streams_) {
    if (s.direction == StreamDirection::kRead) {
      session_index_.push_back(play_.Add(s.id, s.bit_rate));
    } else {
      const Bytes staging =
          config_.staging_ios * s.bit_rate * config_.cycle;
      session_index_.push_back(record_.Add(s.id, s.bit_rate, staging));
    }
  }

  // Resolve telemetry handles once; hot-path updates are null-guarded.
  obs::MetricsRegistry* metrics = config_.metrics;
  play_occupancy_.assign(play_.size(), nullptr);
  staging_occupancy_.assign(record_.size(), nullptr);
  if (metrics != nullptr) {
    const double cycle_ms = config_.cycle / kMillisecond;
    slack_hist_ = metrics->histogram("server.direct.cycle_slack_ms",
                                     {-cycle_ms, cycle_ms, 40});
    cycles_metric_ = metrics->counter("server.direct.cycles");
    overruns_metric_ = metrics->counter("server.direct.cycle_overruns");
    ios_metric_ = metrics->counter("server.direct.ios");
    for (std::size_t i = 0; i < play_.size(); ++i) {
      play_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(play_.id(i)) + ".dram_bytes");
    }
    for (std::size_t i = 0; i < record_.size(); ++i) {
      staging_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(record_.id(i)) + ".staging_bytes");
    }
  }
  journal_ = config_.journal;
  jslot_.assign(streams_.size(), -1);
  uf_seen_.assign(play_.size(), 0);
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const auto& s = streams_[i];
      // Read streams live under the Theorem-1 double-buffer envelope
      // (2*B*T); write streams under their staging allocation.
      const Bytes envelope =
          s.direction == StreamDirection::kRead
              ? 2.0 * s.bit_rate * config_.cycle
              : config_.staging_ios * s.bit_rate * config_.cycle;
      jslot_[i] = static_cast<std::ptrdiff_t>(
          journal_->EnsureStream(s.id, s.bit_rate, envelope, 0.0));
    }
  }
  if (config_.slo != nullptr) {
    slo_underflow_ = config_.slo->Add(obs::StandardUnderflowSlo());
    slo_slack_ = config_.slo->Add(obs::StandardCycleSlackSlo());
  }
  play_series_.assign(streams_.size(), nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const char* kind = streams_[i].direction == StreamDirection::kRead
                             ? ".dram_bytes"
                             : ".staging_bytes";
      play_series_[i] = tl->AddSeries(
          "stream." + std::to_string(streams_[i].id) + kind, "bytes");
    }
    disk_util_series_ =
        tl->AddSeries("device." + disk_->name() + ".cycle_utilization",
                      "fraction");
  }
}

void DirectStreamingServer::RunCycle(Seconds deadline) {
  PROF_SCOPE("server.direct.cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  // Build this cycle's batch in arena scratch: one IO per stream at its
  // playback cursor. The arena recycles last cycle's scratch, so the
  // steady-state cycle performs zero heap allocations.
  arena_.Reset();
  const std::size_t n = streams_.size();
  auto* batch = arena_.Alloc<device::IoSpan>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.cycle;
    Bytes cursor = play_cursor_[i];
    // Wrap within the extent so long runs keep streaming.
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;
    batch[i] = device::IoSpan{
        static_cast<std::int64_t>(s.disk_offset + cursor), io_bytes};
  }

  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, disk_->name(), -1, 0,
                    "disk cycle " + std::to_string(report_.cycles)});
  }

  // Service the batch in scheduler order; completions are deposits
  // (reads) or staging drains (writes).
  auto* order = arena_.Alloc<std::size_t>(n);
  auto* scratch = arena_.Alloc<std::size_t>(n);
  device::ScheduleOrderInto(config_.policy, last_head_offset_, batch, n,
                            order, scratch);
  Seconds busy = 0;
  for (std::size_t oi = 0; oi < n; ++oi) {
    const std::size_t idx = order[oi];
    auto st = disk_->Service(batch[idx],
                             config_.deterministic ? nullptr : &rng_);
    if (!st.ok()) continue;  // unreachable: offsets validated in Create
    Seconds service = st.value();
    if (config_.faults != nullptr) {
      service += config_.faults->DiskIoPenalty(t0 + busy);
    }
    busy += service;
    const Seconds done = t0 + busy;
    last_head_offset_ = batch[idx].offset;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, idx, batch[idx].bytes);
    const Bytes bytes = batch[idx].bytes;
    const std::size_t si = session_index_[idx];

    if (streams_[idx].direction == StreamDirection::kWrite) {
      if (eager_) {
        // Inline completion: the scheduled event would have fired at
        // `done` with exactly this state (drain times are monotone per
        // stream); effects past the horizon never fire, matching the
        // simulator's drop of events beyond Run(until).
        if (done <= horizon_) {
          record_.Drain(si, done, bytes);
          const Bytes level = record_.LevelAt(si, done);
          obs::Update(staging_occupancy_[si], done, level);
          obs::Record(play_series_[idx], done, level);
          obs::RecordDramLevel(config_.auditor, idx, done, level);
          obs::JournalIo(journal_, jslot_[idx], done, bytes, level);
        }
        continue;
      }
      sim_.ScheduleAt(done, [this, idx, si, bytes, done, service]() {
        record_.Drain(si, done, bytes);
        const Bytes level = record_.LevelAt(si, done);
        obs::Update(staging_occupancy_[si], done, level);
        obs::Record(play_series_[idx], done, level);
        obs::RecordDramLevel(config_.auditor, idx, done, level);
        obs::JournalIo(journal_, jslot_[idx], done, bytes, level);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kIoCompleted,
                          disk_->name(), record_.id(si), bytes,
                          "recorded", service});
        }
      });
      continue;
    }

    // Double-buffered start: data fetched during cycle c is consumed from
    // the next cycle boundary on, so jitter-freedom only requires that
    // every cycle's batch finishes within T.
    const Seconds boundary = t0 + config_.cycle;
    if (eager_) {
      if (done <= horizon_) {
        play_.Deposit(si, done, bytes);
        const Bytes level = play_.LevelAt(si, done);
        obs::Update(play_occupancy_[si], done, level);
        obs::Record(play_series_[idx], done, level);
        obs::RecordDramLevel(config_.auditor, idx, done, level);
        obs::JournalIo(journal_, jslot_[idx], done, bytes, level);
        if (!play_.playing(si)) {
          const Seconds start = std::max(done, boundary);
          if (start <= horizon_) play_.StartPlayback(si, start);
        }
      }
      continue;
    }
    sim_.ScheduleAt(done, [this, idx, si, bytes, done, boundary,
                           service]() {
      play_.Deposit(si, done, bytes);
      const Bytes level = play_.LevelAt(si, done);
      obs::Update(play_occupancy_[si], done, level);
      obs::Record(play_series_[idx], done, level);
      obs::RecordDramLevel(config_.auditor, idx, done, level);
      obs::JournalIo(journal_, jslot_[idx], done, bytes, level);
      if (trace_ != nullptr) {
        trace_->Append({done, sim::TraceKind::kIoCompleted, disk_->name(),
                        play_.id(si), bytes, "", service});
        trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                        play_.id(si), level, ""});
      }
      if (!play_.playing(si)) {
        const Seconds start = std::max(done, boundary);
        sim_.ScheduleAt(start, [this, si, start]() {
          if (!play_.playing(si)) play_.StartPlayback(si, start);
        });
      }
    });
  }

  // Fill remaining cycle slack with best-effort traffic (§3.1.2). Each
  // candidate is admitted only if its worst-case service time still fits
  // before the boundary, so the next real-time cycle never slips.
  if (config_.best_effort_io > 0) {
    const Seconds worst_case =
        disk_->MaxAccessLatency() +
        config_.best_effort_io / disk_->parameters().inner_rate;
    while (busy + worst_case < config_.cycle) {
      const auto span = static_cast<std::int64_t>(disk_->Capacity() -
                                                  config_.best_effort_io);
      const device::IoSpan io{rng_.NextInt(0, span),
                              config_.best_effort_io};
      auto st = disk_->Service(io, config_.deterministic ? nullptr : &rng_);
      if (!st.ok()) break;
      busy += st.value();
      last_head_offset_ = io.offset;
      ++report_.best_effort_ios;
      report_.best_effort_bytes += io.bytes;
    }
  }

  report_.total_busy += busy;
  report_.max_cycle_busy = std::max(report_.max_cycle_busy, busy);
  const bool overrun = busy > config_.cycle * (1.0 + 1e-9);
  if (overrun) {
    ++report_.cycle_overruns;
    obs::Increment(overruns_metric_);
  }
  ++report_.cycles;
  obs::Increment(cycles_metric_);
  obs::Observe(slack_hist_, (config_.cycle - busy) / kMillisecond);
  obs::EndDiskCycle(config_.auditor, t0, busy);
  ObserveCycleOutcomes(t0 + busy, overrun);
  obs::Record(disk_util_series_, t0 + config_.cycle, busy / config_.cycle);
  if (trace_ != nullptr && busy > 0) {
    // Scheduled so the record lands in time order among the IO records.
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, disk_->name(), -1, 0,
                      "", busy});
    });
  }

  // Next cycle at the nominal boundary (or immediately after an overrun).
  const Seconds next = t0 + std::max(config_.cycle, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, deadline]() { RunCycle(deadline); });
  }
}

Status DirectStreamingServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;
  horizon_ = duration;
  // With a TraceLog attached the per-IO completions stay event-scheduled
  // so trace records interleave in exact time order; otherwise the cycle
  // loop applies them inline (byte-identical results, no queue traffic).
  eager_ = trace_ == nullptr;

  for (std::size_t i = 0; i < record_.size(); ++i) {
    record_.StartRecording(i, 0);
  }
  MEMSTREAM_RETURN_IF_ERROR(
      sim_.Schedule(0, [this, duration]() { RunCycle(duration); }));
  if (config_.faults != nullptr) {
    // No MEMS bank here: device-scoped faults are observed (trace +
    // metrics) but only the disk-spike windows change behaviour.
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(sim_, nullptr));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  // The final cycle's batch may finish past the horizon; clamp so the
  // utilization reads as a fraction of the observed window.
  report_.device_utilization =
      duration > 0 ? std::min(report_.total_busy, duration) / duration : 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    play_.LevelAt(i, duration);  // accrue trailing underflow time
    report_.qos.AbsorbPlayback(play_.view(i));
    report_.peak_buffer_demand += play_.peak_level(i);
    if (trace_ != nullptr && play_.underflow_events(i) > 0) {
      trace_->Append({duration, sim::TraceKind::kUnderflow, "report",
                      play_.id(i), 0,
                      "events=" + std::to_string(play_.underflow_events(i))});
    }
  }
  for (std::size_t i = 0; i < record_.size(); ++i) {
    record_.LevelAt(i, duration);
    report_.qos.AbsorbRecording(record_.view(i));
    report_.peak_buffer_demand += record_.peak_level(i);
    if (trace_ != nullptr && record_.overflow_events(i) > 0) {
      trace_->Append({duration, sim::TraceKind::kOverflow, "report",
                      record_.id(i), 0,
                      "events=" +
                          std::to_string(record_.overflow_events(i))});
    }
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "timecycle server");

  // Trailing underflows (accrued by the LevelAt calls above) go to the
  // journal, then every stream this server registered departs. Departure
  // is per-server, not Finalize(): a farm sharing one journal must not
  // depart other disks' streams.
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].direction == StreamDirection::kRead) {
        const std::size_t si = session_index_[i];
        const std::int64_t delta = play_.underflow_events(si) - uf_seen_[si];
        uf_seen_[si] += delta;
        obs::JournalUnderflows(journal_, jslot_[i], duration, delta);
      }
      if (jslot_[i] >= 0) {
        journal_->MarkDeparted(static_cast<std::size_t>(jslot_[i]),
                               duration);
      }
    }
  }

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.direct.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.direct.underflow_time_s")
        ->Set(report_.qos.underflow_time);
    metrics->gauge("server.direct.overflow_events")
        ->Set(static_cast<double>(report_.qos.overflow_events));
    metrics->gauge("server.direct.utilization")
        ->Set(report_.device_utilization);
    metrics->gauge("server.direct.peak_dram_bytes")
        ->Set(report_.peak_buffer_demand);
    metrics->gauge("server.direct.max_cycle_busy_ms")
        ->Set(report_.max_cycle_busy / kMillisecond);
    metrics->gauge("prof.server.direct.arena_high_water_bytes")
        ->Set(static_cast<double>(arena_.high_water()));
    obs::ExportDeviceStats(metrics, *disk_, duration);
    obs::ExportSimulatorStats(metrics, sim_);
  }
  return Status::OK();
}

void DirectStreamingServer::ObserveCycleOutcomes(Seconds now, bool overrun) {
  obs::SloRecord(slo_slack_, now, overrun ? 0 : 1, overrun ? 1 : 0);
  if (journal_ == nullptr && slo_underflow_ == nullptr) return;
  // Per-cycle underflow delta scan: the playback batch counts events
  // cumulatively, so comparing against uf_seen_ attributes new events to
  // this cycle without any extra bookkeeping on the deposit path.
  std::int64_t bad_streams = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].direction != StreamDirection::kRead) continue;
    const std::size_t si = session_index_[i];
    const std::int64_t delta = play_.underflow_events(si) - uf_seen_[si];
    if (delta > 0) {
      uf_seen_[si] += delta;
      ++bad_streams;
      obs::JournalUnderflows(journal_, jslot_[i], now, delta);
    }
  }
  if (slo_underflow_ != nullptr && !play_.empty()) {
    const auto nplay = static_cast<std::int64_t>(play_.size());
    slo_underflow_->Record(now, nplay - bad_streams, bad_streams);
  }
}

}  // namespace memstream::server
