#include "server/farm.h"

#include <algorithm>
#include <vector>

namespace memstream::server {

Result<FarmReport> RunFarm(const FarmConfig& config) {
  if (config.num_disks < 1) {
    return Status::InvalidArgument("num_disks must be >= 1");
  }
  if (config.streams_per_disk < 1) {
    return Status::InvalidArgument("streams_per_disk must be >= 1");
  }
  if (config.cycle <= 0) {
    return Status::InvalidArgument("cycle must be > 0");
  }

  FarmReport farm;
  farm.disks = config.num_disks;
  for (std::int64_t d = 0; d < config.num_disks; ++d) {
    device::DiskParameters params = config.disk;
    params.name += "#" + std::to_string(d);
    auto disk = device::DiskDrive::Create(params);
    MEMSTREAM_RETURN_IF_ERROR(disk.status());

    std::vector<StreamSpec> streams;
    const Bytes io = config.bit_rate * config.cycle;
    const Bytes stride =
        disk.value().Capacity() * 0.9 /
        static_cast<double>(config.streams_per_disk);
    for (std::int64_t i = 0; i < config.streams_per_disk; ++i) {
      streams.push_back({d * config.streams_per_disk + i, config.bit_rate,
                         stride * static_cast<double>(i),
                         std::max(stride, 2 * io)});
    }

    DirectServerConfig per_disk;
    per_disk.cycle = config.cycle;
    per_disk.deterministic = config.deterministic;
    per_disk.seed = config.seed + static_cast<std::uint64_t>(d);
    per_disk.journal = config.journal;
    per_disk.slo = config.slo;
    auto server =
        DirectStreamingServer::Create(&disk.value(), streams, per_disk);
    MEMSTREAM_RETURN_IF_ERROR(server.status());
    MEMSTREAM_RETURN_IF_ERROR(server.value().Run(config.duration));

    const ServerReport& report = server.value().report();
    farm.total_streams += config.streams_per_disk;
    farm.ios_completed += report.ios_completed;
    farm.cycle_overruns += report.cycle_overruns;
    farm.qos.Merge(report.qos);
    farm.peak_dram_demand += report.peak_buffer_demand;
    farm.mean_disk_utilization +=
        report.device_utilization / static_cast<double>(config.num_disks);
    FarmDiskStats stats;
    stats.disk = d;
    stats.streams = config.streams_per_disk;
    stats.ios_completed = report.ios_completed;
    stats.cycle_overruns = report.cycle_overruns;
    stats.underflow_events = report.qos.underflow_events;
    stats.peak_dram_demand = report.peak_buffer_demand;
    stats.utilization = report.device_utilization;
    farm.per_disk.push_back(stats);
  }
  return farm;
}

obs::FarmBlock ToFarmBlock(const FarmReport& report) {
  obs::FarmBlock block;
  block.policy = "uniform_fanout";
  block.shards = report.disks;
  block.offered = report.total_streams;
  block.admitted = report.total_streams;
  block.mean_utilization = report.mean_disk_utilization;
  for (const FarmDiskStats& d : report.per_disk) {
    obs::FarmShardEntry e;
    e.shard = d.disk;
    e.streams = d.streams;
    e.ios = d.ios_completed;
    e.underflow_events = d.underflow_events;
    e.cycle_overruns = d.cycle_overruns;
    e.qos_violations = 0;
    e.peak_dram_bytes = d.peak_dram_demand;
    e.utilization = d.utilization;
    block.per_shard.push_back(e);
    block.peak_dram_per_shard =
        std::max(block.peak_dram_per_shard, d.peak_dram_demand);
  }
  return block;
}

}  // namespace memstream::server
