// Structure-of-arrays playback/recording state: the per-stream hot fields
// StreamSession kept behind one object each (buffer level, bit-rate,
// last-advance time, dry flag, jitter tallies) laid out as parallel
// arrays, so an IO cycle is one contiguous loop with no per-object
// indirection. The update arithmetic is copied verbatim from
// stream_session.cc — batch and session trajectories are bit-identical
// (asserted by stream_batch_test), which is what keeps the refactored
// servers' CSV output byte-identical to the seed engine.
//
// StreamView / RecordingView are cheap value handles with the same
// accessor names as StreamSession / RecordingSession, so report code and
// tests read per-stream results without caring about the layout.

#ifndef MEMSTREAM_SERVER_STREAM_BATCH_H_
#define MEMSTREAM_SERVER_STREAM_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace memstream::server {

class PlaybackBatch;
class RecordingBatch;

/// Read-only handle onto one stream of a PlaybackBatch. Accessor-name
/// compatible with StreamSession.
class StreamView {
 public:
  StreamView(const PlaybackBatch* batch, std::size_t index)
      : batch_(batch), index_(index) {}

  std::int64_t id() const;
  BytesPerSecond bit_rate() const;
  bool playing() const;
  Bytes total_deposited() const;
  Bytes peak_level() const;
  std::int64_t underflow_events() const;
  Seconds underflow_time() const;

 private:
  const PlaybackBatch* batch_;
  std::size_t index_;
};

/// Read-only handle onto one stream of a RecordingBatch.
class RecordingView {
 public:
  RecordingView(const RecordingBatch* batch, std::size_t index)
      : batch_(batch), index_(index) {}

  std::int64_t id() const;
  BytesPerSecond bit_rate() const;
  bool recording() const;
  Bytes total_drained() const;
  Bytes peak_level() const;
  std::int64_t overflow_events() const;
  Seconds overflow_time() const;

 private:
  const RecordingBatch* batch_;
  std::size_t index_;
};

/// SoA playback state for n streams, addressed by dense index.
class PlaybackBatch {
 public:
  /// Registers a stream; returns its dense index.
  std::size_t Add(std::int64_t id, BytesPerSecond bit_rate) {
    const std::size_t i = id_.size();
    id_.push_back(id);
    bit_rate_.push_back(bit_rate);
    playing_.push_back(0);
    dry_.push_back(0);
    last_update_.push_back(0);
    level_.push_back(0);
    total_deposited_.push_back(0);
    peak_level_.push_back(0);
    underflow_events_.push_back(0);
    underflow_time_.push_back(0);
    return i;
  }

  std::size_t size() const { return id_.size(); }
  bool empty() const { return id_.empty(); }

  // --- hot-path updates (arithmetic identical to StreamSession) ---

  void Advance(std::size_t i, Seconds now) {
    if (now <= last_update_[i]) return;
    const Seconds dt = now - last_update_[i];
    last_update_[i] = now;
    if (playing_[i] == 0) return;

    const Bytes demand = bit_rate_[i] * dt;
    if (demand <= level_[i]) {
      level_[i] -= demand;
      return;
    }
    // The buffer ran dry partway through the interval.
    const Seconds dry_for = (demand - level_[i]) / bit_rate_[i];
    level_[i] = 0;
    underflow_time_[i] += dry_for;
    if (dry_[i] == 0) {
      ++underflow_events_[i];
      dry_[i] = 1;
    }
  }

  void Deposit(std::size_t i, Seconds now, Bytes bytes) {
    Advance(i, now);
    level_[i] += bytes;
    total_deposited_[i] += bytes;
    peak_level_[i] = std::max(peak_level_[i], level_[i]);
    if (bytes > 0) dry_[i] = 0;
  }

  void StartPlayback(std::size_t i, Seconds now) {
    Advance(i, now);
    playing_[i] = 1;
  }

  void PausePlayback(std::size_t i, Seconds now) {
    Advance(i, now);
    playing_[i] = 0;
    dry_[i] = 0;  // a pause ends any dry excursion; shed time is
                  // accounted separately by the fault layer
  }

  Bytes LevelAt(std::size_t i, Seconds now) {
    Advance(i, now);
    return level_[i];
  }

  // --- per-stream reads ---

  std::int64_t id(std::size_t i) const { return id_[i]; }
  BytesPerSecond bit_rate(std::size_t i) const { return bit_rate_[i]; }
  bool playing(std::size_t i) const { return playing_[i] != 0; }
  Bytes level(std::size_t i) const { return level_[i]; }
  Bytes total_deposited(std::size_t i) const { return total_deposited_[i]; }
  Bytes peak_level(std::size_t i) const { return peak_level_[i]; }
  std::int64_t underflow_events(std::size_t i) const {
    return underflow_events_[i];
  }
  Seconds underflow_time(std::size_t i) const { return underflow_time_[i]; }

  StreamView view(std::size_t i) const { return StreamView(this, i); }
  /// All streams as views (cold path: reports, tests, examples).
  std::vector<StreamView> views() const {
    std::vector<StreamView> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.emplace_back(this, i);
    return out;
  }

 private:
  std::vector<std::int64_t> id_;
  std::vector<BytesPerSecond> bit_rate_;
  std::vector<std::uint8_t> playing_;
  std::vector<std::uint8_t> dry_;
  std::vector<Seconds> last_update_;
  std::vector<Bytes> level_;
  std::vector<Bytes> total_deposited_;
  std::vector<Bytes> peak_level_;
  std::vector<std::int64_t> underflow_events_;
  std::vector<Seconds> underflow_time_;
};

/// SoA recording (write-stream) state: the mirror image of PlaybackBatch,
/// arithmetic identical to RecordingSession.
class RecordingBatch {
 public:
  std::size_t Add(std::int64_t id, BytesPerSecond bit_rate,
                  Bytes staging_capacity) {
    const std::size_t i = id_.size();
    id_.push_back(id);
    bit_rate_.push_back(bit_rate);
    capacity_.push_back(staging_capacity);
    recording_.push_back(0);
    over_.push_back(0);
    last_update_.push_back(0);
    level_.push_back(0);
    total_drained_.push_back(0);
    peak_level_.push_back(0);
    overflow_events_.push_back(0);
    overflow_time_.push_back(0);
    return i;
  }

  std::size_t size() const { return id_.size(); }
  bool empty() const { return id_.empty(); }

  void Advance(std::size_t i, Seconds now) {
    if (now <= last_update_[i]) return;
    const Seconds dt = now - last_update_[i];
    if (recording_[i] != 0) {
      const Bytes before = level_[i];
      level_[i] += bit_rate_[i] * dt;
      peak_level_[i] = std::max(peak_level_[i], level_[i]);
      if (level_[i] > capacity_[i]) {
        // Accrue only the portion of the interval spent over capacity.
        const Seconds over_for =
            before >= capacity_[i]
                ? dt
                : (level_[i] - capacity_[i]) / bit_rate_[i];
        overflow_time_[i] += over_for;
        if (over_[i] == 0) {
          ++overflow_events_[i];
          over_[i] = 1;
        }
      }
    }
    last_update_[i] = now;
  }

  void StartRecording(std::size_t i, Seconds now) {
    Advance(i, now);
    recording_[i] = 1;
  }

  Bytes Drain(std::size_t i, Seconds now, Bytes bytes) {
    Advance(i, now);
    const Bytes drained = std::min(bytes, level_[i]);
    level_[i] -= drained;
    total_drained_[i] += drained;
    if (level_[i] <= capacity_[i]) over_[i] = 0;
    return drained;
  }

  Bytes LevelAt(std::size_t i, Seconds now) {
    Advance(i, now);
    return level_[i];
  }

  std::int64_t id(std::size_t i) const { return id_[i]; }
  BytesPerSecond bit_rate(std::size_t i) const { return bit_rate_[i]; }
  bool recording(std::size_t i) const { return recording_[i] != 0; }
  Bytes total_drained(std::size_t i) const { return total_drained_[i]; }
  Bytes peak_level(std::size_t i) const { return peak_level_[i]; }
  std::int64_t overflow_events(std::size_t i) const {
    return overflow_events_[i];
  }
  Seconds overflow_time(std::size_t i) const { return overflow_time_[i]; }

  RecordingView view(std::size_t i) const { return RecordingView(this, i); }
  std::vector<RecordingView> views() const {
    std::vector<RecordingView> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.emplace_back(this, i);
    return out;
  }

 private:
  std::vector<std::int64_t> id_;
  std::vector<BytesPerSecond> bit_rate_;
  std::vector<Bytes> capacity_;
  std::vector<std::uint8_t> recording_;
  std::vector<std::uint8_t> over_;
  std::vector<Seconds> last_update_;
  std::vector<Bytes> level_;
  std::vector<Bytes> total_drained_;
  std::vector<Bytes> peak_level_;
  std::vector<std::int64_t> overflow_events_;
  std::vector<Seconds> overflow_time_;
};

inline std::int64_t StreamView::id() const { return batch_->id(index_); }
inline BytesPerSecond StreamView::bit_rate() const {
  return batch_->bit_rate(index_);
}
inline bool StreamView::playing() const { return batch_->playing(index_); }
inline Bytes StreamView::total_deposited() const {
  return batch_->total_deposited(index_);
}
inline Bytes StreamView::peak_level() const {
  return batch_->peak_level(index_);
}
inline std::int64_t StreamView::underflow_events() const {
  return batch_->underflow_events(index_);
}
inline Seconds StreamView::underflow_time() const {
  return batch_->underflow_time(index_);
}

inline std::int64_t RecordingView::id() const { return batch_->id(index_); }
inline BytesPerSecond RecordingView::bit_rate() const {
  return batch_->bit_rate(index_);
}
inline bool RecordingView::recording() const {
  return batch_->recording(index_);
}
inline Bytes RecordingView::total_drained() const {
  return batch_->total_drained(index_);
}
inline Bytes RecordingView::peak_level() const {
  return batch_->peak_level(index_);
}
inline std::int64_t RecordingView::overflow_events() const {
  return batch_->overflow_events(index_);
}
inline Seconds RecordingView::overflow_time() const {
  return batch_->overflow_time(index_);
}

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_STREAM_BATCH_H_
