// MediaServer: the one-call facade over the whole library. Given a mode
// (direct / MEMS buffer / MEMS cache), device presets, and a stream
// population, it sizes the system with the analytical model, builds the
// corresponding simulated server, runs it, and reports both the analytic
// and the observed quantities side by side.

#ifndef MEMSTREAM_SERVER_MEDIA_SERVER_H_
#define MEMSTREAM_SERVER_MEDIA_SERVER_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "device/device_catalog.h"
#include "fault/degradation.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "model/mems_buffer.h"
#include "model/mems_cache.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "obs/timeline.h"
#include "server/cache_server.h"
#include "server/mems_pipeline_server.h"
#include "server/timecycle_server.h"
#include "sim/trace.h"

namespace memstream::server {

/// Storage-hierarchy configuration of the server.
enum class ServerMode {
  kDirect,      ///< disk -> DRAM (the paper's baseline)
  kMemsBuffer,  ///< disk -> MEMS bank -> DRAM (§3.1)
  kMemsCache,   ///< popular streams from the MEMS bank, rest from disk
};

const char* ServerModeName(ServerMode mode);

/// Declarative description of a homogeneous-workload server run.
struct MediaServerConfig {
  ServerMode mode = ServerMode::kDirect;
  device::DiskParameters disk = device::FutureDisk2007();
  device::MemsParameters mems = device::MemsG3();
  std::int64_t k = 2;  ///< MEMS devices (buffer or cache size)
  model::CachePolicy cache_policy = model::CachePolicy::kStriped;
  /// Fraction of streams serviced from the cache in kMemsCache mode
  /// (e.g. the Eq. 11 hit rate).
  double cached_fraction_of_streams = 0.5;
  std::int64_t num_streams = 10;
  BytesPerSecond bit_rate = 1 * kMBps;
  Seconds sim_duration = 60;
  /// Disk IO cycle override for kMemsBuffer (0 = auto: 1.5x the minimum
  /// feasible T_disk, keeping simulated cycles short).
  Seconds t_disk_override = 0;
  bool deterministic = true;
  std::uint64_t seed = 42;
  /// Optional event trace of the simulated server (cycle spans, IO
  /// completions, buffer levels) — feed to obs::ChromeTraceExporter.
  /// Not owned; must outlive the call.
  sim::TraceLog* trace = nullptr;
  /// Optional metrics sink; the chosen server publishes its full
  /// telemetry here. Not owned; must outlive the call.
  obs::MetricsRegistry* metrics = nullptr;
  /// When true (the default), an online obs::QosAuditor is built from
  /// the analytic sizing — cycle lengths, per-stream DRAM bounds (the
  /// executable double-buffer analog, 2·B̄·T of the stream's cycle
  /// domain), and for kMemsBuffer the Eq. 7 / Eq. 8 parameters — and
  /// wired through the simulated server. The result carries it.
  bool audit = true;
  /// Optional timeline recorder: the chosen server records per-stream
  /// DRAM occupancy (and device series where it has them). Not owned;
  /// must outlive the call.
  obs::TimelineRecorder* timelines = nullptr;
  /// Optional fault schedule (empty = fault-free run). The facade builds
  /// a fault::FaultInjector over it and wires it through the chosen
  /// server; the result carries the injector (and its report block).
  fault::FaultPlan fault_plan;
  /// kMemsCache only: when true (the default) a DegradationManager is
  /// built from the run's own analytic sizing, so device faults trigger
  /// online re-planning (reshape / shed-fewest / disk-fallback) and
  /// cached streams get disk-resident backing copies. False = faults
  /// strike an unmanaged server (the ablation baseline).
  bool degrade = true;
  /// Striped repair-to-service delay: time to refill the stripes from
  /// disk after a repair, before cache service resumes.
  Seconds fault_refill_delay = 1.0;
  /// Stream for the injector's structured burst-drop warning (null =
  /// std::cerr). Not owned.
  std::ostream* fault_warn_stream = nullptr;
  /// Optional per-stream lifecycle journal: the chosen server registers
  /// every stream under its analytic DRAM envelope and records
  /// admission, IO deposits, underflows, shed/re-admit verdicts, and
  /// departure. The facade finalizes it at sim_duration and publishes
  /// its stream.* summary to `metrics`; BuildRunReport embeds it as the
  /// "streams" block. Not owned; must outlive the call.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor: the chosen server (and any admission
  /// controller sharing it) feeds the standard cycle-slack, underflow,
  /// availability, and admission-latency SLOs. The facade publishes the
  /// slo.* gauges to `metrics`; BuildRunReport embeds the "slo" block.
  /// Not owned; must outlive the call.
  obs::SloMonitor* slo = nullptr;
};

/// Analytic sizing and simulated outcome of one run.
struct MediaServerResult {
  // Analytic (model) side.
  Bytes analytic_dram_total = 0;   ///< Theorem 1/2/3/4 total DRAM
  Seconds disk_cycle = 0;
  Seconds mems_cycle = 0;          ///< 0 in kDirect mode
  // Simulated side.
  QosCounters qos;                  ///< underflows + audited violations
  std::int64_t cycle_overruns = 0;  ///< disk + MEMS
  Bytes sim_peak_dram = 0;
  double disk_utilization = 0;
  double mems_utilization = 0;      ///< 0 in kDirect mode
  std::int64_t ios_completed = 0;
  /// The online auditor the run was wired through (null when
  /// config.audit was false): violation counter-examples, audited cycle
  /// tallies, Summary(). Shared so the result stays copyable and
  /// BuildRunReport can embed it.
  std::shared_ptr<obs::QosAuditor> auditor;
  /// The fault injector the run was wired through (null when
  /// config.fault_plan was empty): the finalized faults block —
  /// timeline, re-plans, shed/re-admit ledger, burst-drop accounting —
  /// for BuildRunReport's "faults" object.
  std::shared_ptr<fault::FaultInjector> faults;
};

/// Sizes, builds, simulates, reports. Returns the first infeasibility the
/// model detects (e.g. too many streams for the disk).
Result<MediaServerResult> RunMediaServer(const MediaServerConfig& config);

/// Builds a structured run report: the configuration echo, the analytic
/// sizing, and the simulated outcome side by side, plus a snapshot of
/// `metrics` when given (pass the registry the run wrote into, or null).
obs::RunReport BuildRunReport(const MediaServerConfig& config,
                              const MediaServerResult& result,
                              const obs::MetricsRegistry* metrics = nullptr);

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_MEDIA_SERVER_H_
