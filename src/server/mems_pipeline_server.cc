#include "server/mems_pipeline_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

Result<MemsPipelineServer> MemsPipelineServer::Create(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<StreamSpec> streams, const MemsPipelineConfig& config,
    sim::TraceLog* trace) {
  if (disk == nullptr) return Status::InvalidArgument("disk is required");
  if (bank.empty()) return Status::InvalidArgument("bank must not be empty");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.t_disk <= 0 || config.t_mems <= 0) {
    return Status::InvalidArgument("cycle lengths must be > 0");
  }
  if (config.t_mems > config.t_disk) {
    return Status::InvalidArgument("t_mems must not exceed t_disk (Eq. 8)");
  }
  const std::size_t k = bank.size();
  const bool striped =
      config.placement == model::BufferPlacement::kStripedIos;
  // Streams per device under round-robin assignment (striping puts a
  // 1/k share of every stream on every device).
  std::vector<std::size_t> assigned(k, striped ? streams.size() : 0);
  if (!striped) {
    for (std::size_t i = 0; i < streams.size(); ++i) ++assigned[i % k];
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto& s = streams[i];
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0 || s.disk_offset + s.extent > disk->Capacity()) {
      return Status::OutOfRange("stream extent beyond disk capacity");
    }
    if (s.bit_rate * config.t_disk > s.extent) {
      return Status::InvalidArgument("extent smaller than one disk IO");
    }
    // Executable analogue of condition (7): the stream's slot must hold
    // two disk IOs (one draining, one arriving) plus one DRAM IO.
    const std::size_t home = striped ? 0 : i % k;
    const Bytes slot =
        bank[home].Capacity() / static_cast<double>(assigned[home]);
    const Bytes need = s.bit_rate *
                       (2.0 * config.t_disk + config.t_mems) /
                       (striped ? static_cast<double>(k) : 1.0);
    if (need > slot) {
      return Status::Infeasible(
          "MEMS capacity insufficient for the chosen T_disk (condition 7)");
    }
  }
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return MemsPipelineServer(disk, std::move(bank), std::move(streams),
                            config, trace);
}

MemsPipelineServer::MemsPipelineServer(device::DiskDrive* disk,
                                       std::vector<device::MemsDevice> bank,
                                       std::vector<StreamSpec> streams,
                                       const MemsPipelineConfig& config,
                                       sim::TraceLog* trace)
    : disk_(disk),
      bank_(std::move(bank)),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  const std::size_t k = bank_.size();
  pending_.resize(k);
  occupancy_.assign(k, 0);
  device_busy_.assign(k, 0);
  play_cursor_.assign(streams_.size(), 0);
  device_.assign(streams_.size(), 0);
  slot_base_.assign(streams_.size(), 0);
  slot_size_.assign(streams_.size(), 0);
  write_cursor_.assign(streams_.size(), 0);
  read_cursor_.assign(streams_.size(), 0);
  resident_.assign(streams_.size(), 0);
  read_deficit_.assign(streams_.size(), 0);
  first_write_done_.assign(streams_.size(), 0);

  const bool striped =
      config_.placement == model::BufferPlacement::kStripedIos;
  std::vector<std::size_t> assigned(k, striped ? streams_.size() : 0);
  if (!striped) {
    for (std::size_t i = 0; i < streams_.size(); ++i) ++assigned[i % k];
  }
  std::vector<std::size_t> slot_index(k, 0);
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    play_.Add(streams_[i].id, streams_[i].bit_rate);
    // Striping: the same 1/k-sized slot exists on every device; device 0
    // stands in for the lock-step group (all writes/reads route through
    // the shared pending queue and the single striped cycle).
    const std::size_t dev = striped ? 0 : i % k;
    device_[i] = dev;
    slot_size_[i] =
        bank_[dev].Capacity() / static_cast<double>(assigned[dev]);
    slot_base_[i] = slot_size_[i] * static_cast<double>(slot_index[dev]++);
  }

  // Resolve telemetry handles once; hot-path updates are null-guarded.
  obs::MetricsRegistry* metrics = config_.metrics;
  dram_occupancy_.assign(streams_.size(), nullptr);
  mems_occupancy_.assign(k, nullptr);
  if (metrics != nullptr) {
    const double t_disk_ms = config_.t_disk / kMillisecond;
    const double t_mems_ms = config_.t_mems / kMillisecond;
    disk_slack_hist_ = metrics->histogram(
        "server.pipeline.disk.cycle_slack_ms", {-t_disk_ms, t_disk_ms, 40});
    mems_slack_hist_ = metrics->histogram(
        "server.pipeline.mems.cycle_slack_ms", {-t_mems_ms, t_mems_ms, 40});
    disk_cycles_metric_ = metrics->counter("server.pipeline.disk.cycles");
    mems_cycles_metric_ = metrics->counter("server.pipeline.mems.cycles");
    ios_metric_ = metrics->counter("server.pipeline.ios");
    starved_metric_ = metrics->counter("server.pipeline.starved_reads");
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      dram_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes");
    }
    for (std::size_t d = 0; d < k; ++d) {
      mems_occupancy_[d] = metrics->time_weighted(
          "device." + bank_[d].name() + ".occupancy_bytes");
    }
  }
  journal_ = config_.journal;
  jslot_.assign(streams_.size(), -1);
  uf_seen_.assign(streams_.size(), 0);
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const auto& s = streams_[i];
      // Theorem 2: buffering through MEMS shrinks the per-stream DRAM
      // envelope from 2*B*T_disk to 2*B*T_mems.
      jslot_[i] = static_cast<std::ptrdiff_t>(journal_->EnsureStream(
          s.id, s.bit_rate, 2.0 * s.bit_rate * config_.t_mems, 0.0));
    }
  }
  if (config_.slo != nullptr) {
    slo_underflow_ = config_.slo->Add(obs::StandardUnderflowSlo());
    slo_slack_ = config_.slo->Add(obs::StandardCycleSlackSlo());
  }
  dram_series_.assign(streams_.size(), nullptr);
  mems_series_.assign(k, nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      dram_series_[i] = tl->AddSeries(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes",
          "bytes");
    }
    for (std::size_t d = 0; d < k; ++d) {
      mems_series_[d] = tl->AddSeries(
          "device." + bank_[d].name() + ".occupancy_bytes", "bytes");
    }
  }
}

void MemsPipelineServer::RunDiskCycle(Seconds deadline) {
  PROF_SCOPE("server.pipeline.disk_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  // Batch scratch lives in the arena, recycled every cycle (the arena is
  // shared with the MEMS cycles — each cycle body runs to completion
  // before the next event fires, so Reset() here is safe).
  arena_.Reset();
  const std::size_t n = streams_.size();
  auto* batch = arena_.Alloc<device::IoSpan>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.t_disk;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;
    batch[i] = device::IoSpan{
        static_cast<std::int64_t>(s.disk_offset + cursor), io_bytes};
  }

  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, disk_->name(), -1, 0,
                    "disk cycle " + std::to_string(report_.disk_cycles)});
  }

  auto* order = arena_.Alloc<std::size_t>(n);
  auto* scratch = arena_.Alloc<std::size_t>(n);
  device::ScheduleOrderInto(config_.disk_policy, last_head_offset_, batch,
                            n, order, scratch);
  Seconds busy = 0;
  for (std::size_t oi = 0; oi < n; ++oi) {
    const std::size_t idx = order[oi];
    auto st = disk_->Service(batch[idx],
                             config_.deterministic ? nullptr : &rng_);
    if (!st.ok()) continue;  // unreachable: validated in Create
    Seconds service = st.value();
    if (config_.faults != nullptr) {
      service += config_.faults->DiskIoPenalty(t0 + busy);
    }
    busy += service;
    last_head_offset_ = batch[idx].offset;
    const Seconds done = t0 + busy;
    const Bytes bytes = batch[idx].bytes;
    obs::RecordIo(config_.auditor, idx, bytes);
    // The push stays event-scheduled even on the eager path: the MEMS
    // cycles must see exactly the writes whose completion time precedes
    // their cycle start, which only the event queue's time ordering
    // guarantees. The capture fits MoveOnlyFunction's inline buffer.
    sim_.ScheduleAt(done, [this, idx, bytes, done, service]() {
      pending_[device_[idx]].push_back(PendingWrite{idx, bytes});
      if (trace_ != nullptr) {
        trace_->Append({done, sim::TraceKind::kIoCompleted, disk_->name(),
                        play_.id(idx), bytes, "-> mems pending",
                        service});
      }
    });
  }

  report_.disk_busy += busy;
  const bool overrun = busy > config_.t_disk * (1.0 + 1e-9);
  if (overrun) ++report_.disk_overruns;
  ++report_.disk_cycles;
  report_.ios_completed += static_cast<std::int64_t>(n);
  obs::Increment(disk_cycles_metric_);
  obs::Increment(ios_metric_, static_cast<double>(n));
  obs::Observe(disk_slack_hist_, (config_.t_disk - busy) / kMillisecond);
  obs::EndDiskCycle(config_.auditor, t0, busy);
  obs::SloRecord(slo_slack_, t0 + busy, overrun ? 0 : 1, overrun ? 1 : 0);
  ObserveUnderflows(t0 + busy);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, disk_->name(), -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_disk, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, deadline]() { RunDiskCycle(deadline); });
  }
}

void MemsPipelineServer::RunMemsCycle(std::size_t dev, Seconds deadline) {
  PROF_SCOPE("server.pipeline.mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  device::MemsDevice& device = bank_[dev];
  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, device.name(), -1, 0,
                    "mems" + std::to_string(dev) + " cycle"});
  }

  struct Op {
    std::size_t stream;
    Bytes bytes;
    Bytes offset;  ///< device-local
    bool is_write;
  };

  // Drain the disk writes that arrived before this cycle, capped at the
  // steady-state share per cycle (M/k writes, Eq. 8) plus one: without
  // the cap the first MEMS cycle after a disk cycle would absorb the
  // whole burst of N/k writes and overrun.
  std::size_t assigned = 0;
  for (std::size_t i = dev; i < streams_.size(); i += bank_.size()) {
    ++assigned;
  }
  const auto write_cap = static_cast<std::size_t>(
      std::ceil(static_cast<double>(assigned) * config_.t_mems /
                config_.t_disk)) + 1;
  arena_.Reset();
  auto* ops = arena_.Alloc<Op>(write_cap + assigned);
  std::size_t num_ops = 0;
  for (std::size_t i = 0; i < write_cap && !pending_[dev].empty(); ++i) {
    const PendingWrite w = pending_[dev].front();
    pending_[dev].pop_front();
    Bytes cursor = write_cursor_[w.stream];
    if (cursor + w.bytes > slot_size_[w.stream]) {
      cursor = 0;  // wrap within slot
    }
    ops[num_ops++] = Op{w.stream, w.bytes, slot_base_[w.stream] + cursor,
                        true};
    write_cursor_[w.stream] = cursor + w.bytes;
  }

  // One DRAM transfer per assigned stream whose data is resident
  // (snapshot semantics: bytes written this cycle are readable next
  // cycle, matching the analytical model). When a write was drained a
  // cycle late, the stream reads whatever is resident rather than
  // skipping — partial reads keep the playout fed through drain jitter.
  for (std::size_t i = dev; i < streams_.size(); i += bank_.size()) {
    const Bytes read_bytes = streams_[i].bit_rate * config_.t_mems;
    if (!first_write_done_[i]) continue;  // stream not started yet
    if (resident_[i] <= 0) {
      ++report_.starved_reads;
      obs::Increment(starved_metric_);
      read_deficit_[i] += read_bytes;
      continue;
    }
    // Catch-up: repay any shortfall from earlier partial/skipped reads.
    const Bytes wanted = read_bytes + read_deficit_[i];
    const Bytes amount = std::min(wanted, resident_[i]);
    read_deficit_[i] = std::max(0.0, wanted - amount);
    Bytes cursor = read_cursor_[i];
    if (cursor + amount > slot_size_[i]) cursor = 0;
    ops[num_ops++] = Op{i, amount, slot_base_[i] + cursor, false};
    read_cursor_[i] = cursor + amount;
    resident_[i] -= amount;  // claimed by this cycle's schedule
  }

  Seconds busy = 0;
  for (std::size_t oi = 0; oi < num_ops; ++oi) {
    const Op& op = ops[oi];
    auto st = device.Service(
        device::IoSpan{static_cast<std::int64_t>(op.offset), op.bytes},
        nullptr);
    if (!st.ok()) continue;  // unreachable: slots sized in Create
    busy += st.value();
    const Seconds service = st.value();
    const Seconds done = t0 + busy;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    const std::size_t stream = op.stream;
    const Bytes bytes = op.bytes;
    if (op.is_write) {
      if (eager_) {
        // Inline completion: the event would fire at `done` with this
        // exact state (completions apply in done order; the next cycle
        // of this device starts after every done of this one). Effects
        // past the horizon never fire, like dropped events.
        if (done <= horizon_) {
          resident_[stream] += bytes;
          first_write_done_[stream] = 1;
          occupancy_[dev] += bytes;
          report_.peak_mems_occupancy =
              std::max(report_.peak_mems_occupancy, occupancy_[dev]);
          obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
          obs::Record(mems_series_[dev], done, occupancy_[dev]);
        }
        continue;
      }
      sim_.ScheduleAt(done, [this, dev, stream, bytes, done, service]() {
        resident_[stream] += bytes;
        first_write_done_[stream] = 1;
        occupancy_[dev] += bytes;
        report_.peak_mems_occupancy =
            std::max(report_.peak_mems_occupancy, occupancy_[dev]);
        obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
        obs::Record(mems_series_[dev], done, occupancy_[dev]);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kIoCompleted,
                          bank_[dev].name(), play_.id(stream), bytes,
                          "disk->MEMS write", service});
          if (occupancy_[dev] > bank_[dev].Capacity()) {
            trace_->Append({done, sim::TraceKind::kOverflow,
                            bank_[dev].name(), play_.id(stream),
                            occupancy_[dev],
                            "mems occupancy over capacity"});
          }
        }
      });
    } else {
      const Seconds boundary = t0 + config_.t_mems;
      if (eager_) {
        if (done <= horizon_) {
          occupancy_[dev] = std::max(0.0, occupancy_[dev] - bytes);
          obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
          obs::Record(mems_series_[dev], done, occupancy_[dev]);
          play_.Deposit(stream, done, bytes);
          const Bytes level = play_.LevelAt(stream, done);
          obs::Update(dram_occupancy_[stream], done, level);
          obs::Record(dram_series_[stream], done, level);
          obs::RecordDramLevel(config_.auditor, stream, done, level);
          obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
          if (!play_.playing(stream)) {
            const Seconds start = std::max(done, boundary);
            if (start <= horizon_) play_.StartPlayback(stream, start);
          }
        }
        continue;
      }
      sim_.ScheduleAt(done, [this, dev, stream, bytes, done, boundary,
                             service]() {
        occupancy_[dev] = std::max(0.0, occupancy_[dev] - bytes);
        obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
        obs::Record(mems_series_[dev], done, occupancy_[dev]);
        play_.Deposit(stream, done, bytes);
        const Bytes level = play_.LevelAt(stream, done);
        obs::Update(dram_occupancy_[stream], done, level);
        obs::Record(dram_series_[stream], done, level);
        obs::RecordDramLevel(config_.auditor, stream, done, level);
        obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kIoCompleted,
                          bank_[dev].name(), play_.id(stream), bytes,
                          "MEMS->DRAM read", service});
          trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                          play_.id(stream), level, ""});
        }
        if (!play_.playing(stream)) {
          const Seconds start = std::max(done, boundary);
          sim_.ScheduleAt(start, [this, stream, start]() {
            if (!play_.playing(stream)) play_.StartPlayback(stream, start);
          });
        }
      });
    }
  }

  device_busy_[dev] += busy;
  report_.mems_busy += busy;
  const bool overrun = busy > config_.t_mems * (1.0 + 1e-9);
  if (overrun) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.t_mems - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, static_cast<std::int64_t>(dev), t0,
                    busy);
  obs::SloRecord(slo_slack_, t0 + busy, overrun ? 0 : 1, overrun ? 1 : 0);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    const std::string actor = device.name();
    sim_.ScheduleAt(end, [this, end, busy, actor]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, actor, -1, 0, "",
                      busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_mems, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next,
                    [this, dev, deadline]() { RunMemsCycle(dev, deadline); });
  }
}

void MemsPipelineServer::RunStripedMemsCycle(Seconds deadline) {
  PROF_SCOPE("server.pipeline.striped_mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  const auto k = static_cast<double>(bank_.size());
  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, "mems-striped", -1, 0,
                    "striped cycle"});
  }

  struct Op {
    std::size_t stream;
    Bytes bytes;          ///< full stream bytes (each device moves /k)
    Bytes device_offset;  ///< local offset, identical on every device
    bool is_write;
  };

  // Drain pending writes (all routed to queue 0), burst-capped as in the
  // round-robin cycle.
  // +2 slack: the disk delivers its N writes as a burst inside ~70% of
  // the disk cycle, so the drain rate must run slightly ahead of the
  // long-run average or late drains starve the tail streams' reads.
  const auto write_cap = static_cast<std::size_t>(
      std::ceil(static_cast<double>(streams_.size()) * config_.t_mems /
                config_.t_disk)) + 2;
  arena_.Reset();
  auto* ops = arena_.Alloc<Op>(write_cap + streams_.size());
  std::size_t num_ops = 0;
  for (std::size_t i = 0; i < write_cap && !pending_[0].empty(); ++i) {
    const PendingWrite w = pending_[0].front();
    pending_[0].pop_front();
    const Bytes local = w.bytes / k;
    Bytes cursor = write_cursor_[w.stream];
    if (cursor + local > slot_size_[w.stream]) cursor = 0;
    ops[num_ops++] = Op{w.stream, w.bytes, slot_base_[w.stream] + cursor,
                        true};
    write_cursor_[w.stream] = cursor + local;
  }

  // One DRAM transfer per stream whose data is resident (partial when a
  // write was drained a cycle late, as in the round-robin cycle).
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Bytes read_bytes = streams_[i].bit_rate * config_.t_mems;
    if (!first_write_done_[i]) continue;
    if (resident_[i] <= 0) {
      ++report_.starved_reads;
      obs::Increment(starved_metric_);
      read_deficit_[i] += read_bytes;
      continue;
    }
    const Bytes wanted = read_bytes + read_deficit_[i];
    const Bytes amount = std::min(wanted, resident_[i]);
    read_deficit_[i] = std::max(0.0, wanted - amount);
    const Bytes local = amount / k;
    Bytes cursor = read_cursor_[i];
    if (cursor + local > slot_size_[i]) cursor = 0;
    ops[num_ops++] = Op{i, amount, slot_base_[i] + cursor, false};
    read_cursor_[i] = cursor + local;
    resident_[i] -= amount;
  }

  // Lock-step service: every device transfers its 1/k share at the same
  // local offset; the elapsed time is the slowest (= common) device.
  Seconds busy = 0;
  for (std::size_t oi = 0; oi < num_ops; ++oi) {
    const Op& op = ops[oi];
    Seconds op_time = 0;
    for (auto& dev : bank_) {
      auto t = dev.Service(
          device::IoSpan{static_cast<std::int64_t>(op.device_offset),
                         op.bytes / k},
          nullptr);
      if (!t.ok()) continue;  // unreachable: slots sized in Create
      op_time = std::max(op_time, t.value());
    }
    busy += op_time;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    const Seconds done = t0 + busy;
    const std::size_t stream = op.stream;
    const Bytes bytes = op.bytes;
    if (op.is_write) {
      if (eager_) {
        if (done <= horizon_) {
          resident_[stream] += bytes;
          first_write_done_[stream] = 1;
          occupancy_[0] += bytes;
          report_.peak_mems_occupancy =
              std::max(report_.peak_mems_occupancy, occupancy_[0]);
          obs::Update(mems_occupancy_[0], done, occupancy_[0]);
          obs::Record(mems_series_[0], done, occupancy_[0]);
        }
        continue;
      }
      sim_.ScheduleAt(done, [this, stream, bytes, done]() {
        resident_[stream] += bytes;
        first_write_done_[stream] = 1;
        occupancy_[0] += bytes;
        report_.peak_mems_occupancy =
            std::max(report_.peak_mems_occupancy, occupancy_[0]);
        obs::Update(mems_occupancy_[0], done, occupancy_[0]);
        obs::Record(mems_series_[0], done, occupancy_[0]);
      });
    } else {
      const Seconds boundary = t0 + config_.t_mems;
      if (eager_) {
        if (done <= horizon_) {
          occupancy_[0] = std::max(0.0, occupancy_[0] - bytes);
          obs::Update(mems_occupancy_[0], done, occupancy_[0]);
          obs::Record(mems_series_[0], done, occupancy_[0]);
          play_.Deposit(stream, done, bytes);
          const Bytes level = play_.LevelAt(stream, done);
          obs::Update(dram_occupancy_[stream], done, level);
          obs::Record(dram_series_[stream], done, level);
          obs::RecordDramLevel(config_.auditor, stream, done, level);
          obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
          if (!play_.playing(stream)) {
            const Seconds start = std::max(done, boundary);
            if (start <= horizon_) play_.StartPlayback(stream, start);
          }
        }
        continue;
      }
      sim_.ScheduleAt(done, [this, stream, bytes, done, boundary]() {
        occupancy_[0] = std::max(0.0, occupancy_[0] - bytes);
        obs::Update(mems_occupancy_[0], done, occupancy_[0]);
        obs::Record(mems_series_[0], done, occupancy_[0]);
        play_.Deposit(stream, done, bytes);
        const Bytes level = play_.LevelAt(stream, done);
        obs::Update(dram_occupancy_[stream], done, level);
        obs::Record(dram_series_[stream], done, level);
        obs::RecordDramLevel(config_.auditor, stream, done, level);
        obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                          play_.id(stream), level, ""});
        }
        if (!play_.playing(stream)) {
          const Seconds start = std::max(done, boundary);
          sim_.ScheduleAt(start, [this, stream, start]() {
            if (!play_.playing(stream)) play_.StartPlayback(stream, start);
          });
        }
      });
    }
  }

  for (auto& b : device_busy_) b += busy;  // all devices move together
  report_.mems_busy += busy * k;
  const bool overrun = busy > config_.t_mems * (1.0 + 1e-9);
  if (overrun) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.t_mems - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, -1, t0, busy);
  obs::SloRecord(slo_slack_, t0 + busy, overrun ? 0 : 1, overrun ? 1 : 0);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, "mems-striped", -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_mems, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next,
                    [this, deadline]() { RunStripedMemsCycle(deadline); });
  }
}

Status MemsPipelineServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;
  horizon_ = duration;
  // With a TraceLog attached the MEMS-op completions stay
  // event-scheduled so trace records interleave in exact time order;
  // otherwise each cycle applies them inline. Faults don't force the
  // slow path here: they act synchronously on the bank devices.
  eager_ = trace_ == nullptr;

  MEMSTREAM_RETURN_IF_ERROR(
      sim_.Schedule(0, [this, duration]() { RunDiskCycle(duration); }));
  // MEMS cycles start after the first disk cycle has delivered data.
  if (config_.placement == model::BufferPlacement::kStripedIos) {
    MEMSTREAM_RETURN_IF_ERROR(sim_.ScheduleAt(
        config_.t_disk,
        [this, duration]() { RunStripedMemsCycle(duration); }));
  } else {
    for (std::size_t d = 0; d < bank_.size(); ++d) {
      MEMSTREAM_RETURN_IF_ERROR(sim_.ScheduleAt(
          config_.t_disk,
          [this, d, duration]() { RunMemsCycle(d, duration); }));
    }
  }
  if (config_.faults != nullptr) {
    // Device faults act directly on the bank: tip loss slows the device,
    // fail makes Service() return Unavailable until the paired repair.
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(
        sim_, [this](const fault::FaultEvent& e) {
          if (e.device < 0 ||
              static_cast<std::size_t>(e.device) >= bank_.size()) {
            return;
          }
          auto& dev = bank_[static_cast<std::size_t>(e.device)];
          switch (e.kind) {
            case fault::FaultKind::kMemsTipLoss:
              dev.ApplyTipLoss(e.magnitude);
              break;
            case fault::FaultKind::kMemsDeviceFail:
              dev.SetFailed(true);
              break;
            case fault::FaultKind::kMemsDeviceRepair:
              dev.SetFailed(false);
              break;
            default:
              break;
          }
        }));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  report_.disk_utilization =
      duration > 0 ? std::min(report_.disk_busy, duration) / duration : 0;
  Seconds busy_sum = 0;
  for (Seconds b : device_busy_) busy_sum += b;
  report_.mems_utilization =
      duration > 0
          ? busy_sum / (duration * static_cast<double>(bank_.size()))
          : 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    play_.LevelAt(i, duration);
    report_.qos.AbsorbPlayback(play_.view(i));
    report_.peak_dram_demand += play_.peak_level(i);
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "mems pipeline server");
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < play_.size(); ++i) {
      const std::int64_t delta = play_.underflow_events(i) - uf_seen_[i];
      uf_seen_[i] += delta;
      obs::JournalUnderflows(journal_, jslot_[i], duration, delta);
      if (jslot_[i] >= 0) {
        journal_->MarkDeparted(static_cast<std::size_t>(jslot_[i]),
                               duration);
      }
    }
  }

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.pipeline.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.pipeline.underflow_time_s")
        ->Set(report_.qos.underflow_time);
    metrics->gauge("server.pipeline.disk.overruns")
        ->Set(static_cast<double>(report_.disk_overruns));
    metrics->gauge("server.pipeline.mems.overruns")
        ->Set(static_cast<double>(report_.mems_overruns));
    metrics->gauge("server.pipeline.disk.utilization")
        ->Set(report_.disk_utilization);
    metrics->gauge("server.pipeline.mems.utilization")
        ->Set(report_.mems_utilization);
    metrics->gauge("server.pipeline.peak_dram_bytes")
        ->Set(report_.peak_dram_demand);
    metrics->gauge("server.pipeline.peak_mems_bytes")
        ->Set(report_.peak_mems_occupancy);
    metrics->gauge("prof.server.pipeline.arena_high_water_bytes")
        ->Set(static_cast<double>(arena_.high_water()));
    obs::ExportDeviceStats(metrics, *disk_, duration);
    for (const auto& dev : bank_) {
      obs::ExportDeviceStats(metrics, dev, duration);
    }
    obs::ExportSimulatorStats(metrics, sim_);
  }
  return Status::OK();
}

void MemsPipelineServer::ObserveUnderflows(Seconds now) {
  if (journal_ == nullptr && slo_underflow_ == nullptr) return;
  // The playback batch counts underflow events cumulatively; the delta
  // against uf_seen_ attributes new events to this disk cycle without
  // touching the deposit path.
  std::int64_t bad_streams = 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    const std::int64_t delta = play_.underflow_events(i) - uf_seen_[i];
    if (delta > 0) {
      uf_seen_[i] += delta;
      ++bad_streams;
      obs::JournalUnderflows(journal_, jslot_[i], now, delta);
    }
  }
  if (slo_underflow_ != nullptr && !play_.empty()) {
    const auto n = static_cast<std::int64_t>(play_.size());
    slo_underflow_->Record(now, n - bad_streams, bad_streams);
  }
}

}  // namespace memstream::server
