#include "server/mems_pipeline_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

Result<MemsPipelineServer> MemsPipelineServer::Create(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<StreamSpec> streams, const MemsPipelineConfig& config,
    sim::TraceLog* trace) {
  if (disk == nullptr) return Status::InvalidArgument("disk is required");
  if (bank.empty()) return Status::InvalidArgument("bank must not be empty");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.t_disk <= 0 || config.t_mems <= 0) {
    return Status::InvalidArgument("cycle lengths must be > 0");
  }
  if (config.t_mems > config.t_disk) {
    return Status::InvalidArgument("t_mems must not exceed t_disk (Eq. 8)");
  }
  const std::size_t k = bank.size();
  const bool striped =
      config.placement == model::BufferPlacement::kStripedIos;
  // Streams per device under round-robin assignment (striping puts a
  // 1/k share of every stream on every device).
  std::vector<std::size_t> assigned(k, striped ? streams.size() : 0);
  if (!striped) {
    for (std::size_t i = 0; i < streams.size(); ++i) ++assigned[i % k];
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto& s = streams[i];
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0 || s.disk_offset + s.extent > disk->Capacity()) {
      return Status::OutOfRange("stream extent beyond disk capacity");
    }
    if (s.bit_rate * config.t_disk > s.extent) {
      return Status::InvalidArgument("extent smaller than one disk IO");
    }
    // Executable analogue of condition (7): the stream's slot must hold
    // two disk IOs (one draining, one arriving) plus one DRAM IO.
    const std::size_t home = striped ? 0 : i % k;
    const Bytes slot =
        bank[home].Capacity() / static_cast<double>(assigned[home]);
    const Bytes need = s.bit_rate *
                       (2.0 * config.t_disk + config.t_mems) /
                       (striped ? static_cast<double>(k) : 1.0);
    if (need > slot) {
      return Status::Infeasible(
          "MEMS capacity insufficient for the chosen T_disk (condition 7)");
    }
  }
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return MemsPipelineServer(disk, std::move(bank), std::move(streams),
                            config, trace);
}

MemsPipelineServer::MemsPipelineServer(device::DiskDrive* disk,
                                       std::vector<device::MemsDevice> bank,
                                       std::vector<StreamSpec> streams,
                                       const MemsPipelineConfig& config,
                                       sim::TraceLog* trace)
    : disk_(disk),
      bank_(std::move(bank)),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  const std::size_t k = bank_.size();
  pending_.resize(k);
  occupancy_.assign(k, 0);
  device_busy_.assign(k, 0);
  play_cursor_.assign(streams_.size(), 0);
  sessions_.reserve(streams_.size());
  state_.resize(streams_.size());

  const bool striped =
      config_.placement == model::BufferPlacement::kStripedIos;
  std::vector<std::size_t> assigned(k, striped ? streams_.size() : 0);
  if (!striped) {
    for (std::size_t i = 0; i < streams_.size(); ++i) ++assigned[i % k];
  }
  std::vector<std::size_t> slot_index(k, 0);
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    sessions_.emplace_back(streams_[i].id, streams_[i].bit_rate);
    StreamState& st = state_[i];
    // Striping: the same 1/k-sized slot exists on every device; device 0
    // stands in for the lock-step group (all writes/reads route through
    // the shared pending queue and the single striped cycle).
    st.device = striped ? 0 : i % k;
    st.slot_size = bank_[st.device].Capacity() /
                   static_cast<double>(assigned[st.device]);
    st.slot_base =
        st.slot_size * static_cast<double>(slot_index[st.device]++);
  }

  // Resolve telemetry handles once; hot-path updates are null-guarded.
  obs::MetricsRegistry* metrics = config_.metrics;
  dram_occupancy_.assign(streams_.size(), nullptr);
  mems_occupancy_.assign(k, nullptr);
  if (metrics != nullptr) {
    const double t_disk_ms = config_.t_disk / kMillisecond;
    const double t_mems_ms = config_.t_mems / kMillisecond;
    disk_slack_hist_ = metrics->histogram(
        "server.pipeline.disk.cycle_slack_ms", {-t_disk_ms, t_disk_ms, 40});
    mems_slack_hist_ = metrics->histogram(
        "server.pipeline.mems.cycle_slack_ms", {-t_mems_ms, t_mems_ms, 40});
    disk_cycles_metric_ = metrics->counter("server.pipeline.disk.cycles");
    mems_cycles_metric_ = metrics->counter("server.pipeline.mems.cycles");
    ios_metric_ = metrics->counter("server.pipeline.ios");
    starved_metric_ = metrics->counter("server.pipeline.starved_reads");
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      dram_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes");
    }
    for (std::size_t d = 0; d < k; ++d) {
      mems_occupancy_[d] = metrics->time_weighted(
          "device." + bank_[d].name() + ".occupancy_bytes");
    }
  }
  dram_series_.assign(streams_.size(), nullptr);
  mems_series_.assign(k, nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      dram_series_[i] = tl->AddSeries(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes",
          "bytes");
    }
    for (std::size_t d = 0; d < k; ++d) {
      mems_series_[d] = tl->AddSeries(
          "device." + bank_[d].name() + ".occupancy_bytes", "bytes");
    }
  }
}

void MemsPipelineServer::RunDiskCycle(Seconds deadline) {
  PROF_SCOPE("server.pipeline.disk_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  std::vector<device::IoSpan> batch;
  batch.reserve(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.t_disk;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;
    batch.push_back(device::IoSpan{
        static_cast<std::int64_t>(s.disk_offset + cursor), io_bytes});
  }

  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, disk_->name(), -1, 0,
                    "disk cycle " + std::to_string(report_.disk_cycles)});
  }

  const auto order =
      device::ScheduleOrder(config_.disk_policy, last_head_offset_, batch);
  Seconds busy = 0;
  for (std::size_t idx : order) {
    auto st = disk_->Service(batch[idx],
                             config_.deterministic ? nullptr : &rng_);
    if (!st.ok()) continue;  // unreachable: validated in Create
    Seconds service = st.value();
    if (config_.faults != nullptr) {
      service += config_.faults->DiskIoPenalty(t0 + busy);
    }
    busy += service;
    last_head_offset_ = batch[idx].offset;
    const Seconds done = t0 + busy;
    const Bytes bytes = batch[idx].bytes;
    obs::RecordIo(config_.auditor, idx, bytes);
    sim_.ScheduleAt(done, [this, idx, bytes, done, service]() {
      pending_[state_[idx].device].push_back(PendingWrite{idx, bytes});
      if (trace_ != nullptr) {
        trace_->Append({done, sim::TraceKind::kIoCompleted, disk_->name(),
                        sessions_[idx].id(), bytes, "-> mems pending",
                        service});
      }
    });
  }

  report_.disk_busy += busy;
  if (busy > config_.t_disk * (1.0 + 1e-9)) ++report_.disk_overruns;
  ++report_.disk_cycles;
  report_.ios_completed += static_cast<std::int64_t>(order.size());
  obs::Increment(disk_cycles_metric_);
  obs::Increment(ios_metric_, static_cast<double>(order.size()));
  obs::Observe(disk_slack_hist_, (config_.t_disk - busy) / kMillisecond);
  obs::EndDiskCycle(config_.auditor, t0, busy);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, disk_->name(), -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_disk, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, deadline]() { RunDiskCycle(deadline); });
  }
}

void MemsPipelineServer::RunMemsCycle(std::size_t dev, Seconds deadline) {
  PROF_SCOPE("server.pipeline.mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  device::MemsDevice& device = bank_[dev];
  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, device.name(), -1, 0,
                    "mems" + std::to_string(dev) + " cycle"});
  }

  struct Op {
    std::size_t stream;
    Bytes bytes;
    Bytes offset;  ///< device-local
    bool is_write;
  };
  std::vector<Op> ops;

  // Drain the disk writes that arrived before this cycle, capped at the
  // steady-state share per cycle (M/k writes, Eq. 8) plus one: without
  // the cap the first MEMS cycle after a disk cycle would absorb the
  // whole burst of N/k writes and overrun.
  std::size_t assigned = 0;
  for (std::size_t i = dev; i < streams_.size(); i += bank_.size()) {
    ++assigned;
  }
  const auto write_cap = static_cast<std::size_t>(
      std::ceil(static_cast<double>(assigned) * config_.t_mems /
                config_.t_disk)) + 1;
  std::deque<PendingWrite> writes;
  for (std::size_t i = 0; i < write_cap && !pending_[dev].empty(); ++i) {
    writes.push_back(pending_[dev].front());
    pending_[dev].pop_front();
  }
  for (const auto& w : writes) {
    StreamState& st = state_[w.stream];
    Bytes cursor = st.write_cursor;
    if (cursor + w.bytes > st.slot_size) cursor = 0;  // wrap within slot
    ops.push_back(Op{w.stream, w.bytes, st.slot_base + cursor, true});
    st.write_cursor = cursor + w.bytes;
  }

  // One DRAM transfer per assigned stream whose data is resident
  // (snapshot semantics: bytes written this cycle are readable next
  // cycle, matching the analytical model). When a write was drained a
  // cycle late, the stream reads whatever is resident rather than
  // skipping — partial reads keep the playout fed through drain jitter.
  for (std::size_t i = dev; i < streams_.size(); i += bank_.size()) {
    StreamState& st = state_[i];
    const Bytes read_bytes = streams_[i].bit_rate * config_.t_mems;
    if (!st.first_write_done) continue;  // stream not started yet
    if (st.resident <= 0) {
      ++report_.starved_reads;
      obs::Increment(starved_metric_);
      st.read_deficit += read_bytes;
      continue;
    }
    // Catch-up: repay any shortfall from earlier partial/skipped reads.
    const Bytes wanted = read_bytes + st.read_deficit;
    const Bytes amount = std::min(wanted, st.resident);
    st.read_deficit = std::max(0.0, wanted - amount);
    Bytes cursor = st.read_cursor;
    if (cursor + amount > st.slot_size) cursor = 0;
    ops.push_back(Op{i, amount, st.slot_base + cursor, false});
    st.read_cursor = cursor + amount;
    st.resident -= amount;  // claimed by this cycle's schedule
  }

  Seconds busy = 0;
  for (const auto& op : ops) {
    auto st = device.Service(
        device::IoSpan{static_cast<std::int64_t>(op.offset), op.bytes},
        nullptr);
    if (!st.ok()) continue;  // unreachable: slots sized in Create
    busy += st.value();
    const Seconds service = st.value();
    const Seconds done = t0 + busy;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    if (op.is_write) {
      const std::size_t stream = op.stream;
      const Bytes bytes = op.bytes;
      sim_.ScheduleAt(done, [this, dev, stream, bytes, done, service]() {
        StreamState& s = state_[stream];
        s.resident += bytes;
        s.first_write_done = true;
        occupancy_[dev] += bytes;
        report_.peak_mems_occupancy =
            std::max(report_.peak_mems_occupancy, occupancy_[dev]);
        obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
        obs::Record(mems_series_[dev], done, occupancy_[dev]);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kIoCompleted,
                          bank_[dev].name(), sessions_[stream].id(), bytes,
                          "disk->MEMS write", service});
          if (occupancy_[dev] > bank_[dev].Capacity()) {
            trace_->Append({done, sim::TraceKind::kOverflow,
                            bank_[dev].name(), sessions_[stream].id(),
                            occupancy_[dev],
                            "mems occupancy over capacity"});
          }
        }
      });
    } else {
      const std::size_t stream = op.stream;
      const Bytes bytes = op.bytes;
      const Seconds boundary = t0 + config_.t_mems;
      sim_.ScheduleAt(done, [this, dev, stream, bytes, done, boundary,
                             service]() {
        occupancy_[dev] = std::max(0.0, occupancy_[dev] - bytes);
        obs::Update(mems_occupancy_[dev], done, occupancy_[dev]);
        obs::Record(mems_series_[dev], done, occupancy_[dev]);
        auto* session = &sessions_[stream];
        session->Deposit(done, bytes);
        const Bytes level = session->LevelAt(done);
        obs::Update(dram_occupancy_[stream], done, level);
        obs::Record(dram_series_[stream], done, level);
        obs::RecordDramLevel(config_.auditor, stream, done, level);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kIoCompleted,
                          bank_[dev].name(), session->id(), bytes,
                          "MEMS->DRAM read", service});
          trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                          session->id(), level, ""});
        }
        if (!session->playing()) {
          const Seconds start = std::max(done, boundary);
          sim_.ScheduleAt(start, [session, start]() {
            if (!session->playing()) session->StartPlayback(start);
          });
        }
      });
    }
  }

  device_busy_[dev] += busy;
  report_.mems_busy += busy;
  if (busy > config_.t_mems * (1.0 + 1e-9)) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.t_mems - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, static_cast<std::int64_t>(dev), t0,
                    busy);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    const std::string actor = device.name();
    sim_.ScheduleAt(end, [this, end, busy, actor]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, actor, -1, 0, "",
                      busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_mems, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next,
                    [this, dev, deadline]() { RunMemsCycle(dev, deadline); });
  }
}

void MemsPipelineServer::RunStripedMemsCycle(Seconds deadline) {
  PROF_SCOPE("server.pipeline.striped_mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  const auto k = static_cast<double>(bank_.size());
  if (trace_ != nullptr) {
    trace_->Append({t0, sim::TraceKind::kCycleStart, "mems-striped", -1, 0,
                    "striped cycle"});
  }

  struct Op {
    std::size_t stream;
    Bytes bytes;          ///< full stream bytes (each device moves /k)
    Bytes device_offset;  ///< local offset, identical on every device
    bool is_write;
  };
  std::vector<Op> ops;

  // Drain pending writes (all routed to queue 0), burst-capped as in the
  // round-robin cycle.
  // +2 slack: the disk delivers its N writes as a burst inside ~70% of
  // the disk cycle, so the drain rate must run slightly ahead of the
  // long-run average or late drains starve the tail streams' reads.
  const auto write_cap = static_cast<std::size_t>(
      std::ceil(static_cast<double>(streams_.size()) * config_.t_mems /
                config_.t_disk)) + 2;
  std::deque<PendingWrite> writes;
  for (std::size_t i = 0; i < write_cap && !pending_[0].empty(); ++i) {
    writes.push_back(pending_[0].front());
    pending_[0].pop_front();
  }
  for (const auto& w : writes) {
    StreamState& st = state_[w.stream];
    const Bytes local = w.bytes / k;
    Bytes cursor = st.write_cursor;
    if (cursor + local > st.slot_size) cursor = 0;
    ops.push_back(Op{w.stream, w.bytes, st.slot_base + cursor, true});
    st.write_cursor = cursor + local;
  }

  // One DRAM transfer per stream whose data is resident (partial when a
  // write was drained a cycle late, as in the round-robin cycle).
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamState& st = state_[i];
    const Bytes read_bytes = streams_[i].bit_rate * config_.t_mems;
    if (!st.first_write_done) continue;
    if (st.resident <= 0) {
      ++report_.starved_reads;
      obs::Increment(starved_metric_);
      st.read_deficit += read_bytes;
      continue;
    }
    const Bytes wanted = read_bytes + st.read_deficit;
    const Bytes amount = std::min(wanted, st.resident);
    st.read_deficit = std::max(0.0, wanted - amount);
    const Bytes local = amount / k;
    Bytes cursor = st.read_cursor;
    if (cursor + local > st.slot_size) cursor = 0;
    ops.push_back(Op{i, amount, st.slot_base + cursor, false});
    st.read_cursor = cursor + local;
    st.resident -= amount;
  }

  // Lock-step service: every device transfers its 1/k share at the same
  // local offset; the elapsed time is the slowest (= common) device.
  Seconds busy = 0;
  for (const auto& op : ops) {
    Seconds op_time = 0;
    for (auto& dev : bank_) {
      auto t = dev.Service(
          device::IoSpan{static_cast<std::int64_t>(op.device_offset),
                         op.bytes / k},
          nullptr);
      if (!t.ok()) continue;  // unreachable: slots sized in Create
      op_time = std::max(op_time, t.value());
    }
    busy += op_time;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    const Seconds done = t0 + busy;
    if (op.is_write) {
      const std::size_t stream = op.stream;
      const Bytes bytes = op.bytes;
      sim_.ScheduleAt(done, [this, stream, bytes, done]() {
        state_[stream].resident += bytes;
        state_[stream].first_write_done = true;
        occupancy_[0] += bytes;
        report_.peak_mems_occupancy =
            std::max(report_.peak_mems_occupancy, occupancy_[0]);
        obs::Update(mems_occupancy_[0], done, occupancy_[0]);
        obs::Record(mems_series_[0], done, occupancy_[0]);
      });
    } else {
      const std::size_t stream = op.stream;
      const Bytes bytes = op.bytes;
      const Seconds boundary = t0 + config_.t_mems;
      sim_.ScheduleAt(done, [this, stream, bytes, done, boundary]() {
        occupancy_[0] = std::max(0.0, occupancy_[0] - bytes);
        obs::Update(mems_occupancy_[0], done, occupancy_[0]);
        obs::Record(mems_series_[0], done, occupancy_[0]);
        auto* session = &sessions_[stream];
        session->Deposit(done, bytes);
        const Bytes level = session->LevelAt(done);
        obs::Update(dram_occupancy_[stream], done, level);
        obs::Record(dram_series_[stream], done, level);
        obs::RecordDramLevel(config_.auditor, stream, done, level);
        if (trace_ != nullptr) {
          trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                          session->id(), level, ""});
        }
        if (!session->playing()) {
          const Seconds start = std::max(done, boundary);
          sim_.ScheduleAt(start, [session, start]() {
            if (!session->playing()) session->StartPlayback(start);
          });
        }
      });
    }
  }

  for (auto& b : device_busy_) b += busy;  // all devices move together
  report_.mems_busy += busy * k;
  if (busy > config_.t_mems * (1.0 + 1e-9)) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.t_mems - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, -1, t0, busy);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, "mems-striped", -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.t_mems, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next,
                    [this, deadline]() { RunStripedMemsCycle(deadline); });
  }
}

Status MemsPipelineServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;

  MEMSTREAM_RETURN_IF_ERROR(
      sim_.Schedule(0, [this, duration]() { RunDiskCycle(duration); }));
  // MEMS cycles start after the first disk cycle has delivered data.
  if (config_.placement == model::BufferPlacement::kStripedIos) {
    MEMSTREAM_RETURN_IF_ERROR(sim_.ScheduleAt(
        config_.t_disk,
        [this, duration]() { RunStripedMemsCycle(duration); }));
  } else {
    for (std::size_t d = 0; d < bank_.size(); ++d) {
      MEMSTREAM_RETURN_IF_ERROR(sim_.ScheduleAt(
          config_.t_disk,
          [this, d, duration]() { RunMemsCycle(d, duration); }));
    }
  }
  if (config_.faults != nullptr) {
    // Device faults act directly on the bank: tip loss slows the device,
    // fail makes Service() return Unavailable until the paired repair.
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(
        sim_, [this](const fault::FaultEvent& e) {
          if (e.device < 0 ||
              static_cast<std::size_t>(e.device) >= bank_.size()) {
            return;
          }
          auto& dev = bank_[static_cast<std::size_t>(e.device)];
          switch (e.kind) {
            case fault::FaultKind::kMemsTipLoss:
              dev.ApplyTipLoss(e.magnitude);
              break;
            case fault::FaultKind::kMemsDeviceFail:
              dev.SetFailed(true);
              break;
            case fault::FaultKind::kMemsDeviceRepair:
              dev.SetFailed(false);
              break;
            default:
              break;
          }
        }));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  report_.disk_utilization =
      duration > 0 ? std::min(report_.disk_busy, duration) / duration : 0;
  Seconds busy_sum = 0;
  for (Seconds b : device_busy_) busy_sum += b;
  report_.mems_utilization =
      duration > 0
          ? busy_sum / (duration * static_cast<double>(bank_.size()))
          : 0;
  for (auto& session : sessions_) {
    session.LevelAt(duration);
    report_.qos.AbsorbPlayback(session);
    report_.peak_dram_demand += session.peak_level();
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "mems pipeline server");

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.pipeline.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.pipeline.underflow_time_s")
        ->Set(report_.qos.underflow_time);
    metrics->gauge("server.pipeline.disk.overruns")
        ->Set(static_cast<double>(report_.disk_overruns));
    metrics->gauge("server.pipeline.mems.overruns")
        ->Set(static_cast<double>(report_.mems_overruns));
    metrics->gauge("server.pipeline.disk.utilization")
        ->Set(report_.disk_utilization);
    metrics->gauge("server.pipeline.mems.utilization")
        ->Set(report_.mems_utilization);
    metrics->gauge("server.pipeline.peak_dram_bytes")
        ->Set(report_.peak_dram_demand);
    metrics->gauge("server.pipeline.peak_mems_bytes")
        ->Set(report_.peak_mems_occupancy);
    obs::ExportDeviceStats(metrics, *disk_, duration);
    for (const auto& dev : bank_) {
      obs::ExportDeviceStats(metrics, dev, duration);
    }
    obs::ExportSimulatorStats(metrics, sim_);
  }
  return Status::OK();
}

}  // namespace memstream::server
