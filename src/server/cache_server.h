// Streaming server with a MEMS cache (§3.2): cached streams are serviced
// from the MEMS bank, the rest from the disk, each side under its own
// time cycle. The bank is managed striped (lock-step, Theorem 3) or
// replicated (independent devices, Theorem 4).

#ifndef MEMSTREAM_SERVER_CACHE_SERVER_H_
#define MEMSTREAM_SERVER_CACHE_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "common/status.h"
#include "device/disk.h"
#include "device/disk_scheduler.h"
#include "device/mems_device.h"
#include "fault/degradation.h"
#include "fault/fault_injector.h"
#include "model/mems_cache.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/timeline.h"
#include "server/qos_counters.h"
#include "server/stream_batch.h"
#include "server/timecycle_server.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::server {

/// A stream serviced by the cache server. `cached` selects the side;
/// `offset`/`extent` address the disk for uncached streams and the bank's
/// logical cached-content space for cached ones.
struct CacheStreamSpec {
  std::int64_t id = 0;
  BytesPerSecond bit_rate = 0;
  bool cached = false;
  Bytes offset = 0;
  Bytes extent = 0;
  /// Disk-resident copy of a cached stream's content, used when
  /// degradation falls the stream back to the disk path (striped bank
  /// lost a device). backing_extent == 0 means no disk copy: the stream
  /// must be shed instead of falling back. Ignored for uncached streams.
  Bytes backing_offset = 0;
  Bytes backing_extent = 0;
};

/// Knobs of the cache server. Obtain the cycles from model::IoCycleLength
/// (disk side, Theorem 1 with the n_disk streams) and from Theorems 3/4's
/// sizing (cache side: cycle = S_mems-dram / B̄).
struct CacheServerConfig {
  Seconds disk_cycle = 1.0;
  Seconds mems_cycle = 0.5;
  model::CachePolicy policy = model::CachePolicy::kStriped;
  device::SchedulerPolicy disk_policy = device::SchedulerPolicy::kCLook;
  bool deterministic = true;
  std::uint64_t seed = 42;
  /// Optional telemetry: per-side cycle-slack histograms, per-stream
  /// occupancy, run summary gauges. Null (the default) costs one pointer
  /// test per update site. Not owned; must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional online QoS auditor. Register the streams in spec order:
  /// uncached streams with domain kDisk, cached streams with domain
  /// kMems (replicated policy: device = position-among-cached mod k;
  /// striped: device 0, the lock-step cycle closes with device -1), and
  /// Seal() before Run(). Not owned.
  obs::QosAuditor* auditor = nullptr;
  /// Optional timeline recorder: per-stream DRAM occupancy. Not owned.
  obs::TimelineRecorder* timelines = nullptr;
  /// Optional fault injection: the plan's device faults are applied to
  /// the bank (tip loss, fail, repair) and disk IOs pay the spike
  /// penalty. Not owned; must outlive the server.
  fault::FaultInjector* faults = nullptr;
  /// Optional graceful degradation: on every device fault the manager
  /// re-solves the Theorem 3/4 sizing for the degraded bank and the
  /// server applies the verdict — reshape the MEMS cycle, shed the
  /// fewest streams (re-admitting them on repair), or fall cached
  /// streams back to the disk path. Null = faults hit an unmanaged
  /// server (the ablation baseline). Not owned.
  const fault::DegradationManager* degradation = nullptr;
  /// DRAM-bound factor the auditor was registered with (bound =
  /// factor * B̄ * cycle); re-plans resize the audited bounds with the
  /// same factor. 0 disables bound updates.
  double dram_bound_factor = 2.0;
  /// Optional per-stream lifecycle journal. Streams self-register at
  /// Create (cached streams under the Theorem-3/4 MEMS-cycle envelope,
  /// disk streams under Theorem 1's); degradation verdicts land as
  /// kShed / kReadmitted / kDegraded transitions. Not owned.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor: "cycle_slack" and "underflow" per cycle plus
  /// "availability" (shed streams burn the budget). Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// Post-run statistics, split by side.
struct CacheServerReport {
  std::int64_t disk_cycles = 0;
  std::int64_t disk_overruns = 0;
  Seconds disk_busy = 0;
  std::int64_t mems_cycles = 0;
  std::int64_t mems_overruns = 0;
  Seconds mems_busy = 0;  ///< summed across devices
  std::int64_t ios_completed = 0;
  QosCounters qos;  ///< underflows/violations
  Bytes peak_dram_demand = 0;
  Seconds horizon = 0;
  double disk_utilization = 0;
  double mems_utilization = 0;  ///< mean across devices
};

/// The cache server. Owns the MEMS bank; the disk is borrowed (and may be
/// null when every stream is cached).
class CacheStreamingServer {
 public:
  static Result<CacheStreamingServer> Create(
      device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
      std::vector<CacheStreamSpec> streams, const CacheServerConfig& config,
      sim::TraceLog* trace = nullptr);

  /// Simulates `duration` seconds. May be called once.
  Status Run(Seconds duration);

  const CacheServerReport& report() const { return report_; }
  /// Playout session of the i-th stream (spec order).
  StreamView session(std::size_t i) const { return play_.view(i); }
  std::size_t num_streams() const { return play_.size(); }

 private:
  CacheStreamingServer(device::DiskDrive* disk,
                       std::vector<device::MemsDevice> bank,
                       std::vector<CacheStreamSpec> streams,
                       const CacheServerConfig& config,
                       sim::TraceLog* trace);

  void RunDiskCycle(Seconds deadline);
  void RunStripedCycle(Seconds deadline);
  void RunReplicatedCycle(std::size_t dev, Seconds deadline);

  /// Applies an IO-completion deposit: inline on the eager fast path (no
  /// trace, no faults), otherwise through the event queue so trace
  /// records and degradation re-checks interleave in exact time order.
  void ScheduleDeposit(std::size_t stream, Bytes bytes, Seconds done,
                       Seconds boundary, const std::string& actor,
                       Seconds service);

  // --- fault / degradation machinery ---

  /// Where degradation placed a cached stream.
  enum class Placement { kCache, kDisk, kShed };

  /// Reacts to one device-scoped fault event at its simulated time.
  void ApplyFaultEvent(const fault::FaultEvent& e);
  /// Re-solves the plan for the current bank state and applies it.
  void ApplyReplan(const fault::FaultEvent& cause);
  /// Moves cached stream `i` to `target`, with ledger + auditor updates.
  void TransitionStream(std::size_t i, Placement target);
  /// Tops stream `i`'s buffer up to `target_level` (emergency prefetch
  /// from the degraded plan's slack; not an audited scheduled IO).
  void CushionDeposit(std::size_t i, Bytes target_level);
  /// Re-arms stream `i`'s audited DRAM bound for its new cycle domain:
  /// the current level, plus the new double-buffer allowance, plus one
  /// `carry_cycle`-sized deposit the old schedule may still have in
  /// flight (deposits land at IO completion, after the re-plan ran).
  void SetTransitionBound(std::size_t i, Seconds cycle, Seconds carry_cycle);
  /// Rebuilds the per-device replicated assignment over alive devices
  /// and restarts any cycle loop that went idle.
  void RestartServiceLoops();
  /// Offset/extent of stream `i`'s current content location (backing
  /// copy while a cached stream is disk-fallback placed).
  Bytes EffOffset(std::size_t i) const;
  Bytes EffExtent(std::size_t i) const;

  device::DiskDrive* disk_;
  std::vector<device::MemsDevice> bank_;
  std::vector<CacheStreamSpec> streams_;
  CacheServerConfig config_;
  sim::TraceLog* trace_;
  sim::Simulator sim_;
  Rng rng_;
  PlaybackBatch play_;  ///< SoA session state, index == stream index
  std::vector<std::size_t> disk_streams_;   ///< indices into streams_
  std::vector<std::size_t> cache_streams_;  ///< indices into streams_
  std::vector<Bytes> play_cursor_;
  std::vector<Seconds> device_busy_;  ///< per MEMS device
  std::int64_t last_head_offset_ = 0;
  CycleArena arena_;  ///< per-disk-cycle scratch (batch + order)
  /// Fast path: with no TraceLog and no fault injector, IO completion
  /// deposits are applied inline in the cycle loops (same order the
  /// scheduled events would have fired) instead of via the event queue.
  bool eager_ = false;
  CacheServerReport report_;
  bool ran_ = false;
  // Degradation state (all no-ops when config_.faults is null).
  std::vector<bool> device_alive_;      ///< per MEMS device
  std::vector<Placement> placement_;    ///< per stream (kCache if cached)
  std::vector<std::vector<std::size_t>> replicated_assign_;  ///< per device
  std::vector<bool> device_cycle_running_;  ///< replicated loop active
  bool striped_running_ = false;
  bool disk_running_ = false;
  bool cache_halted_ = false;  ///< striped content lost / bank dead
  Seconds horizon_ = 0;
  /// Per-stream audited DRAM bound mirror: re-plans re-derive the total
  /// budget as the sum of the per-stream sizings they just installed.
  std::vector<Bytes> audited_bound_;
  // Telemetry handles (null when config_.metrics is null).
  obs::HistogramMetric* disk_slack_hist_ = nullptr;
  obs::HistogramMetric* mems_slack_hist_ = nullptr;
  obs::Counter* disk_cycles_metric_ = nullptr;
  obs::Counter* mems_cycles_metric_ = nullptr;
  obs::Counter* ios_metric_ = nullptr;
  std::vector<obs::TimeWeightedGauge*> dram_occupancy_;  ///< per stream
  // Timeline handles (null when config_.timelines is null).
  std::vector<obs::TimelineSeries*> dram_series_;  ///< per stream
  // Journal/SLO handles (null / -1 when the hooks are off).
  obs::StreamJournal* journal_ = nullptr;
  std::vector<std::ptrdiff_t> jslot_;      ///< per stream
  std::vector<std::int64_t> uf_seen_;      ///< underflows already journaled
  obs::Slo* slo_underflow_ = nullptr;
  obs::Slo* slo_slack_ = nullptr;
  obs::Slo* slo_availability_ = nullptr;

  /// Cycle-end SLO/journal bookkeeping: slack outcome, underflow delta
  /// scan, and the availability sample (shed streams burn the budget).
  void ObserveCycleOutcomes(Seconds now, bool overrun);
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_CACHE_SERVER_H_
