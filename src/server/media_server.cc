#include "server/media_server.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/profiles.h"
#include "model/timecycle.h"

namespace memstream::server {

const char* ServerModeName(ServerMode mode) {
  switch (mode) {
    case ServerMode::kDirect:
      return "direct";
    case ServerMode::kMemsBuffer:
      return "mems-buffer";
    case ServerMode::kMemsCache:
      return "mems-cache";
  }
  return "?";
}

namespace {

/// Spreads n sequential extents evenly across the device span so the
/// elevator has realistic work to do.
std::vector<StreamSpec> PlaceStreams(std::int64_t n,
                                     BytesPerSecond bit_rate,
                                     Bytes device_capacity, Bytes min_extent) {
  std::vector<StreamSpec> streams;
  streams.reserve(static_cast<std::size_t>(n));
  const Bytes span = device_capacity * 0.9;
  const Bytes stride = span / static_cast<double>(n);
  const Bytes extent = std::max(min_extent, stride * 0.9);
  for (std::int64_t i = 0; i < n; ++i) {
    StreamSpec s;
    s.id = i;
    s.bit_rate = bit_rate;
    s.disk_offset = std::min(stride * static_cast<double>(i),
                             device_capacity - extent);
    s.extent = extent;
    streams.push_back(s);
  }
  return streams;
}

/// Builds the auditor shell shared by all modes: cycle lengths, Eq. 7/8
/// parameters, and the margin/trace sinks. Stream registration is
/// mode-specific; callers AddStream() in spec order, then Seal().
std::shared_ptr<obs::QosAuditor> MakeAuditor(const MediaServerConfig& config,
                                             Seconds disk_cycle,
                                             Seconds mems_cycle,
                                             Bytes mems_device_capacity,
                                             bool nested,
                                             Bytes dram_total_bound) {
  if (!config.audit) return nullptr;
  obs::QosAuditorConfig qc;
  qc.disk_cycle = disk_cycle;
  qc.mems_cycle = mems_cycle;
  qc.mems_devices = nested ? config.k : 0;
  qc.mems_device_capacity = mems_device_capacity;
  qc.nested_cycles = nested;
  qc.dram_total_bound = dram_total_bound;
  qc.metrics = config.metrics;
  qc.trace = config.trace;
  return std::make_shared<obs::QosAuditor>(qc);
}

/// Builds the run's injector when the config schedules faults.
std::shared_ptr<fault::FaultInjector> MakeInjector(
    const MediaServerConfig& config) {
  if (config.fault_plan.empty()) return nullptr;
  fault::FaultInjectorConfig fc;
  fc.metrics = config.metrics;
  fc.trace = config.trace;
  fc.warn_stream = config.fault_warn_stream;
  return std::make_shared<fault::FaultInjector>(config.fault_plan, fc);
}

Result<MediaServerResult> RunDirect(const MediaServerConfig& config) {
  auto disk = device::DiskDrive::Create(config.disk);
  MEMSTREAM_RETURN_IF_ERROR(disk.status());

  model::DeviceProfile profile =
      model::DiskProfileConservative(disk.value(), config.num_streams);
  auto cycle =
      model::IoCycleLength(config.num_streams, config.bit_rate, profile);
  MEMSTREAM_RETURN_IF_ERROR(cycle.status());
  auto dram = model::TotalBufferSize(config.num_streams, config.bit_rate,
                                     profile);
  MEMSTREAM_RETURN_IF_ERROR(dram.status());

  DirectServerConfig server_config;
  server_config.cycle = cycle.value();
  server_config.deterministic = config.deterministic;
  server_config.seed = config.seed;
  server_config.metrics = config.metrics;
  server_config.timelines = config.timelines;
  server_config.journal = config.journal;
  server_config.slo = config.slo;
  const Bytes io = config.bit_rate * cycle.value();
  auto streams = PlaceStreams(config.num_streams, config.bit_rate,
                              disk.value().Capacity(), 2 * io);
  // Theorem 1 executable bounds: the double-buffered schedule holds at
  // most two IOs per stream, so per-stream DRAM <= 2·B̄·T.
  auto auditor = MakeAuditor(config, cycle.value(), 0, 0, false,
                             2 * dram.value());
  if (auditor != nullptr) {
    for (const auto& s : streams) {
      auditor->AddStream(s.id, s.bit_rate, 2 * io, obs::QosDomain::kDisk);
    }
    auditor->Seal();
  }
  server_config.auditor = auditor.get();
  auto faults = MakeInjector(config);
  server_config.faults = faults.get();
  auto server = DirectStreamingServer::Create(&disk.value(),
                                              std::move(streams),
                                              server_config, config.trace);
  MEMSTREAM_RETURN_IF_ERROR(server.status());
  MEMSTREAM_RETURN_IF_ERROR(server.value().Run(config.sim_duration));

  const ServerReport& report = server.value().report();
  MediaServerResult out;
  out.analytic_dram_total = dram.value();
  out.disk_cycle = cycle.value();
  out.qos = report.qos;
  out.cycle_overruns = report.cycle_overruns;
  out.sim_peak_dram = report.peak_buffer_demand;
  out.disk_utilization = report.device_utilization;
  out.ios_completed = report.ios_completed;
  out.auditor = std::move(auditor);
  out.faults = std::move(faults);
  return out;
}

Result<MediaServerResult> RunBuffer(const MediaServerConfig& config) {
  auto disk = device::DiskDrive::Create(config.disk);
  MEMSTREAM_RETURN_IF_ERROR(disk.status());
  auto mems_proto = device::MemsDevice::Create(config.mems);
  MEMSTREAM_RETURN_IF_ERROR(mems_proto.status());

  model::MemsBufferParams params;
  params.k = config.k;
  params.disk = model::DiskProfileConservative(disk.value(), config.num_streams);
  params.mems = model::MemsProfileMaxLatency(mems_proto.value());

  auto range = model::FeasibleTdiskRange(config.num_streams,
                                         config.bit_rate, params);
  MEMSTREAM_RETURN_IF_ERROR(range.status());
  Seconds t_disk = config.t_disk_override > 0
                       ? config.t_disk_override
                       : std::min(range.value().lower * 1.5,
                                  range.value().upper);
  auto sizing = model::SolveMemsBuffer(config.num_streams, config.bit_rate,
                                       params, t_disk);
  MEMSTREAM_RETURN_IF_ERROR(sizing.status());

  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < config.k; ++i) {
    device::MemsParameters p = config.mems;
    p.name += "#" + std::to_string(i);
    auto dev = device::MemsDevice::Create(p);
    MEMSTREAM_RETURN_IF_ERROR(dev.status());
    bank.push_back(std::move(dev).value());
  }

  MemsPipelineConfig server_config;
  server_config.t_disk = sizing.value().t_disk;
  server_config.t_mems = sizing.value().t_mems_snapped;
  server_config.deterministic = config.deterministic;
  server_config.seed = config.seed;
  server_config.metrics = config.metrics;
  server_config.timelines = config.timelines;
  server_config.journal = config.journal;
  server_config.slo = config.slo;
  const Bytes io = config.bit_rate * server_config.t_disk;
  auto streams = PlaceStreams(config.num_streams, config.bit_rate,
                              disk.value().Capacity(), 2 * io);
  // Theorem 2 executable bounds: DRAM deposits are MEMS-cycle sized, so
  // per-stream DRAM <= 2·B̄·T_mems (catch-up reads only refill what a
  // starved cycle skipped). MEMS-side reads are legally partial, so only
  // the disk cycle's one-IO-per-stream invariant is byte-audited.
  const Bytes mems_io = config.bit_rate * server_config.t_mems;
  auto auditor = MakeAuditor(
      config, server_config.t_disk, server_config.t_mems,
      params.mems.capacity, /*nested=*/true,
      static_cast<double>(config.num_streams) * 2 * mems_io);
  if (auditor != nullptr) {
    for (const auto& s : streams) {
      auditor->AddStream(s.id, s.bit_rate, 2 * mems_io,
                         obs::QosDomain::kDisk);
    }
    auditor->Seal();
  }
  server_config.auditor = auditor.get();
  auto faults = MakeInjector(config);
  server_config.faults = faults.get();
  auto server = MemsPipelineServer::Create(&disk.value(), std::move(bank),
                                           std::move(streams), server_config,
                                           config.trace);
  MEMSTREAM_RETURN_IF_ERROR(server.status());
  MEMSTREAM_RETURN_IF_ERROR(server.value().Run(config.sim_duration));

  const MemsPipelineReport& report = server.value().report();
  MediaServerResult out;
  out.analytic_dram_total =
      static_cast<double>(config.num_streams) *
      sizing.value().s_mems_dram_schedulable;
  out.disk_cycle = sizing.value().t_disk;
  out.mems_cycle = sizing.value().t_mems_snapped;
  out.qos = report.qos;
  out.cycle_overruns = report.disk_overruns + report.mems_overruns;
  out.sim_peak_dram = report.peak_dram_demand;
  out.disk_utilization = report.disk_utilization;
  out.mems_utilization = report.mems_utilization;
  out.ios_completed = report.ios_completed;
  out.auditor = std::move(auditor);
  out.faults = std::move(faults);
  return out;
}

Result<MediaServerResult> RunCache(const MediaServerConfig& config) {
  auto disk = device::DiskDrive::Create(config.disk);
  MEMSTREAM_RETURN_IF_ERROR(disk.status());
  auto mems_proto = device::MemsDevice::Create(config.mems);
  MEMSTREAM_RETURN_IF_ERROR(mems_proto.status());

  const auto n_cache = static_cast<std::int64_t>(
      std::llround(config.cached_fraction_of_streams *
                   static_cast<double>(config.num_streams)));
  const std::int64_t n_disk = config.num_streams - n_cache;
  if (n_cache < 0 || n_disk < 0) {
    return Status::InvalidArgument("cached_fraction_of_streams out of range");
  }

  model::DeviceProfile mems_profile =
      model::MemsProfileMaxLatency(mems_proto.value());

  MediaServerResult out;
  Seconds disk_cycle = 0;
  if (n_disk > 0) {
    model::DeviceProfile disk_profile =
        model::DiskProfileConservative(disk.value(), n_disk);
    auto cycle = model::IoCycleLength(n_disk, config.bit_rate, disk_profile);
    MEMSTREAM_RETURN_IF_ERROR(cycle.status());
    disk_cycle = cycle.value();
    auto dram =
        model::TotalBufferSize(n_disk, config.bit_rate, disk_profile);
    MEMSTREAM_RETURN_IF_ERROR(dram.status());
    out.analytic_dram_total += dram.value();
  }
  Seconds mems_cycle = 0;
  if (n_cache > 0) {
    auto s = model::CachePerStreamBuffer(n_cache, config.bit_rate, config.k,
                                         mems_profile, config.cache_policy);
    MEMSTREAM_RETURN_IF_ERROR(s.status());
    mems_cycle = s.value() / config.bit_rate;
    out.analytic_dram_total += static_cast<double>(n_cache) * s.value();
  }

  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < config.k; ++i) {
    device::MemsParameters p = config.mems;
    p.name += "#" + std::to_string(i);
    auto dev = device::MemsDevice::Create(p);
    MEMSTREAM_RETURN_IF_ERROR(dev.status());
    bank.push_back(std::move(dev).value());
  }
  const Bytes bank_content =
      config.cache_policy == model::CachePolicy::kStriped
          ? mems_profile.capacity * static_cast<double>(config.k)
          : mems_profile.capacity;

  std::vector<CacheStreamSpec> streams;
  streams.reserve(static_cast<std::size_t>(config.num_streams));
  if (n_disk > 0) {
    const Bytes io = config.bit_rate * disk_cycle;
    for (auto& s : PlaceStreams(n_disk, config.bit_rate,
                                disk.value().Capacity(), 2 * io)) {
      CacheStreamSpec spec;
      spec.id = s.id;
      spec.bit_rate = s.bit_rate;
      spec.cached = false;
      spec.offset = s.disk_offset;
      spec.extent = s.extent;
      streams.push_back(spec);
    }
  }
  if (n_cache > 0) {
    const Bytes io = config.bit_rate * mems_cycle;
    for (auto& s :
         PlaceStreams(n_cache, config.bit_rate, bank_content, 2 * io)) {
      CacheStreamSpec spec;
      spec.id = n_disk + s.id;
      spec.bit_rate = s.bit_rate;
      spec.cached = true;
      spec.offset = s.disk_offset;
      spec.extent = s.extent;
      streams.push_back(spec);
    }
  }

  auto faults = MakeInjector(config);
  std::shared_ptr<fault::DegradationManager> degradation;
  if (faults != nullptr && config.degrade) {
    // Cached content also lives on disk (it was staged from there), so
    // degradation can fall cached streams back to the Theorem 1 path.
    if (n_cache > 0) {
      const Seconds eff_disk_cycle = disk_cycle > 0 ? disk_cycle : 1.0;
      const Bytes io = config.bit_rate * eff_disk_cycle;
      auto backing = PlaceStreams(n_cache, config.bit_rate,
                                  disk.value().Capacity(), 2 * io);
      for (std::int64_t j = 0; j < n_cache; ++j) {
        auto& spec = streams[static_cast<std::size_t>(n_disk + j)];
        spec.backing_offset = backing[static_cast<std::size_t>(j)].disk_offset;
        spec.backing_extent = backing[static_cast<std::size_t>(j)].extent;
      }
    }
    fault::DegradationConfig dc;
    dc.policy = config.cache_policy;
    dc.k = config.k;
    dc.bit_rate = config.bit_rate;
    dc.mems = mems_profile;
    // Size the fallback against the worst case: every stream on disk.
    dc.disk = model::DiskProfileConservative(disk.value(), config.num_streams);
    dc.n_disk = n_disk;
    dc.n_cache = n_cache;
    dc.refill_delay = config.fault_refill_delay;
    auto dm = fault::DegradationManager::Create(dc);
    MEMSTREAM_RETURN_IF_ERROR(dm.status());
    degradation =
        std::make_shared<fault::DegradationManager>(std::move(dm).value());
  }

  CacheServerConfig server_config;
  server_config.disk_cycle = disk_cycle > 0 ? disk_cycle : 1.0;
  server_config.mems_cycle = mems_cycle > 0 ? mems_cycle : 1.0;
  server_config.policy = config.cache_policy;
  server_config.deterministic = config.deterministic;
  server_config.seed = config.seed;
  server_config.metrics = config.metrics;
  server_config.timelines = config.timelines;
  server_config.journal = config.journal;
  server_config.slo = config.slo;
  // Theorem 3/4 executable bounds: each side's double-buffered schedule
  // holds at most two cycle-sized IOs per stream.
  const Bytes disk_io = config.bit_rate * disk_cycle;
  const Bytes cache_io = config.bit_rate * mems_cycle;
  auto auditor = MakeAuditor(
      config, disk_cycle, mems_cycle, 0, /*nested=*/false,
      static_cast<double>(n_disk) * 2 * disk_io +
          static_cast<double>(n_cache) * 2 * cache_io);
  if (auditor != nullptr) {
    std::int64_t cached_seen = 0;
    for (const auto& s : streams) {
      if (s.cached) {
        // Replicated policy: device j services every (j + i*k)-th cached
        // stream; striped cycles close all kMems streams at once.
        const std::int64_t device =
            config.cache_policy == model::CachePolicy::kReplicated
                ? cached_seen % config.k
                : 0;
        auditor->AddStream(s.id, s.bit_rate, 2 * cache_io,
                           obs::QosDomain::kMems, device);
        ++cached_seen;
      } else {
        auditor->AddStream(s.id, s.bit_rate, 2 * disk_io,
                           obs::QosDomain::kDisk);
      }
    }
    auditor->Seal();
  }
  server_config.auditor = auditor.get();
  server_config.faults = faults.get();
  server_config.degradation = degradation.get();
  auto server = CacheStreamingServer::Create(
      &disk.value(), std::move(bank), std::move(streams), server_config,
      config.trace);
  MEMSTREAM_RETURN_IF_ERROR(server.status());
  MEMSTREAM_RETURN_IF_ERROR(server.value().Run(config.sim_duration));

  const CacheServerReport& report = server.value().report();
  out.disk_cycle = disk_cycle;
  out.mems_cycle = mems_cycle;
  out.qos = report.qos;
  out.auditor = std::move(auditor);
  out.faults = std::move(faults);
  out.cycle_overruns = report.disk_overruns + report.mems_overruns;
  out.sim_peak_dram = report.peak_dram_demand;
  out.disk_utilization = report.disk_utilization;
  out.mems_utilization = report.mems_utilization;
  out.ios_completed = report.ios_completed;
  return out;
}

}  // namespace

Result<MediaServerResult> RunMediaServer(const MediaServerConfig& config) {
  if (config.num_streams < 1) {
    return Status::InvalidArgument("num_streams must be >= 1");
  }
  if (config.bit_rate <= 0) {
    return Status::InvalidArgument("bit_rate must be > 0");
  }
  if (config.k < 1 && config.mode != ServerMode::kDirect) {
    return Status::InvalidArgument("k must be >= 1 for MEMS modes");
  }
  auto run = [&]() -> Result<MediaServerResult> {
    switch (config.mode) {
      case ServerMode::kDirect:
        return RunDirect(config);
      case ServerMode::kMemsBuffer:
        return RunBuffer(config);
      case ServerMode::kMemsCache:
        return RunCache(config);
    }
    return Status::InvalidArgument("unknown mode");
  }();
  if (run.ok()) {
    // Servers mark their own departures; Finalize only sweeps up streams
    // an aborted run never departed, then the summary goes to metrics.
    if (config.journal != nullptr) {
      config.journal->Finalize(config.sim_duration);
      config.journal->PublishSummary(config.metrics);
    }
    if (config.slo != nullptr) config.slo->PublishGauges(config.metrics);
  }
  return run;
}

obs::RunReport BuildRunReport(const MediaServerConfig& config,
                              const MediaServerResult& result,
                              const obs::MetricsRegistry* metrics) {
  obs::RunReport report;
  report.title = std::string("media-server ") + ServerModeName(config.mode);
  report.AddConfig("mode", ServerModeName(config.mode));
  report.AddConfig("disk", config.disk.name);
  report.AddConfig("mems", config.mems.name);
  report.AddConfig("k", std::to_string(config.k));
  report.AddConfig("num_streams", std::to_string(config.num_streams));
  report.AddConfig("bit_rate_mbps", std::to_string(config.bit_rate / kMBps));
  report.AddConfig("sim_duration_s", std::to_string(config.sim_duration));
  report.AddConfig("deterministic", config.deterministic ? "true" : "false");
  report.AddConfig("seed", std::to_string(config.seed));

  report.AddAnalytic("dram_total_bytes", result.analytic_dram_total);
  report.AddAnalytic("disk_cycle_s", result.disk_cycle);
  report.AddAnalytic("mems_cycle_s", result.mems_cycle);

  report.AddSimulated("underflow_events",
                      static_cast<double>(result.qos.underflow_events));
  report.AddSimulated("underflow_time_s", result.qos.underflow_time);
  report.AddSimulated("cycle_overruns",
                      static_cast<double>(result.cycle_overruns));
  report.AddSimulated("peak_dram_bytes", result.sim_peak_dram);
  report.AddSimulated("disk_utilization", result.disk_utilization);
  report.AddSimulated("mems_utilization", result.mems_utilization);
  report.AddSimulated("ios_completed",
                      static_cast<double>(result.ios_completed));
  report.AddSimulated("qos_violations",
                      static_cast<double>(result.qos.violations));

  report.metrics = metrics;
  report.qos = result.auditor.get();
  report.timelines = config.timelines;
  report.streams = config.journal;
  report.slo = config.slo;
  if (result.faults != nullptr) report.faults = &result.faults->block();
  if (config.trace != nullptr) {
    report.trace_dropped_records = config.trace->dropped_records();
  }
  return report;
}

}  // namespace memstream::server
