// Earliest-Deadline-First streaming server: the competing class of
// real-time disk scheduling the paper cites (§6: Daigle & Strosnider;
// QPMS/time-cycle vs EDF). Instead of batching one IO per stream per
// cycle, the disk always services the stream whose playout buffer will
// run dry first (non-preemptive EDF on IO deadlines), skipping streams
// whose buffers are already full.
//
// EDF adapts naturally to heterogeneous loads but gives up the batch
// seek optimization: requests are ordered by deadline, not position, so
// the disk pays near-random seeks. The ablation bench quantifies the
// resulting throughput gap against the time-cycle/elevator server —
// the classical reason media servers standardized on cycle-based
// scheduling.

#ifndef MEMSTREAM_SERVER_EDF_SERVER_H_
#define MEMSTREAM_SERVER_EDF_SERVER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "device/disk.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/timeline.h"
#include "server/qos_counters.h"
#include "server/stream_batch.h"
#include "server/timecycle_server.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::server {

/// Knobs of the EDF server.
struct EdfServerConfig {
  /// Per-stream IO size in seconds of playback (the buffer holds up to
  /// 2x this, mirroring the double-buffered time-cycle server).
  Seconds io_playback = 1.0;
  bool deterministic = true;
  std::uint64_t seed = 42;
  /// Optional telemetry: IO counters, run summary gauges. Null (the
  /// default) costs one pointer test per update site. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional online QoS auditor. EDF has no cycles, so register the
  /// streams with domain kNone (occupancy-only audit, bound 2x the IO
  /// size) and Seal() before Run(). Not owned.
  obs::QosAuditor* auditor = nullptr;
  /// Optional timeline recorder: per-stream DRAM occupancy. Not owned.
  obs::TimelineRecorder* timelines = nullptr;
  /// Optional fault injection: disk IOs pay the plan's latency-spike
  /// penalty; device-scoped faults are observed only. Not owned.
  fault::FaultInjector* faults = nullptr;
  /// Optional per-stream lifecycle journal; streams self-register at
  /// Create under the 2x-IO buffer cap as their envelope. Not owned.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor. EDF has no cycles: the "cycle_slack" SLO is
  /// fed from deadline outcomes (a miss burns the budget) and
  /// "underflow" per serviced IO. Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// EDF statistics (a ServerReport subset plus scheduling counters).
struct EdfServerReport {
  std::int64_t ios_completed = 0;
  std::int64_t deadline_misses = 0;  ///< IOs finishing after their deadline
  Seconds total_busy = 0;
  Seconds idle_time = 0;             ///< disk idle: all buffers full
  Seconds horizon = 0;
  QosCounters qos;                   ///< underflows/violations
  Bytes peak_buffer_demand = 0;
  double device_utilization = 0;
};

/// Non-preemptive EDF server over one disk. Read streams only.
class EdfStreamingServer {
 public:
  static Result<EdfStreamingServer> Create(
      device::DiskDrive* disk, std::vector<StreamSpec> streams,
      const EdfServerConfig& config, sim::TraceLog* trace = nullptr);

  /// Simulates `duration` seconds. May be called once.
  Status Run(Seconds duration);

  const EdfServerReport& report() const { return report_; }
  /// Playout session of the i-th stream (spec order).
  StreamView session(std::size_t i) const { return play_.view(i); }
  std::size_t num_streams() const { return play_.size(); }

 private:
  EdfStreamingServer(device::DiskDrive* disk,
                     std::vector<StreamSpec> streams,
                     const EdfServerConfig& config, sim::TraceLog* trace);

  /// Picks and services the next IO; schedules itself at completion (or
  /// at the next useful instant when every buffer is full).
  void ServiceNext(Seconds deadline_time);

  /// The deadline of stream i: when its buffer runs dry.
  Seconds DeadlineOf(std::size_t i);

  device::DiskDrive* disk_;
  std::vector<StreamSpec> streams_;
  EdfServerConfig config_;
  sim::TraceLog* trace_;
  sim::Simulator sim_;
  Rng rng_;
  PlaybackBatch play_;  ///< SoA session state, index == stream index
  std::vector<Bytes> play_cursor_;
  EdfServerReport report_;
  bool busy_ = false;  ///< an IO is in flight on the disk
  bool ran_ = false;
  // Telemetry handles (null when the matching config member is null).
  obs::Counter* ios_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  std::vector<obs::TimelineSeries*> occupancy_series_;  ///< per stream
  // Journal/SLO handles (null / -1 when the hooks are off).
  obs::StreamJournal* journal_ = nullptr;
  std::vector<std::ptrdiff_t> jslot_;      ///< per stream
  std::vector<std::int64_t> uf_seen_;      ///< underflows already journaled
  obs::Slo* slo_underflow_ = nullptr;
  obs::Slo* slo_slack_ = nullptr;
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_EDF_SERVER_H_
