#include "server/buffer_pool.h"

#include <algorithm>

#include "common/profiler.h"

namespace memstream::server {

void BufferPool::AttachMetrics(obs::MetricsRegistry* metrics,
                               const std::string& prefix) {
  if (metrics == nullptr) {
    used_gauge_ = nullptr;
    peak_gauge_ = nullptr;
    exhausted_metric_ = nullptr;
    return;
  }
  used_gauge_ = metrics->gauge(prefix + ".used_bytes");
  peak_gauge_ = metrics->gauge(prefix + ".peak_bytes");
  exhausted_metric_ = metrics->counter(prefix + ".reserve_failures");
  metrics->gauge(prefix + ".capacity_bytes")->Set(capacity_);
  used_gauge_->Set(used_);
  peak_gauge_->Set(peak_used_);
}

Status BufferPool::Reserve(Bytes bytes) {
  PROF_SCOPE("server.buffer_pool.reserve");
  if (bytes < 0) return Status::InvalidArgument("negative reservation");
  if (used_ + bytes > capacity_ * (1.0 + 1e-9)) {
    obs::Increment(exhausted_metric_);
    return Status::ResourceExhausted("buffer pool exhausted");
  }
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  obs::Set(used_gauge_, used_);
  obs::Set(peak_gauge_, peak_used_);
  return Status::OK();
}

Status BufferPool::Release(Bytes bytes) {
  PROF_SCOPE("server.buffer_pool.release");
  if (bytes < 0) return Status::InvalidArgument("negative release");
  if (bytes > used_ + 1e-6) {
    return Status::InvalidArgument("releasing more than reserved");
  }
  used_ = std::max(0.0, used_ - bytes);
  obs::Set(used_gauge_, used_);
  return Status::OK();
}

}  // namespace memstream::server
