#include "server/buffer_pool.h"

#include <algorithm>

namespace memstream::server {

Status BufferPool::Reserve(Bytes bytes) {
  if (bytes < 0) return Status::InvalidArgument("negative reservation");
  if (used_ + bytes > capacity_ * (1.0 + 1e-9)) {
    return Status::ResourceExhausted("buffer pool exhausted");
  }
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return Status::OK();
}

Status BufferPool::Release(Bytes bytes) {
  if (bytes < 0) return Status::InvalidArgument("negative release");
  if (bytes > used_ + 1e-6) {
    return Status::InvalidArgument("releasing more than reserved");
  }
  used_ = std::max(0.0, used_ - bytes);
  return Status::OK();
}

}  // namespace memstream::server
