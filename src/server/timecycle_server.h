// Direct disk <-> DRAM streaming server under time-cycle IO scheduling
// (the paper's baseline, Theorem 1): in every cycle of length T the disk
// performs exactly one IO of B̄_i * T bytes per stream, reordered by the
// elevator. Read streams deposit into playout sessions (underflow =
// jitter); write streams — the §3.1 extension — drain encoder staging
// buffers (overflow = dropped capture). Executing this schedule in the
// discrete-event simulator validates the analytical sizing: cycles must
// not overrun, no session may underflow, no staging buffer may overflow.

#ifndef MEMSTREAM_SERVER_TIMECYCLE_SERVER_H_
#define MEMSTREAM_SERVER_TIMECYCLE_SERVER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "common/status.h"
#include "device/disk.h"
#include "device/disk_scheduler.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "obs/timeline.h"
#include "server/qos_counters.h"
#include "server/stream_batch.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::server {

/// Direction of a stream relative to the disk.
enum class StreamDirection {
  kRead,   ///< playback: disk -> DRAM -> client
  kWrite,  ///< recording: encoder -> DRAM staging -> disk
};

/// A stream to be serviced: sequential access to `extent` bytes placed
/// at `disk_offset` (wrapping, so any simulation horizon works).
struct StreamSpec {
  std::int64_t id = 0;
  BytesPerSecond bit_rate = 0;
  Bytes disk_offset = 0;
  Bytes extent = 0;
  StreamDirection direction = StreamDirection::kRead;
};

/// Knobs of the direct server.
struct DirectServerConfig {
  Seconds cycle = 1.0;  ///< the IO cycle T (from model::IoCycleLength)
  device::SchedulerPolicy policy = device::SchedulerPolicy::kCLook;
  /// Staging allocation per write stream, in IO-sized units; the
  /// double-buffered schedule needs at most ~2 (see the validation
  /// tests), so the default leaves a little slack.
  double staging_ios = 2.2;
  /// §3.1.2: "Spare bandwidth, if available, can be used for
  /// non-real-time traffic." When > 0, cycle slack left after the
  /// real-time batch is filled with best-effort IOs of this size at
  /// random positions, admitted only while a worst-case-latency IO still
  /// fits before the cycle boundary (so real-time streams are never put
  /// at risk).
  Bytes best_effort_io = 0;
  /// Deterministic mode charges the expected rotational delay; otherwise
  /// the delay is sampled per IO from `seed`.
  bool deterministic = true;
  std::uint64_t seed = 42;
  /// Optional telemetry: cycle-slack histogram, per-stream occupancy,
  /// run summary gauges. Null (the default) compiles the hooks down to a
  /// pointer test per site. Not owned; must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional online QoS auditor. Register the streams (spec order, read
  /// streams domain kDisk) and Seal() before Run(); the server drives the
  /// per-cycle hooks. Null costs one pointer test per hook site. Not
  /// owned.
  obs::QosAuditor* auditor = nullptr;
  /// Optional timeline recorder: per-stream DRAM occupancy and disk
  /// cycle-utilization series. Null costs one pointer test per sample.
  /// Not owned.
  obs::TimelineRecorder* timelines = nullptr;
  /// Optional fault injection: disk IOs pay the plan's latency-spike
  /// penalty; device-scoped faults are observed only (no MEMS bank).
  /// Not owned; must outlive the server.
  fault::FaultInjector* faults = nullptr;
  /// Optional per-stream lifecycle journal. The server self-registers
  /// its streams at Create (read streams under the Theorem-1 2*B*T
  /// envelope, write streams under their staging allocation) and feeds
  /// IO/underflow records from the existing cycle callbacks — no new
  /// sim events, so event order and bench output are unchanged. Not
  /// owned; must outlive the server.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor: feeds the standard "underflow" (per
  /// stream-cycle) and "cycle_slack" (per disk cycle) SLOs. Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// Post-run statistics common to all the simulated servers.
struct ServerReport {
  std::int64_t cycles = 0;
  std::int64_t ios_completed = 0;
  std::int64_t cycle_overruns = 0;   ///< cycles whose busy time exceeded T
  Seconds max_cycle_busy = 0;
  Seconds total_busy = 0;            ///< device busy time (for utilization)
  Seconds horizon = 0;               ///< simulated duration
  QosCounters qos;                   ///< underflows/overflows/violations
  Bytes peak_buffer_demand = 0;      ///< sum of per-session peak levels
  double device_utilization = 0;     ///< total_busy / horizon
  std::int64_t best_effort_ios = 0;  ///< slack-filling IOs serviced
  Bytes best_effort_bytes = 0;
};

/// The baseline server. Construction validates the stream set against the
/// disk capacity; Run() executes the schedule and fills the report.
class DirectStreamingServer {
 public:
  static Result<DirectStreamingServer> Create(
      device::DiskDrive* disk, std::vector<StreamSpec> streams,
      const DirectServerConfig& config, sim::TraceLog* trace = nullptr);

  /// Simulates `duration` seconds of service. May be called once.
  Status Run(Seconds duration);

  const ServerReport& report() const { return report_; }

  /// Playout session of the i-th *read* stream (in spec order).
  StreamView session(std::size_t i) const { return play_.view(i); }
  std::vector<StreamView> play_sessions() const { return play_.views(); }
  std::vector<RecordingView> record_sessions() const {
    return record_.views();
  }
  std::size_t num_streams() const { return streams_.size(); }

 private:
  DirectStreamingServer(device::DiskDrive* disk,
                        std::vector<StreamSpec> streams,
                        const DirectServerConfig& config,
                        sim::TraceLog* trace);

  void RunCycle(Seconds deadline);

  device::DiskDrive* disk_;
  std::vector<StreamSpec> streams_;
  DirectServerConfig config_;
  sim::TraceLog* trace_;
  sim::Simulator sim_;
  Rng rng_;
  PlaybackBatch play_;     ///< SoA state of the read streams
  RecordingBatch record_;  ///< SoA state of the write streams
  /// Per stream: index into play_ or record_.
  std::vector<std::size_t> session_index_;
  std::vector<Bytes> play_cursor_;  ///< per-stream offset within extent
  std::int64_t last_head_offset_ = 0;
  CycleArena arena_;        ///< per-cycle scratch (batch + order)
  Seconds horizon_ = 0;     ///< Run() duration; bounds eager effects
  /// Fast path: with no TraceLog attached, IO completion effects are
  /// applied inline in the cycle loop (in the same order the scheduled
  /// events would have fired) instead of through the event queue.
  bool eager_ = false;
  ServerReport report_;
  bool ran_ = false;
  // Telemetry handles (null when config_.metrics is null).
  obs::HistogramMetric* slack_hist_ = nullptr;
  obs::Counter* cycles_metric_ = nullptr;
  obs::Counter* overruns_metric_ = nullptr;
  obs::Counter* ios_metric_ = nullptr;
  std::vector<obs::TimeWeightedGauge*> play_occupancy_;  ///< per session
  std::vector<obs::TimeWeightedGauge*> staging_occupancy_;
  // Timeline handles (null when config_.timelines is null).
  std::vector<obs::TimelineSeries*> play_series_;  ///< per session
  obs::TimelineSeries* disk_util_series_ = nullptr;
  // Journal/SLO handles (null / empty when the hooks are off). Slots are
  // resolved once at construction; per-cycle underflow deltas come from
  // comparing the batch counters against uf_seen_ (preallocated).
  obs::StreamJournal* journal_ = nullptr;
  std::vector<std::ptrdiff_t> jslot_;        ///< per stream (spec order)
  std::vector<std::int64_t> uf_seen_;        ///< per play session
  obs::Slo* slo_underflow_ = nullptr;
  obs::Slo* slo_slack_ = nullptr;

  void ObserveCycleOutcomes(Seconds now, bool overrun);
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_TIMECYCLE_SERVER_H_
