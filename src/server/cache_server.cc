#include "server/cache_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

Result<CacheStreamingServer> CacheStreamingServer::Create(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<CacheStreamSpec> streams, const CacheServerConfig& config,
    sim::TraceLog* trace) {
  if (bank.empty()) return Status::InvalidArgument("bank must not be empty");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.disk_cycle <= 0 || config.mems_cycle <= 0) {
    return Status::InvalidArgument("cycle lengths must be > 0");
  }
  const Bytes bank_content =
      config.policy == model::CachePolicy::kStriped
          ? bank[0].Capacity() * static_cast<double>(bank.size())
          : bank[0].Capacity();
  bool any_disk = false;
  for (const auto& s : streams) {
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0) return Status::InvalidArgument("empty extent");
    if (s.cached) {
      if (s.offset + s.extent > bank_content) {
        return Status::OutOfRange("cached stream beyond bank capacity");
      }
      if (s.bit_rate * config.mems_cycle > s.extent) {
        return Status::InvalidArgument("extent smaller than one cache IO");
      }
    } else {
      any_disk = true;
      if (disk == nullptr) {
        return Status::InvalidArgument("uncached streams but no disk");
      }
      if (s.offset + s.extent > disk->Capacity()) {
        return Status::OutOfRange("stream extent beyond disk capacity");
      }
      if (s.bit_rate * config.disk_cycle > s.extent) {
        return Status::InvalidArgument("extent smaller than one disk IO");
      }
    }
    if (s.cached && s.backing_extent > 0) {
      if (disk == nullptr) {
        return Status::InvalidArgument("backing copy but no disk");
      }
      if (s.backing_offset + s.backing_extent > disk->Capacity()) {
        return Status::OutOfRange("backing copy beyond disk capacity");
      }
      if (s.bit_rate * config.disk_cycle > s.backing_extent) {
        return Status::InvalidArgument(
            "backing copy smaller than one disk IO");
      }
    }
  }
  (void)any_disk;
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return CacheStreamingServer(disk, std::move(bank), std::move(streams),
                              config, trace);
}

CacheStreamingServer::CacheStreamingServer(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<CacheStreamSpec> streams, const CacheServerConfig& config,
    sim::TraceLog* trace)
    : disk_(disk),
      bank_(std::move(bank)),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  play_cursor_.assign(streams_.size(), 0);
  device_busy_.assign(bank_.size(), 0);
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    play_.Add(streams_[i].id, streams_[i].bit_rate);
    if (streams_[i].cached) {
      cache_streams_.push_back(i);
    } else {
      disk_streams_.push_back(i);
    }
  }
  device_alive_.assign(bank_.size(), true);
  placement_.assign(streams_.size(), Placement::kCache);
  device_cycle_running_.assign(bank_.size(), false);
  // Replicated assignment: device j services every (j + i*k)-th cached
  // stream (rebuilt over alive devices whenever degradation re-plans).
  replicated_assign_.assign(bank_.size(), {});
  for (std::size_t j = 0; j < cache_streams_.size(); ++j) {
    replicated_assign_[j % bank_.size()].push_back(cache_streams_[j]);
  }

  // Resolve telemetry handles once; hot-path updates are null-guarded.
  obs::MetricsRegistry* metrics = config_.metrics;
  dram_occupancy_.assign(play_.size(), nullptr);
  if (metrics != nullptr) {
    const double disk_ms = config_.disk_cycle / kMillisecond;
    const double mems_ms = config_.mems_cycle / kMillisecond;
    disk_slack_hist_ = metrics->histogram("server.cache.disk.cycle_slack_ms",
                                          {-disk_ms, disk_ms, 40});
    mems_slack_hist_ = metrics->histogram("server.cache.mems.cycle_slack_ms",
                                          {-mems_ms, mems_ms, 40});
    disk_cycles_metric_ = metrics->counter("server.cache.disk.cycles");
    mems_cycles_metric_ = metrics->counter("server.cache.mems.cycles");
    ios_metric_ = metrics->counter("server.cache.ios");
    for (std::size_t i = 0; i < play_.size(); ++i) {
      dram_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(play_.id(i)) + ".dram_bytes");
    }
  }
  journal_ = config_.journal;
  jslot_.assign(streams_.size(), -1);
  uf_seen_.assign(streams_.size(), 0);
  if (journal_ != nullptr) {
    const double factor =
        config_.dram_bound_factor > 0 ? config_.dram_bound_factor : 2.0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const auto& s = streams_[i];
      // Cached streams live under the Theorem-3/4 MEMS-cycle envelope,
      // disk streams under Theorem 1's (matching the audited bounds).
      const Bytes envelope =
          factor * s.bit_rate *
          (s.cached ? config_.mems_cycle : config_.disk_cycle);
      jslot_[i] = static_cast<std::ptrdiff_t>(
          journal_->EnsureStream(s.id, s.bit_rate, envelope, 0.0));
    }
  }
  if (config_.slo != nullptr) {
    slo_underflow_ = config_.slo->Add(obs::StandardUnderflowSlo());
    slo_slack_ = config_.slo->Add(obs::StandardCycleSlackSlo());
    slo_availability_ = config_.slo->Add(obs::StandardAvailabilitySlo());
  }
  dram_series_.assign(play_.size(), nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < play_.size(); ++i) {
      dram_series_[i] = tl->AddSeries(
          "stream." + std::to_string(play_.id(i)) + ".dram_bytes",
          "bytes");
    }
  }
}

void CacheStreamingServer::ScheduleDeposit(std::size_t stream, Bytes bytes,
                                           Seconds done, Seconds boundary,
                                           const std::string& actor,
                                           Seconds service) {
  if (eager_) {
    // Inline completion: with no trace and no faults the scheduled event
    // would have fired at `done` with exactly this state (deposit times
    // are monotone per stream and no re-plan can intervene); effects past
    // the horizon never fire, matching the simulator's drop of events
    // beyond Run(until).
    if (done > horizon_) return;
    play_.Deposit(stream, done, bytes);
    const Bytes level = play_.LevelAt(stream, done);
    obs::Update(dram_occupancy_[stream], done, level);
    obs::Record(dram_series_[stream], done, level);
    obs::RecordDramLevel(config_.auditor, stream, done, level);
    obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
    if (!play_.playing(stream) && placement_[stream] != Placement::kShed) {
      const Seconds start = std::max(done, boundary);
      if (start <= horizon_) play_.StartPlayback(stream, start);
    }
    return;
  }
  sim_.ScheduleAt(done, [this, stream, bytes, done, boundary, actor,
                         service]() {
    play_.Deposit(stream, done, bytes);
    const Bytes level = play_.LevelAt(stream, done);
    obs::Update(dram_occupancy_[stream], done, level);
    obs::Record(dram_series_[stream], done, level);
    obs::RecordDramLevel(config_.auditor, stream, done, level);
    obs::JournalIo(journal_, jslot_[stream], done, bytes, level);
    if (trace_ != nullptr) {
      trace_->Append({done, sim::TraceKind::kIoCompleted, actor,
                      play_.id(stream), bytes, "", service});
      trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                      play_.id(stream), level, ""});
    }
    if (!play_.playing(stream) && placement_[stream] != Placement::kShed) {
      const Seconds start = std::max(done, boundary);
      sim_.ScheduleAt(start, [this, stream, start]() {
        // Re-check: the stream may have been shed between the deposit
        // and the playback boundary.
        if (!play_.playing(stream) &&
            placement_[stream] != Placement::kShed) {
          play_.StartPlayback(stream, start);
        }
      });
    }
  });
}

Bytes CacheStreamingServer::EffOffset(std::size_t i) const {
  return placement_[i] == Placement::kDisk && streams_[i].cached
             ? streams_[i].backing_offset
             : streams_[i].offset;
}

Bytes CacheStreamingServer::EffExtent(std::size_t i) const {
  return placement_[i] == Placement::kDisk && streams_[i].cached
             ? streams_[i].backing_extent
             : streams_[i].extent;
}

void CacheStreamingServer::RunDiskCycle(Seconds deadline) {
  PROF_SCOPE("server.cache.disk_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline || disk_streams_.empty()) {
    disk_running_ = false;
    return;
  }

  // Batch scratch lives in the arena: one IoSpan + serviced index per
  // active disk stream, recycled every cycle (zero steady-state heap
  // traffic).
  arena_.Reset();
  auto* batch = arena_.Alloc<device::IoSpan>(disk_streams_.size());
  auto* serviced =
      arena_.Alloc<std::size_t>(disk_streams_.size());  ///< stream index
  std::size_t n = 0;
  for (std::size_t i : disk_streams_) {
    if (placement_[i] == Placement::kShed) continue;
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.disk_cycle;
    const Bytes extent = EffExtent(i);
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;
    batch[n] = device::IoSpan{
        static_cast<std::int64_t>(EffOffset(i) + cursor), io_bytes};
    serviced[n] = i;
    ++n;
  }
  if (n == 0) {
    disk_running_ = false;
    return;
  }

  auto* order = arena_.Alloc<std::size_t>(n);
  auto* scratch = arena_.Alloc<std::size_t>(n);
  device::ScheduleOrderInto(config_.disk_policy, last_head_offset_, batch,
                            n, order, scratch);
  // The actor label only reaches trace records; skip the per-cycle
  // string on the eager path (which never traces).
  const std::string actor = eager_ ? std::string() : disk_->name();
  Seconds busy = 0;
  for (std::size_t oi = 0; oi < n; ++oi) {
    const std::size_t pos = order[oi];
    auto st = disk_->Service(batch[pos],
                             config_.deterministic ? nullptr : &rng_);
    if (!st.ok()) continue;  // unreachable: validated in Create
    Seconds service = st.value();
    if (config_.faults != nullptr) {
      // Latency-spike fault: every disk IO in the window pays the extra.
      service += config_.faults->DiskIoPenalty(t0 + busy);
    }
    busy += service;
    last_head_offset_ = batch[pos].offset;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, serviced[pos], batch[pos].bytes);
    ScheduleDeposit(serviced[pos], batch[pos].bytes, t0 + busy,
                    t0 + config_.disk_cycle, actor, service);
  }

  report_.disk_busy += busy;
  const bool overrun = busy > config_.disk_cycle * (1.0 + 1e-9);
  if (overrun) ++report_.disk_overruns;
  ++report_.disk_cycles;
  obs::Increment(disk_cycles_metric_);
  obs::Observe(disk_slack_hist_, (config_.disk_cycle - busy) / kMillisecond);
  obs::EndDiskCycle(config_.auditor, t0, busy);
  ObserveCycleOutcomes(t0 + busy, overrun);
  if (trace_ != nullptr && busy > 0) {
    // Scheduled so the record lands in time order among the IO records.
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, disk_->name(), -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.disk_cycle, busy);
  if (next < deadline) {
    disk_running_ = true;
    sim_.ScheduleAt(next, [this, deadline]() { RunDiskCycle(deadline); });
  } else {
    disk_running_ = false;
  }
}

void CacheStreamingServer::RunStripedCycle(Seconds deadline) {
  PROF_SCOPE("server.cache.striped_mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline || cache_streams_.empty() || cache_halted_) {
    striped_running_ = false;
    return;
  }

  static const std::string kStripedActor = "mems-striped";
  const auto k = static_cast<double>(bank_.size());
  Seconds busy = 0;
  bool any = false;
  for (std::size_t i : cache_streams_) {
    if (placement_[i] != Placement::kCache) continue;
    any = true;
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.mems_cycle;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;

    // Lock-step: every device transfers io_bytes/k at the same relative
    // location; the elapsed time is the common per-device time. Every
    // stripe needs all k devices (Corollary 3) — with any of them failed
    // the read yields nothing, so the stream starves unless a
    // DegradationManager halted the cache and re-planned.
    const device::IoSpan local{
        static_cast<std::int64_t>((s.offset + cursor) / k), io_bytes / k};
    Seconds op_time = 0;
    bool stripe_ok = true;
    for (auto& dev : bank_) {
      auto st = dev.Service(local, nullptr);
      if (!st.ok()) {
        stripe_ok = false;
        continue;
      }
      op_time = std::max(op_time, st.value());
    }
    busy += op_time;
    if (!stripe_ok) continue;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, i, io_bytes);
    ScheduleDeposit(i, io_bytes, t0 + busy, t0 + config_.mems_cycle,
                    kStripedActor, op_time);
  }
  if (!any) {
    striped_running_ = false;
    return;
  }

  for (auto& b : device_busy_) b += busy;  // all devices move together
  report_.mems_busy += busy * k;
  const bool overrun = busy > config_.mems_cycle * (1.0 + 1e-9);
  if (overrun) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.mems_cycle - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, -1, t0, busy);
  ObserveCycleOutcomes(t0 + busy, overrun);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, "mems-striped", -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.mems_cycle, busy);
  if (next < deadline) {
    striped_running_ = true;
    sim_.ScheduleAt(next, [this, deadline]() { RunStripedCycle(deadline); });
  } else {
    striped_running_ = false;
  }
}

void CacheStreamingServer::RunReplicatedCycle(std::size_t dev,
                                              Seconds deadline) {
  PROF_SCOPE("server.cache.replicated_mems_cycle");
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline || !device_alive_[dev]) {
    device_cycle_running_[dev] = false;
    return;
  }

  // Device `dev` services its assigned cached streams (initially every
  // (dev + j*k)-th; rebuilt over alive devices after degradation).
  const std::string actor = eager_ ? std::string() : bank_[dev].name();
  Seconds busy = 0;
  bool any = false;
  for (std::size_t i : replicated_assign_[dev]) {
    if (placement_[i] != Placement::kCache) continue;
    any = true;
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.mems_cycle;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;

    auto st = bank_[dev].Service(
        device::IoSpan{static_cast<std::int64_t>(s.offset + cursor),
                       io_bytes},
        nullptr);
    if (!st.ok()) continue;  // failed device: loop exits via device_alive_
    busy += st.value();
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, i, io_bytes);
    ScheduleDeposit(i, io_bytes, t0 + busy, t0 + config_.mems_cycle,
                    actor, st.value());
  }
  if (!any) {
    device_cycle_running_[dev] = false;
    return;
  }

  device_busy_[dev] += busy;
  report_.mems_busy += busy;
  const bool overrun = busy > config_.mems_cycle * (1.0 + 1e-9);
  if (overrun) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.mems_cycle - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, static_cast<std::int64_t>(dev), t0,
                    busy);
  ObserveCycleOutcomes(t0 + busy, overrun);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, actor, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, actor, -1, 0, "",
                      busy});
    });
  }

  const Seconds next = t0 + std::max(config_.mems_cycle, busy);
  if (next < deadline) {
    device_cycle_running_[dev] = true;
    sim_.ScheduleAt(next, [this, dev, deadline]() {
      RunReplicatedCycle(dev, deadline);
    });
  } else {
    device_cycle_running_[dev] = false;
  }
}

void CacheStreamingServer::CushionDeposit(std::size_t i, Bytes target_level) {
  const Seconds now = sim_.Now();
  const Bytes level = play_.LevelAt(i, now);
  if (level >= target_level) return;
  const Bytes bytes = target_level - level;
  play_.Deposit(i, now, bytes);
  if (trace_ != nullptr) {
    trace_->Append({now, sim::TraceKind::kNote, "degradation",
                    play_.id(i), bytes, "transition prefetch"});
  }
}

void CacheStreamingServer::TransitionStream(std::size_t i, Placement target) {
  const Placement from = placement_[i];
  if (from == target) return;
  const Seconds now = sim_.Now();
  placement_[i] = target;
  fault::FaultInjector* faults = config_.faults;

  if (target == Placement::kShed) {
    play_.PausePlayback(i, now);
    if (config_.auditor != nullptr) config_.auditor->SetStreamActive(i, false);
    if (faults != nullptr) {
      faults->RecordShed(play_.id(i), now, report_.mems_cycles);
    }
    if (journal_ != nullptr && jslot_[i] >= 0) {
      journal_->MarkShed(static_cast<std::size_t>(jslot_[i]), now);
    }
    if (from == Placement::kDisk) {
      disk_streams_.erase(
          std::remove(disk_streams_.begin(), disk_streams_.end(), i),
          disk_streams_.end());
    }
    return;
  }

  if (from == Placement::kShed) {
    if (config_.auditor != nullptr) config_.auditor->SetStreamActive(i, true);
    if (faults != nullptr) faults->RecordReadmit(play_.id(i), now);
    if (journal_ != nullptr && jslot_[i] >= 0) {
      journal_->MarkReadmitted(static_cast<std::size_t>(jslot_[i]), now);
    }
  }

  if (target == Placement::kDisk) {
    disk_streams_.push_back(i);
    if (journal_ != nullptr && jslot_[i] >= 0 && streams_[i].cached) {
      // Disk fallback: the cached stream is still served, off its plan.
      journal_->MarkDegraded(static_cast<std::size_t>(jslot_[i]), now, 1);
    }
    if (config_.auditor != nullptr) {
      config_.auditor->SetStreamDomain(i, obs::QosDomain::kDisk);
    }
    // The stream keeps playing across the switch; bridge the gap until
    // its first disk-cycle deposit (up to one full boundary + batch).
    if (play_.playing(i)) {
      CushionDeposit(i, config_.dram_bound_factor * streams_[i].bit_rate *
                            config_.disk_cycle);
    }
  } else {  // back to the cache path
    if (from == Placement::kDisk) {
      disk_streams_.erase(
          std::remove(disk_streams_.begin(), disk_streams_.end(), i),
          disk_streams_.end());
    }
    if (config_.auditor != nullptr) {
      config_.auditor->SetStreamDomain(i, obs::QosDomain::kMems, 0);
    }
  }
}

void CacheStreamingServer::RestartServiceLoops() {
  const Seconds now = sim_.Now();
  if (now >= horizon_) return;
  bool any_cached = false;
  for (std::size_t i : cache_streams_) {
    if (placement_[i] == Placement::kCache) any_cached = true;
  }
  if (config_.policy == model::CachePolicy::kReplicated) {
    // Re-spread the active cached streams round-robin over alive devices
    // (the paper's load balance, applied to the surviving bank).
    for (auto& a : replicated_assign_) a.clear();
    std::vector<std::size_t> alive;
    for (std::size_t d = 0; d < bank_.size(); ++d) {
      if (device_alive_[d]) alive.push_back(d);
    }
    if (!alive.empty()) {
      std::size_t next = 0;
      for (std::size_t i : cache_streams_) {
        if (placement_[i] != Placement::kCache) continue;
        const std::size_t dev = alive[next % alive.size()];
        replicated_assign_[dev].push_back(i);
        if (config_.auditor != nullptr) {
          config_.auditor->SetStreamDomain(
              i, obs::QosDomain::kMems, static_cast<std::int64_t>(dev));
        }
        ++next;
      }
      for (std::size_t dev : alive) {
        if (!replicated_assign_[dev].empty() &&
            !device_cycle_running_[dev]) {
          device_cycle_running_[dev] = true;
          sim_.ScheduleAt(now, [this, dev]() {
            RunReplicatedCycle(dev, horizon_);
          });
        }
      }
    }
  } else if (any_cached && !cache_halted_ && !striped_running_) {
    striped_running_ = true;
    sim_.ScheduleAt(now, [this]() { RunStripedCycle(horizon_); });
  }
  if (!disk_streams_.empty() && !disk_running_) {
    disk_running_ = true;
    sim_.ScheduleAt(now, [this]() { RunDiskCycle(horizon_); });
  }
}

void CacheStreamingServer::ApplyReplan(const fault::FaultEvent& cause) {
  if (config_.degradation == nullptr) return;
  const Seconds now = sim_.Now();

  std::int64_t alive = 0;
  double rate_scale = 1.0;
  for (std::size_t d = 0; d < bank_.size(); ++d) {
    if (!device_alive_[d]) continue;
    ++alive;
    rate_scale = std::min(rate_scale, bank_[d].rate_scale());
  }
  const fault::CacheReplan plan =
      config_.degradation->Replan(alive, rate_scale);
  if (config_.faults != nullptr) {
    config_.faults->RecordReplan(cause, now, plan.action);
  }
  cache_halted_ = plan.cache_down;

  const Seconds old_mems_cycle = config_.mems_cycle;
  const Seconds old_disk_cycle = config_.disk_cycle;
  if (plan.retained > 0 && plan.mems_cycle > 0) {
    config_.mems_cycle = plan.mems_cycle;
    if (config_.auditor != nullptr) {
      config_.auditor->SetMemsCycle(plan.mems_cycle);
    }
  }
  if (plan.to_disk > 0 && plan.disk_cycle > 0) {
    config_.disk_cycle = plan.disk_cycle;
    if (config_.auditor != nullptr) {
      config_.auditor->SetDiskCycle(plan.disk_cycle);
    }
    if (config_.disk_cycle > old_disk_cycle) {
      // The longer degraded disk cycle also stretches the deposit gap of
      // the streams already on the disk path; bridge it and let their
      // audited bound track the cushioned level.
      for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i].cached) continue;
        if (play_.playing(i)) {
          CushionDeposit(i, config_.dram_bound_factor *
                                streams_[i].bit_rate * config_.disk_cycle);
        }
        SetTransitionBound(i, config_.disk_cycle, old_disk_cycle);
      }
    }
  }

  // Place each cached stream: the first `retained` stay on the cache,
  // the next `to_disk` with a disk-resident copy fall back, the rest are
  // shed (deterministic: spec order, so the highest-indexed cached
  // streams are shed first when the plan keeps a prefix).
  std::int64_t cache_quota = plan.retained;
  std::int64_t disk_quota = plan.to_disk;
  for (std::size_t i : cache_streams_) {
    // One deposit of the stream's pre-plan schedule may still be in
    // flight; its cycle length feeds the transition bound below.
    const Seconds carry = placement_[i] == Placement::kCache
                              ? old_mems_cycle
                              : placement_[i] == Placement::kDisk
                                    ? old_disk_cycle
                                    : 0;
    if (cache_quota > 0) {
      --cache_quota;
      TransitionStream(i, Placement::kCache);
      // Longer degraded cycles leave a deposit gap at the switch; the
      // re-plan bridges it with the slack-funded prefetch.
      if (config_.mems_cycle > old_mems_cycle && play_.playing(i)) {
        CushionDeposit(i, streams_[i].bit_rate * config_.mems_cycle);
      }
      if (config_.mems_cycle > old_mems_cycle && journal_ != nullptr &&
          jslot_[i] >= 0) {
        // Reshaped (stretched) MEMS cycle: served, but off the plan.
        journal_->MarkDegraded(static_cast<std::size_t>(jslot_[i]), now, 0);
      }
      SetTransitionBound(i, config_.mems_cycle, carry);
    } else if (disk_quota > 0 && streams_[i].backing_extent > 0) {
      --disk_quota;
      TransitionStream(i, Placement::kDisk);
      SetTransitionBound(i, config_.disk_cycle, carry);
    } else {
      TransitionStream(i, Placement::kShed);
    }
  }

  // The re-plan just re-sized per-stream buffers; the audited total
  // budget is their sum (shed streams keep their frozen sizing).
  if (config_.auditor != nullptr) {
    Bytes total = 0;
    for (Bytes b : audited_bound_) total += b;
    config_.auditor->SetDramTotalBound(total);
  }

  RestartServiceLoops();
}

void CacheStreamingServer::SetTransitionBound(std::size_t i, Seconds cycle,
                                              Seconds carry_cycle) {
  if (config_.auditor == nullptr || config_.dram_bound_factor <= 0) return;
  // Double-buffer bound on top of whatever the transition left in the
  // buffer (cushions + old-cycle deposits). Deposits land at IO
  // completion, so the old schedule can still deliver one
  // carry_cycle-sized batch after this re-plan ran; the bound admits it
  // and converges back to factor * B̄ * T once the carried bytes drain.
  const Bytes bound = play_.LevelAt(i, sim_.Now()) +
                      config_.dram_bound_factor * streams_[i].bit_rate * cycle +
                      streams_[i].bit_rate * carry_cycle;
  audited_bound_[i] = bound;
  config_.auditor->SetStreamDramBound(i, bound);
}

void CacheStreamingServer::ApplyFaultEvent(const fault::FaultEvent& e) {
  const auto dev = static_cast<std::size_t>(e.device < 0 ? 0 : e.device);
  switch (e.kind) {
    case fault::FaultKind::kMemsTipLoss:
      if (dev < bank_.size()) bank_[dev].ApplyTipLoss(e.magnitude);
      ApplyReplan(e);
      break;
    case fault::FaultKind::kMemsDeviceFail:
      if (dev < bank_.size()) {
        bank_[dev].SetFailed(true);
        device_alive_[dev] = false;
      }
      ApplyReplan(e);
      break;
    case fault::FaultKind::kMemsDeviceRepair: {
      if (dev < bank_.size()) {
        bank_[dev].SetFailed(false);
        device_alive_[dev] = true;
      }
      if (config_.policy == model::CachePolicy::kStriped &&
          config_.degradation != nullptr) {
        // Striped content was lost with the device: the stripes must be
        // refilled from disk before cache service resumes.
        const Seconds ready =
            sim_.Now() + config_.degradation->config().refill_delay;
        if (ready < horizon_) {
          sim_.ScheduleAt(ready, [this, e]() { ApplyReplan(e); });
        }
      } else {
        ApplyReplan(e);
      }
      break;
    }
    case fault::FaultKind::kDiskLatencySpike:
    case fault::FaultKind::kDramPressure:
      break;  // window faults act through the injector's time queries
  }
}

Status CacheStreamingServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;
  horizon_ = duration;
  // Trace records must interleave in exact time order, and fault-driven
  // re-plans (shed re-checks, cushions, transitions) must observe
  // deposits at their true event times — both force the event-queue
  // path. Clean untraced runs take the inline fast path.
  eager_ = trace_ == nullptr && config_.faults == nullptr;
  // Mirror the auditor's initial per-stream sizings (media_server seeds
  // them as factor * B̄ * T of each stream's domain) so re-plans can
  // re-derive the total DRAM budget from the bounds they install.
  audited_bound_.resize(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    audited_bound_[i] =
        config_.dram_bound_factor * streams_[i].bit_rate *
        (streams_[i].cached ? config_.mems_cycle : config_.disk_cycle);
  }

  if (!disk_streams_.empty()) {
    disk_running_ = true;
    MEMSTREAM_RETURN_IF_ERROR(
        sim_.Schedule(0, [this, duration]() { RunDiskCycle(duration); }));
  }
  if (!cache_streams_.empty()) {
    if (config_.policy == model::CachePolicy::kStriped) {
      striped_running_ = true;
      MEMSTREAM_RETURN_IF_ERROR(sim_.Schedule(
          0, [this, duration]() { RunStripedCycle(duration); }));
    } else {
      for (std::size_t d = 0; d < bank_.size(); ++d) {
        if (replicated_assign_[d].empty()) continue;
        device_cycle_running_[d] = true;
        MEMSTREAM_RETURN_IF_ERROR(sim_.Schedule(
            0, [this, d, duration]() { RunReplicatedCycle(d, duration); }));
      }
    }
  }
  if (config_.faults != nullptr) {
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(
        sim_, [this](const fault::FaultEvent& e) { ApplyFaultEvent(e); }));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  report_.disk_utilization =
      duration > 0 ? std::min(report_.disk_busy, duration) / duration : 0;
  Seconds busy_sum = 0;
  for (Seconds b : device_busy_) busy_sum += b;
  report_.mems_utilization =
      duration > 0
          ? busy_sum / (duration * static_cast<double>(bank_.size()))
          : 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    play_.LevelAt(i, duration);
    report_.qos.AbsorbPlayback(play_.view(i));
    report_.peak_dram_demand += play_.peak_level(i);
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "cache server");
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < play_.size(); ++i) {
      const std::int64_t delta = play_.underflow_events(i) - uf_seen_[i];
      uf_seen_[i] += delta;
      obs::JournalUnderflows(journal_, jslot_[i], duration, delta);
      if (jslot_[i] >= 0) {
        journal_->MarkDeparted(static_cast<std::size_t>(jslot_[i]),
                               duration);
      }
    }
  }

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.cache.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.cache.underflow_time_s")
        ->Set(report_.qos.underflow_time);
    metrics->gauge("server.cache.disk.overruns")
        ->Set(static_cast<double>(report_.disk_overruns));
    metrics->gauge("server.cache.mems.overruns")
        ->Set(static_cast<double>(report_.mems_overruns));
    metrics->gauge("server.cache.disk.utilization")
        ->Set(report_.disk_utilization);
    metrics->gauge("server.cache.mems.utilization")
        ->Set(report_.mems_utilization);
    metrics->gauge("server.cache.peak_dram_bytes")
        ->Set(report_.peak_dram_demand);
    metrics->gauge("prof.server.cache.arena_high_water_bytes")
        ->Set(static_cast<double>(arena_.high_water()));
    if (config_.degradation != nullptr) {
      const model::SolveMemoStats& memo = config_.degradation->replan_stats();
      metrics->gauge("prof.server.cache.replan_memo_hits")
          ->Set(static_cast<double>(memo.hits));
      metrics->gauge("prof.server.cache.replan_memo_misses")
          ->Set(static_cast<double>(memo.misses));
      metrics->gauge("prof.server.cache.replan_memo_mismatches")
          ->Set(static_cast<double>(memo.mismatches));
    }
    if (disk_ != nullptr) obs::ExportDeviceStats(metrics, *disk_, duration);
    for (const auto& dev : bank_) {
      obs::ExportDeviceStats(metrics, dev, duration);
    }
    obs::ExportSimulatorStats(metrics, sim_);
  }
  return Status::OK();
}

void CacheStreamingServer::ObserveCycleOutcomes(Seconds now, bool overrun) {
  obs::SloRecord(slo_slack_, now, overrun ? 0 : 1, overrun ? 1 : 0);
  if (journal_ == nullptr && slo_underflow_ == nullptr &&
      slo_availability_ == nullptr) {
    return;
  }
  // Underflow delta scan: the playback batch counts events cumulatively,
  // so the delta against uf_seen_ attributes new events to this cycle.
  std::int64_t uf_streams = 0;
  std::int64_t shed = 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    const std::int64_t delta = play_.underflow_events(i) - uf_seen_[i];
    if (delta > 0) {
      uf_seen_[i] += delta;
      ++uf_streams;
      obs::JournalUnderflows(journal_, jslot_[i], now, delta);
    }
    if (placement_[i] == Placement::kShed) ++shed;
  }
  const auto n = static_cast<std::int64_t>(play_.size());
  if (slo_underflow_ != nullptr && n > 0) {
    slo_underflow_->Record(now, n - uf_streams, uf_streams);
  }
  // Availability under faults: every shed stream-cycle burns the budget.
  if (slo_availability_ != nullptr && n > 0) {
    slo_availability_->Record(now, n - shed, shed);
  }
}

}  // namespace memstream::server
