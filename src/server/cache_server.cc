#include "server/cache_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/exporters.h"

namespace memstream::server {

Result<CacheStreamingServer> CacheStreamingServer::Create(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<CacheStreamSpec> streams, const CacheServerConfig& config,
    sim::TraceLog* trace) {
  if (bank.empty()) return Status::InvalidArgument("bank must not be empty");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.disk_cycle <= 0 || config.mems_cycle <= 0) {
    return Status::InvalidArgument("cycle lengths must be > 0");
  }
  const Bytes bank_content =
      config.policy == model::CachePolicy::kStriped
          ? bank[0].Capacity() * static_cast<double>(bank.size())
          : bank[0].Capacity();
  bool any_disk = false;
  for (const auto& s : streams) {
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0) return Status::InvalidArgument("empty extent");
    if (s.cached) {
      if (s.offset + s.extent > bank_content) {
        return Status::OutOfRange("cached stream beyond bank capacity");
      }
      if (s.bit_rate * config.mems_cycle > s.extent) {
        return Status::InvalidArgument("extent smaller than one cache IO");
      }
    } else {
      any_disk = true;
      if (disk == nullptr) {
        return Status::InvalidArgument("uncached streams but no disk");
      }
      if (s.offset + s.extent > disk->Capacity()) {
        return Status::OutOfRange("stream extent beyond disk capacity");
      }
      if (s.bit_rate * config.disk_cycle > s.extent) {
        return Status::InvalidArgument("extent smaller than one disk IO");
      }
    }
  }
  (void)any_disk;
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return CacheStreamingServer(disk, std::move(bank), std::move(streams),
                              config, trace);
}

CacheStreamingServer::CacheStreamingServer(
    device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
    std::vector<CacheStreamSpec> streams, const CacheServerConfig& config,
    sim::TraceLog* trace)
    : disk_(disk),
      bank_(std::move(bank)),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  play_cursor_.assign(streams_.size(), 0);
  device_busy_.assign(bank_.size(), 0);
  sessions_.reserve(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    sessions_.emplace_back(streams_[i].id, streams_[i].bit_rate);
    if (streams_[i].cached) {
      cache_streams_.push_back(i);
    } else {
      disk_streams_.push_back(i);
    }
  }

  // Resolve telemetry handles once; hot-path updates are null-guarded.
  obs::MetricsRegistry* metrics = config_.metrics;
  dram_occupancy_.assign(sessions_.size(), nullptr);
  if (metrics != nullptr) {
    const double disk_ms = config_.disk_cycle / kMillisecond;
    const double mems_ms = config_.mems_cycle / kMillisecond;
    disk_slack_hist_ = metrics->histogram("server.cache.disk.cycle_slack_ms",
                                          {-disk_ms, disk_ms, 40});
    mems_slack_hist_ = metrics->histogram("server.cache.mems.cycle_slack_ms",
                                          {-mems_ms, mems_ms, 40});
    disk_cycles_metric_ = metrics->counter("server.cache.disk.cycles");
    mems_cycles_metric_ = metrics->counter("server.cache.mems.cycles");
    ios_metric_ = metrics->counter("server.cache.ios");
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      dram_occupancy_[i] = metrics->time_weighted(
          "stream." + std::to_string(sessions_[i].id()) + ".dram_bytes");
    }
  }
  dram_series_.assign(sessions_.size(), nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      dram_series_[i] = tl->AddSeries(
          "stream." + std::to_string(sessions_[i].id()) + ".dram_bytes",
          "bytes");
    }
  }
}

void CacheStreamingServer::ScheduleDeposit(std::size_t stream, Bytes bytes,
                                           Seconds done, Seconds boundary,
                                           const std::string& actor,
                                           Seconds service) {
  auto* session = &sessions_[stream];
  auto* occupancy_tw = dram_occupancy_[stream];
  auto* occupancy_series = dram_series_[stream];
  sim_.ScheduleAt(done, [this, session, occupancy_tw, occupancy_series,
                         stream, bytes, done, boundary, actor, service]() {
    session->Deposit(done, bytes);
    const Bytes level = session->LevelAt(done);
    obs::Update(occupancy_tw, done, level);
    obs::Record(occupancy_series, done, level);
    obs::RecordDramLevel(config_.auditor, stream, done, level);
    if (trace_ != nullptr) {
      trace_->Append({done, sim::TraceKind::kIoCompleted, actor,
                      session->id(), bytes, "", service});
      trace_->Append({done, sim::TraceKind::kBufferLevel, "stream",
                      session->id(), level, ""});
    }
    if (!session->playing()) {
      const Seconds start = std::max(done, boundary);
      sim_.ScheduleAt(start, [session, start]() {
        if (!session->playing()) session->StartPlayback(start);
      });
    }
  });
}

void CacheStreamingServer::RunDiskCycle(Seconds deadline) {
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline || disk_streams_.empty()) return;

  std::vector<device::IoSpan> batch;
  batch.reserve(disk_streams_.size());
  for (std::size_t i : disk_streams_) {
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.disk_cycle;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;
    batch.push_back(device::IoSpan{
        static_cast<std::int64_t>(s.offset + cursor), io_bytes});
  }

  const auto order =
      device::ScheduleOrder(config_.disk_policy, last_head_offset_, batch);
  Seconds busy = 0;
  for (std::size_t pos : order) {
    auto st = disk_->Service(batch[pos],
                             config_.deterministic ? nullptr : &rng_);
    if (!st.ok()) continue;  // unreachable: validated in Create
    busy += st.value();
    last_head_offset_ = batch[pos].offset;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, disk_streams_[pos], batch[pos].bytes);
    ScheduleDeposit(disk_streams_[pos], batch[pos].bytes, t0 + busy,
                    t0 + config_.disk_cycle, disk_->name(), st.value());
  }

  report_.disk_busy += busy;
  if (busy > config_.disk_cycle * (1.0 + 1e-9)) ++report_.disk_overruns;
  ++report_.disk_cycles;
  obs::Increment(disk_cycles_metric_);
  obs::Observe(disk_slack_hist_, (config_.disk_cycle - busy) / kMillisecond);
  obs::EndDiskCycle(config_.auditor, t0, busy);
  if (trace_ != nullptr && busy > 0) {
    // Scheduled so the record lands in time order among the IO records.
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, disk_->name(), -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.disk_cycle, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, deadline]() { RunDiskCycle(deadline); });
  }
}

void CacheStreamingServer::RunStripedCycle(Seconds deadline) {
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline || cache_streams_.empty()) return;

  const auto k = static_cast<double>(bank_.size());
  Seconds busy = 0;
  for (std::size_t i : cache_streams_) {
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.mems_cycle;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;

    // Lock-step: every device transfers io_bytes/k at the same relative
    // location; the elapsed time is the common per-device time.
    const device::IoSpan local{
        static_cast<std::int64_t>((s.offset + cursor) / k), io_bytes / k};
    Seconds op_time = 0;
    for (auto& dev : bank_) {
      auto st = dev.Service(local, nullptr);
      if (!st.ok()) continue;  // unreachable: validated in Create
      op_time = std::max(op_time, st.value());
    }
    busy += op_time;
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, i, io_bytes);
    ScheduleDeposit(i, io_bytes, t0 + busy, t0 + config_.mems_cycle,
                    "mems-striped", op_time);
  }

  for (auto& b : device_busy_) b += busy;  // all devices move together
  report_.mems_busy += busy * k;
  if (busy > config_.mems_cycle * (1.0 + 1e-9)) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.mems_cycle - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, -1, t0, busy);
  if (trace_ != nullptr && busy > 0) {
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, "mems-striped", -1, 0,
                      "", busy});
    });
  }

  const Seconds next = t0 + std::max(config_.mems_cycle, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, deadline]() { RunStripedCycle(deadline); });
  }
}

void CacheStreamingServer::RunReplicatedCycle(std::size_t dev,
                                              Seconds deadline) {
  const Seconds t0 = sim_.Now();
  if (t0 >= deadline) return;

  // Device `dev` services every (dev + j*k)-th cached stream.
  Seconds busy = 0;
  bool any = false;
  for (std::size_t j = dev; j < cache_streams_.size(); j += bank_.size()) {
    any = true;
    const std::size_t i = cache_streams_[j];
    const auto& s = streams_[i];
    const Bytes io_bytes = s.bit_rate * config_.mems_cycle;
    Bytes cursor = play_cursor_[i];
    if (cursor + io_bytes > s.extent) cursor = 0;
    play_cursor_[i] = cursor + io_bytes;

    auto st = bank_[dev].Service(
        device::IoSpan{static_cast<std::int64_t>(s.offset + cursor),
                       io_bytes},
        nullptr);
    if (!st.ok()) continue;  // unreachable: validated in Create
    busy += st.value();
    ++report_.ios_completed;
    obs::Increment(ios_metric_);
    obs::RecordIo(config_.auditor, i, io_bytes);
    ScheduleDeposit(i, io_bytes, t0 + busy, t0 + config_.mems_cycle,
                    bank_[dev].name(), st.value());
  }
  if (!any) return;

  device_busy_[dev] += busy;
  report_.mems_busy += busy;
  if (busy > config_.mems_cycle * (1.0 + 1e-9)) ++report_.mems_overruns;
  ++report_.mems_cycles;
  obs::Increment(mems_cycles_metric_);
  obs::Observe(mems_slack_hist_, (config_.mems_cycle - busy) / kMillisecond);
  obs::EndMemsCycle(config_.auditor, static_cast<std::int64_t>(dev), t0,
                    busy);
  if (trace_ != nullptr && busy > 0) {
    const std::string actor = bank_[dev].name();
    const Seconds end = t0 + busy;
    sim_.ScheduleAt(end, [this, actor, end, busy]() {
      trace_->Append({end, sim::TraceKind::kCycleEnd, actor, -1, 0, "",
                      busy});
    });
  }

  const Seconds next = t0 + std::max(config_.mems_cycle, busy);
  if (next < deadline) {
    sim_.ScheduleAt(next, [this, dev, deadline]() {
      RunReplicatedCycle(dev, deadline);
    });
  }
}

Status CacheStreamingServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;

  if (!disk_streams_.empty()) {
    MEMSTREAM_RETURN_IF_ERROR(
        sim_.Schedule(0, [this, duration]() { RunDiskCycle(duration); }));
  }
  if (!cache_streams_.empty()) {
    if (config_.policy == model::CachePolicy::kStriped) {
      MEMSTREAM_RETURN_IF_ERROR(sim_.Schedule(
          0, [this, duration]() { RunStripedCycle(duration); }));
    } else {
      for (std::size_t d = 0; d < bank_.size(); ++d) {
        MEMSTREAM_RETURN_IF_ERROR(sim_.Schedule(
            0, [this, d, duration]() { RunReplicatedCycle(d, duration); }));
      }
    }
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());

  report_.horizon = duration;
  report_.disk_utilization =
      duration > 0 ? std::min(report_.disk_busy, duration) / duration : 0;
  Seconds busy_sum = 0;
  for (Seconds b : device_busy_) busy_sum += b;
  report_.mems_utilization =
      duration > 0
          ? busy_sum / (duration * static_cast<double>(bank_.size()))
          : 0;
  for (auto& session : sessions_) {
    session.LevelAt(duration);
    report_.qos.AbsorbPlayback(session);
    report_.peak_dram_demand += session.peak_level();
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  if (trace_ != nullptr && trace_->dropped_records() > 0) {
    MEMSTREAM_LOG(kWarning)
        << "trace ring buffer dropped " << trace_->dropped_records()
        << " records; raise the TraceLog capacity to keep the full window";
  }

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.cache.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.cache.underflow_time_s")
        ->Set(report_.qos.underflow_time);
    metrics->gauge("server.cache.disk.overruns")
        ->Set(static_cast<double>(report_.disk_overruns));
    metrics->gauge("server.cache.mems.overruns")
        ->Set(static_cast<double>(report_.mems_overruns));
    metrics->gauge("server.cache.disk.utilization")
        ->Set(report_.disk_utilization);
    metrics->gauge("server.cache.mems.utilization")
        ->Set(report_.mems_utilization);
    metrics->gauge("server.cache.peak_dram_bytes")
        ->Set(report_.peak_dram_demand);
    if (disk_ != nullptr) obs::ExportDeviceStats(metrics, *disk_, duration);
    for (const auto& dev : bank_) {
      obs::ExportDeviceStats(metrics, dev, duration);
    }
    obs::ExportSimulatorStats(metrics, sim_);
  }
  return Status::OK();
}

}  // namespace memstream::server
