#include "server/edf_server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<EdfStreamingServer> EdfStreamingServer::Create(
    device::DiskDrive* disk, std::vector<StreamSpec> streams,
    const EdfServerConfig& config, sim::TraceLog* trace) {
  if (disk == nullptr) return Status::InvalidArgument("disk is required");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.io_playback <= 0) {
    return Status::InvalidArgument("io_playback must be > 0");
  }
  for (const auto& s : streams) {
    if (s.direction != StreamDirection::kRead) {
      return Status::InvalidArgument("EDF server services read streams");
    }
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0 || s.disk_offset + s.extent > disk->Capacity()) {
      return Status::OutOfRange("stream extent beyond disk capacity");
    }
    if (s.bit_rate * config.io_playback > s.extent) {
      return Status::InvalidArgument("extent smaller than one IO");
    }
  }
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return EdfStreamingServer(disk, std::move(streams), config, trace);
}

EdfStreamingServer::EdfStreamingServer(device::DiskDrive* disk,
                                       std::vector<StreamSpec> streams,
                                       const EdfServerConfig& config,
                                       sim::TraceLog* trace)
    : disk_(disk),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  play_cursor_.assign(streams_.size(), 0);
  for (const auto& s : streams_) play_.Add(s.id, s.bit_rate);

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    ios_metric_ = metrics->counter("server.edf.ios");
    misses_metric_ = metrics->counter("server.edf.deadline_misses");
  }
  journal_ = config_.journal;
  jslot_.assign(streams_.size(), -1);
  uf_seen_.assign(streams_.size(), 0);
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const auto& s = streams_[i];
      jslot_[i] = static_cast<std::ptrdiff_t>(journal_->EnsureStream(
          s.id, s.bit_rate, 2.0 * s.bit_rate * config_.io_playback, 0.0));
    }
  }
  if (config_.slo != nullptr) {
    slo_underflow_ = config_.slo->Add(obs::StandardUnderflowSlo());
    slo_slack_ = config_.slo->Add(obs::StandardCycleSlackSlo());
  }
  occupancy_series_.assign(streams_.size(), nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      occupancy_series_[i] = tl->AddSeries(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes",
          "bytes");
    }
  }
}

Seconds EdfStreamingServer::DeadlineOf(std::size_t i) {
  if (!play_.playing(i)) {
    // Bootstrap: unstarted streams are the most urgent, oldest first.
    return -1.0 - 1.0 / (1.0 + static_cast<double>(i));
  }
  return sim_.Now() + play_.LevelAt(i, sim_.Now()) / play_.bit_rate(i);
}

void EdfStreamingServer::ServiceNext(Seconds deadline_time) {
  PROF_SCOPE("server.edf.service");
  const Seconds now = sim_.Now();
  if (now >= deadline_time) return;
  if (busy_) return;  // an IO is in flight; its completion re-enters

  // Pick the eligible stream (buffer has room for one more IO) with the
  // earliest deadline; remember the earliest time an ineligible stream
  // frees room, in case everyone is full.
  std::size_t chosen = streams_.size();
  Seconds best_deadline = kInf;
  Seconds next_eligible = kInf;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Bytes io = streams_[i].bit_rate * config_.io_playback;
    const Bytes cap = 2 * io;
    const Bytes level = play_.LevelAt(i, now);
    if (level + io <= cap * (1 + 1e-9)) {
      const Seconds deadline = DeadlineOf(i);
      if (deadline < best_deadline) {
        best_deadline = deadline;
        chosen = i;
      }
    } else if (play_.playing(i)) {
      next_eligible = std::min(
          next_eligible, now + (level + io - cap) / streams_[i].bit_rate);
    }
  }

  if (chosen == streams_.size()) {
    // Every buffer is full: idle until one drains enough. Streams that
    // have not started playing yet re-enter the loop from their
    // playback-start event instead.
    if (next_eligible == kInf) return;
    const Seconds wake = std::min(next_eligible, deadline_time);
    report_.idle_time += wake - now;
    sim_.ScheduleAt(wake,
                    [this, deadline_time]() { ServiceNext(deadline_time); });
    return;
  }

  const auto& s = streams_[chosen];
  const Bytes io_bytes = s.bit_rate * config_.io_playback;
  Bytes cursor = play_cursor_[chosen];
  if (cursor + io_bytes > s.extent) cursor = 0;
  play_cursor_[chosen] = cursor + io_bytes;

  auto service = disk_->Service(
      device::IoSpan{static_cast<std::int64_t>(s.disk_offset + cursor),
                     io_bytes},
      config_.deterministic ? nullptr : &rng_);
  if (!service.ok()) return;  // unreachable: validated in Create
  busy_ = true;
  Seconds service_time = service.value();
  if (config_.faults != nullptr) {
    service_time += config_.faults->DiskIoPenalty(now);
  }
  const Seconds done = now + service_time;
  report_.total_busy += service_time;
  ++report_.ios_completed;
  obs::Increment(ios_metric_);
  obs::RecordIo(config_.auditor, chosen, io_bytes);
  if (play_.playing(chosen) && done > best_deadline) {
    ++report_.deadline_misses;
    obs::Increment(misses_metric_);
    obs::SloRecord(slo_slack_, done, 0, 1);
  } else {
    obs::SloRecord(slo_slack_, done, 1, 0);
  }

  // The capture fits MoveOnlyFunction's inline buffer; the timeline
  // series, auditor index and playback delay are reachable via
  // this/chosen, so the per-IO event never heap-allocates.
  sim_.ScheduleAt(done, [this, chosen, io_bytes, done, deadline_time]() {
    play_.Deposit(chosen, done, io_bytes);
    const Bytes level = play_.LevelAt(chosen, done);
    obs::Record(occupancy_series_[chosen], done, level);
    obs::RecordDramLevel(config_.auditor, chosen, done, level);
    obs::JournalIo(journal_, jslot_[chosen], done, io_bytes, level);
    const std::int64_t uf =
        play_.underflow_events(chosen) - uf_seen_[chosen];
    if (uf > 0) {
      uf_seen_[chosen] += uf;
      obs::JournalUnderflows(journal_, jslot_[chosen], done, uf);
    }
    obs::SloRecord(slo_underflow_, done, uf > 0 ? 0 : 1, uf > 0 ? 1 : 0);
    if (trace_ != nullptr) {
      trace_->Append({done, sim::TraceKind::kIoCompleted, disk_->name(),
                      play_.id(chosen), io_bytes, "edf"});
    }
    if (!play_.playing(chosen)) {
      // Double-buffered start, mirroring the time-cycle server. The
      // start event also re-enters the service loop: a full pipeline
      // may have gone idle waiting for consumption to begin.
      const Seconds start = done + config_.io_playback;
      sim_.ScheduleAt(start, [this, chosen, start, deadline_time]() {
        if (!play_.playing(chosen)) play_.StartPlayback(chosen, start);
        ServiceNext(deadline_time);
      });
    }
    busy_ = false;
    ServiceNext(deadline_time);
  });
}

Status EdfStreamingServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;

  MEMSTREAM_RETURN_IF_ERROR(
      sim_.Schedule(0, [this, duration]() { ServiceNext(duration); }));
  if (config_.faults != nullptr) {
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(sim_, nullptr));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  report_.device_utilization =
      duration > 0 ? std::min(report_.total_busy, duration) / duration : 0;
  for (std::size_t i = 0; i < play_.size(); ++i) {
    play_.LevelAt(i, duration);
    report_.qos.AbsorbPlayback(play_.view(i));
    report_.peak_buffer_demand += play_.peak_level(i);
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "edf server");
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < play_.size(); ++i) {
      const std::int64_t delta = play_.underflow_events(i) - uf_seen_[i];
      uf_seen_[i] += delta;
      obs::JournalUnderflows(journal_, jslot_[i], duration, delta);
      if (jslot_[i] >= 0) {
        journal_->MarkDeparted(static_cast<std::size_t>(jslot_[i]),
                               duration);
      }
    }
  }
  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.edf.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.edf.utilization")->Set(report_.device_utilization);
    metrics->gauge("server.edf.idle_time_s")->Set(report_.idle_time);
  }
  return Status::OK();
}

}  // namespace memstream::server
