#include "server/edf_server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"
#include "obs/exporters.h"

namespace memstream::server {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<EdfStreamingServer> EdfStreamingServer::Create(
    device::DiskDrive* disk, std::vector<StreamSpec> streams,
    const EdfServerConfig& config, sim::TraceLog* trace) {
  if (disk == nullptr) return Status::InvalidArgument("disk is required");
  if (streams.empty()) return Status::InvalidArgument("no streams");
  if (config.io_playback <= 0) {
    return Status::InvalidArgument("io_playback must be > 0");
  }
  for (const auto& s : streams) {
    if (s.direction != StreamDirection::kRead) {
      return Status::InvalidArgument("EDF server services read streams");
    }
    if (s.bit_rate <= 0) {
      return Status::InvalidArgument("stream bit_rate must be > 0");
    }
    if (s.extent <= 0 || s.disk_offset + s.extent > disk->Capacity()) {
      return Status::OutOfRange("stream extent beyond disk capacity");
    }
    if (s.bit_rate * config.io_playback > s.extent) {
      return Status::InvalidArgument("extent smaller than one IO");
    }
  }
  if (config.auditor != nullptr &&
      config.auditor->num_streams() != streams.size()) {
    return Status::InvalidArgument(
        "auditor stream registration does not match the stream set");
  }
  return EdfStreamingServer(disk, std::move(streams), config, trace);
}

EdfStreamingServer::EdfStreamingServer(device::DiskDrive* disk,
                                       std::vector<StreamSpec> streams,
                                       const EdfServerConfig& config,
                                       sim::TraceLog* trace)
    : disk_(disk),
      streams_(std::move(streams)),
      config_(config),
      trace_(trace),
      rng_(config.seed) {
  play_cursor_.assign(streams_.size(), 0);
  sessions_.reserve(streams_.size());
  for (const auto& s : streams_) sessions_.emplace_back(s.id, s.bit_rate);

  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    ios_metric_ = metrics->counter("server.edf.ios");
    misses_metric_ = metrics->counter("server.edf.deadline_misses");
  }
  occupancy_series_.assign(streams_.size(), nullptr);
  if (obs::TimelineRecorder* tl = config_.timelines; tl != nullptr) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      occupancy_series_[i] = tl->AddSeries(
          "stream." + std::to_string(streams_[i].id) + ".dram_bytes",
          "bytes");
    }
  }
}

Seconds EdfStreamingServer::DeadlineOf(std::size_t i) {
  StreamSession& session = sessions_[i];
  if (!session.playing()) {
    // Bootstrap: unstarted streams are the most urgent, oldest first.
    return -1.0 - 1.0 / (1.0 + static_cast<double>(i));
  }
  return sim_.Now() + session.LevelAt(sim_.Now()) / session.bit_rate();
}

void EdfStreamingServer::ServiceNext(Seconds deadline_time) {
  PROF_SCOPE("server.edf.service");
  const Seconds now = sim_.Now();
  if (now >= deadline_time) return;
  if (busy_) return;  // an IO is in flight; its completion re-enters

  // Pick the eligible stream (buffer has room for one more IO) with the
  // earliest deadline; remember the earliest time an ineligible stream
  // frees room, in case everyone is full.
  std::size_t chosen = streams_.size();
  Seconds best_deadline = kInf;
  Seconds next_eligible = kInf;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Bytes io = streams_[i].bit_rate * config_.io_playback;
    const Bytes cap = 2 * io;
    const Bytes level = sessions_[i].LevelAt(now);
    if (level + io <= cap * (1 + 1e-9)) {
      const Seconds deadline = DeadlineOf(i);
      if (deadline < best_deadline) {
        best_deadline = deadline;
        chosen = i;
      }
    } else if (sessions_[i].playing()) {
      next_eligible = std::min(
          next_eligible, now + (level + io - cap) / streams_[i].bit_rate);
    }
  }

  if (chosen == streams_.size()) {
    // Every buffer is full: idle until one drains enough. Streams that
    // have not started playing yet re-enter the loop from their
    // playback-start event instead.
    if (next_eligible == kInf) return;
    const Seconds wake = std::min(next_eligible, deadline_time);
    report_.idle_time += wake - now;
    sim_.ScheduleAt(wake,
                    [this, deadline_time]() { ServiceNext(deadline_time); });
    return;
  }

  const auto& s = streams_[chosen];
  const Bytes io_bytes = s.bit_rate * config_.io_playback;
  Bytes cursor = play_cursor_[chosen];
  if (cursor + io_bytes > s.extent) cursor = 0;
  play_cursor_[chosen] = cursor + io_bytes;

  auto service = disk_->Service(
      device::IoSpan{static_cast<std::int64_t>(s.disk_offset + cursor),
                     io_bytes},
      config_.deterministic ? nullptr : &rng_);
  if (!service.ok()) return;  // unreachable: validated in Create
  busy_ = true;
  Seconds service_time = service.value();
  if (config_.faults != nullptr) {
    service_time += config_.faults->DiskIoPenalty(now);
  }
  const Seconds done = now + service_time;
  report_.total_busy += service_time;
  ++report_.ios_completed;
  obs::Increment(ios_metric_);
  obs::RecordIo(config_.auditor, chosen, io_bytes);
  if (sessions_[chosen].playing() && done > best_deadline) {
    ++report_.deadline_misses;
    obs::Increment(misses_metric_);
  }

  auto* session = &sessions_[chosen];
  auto* occupancy_series = occupancy_series_[chosen];
  const std::size_t audit_index = chosen;
  const Seconds playback_delay = config_.io_playback;
  sim_.ScheduleAt(done, [this, session, occupancy_series, audit_index,
                         io_bytes, done, playback_delay, deadline_time]() {
    session->Deposit(done, io_bytes);
    const Bytes level = session->LevelAt(done);
    obs::Record(occupancy_series, done, level);
    obs::RecordDramLevel(config_.auditor, audit_index, done, level);
    if (trace_ != nullptr) {
      trace_->Append({done, sim::TraceKind::kIoCompleted, disk_->name(),
                      session->id(), io_bytes, "edf"});
    }
    if (!session->playing()) {
      // Double-buffered start, mirroring the time-cycle server. The
      // start event also re-enters the service loop: a full pipeline
      // may have gone idle waiting for consumption to begin.
      const Seconds start = done + playback_delay;
      sim_.ScheduleAt(start, [this, session, start, deadline_time]() {
        if (!session->playing()) session->StartPlayback(start);
        ServiceNext(deadline_time);
      });
    }
    busy_ = false;
    ServiceNext(deadline_time);
  });
}

Status EdfStreamingServer::Run(Seconds duration) {
  if (ran_) return Status::FailedPrecondition("Run() may be called once");
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  ran_ = true;

  MEMSTREAM_RETURN_IF_ERROR(
      sim_.Schedule(0, [this, duration]() { ServiceNext(duration); }));
  if (config_.faults != nullptr) {
    MEMSTREAM_RETURN_IF_ERROR(config_.faults->ScheduleIn(sim_, nullptr));
  }
  auto processed = sim_.Run(duration);
  MEMSTREAM_RETURN_IF_ERROR(processed.status());
  if (config_.faults != nullptr) config_.faults->Finalize(duration);

  report_.horizon = duration;
  report_.device_utilization =
      duration > 0 ? std::min(report_.total_busy, duration) / duration : 0;
  for (auto& session : sessions_) {
    session.LevelAt(duration);
    report_.qos.AbsorbPlayback(session);
    report_.peak_buffer_demand += session.peak_level();
  }
  if (config_.auditor != nullptr) {
    report_.qos.violations = config_.auditor->total_violations();
  }
  obs::WarnDroppedTelemetry(trace_, "edf server");
  if (obs::MetricsRegistry* metrics = config_.metrics; metrics != nullptr) {
    metrics->gauge("server.edf.underflow_events")
        ->Set(static_cast<double>(report_.qos.underflow_events));
    metrics->gauge("server.edf.utilization")->Set(report_.device_utilization);
    metrics->gauge("server.edf.idle_time_s")->Set(report_.idle_time);
  }
  return Status::OK();
}

}  // namespace memstream::server
