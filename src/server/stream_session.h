// Per-stream playback session: producers deposit IO-sized chunks, the
// consumer drains continuously at the stream's bit-rate, and the session
// records every interval during which the buffer ran dry (jitter).
//
// The buffer level is piecewise linear, so it is updated lazily at event
// times — no per-byte simulation work.

#ifndef MEMSTREAM_SERVER_STREAM_SESSION_H_
#define MEMSTREAM_SERVER_STREAM_SESSION_H_

#include <cstdint>

#include "common/units.h"

namespace memstream::server {

/// Playback state of one continuous-media stream.
class StreamSession {
 public:
  StreamSession(std::int64_t id, BytesPerSecond bit_rate)
      : id_(id), bit_rate_(bit_rate) {}

  std::int64_t id() const { return id_; }
  BytesPerSecond bit_rate() const { return bit_rate_; }

  /// Producer delivered `bytes` at time `now`.
  void Deposit(Seconds now, Bytes bytes);

  /// Starts the consumption clock (idempotent).
  void StartPlayback(Seconds now);

  /// Stops the consumption clock after draining up to `now` — used when
  /// degradation sheds the stream. The viewer is told to rebuffer, so
  /// time spent paused does not accrue underflow; playback resumes via
  /// StartPlayback() (normally at the re-admission deposit boundary).
  void PausePlayback(Seconds now);

  /// Buffer level after draining up to `now` (also advances the lazy
  /// state and accrues underflow time).
  Bytes LevelAt(Seconds now);

  bool playing() const { return playing_; }
  Bytes total_deposited() const { return total_deposited_; }

  /// Number of distinct dry intervals observed so far.
  std::int64_t underflow_events() const { return underflow_events_; }

  /// Total simulated time the stream spent with an empty buffer while
  /// playing (the paper's jitter-freedom criterion is that this is zero).
  Seconds underflow_time() const { return underflow_time_; }

  /// Largest buffer level ever observed (per-stream DRAM demand).
  Bytes peak_level() const { return peak_level_; }

 private:
  void Advance(Seconds now);

  std::int64_t id_;
  BytesPerSecond bit_rate_;
  bool playing_ = false;
  bool dry_ = false;
  Seconds last_update_ = 0;
  Bytes level_ = 0;
  Bytes total_deposited_ = 0;
  Bytes peak_level_ = 0;
  std::int64_t underflow_events_ = 0;
  Seconds underflow_time_ = 0;
};

/// Recording (write-stream) state: the mirror image of StreamSession.
/// An encoder fills the staging buffer continuously at the stream's
/// bit-rate; each IO cycle drains one chunk to the device. The session
/// tracks the time spent *over* the declared staging capacity (data that
/// would have been dropped) — the write-side analogue of underflow.
class RecordingSession {
 public:
  RecordingSession(std::int64_t id, BytesPerSecond bit_rate,
                   Bytes staging_capacity)
      : id_(id), bit_rate_(bit_rate), capacity_(staging_capacity) {}

  std::int64_t id() const { return id_; }
  BytesPerSecond bit_rate() const { return bit_rate_; }

  /// Starts the encoder clock (idempotent).
  void StartRecording(Seconds now);

  /// An IO drained up to `bytes` from staging at time `now`; returns the
  /// bytes actually drained (never more than was staged).
  Bytes Drain(Seconds now, Bytes bytes);

  /// Staged bytes after accruing production up to `now`.
  Bytes LevelAt(Seconds now);

  bool recording() const { return recording_; }
  Bytes total_drained() const { return total_drained_; }
  Bytes peak_level() const { return peak_level_; }

  /// Distinct intervals during which staging exceeded its capacity.
  std::int64_t overflow_events() const { return overflow_events_; }
  /// Total time spent over capacity.
  Seconds overflow_time() const { return overflow_time_; }

 private:
  void Advance(Seconds now);

  std::int64_t id_;
  BytesPerSecond bit_rate_;
  Bytes capacity_;
  bool recording_ = false;
  bool over_ = false;
  Seconds last_update_ = 0;
  Bytes level_ = 0;
  Bytes total_drained_ = 0;
  Bytes peak_level_ = 0;
  std::int64_t overflow_events_ = 0;
  Seconds overflow_time_ = 0;
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_STREAM_SESSION_H_
