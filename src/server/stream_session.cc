#include "server/stream_session.h"

#include <algorithm>

namespace memstream::server {

void StreamSession::Advance(Seconds now) {
  if (now <= last_update_) return;
  const Seconds dt = now - last_update_;
  last_update_ = now;
  if (!playing_) return;

  const Bytes demand = bit_rate_ * dt;
  if (demand <= level_) {
    level_ -= demand;
    return;
  }
  // The buffer ran dry partway through the interval.
  const Seconds dry_for = (demand - level_) / bit_rate_;
  level_ = 0;
  underflow_time_ += dry_for;
  if (!dry_) {
    ++underflow_events_;
    dry_ = true;
  }
}

void StreamSession::Deposit(Seconds now, Bytes bytes) {
  Advance(now);
  level_ += bytes;
  total_deposited_ += bytes;
  peak_level_ = std::max(peak_level_, level_);
  if (bytes > 0) dry_ = false;
}

void StreamSession::StartPlayback(Seconds now) {
  Advance(now);
  playing_ = true;
}

void StreamSession::PausePlayback(Seconds now) {
  Advance(now);
  playing_ = false;
  dry_ = false;  // a pause ends any dry excursion; shed time is accounted
                 // separately by the fault layer
}

Bytes StreamSession::LevelAt(Seconds now) {
  Advance(now);
  return level_;
}

void RecordingSession::Advance(Seconds now) {
  if (now <= last_update_) return;
  const Seconds dt = now - last_update_;
  if (recording_) {
    const Bytes before = level_;
    level_ += bit_rate_ * dt;
    peak_level_ = std::max(peak_level_, level_);
    if (level_ > capacity_) {
      // Accrue only the portion of the interval spent over capacity.
      const Seconds over_for =
          before >= capacity_ ? dt : (level_ - capacity_) / bit_rate_;
      overflow_time_ += over_for;
      if (!over_) {
        ++overflow_events_;
        over_ = true;
      }
    }
  }
  last_update_ = now;
}

void RecordingSession::StartRecording(Seconds now) {
  Advance(now);
  recording_ = true;
}

Bytes RecordingSession::Drain(Seconds now, Bytes bytes) {
  Advance(now);
  const Bytes drained = std::min(bytes, level_);
  level_ -= drained;
  total_drained_ += drained;
  if (level_ <= capacity_) over_ = false;
  return drained;
}

Bytes RecordingSession::LevelAt(Seconds now) {
  Advance(now);
  return level_;
}

}  // namespace memstream::server
