// Model-driven admission control: a new stream is admitted only if the
// analytical sizing (Theorem 1 directly from disk, or Theorem 2 through
// the MEMS buffer) still fits the DRAM budget and the bandwidth bounds
// with the stream added. The controller tracks admitted bit-rates and
// evaluates the model at their average, matching the paper's B̄.

#ifndef MEMSTREAM_SERVER_ADMISSION_H_
#define MEMSTREAM_SERVER_ADMISSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/incremental.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace memstream::server {

/// Static description of the server the controller guards.
struct AdmissionConfig {
  Bytes dram_budget = 1 * kGB;
  BytesPerSecond disk_rate = 300 * kMBps;
  model::LatencyFn disk_latency;  ///< L̄_disk(n), required
  /// MEMS buffer in front of the disk; 0 disables it (direct streaming).
  std::int64_t buffer_k = 0;
  model::DeviceProfile mems;      ///< used when buffer_k > 0
  /// Optional telemetry: admission.{attempts,admitted,rejected} counters
  /// and an admission.latency_us histogram. Null (the default) keeps
  /// TryAdmit clock-free. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional SLO monitor: each TryAdmit's wall-clock decision latency
  /// feeds the standard "admission_latency" SLO (good = under the spec's
  /// threshold). Null keeps TryAdmit clock-free. Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// Outcome of an admission test.
struct AdmissionDecision {
  bool admitted = false;
  std::int64_t streams_after = 0;
  Bytes dram_required = 0;   ///< total DRAM at the post-admission load
  std::string reason;        ///< why a rejection happened
};

/// Tracks the admitted set and enforces the model's feasibility bounds.
///
/// The sizing is a pure function of (n, B̄): the controller maintains the
/// aggregate terms (stream count, summed bit-rate) by O(1) deltas on
/// admit/release and memoizes the solver outcome on the bit-exact
/// (n, B̄) key, so churny admit/depart sequences — which keep returning
/// to recently seen loads — skip the full Theorem 1/2 re-derivation.
/// Debug builds cross-check every memo hit against the full solver.
class AdmissionController {
 public:
  /// Requires a disk_latency function.
  static Result<AdmissionController> Create(AdmissionConfig config);

  /// Tests a stream of `bit_rate`; admits and records it when feasible.
  AdmissionDecision TryAdmit(BytesPerSecond bit_rate);

  /// Removes one previously admitted stream of `bit_rate`.
  Status Release(BytesPerSecond bit_rate);

  std::int64_t admitted_count() const {
    return static_cast<std::int64_t>(admitted_.size());
  }
  BytesPerSecond total_bit_rate() const { return total_rate_; }

  /// DRAM the current admitted set needs (0 when empty).
  Bytes CurrentDramRequirement() const;

  /// Re-solve memo accounting (hits/misses/cross-check mismatches).
  const model::SolveMemoStats& memo_stats() const { return memo_.stats(); }
  /// Forces (or disables) the hit-time cross-check against the full
  /// solver; defaults to on in debug builds only.
  void set_cross_check(bool on) { memo_.set_cross_check(on); }

 private:
  /// Memoized outcome of one (n, B̄) sizing.
  struct DramSolve {
    Bytes dram = 0;
    std::string reason;  ///< set when dram is infinite
  };

  explicit AdmissionController(AdmissionConfig config)
      : config_(std::move(config)) {
    if (config_.metrics != nullptr) {
      attempts_metric_ = config_.metrics->counter("admission.attempts");
      admitted_metric_ = config_.metrics->counter("admission.admitted");
      rejected_metric_ = config_.metrics->counter("admission.rejected");
      latency_hist_ = config_.metrics->histogram("admission.latency_us",
                                                 {0.0, 500.0, 50});
    }
    if (config_.slo != nullptr) {
      slo_latency_ = config_.slo->Add(obs::StandardAdmissionLatencySlo());
    }
  }

  /// Total DRAM needed for n streams at average rate `avg`; infinity
  /// when infeasible.
  Bytes DramFor(std::int64_t n, BytesPerSecond avg,
                std::string* reason) const;

  /// DramFor through the (n, B̄) memo.
  const DramSolve& DramForCached(std::int64_t n, BytesPerSecond avg) const;

  AdmissionConfig config_;
  std::vector<BytesPerSecond> admitted_;
  BytesPerSecond total_rate_ = 0;
  mutable model::SolveMemo<DramSolve> memo_;
  // Telemetry handles (null when the matching config member is null).
  obs::Counter* attempts_metric_ = nullptr;
  obs::Counter* admitted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::HistogramMetric* latency_hist_ = nullptr;
  obs::Slo* slo_latency_ = nullptr;
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_ADMISSION_H_
