// Multi-disk farm execution: runs one independent time-cycle server per
// disk (streams are partitioned, so disks do not interact) and
// aggregates the reports — the executable counterpart of
// model::PlanScaleOut.

#ifndef MEMSTREAM_SERVER_FARM_H_
#define MEMSTREAM_SERVER_FARM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "device/disk.h"
#include "obs/run_report.h"
#include "server/timecycle_server.h"

namespace memstream::server {

/// Farm description for the simulator.
struct FarmConfig {
  std::int64_t num_disks = 4;
  device::DiskParameters disk;   ///< every disk is identical
  std::int64_t streams_per_disk = 10;
  BytesPerSecond bit_rate = 1 * kMBps;
  Seconds cycle = 1.0;           ///< from model::IoCycleLength at
                                 ///< streams_per_disk
  Seconds duration = 30;
  bool deterministic = true;
  std::uint64_t seed = 42;
  /// Optional per-stream lifecycle journal shared by every per-disk
  /// server (stream ids are globally unique across the farm). Not owned.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor shared by every per-disk server. Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// One disk's slice of the aggregate (kept so reports and --diff can
/// compare farm runs disk-by-disk instead of only via the sums).
struct FarmDiskStats {
  std::int64_t disk = 0;
  std::int64_t streams = 0;
  std::int64_t ios_completed = 0;
  std::int64_t cycle_overruns = 0;
  std::int64_t underflow_events = 0;
  Bytes peak_dram_demand = 0;
  double utilization = 0;
};

/// Aggregated farm statistics.
struct FarmReport {
  std::int64_t disks = 0;
  std::int64_t total_streams = 0;
  std::int64_t ios_completed = 0;
  std::int64_t cycle_overruns = 0;
  QosCounters qos;                ///< merged across disks
  Bytes peak_dram_demand = 0;     ///< summed across disks
  double mean_disk_utilization = 0;
  std::vector<FarmDiskStats> per_disk;
};

/// Builds the disks, spreads streams over each, runs every per-disk
/// server for `duration`, and aggregates.
Result<FarmReport> RunFarm(const FarmConfig& config);

/// The RunReport "farm" block of a RunFarm aggregate: per-disk
/// peak-DRAM and utilization folded in so memstream-report --diff can
/// compare farm runs shard-by-shard. Fan-out farms neither place nor
/// shed, so the placement/availability members stay at their defaults.
obs::FarmBlock ToFarmBlock(const FarmReport& report);

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_FARM_H_
