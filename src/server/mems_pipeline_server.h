// Disk -> MEMS -> DRAM pipeline server (§3.1, Figs. 4 and 5): every byte
// read from the disk is first written to a bank of k MEMS devices and
// later read into DRAM, with two nested time cycles:
//
//  - the disk cycle (length T_disk): one disk IO of B̄ * T_disk per stream,
//    elevator-ordered; each completion is queued as a pending write on the
//    stream's MEMS device (streams are assigned round-robin, stream i ->
//    device i mod k, preserving large disk-side IOs per §3.1.2);
//  - the per-device MEMS cycle (length T_mems = M/N * T_disk): the device
//    drains its pending disk writes and performs one DRAM transfer of
//    B̄ * T_mems for each assigned stream whose data is resident.
//
// Each device lays its assigned streams out in contiguous slots and all
// transfers are serviced through the kinematic sled model, so the actual
// positioning costs are at most the worst-case latency the analytical
// sizing (Theorem 2) charges — the simulation validates that sizing.

#ifndef MEMSTREAM_SERVER_MEMS_PIPELINE_SERVER_H_
#define MEMSTREAM_SERVER_MEMS_PIPELINE_SERVER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "common/status.h"
#include "device/disk.h"
#include "device/disk_scheduler.h"
#include "device/mems_device.h"
#include "fault/fault_injector.h"
#include "model/mems_buffer.h"
#include "obs/metrics.h"
#include "obs/qos_auditor.h"
#include "obs/timeline.h"
#include "server/qos_counters.h"
#include "server/stream_batch.h"
#include "server/timecycle_server.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::server {

/// Knobs of the pipeline server. Obtain t_disk / t_mems from
/// model::SolveMemsBuffer (use t_mems_snapped) with the matching
/// placement.
struct MemsPipelineConfig {
  Seconds t_disk = 1.0;
  Seconds t_mems = 0.1;
  device::SchedulerPolicy disk_policy = device::SchedulerPolicy::kCLook;
  /// §3.1.2 placement: round-robin (the paper's choice) routes each disk
  /// IO whole to one device; striped splits every IO across all k
  /// devices in lock-step (implemented so the rejected design can be
  /// executed and compared, not just modeled).
  model::BufferPlacement placement =
      model::BufferPlacement::kRoundRobinStreams;
  bool deterministic = true;  ///< expected rotational delay on the disk
  std::uint64_t seed = 42;
  /// Optional telemetry: disk/MEMS cycle-slack histograms, per-stream
  /// and per-device occupancy, run summary gauges. Null (the default)
  /// costs one pointer test per update site. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional online QoS auditor. Register the streams (spec order,
  /// domain kDisk — MEMS-side reads are legally partial through drain
  /// jitter, so only the disk cycle's one-IO-per-stream invariant is
  /// byte-checked) and Seal() before Run(). Not owned.
  obs::QosAuditor* auditor = nullptr;
  /// Optional timeline recorder: per-stream DRAM occupancy and
  /// per-device MEMS occupancy series. Not owned.
  obs::TimelineRecorder* timelines = nullptr;
  /// Optional fault injection: disk IOs pay the latency-spike penalty,
  /// MEMS tip loss slows the affected device, and a failed device stops
  /// servicing until its repair (its streams starve — the pipeline has
  /// no degradation manager; that is the cache server's job). Not owned.
  fault::FaultInjector* faults = nullptr;
  /// Optional per-stream lifecycle journal; streams self-register at
  /// Create under the Theorem-2 DRAM envelope (2 * B * T_mems) and IO
  /// records come from the MEMS->DRAM deposits. Not owned.
  obs::StreamJournal* journal = nullptr;
  /// Optional SLO monitor: "cycle_slack" from both disk and MEMS cycle
  /// outcomes, "underflow" scanned once per disk cycle. Not owned.
  obs::SloMonitor* slo = nullptr;
};

/// Post-run statistics of the pipeline.
struct MemsPipelineReport {
  std::int64_t disk_cycles = 0;
  std::int64_t disk_overruns = 0;
  Seconds disk_busy = 0;
  std::int64_t mems_cycles = 0;   ///< summed across devices
  std::int64_t mems_overruns = 0;
  Seconds mems_busy = 0;          ///< summed across devices
  std::int64_t ios_completed = 0;
  std::int64_t starved_reads = 0;  ///< DRAM reads skipped: data not resident
  QosCounters qos;                 ///< underflows/violations
  Bytes peak_mems_occupancy = 0;  ///< max per-device resident bytes
  Bytes peak_dram_demand = 0;     ///< sum of per-session peaks
  Seconds horizon = 0;
  double disk_utilization = 0;
  double mems_utilization = 0;    ///< mean across devices
};

/// The pipeline server. Owns the MEMS bank; the disk is borrowed.
class MemsPipelineServer {
 public:
  /// Validates capacity: each device must fit, per assigned stream, two
  /// disk IOs plus one DRAM IO of buffered data (the executable analogue
  /// of condition (7)).
  static Result<MemsPipelineServer> Create(
      device::DiskDrive* disk, std::vector<device::MemsDevice> bank,
      std::vector<StreamSpec> streams, const MemsPipelineConfig& config,
      sim::TraceLog* trace = nullptr);

  /// Simulates `duration` seconds. May be called once.
  Status Run(Seconds duration);

  const MemsPipelineReport& report() const { return report_; }
  /// Playout session of the i-th stream (spec order).
  StreamView session(std::size_t i) const { return play_.view(i); }
  std::size_t num_streams() const { return play_.size(); }
  std::size_t bank_size() const { return bank_.size(); }

 private:
  MemsPipelineServer(device::DiskDrive* disk,
                     std::vector<device::MemsDevice> bank,
                     std::vector<StreamSpec> streams,
                     const MemsPipelineConfig& config, sim::TraceLog* trace);

  void RunDiskCycle(Seconds deadline);
  void RunMemsCycle(std::size_t dev, Seconds deadline);
  /// Striped placement: one lock-step cycle drives all k devices.
  void RunStripedMemsCycle(Seconds deadline);

  struct PendingWrite {
    std::size_t stream;
    Bytes bytes;
  };

  device::DiskDrive* disk_;
  std::vector<device::MemsDevice> bank_;
  std::vector<StreamSpec> streams_;
  MemsPipelineConfig config_;
  sim::TraceLog* trace_;
  sim::Simulator sim_;
  Rng rng_;
  PlaybackBatch play_;  ///< SoA session state, index == stream index
  // Per-stream pipeline state, structure-of-arrays (hot cycle loops walk
  // one array at a time).
  std::vector<std::size_t> device_;       ///< assigned MEMS device
  std::vector<Bytes> slot_base_;          ///< slot start on the device
  std::vector<Bytes> slot_size_;
  std::vector<Bytes> write_cursor_;       ///< within the slot
  std::vector<Bytes> read_cursor_;
  std::vector<Bytes> resident_;           ///< on MEMS, written and unread
  std::vector<Bytes> read_deficit_;       ///< shortfall from partial reads,
                                          ///< repaid by catch-up reads
  std::vector<std::uint8_t> first_write_done_;
  std::vector<std::deque<PendingWrite>> pending_;   ///< per device
  std::vector<Bytes> occupancy_;                    ///< per device
  std::vector<Seconds> device_busy_;                ///< per device
  std::vector<Bytes> play_cursor_;                  ///< disk-side cursor
  std::int64_t last_head_offset_ = 0;
  CycleArena arena_;     ///< per-cycle scratch (batch, order, ops)
  Seconds horizon_ = 0;  ///< Run() duration; bounds eager effects
  /// Fast path: with no TraceLog attached, MEMS-op completion effects are
  /// applied inline in the cycle loop (same order the scheduled events
  /// would have fired). Disk->pending pushes stay event-scheduled in both
  /// modes so the MEMS cycles' view of the pending queues is identical.
  bool eager_ = false;
  MemsPipelineReport report_;
  bool ran_ = false;
  // Telemetry handles (null when config_.metrics is null).
  obs::HistogramMetric* disk_slack_hist_ = nullptr;
  obs::HistogramMetric* mems_slack_hist_ = nullptr;
  obs::Counter* disk_cycles_metric_ = nullptr;
  obs::Counter* mems_cycles_metric_ = nullptr;
  obs::Counter* ios_metric_ = nullptr;
  obs::Counter* starved_metric_ = nullptr;
  std::vector<obs::TimeWeightedGauge*> dram_occupancy_;  ///< per stream
  std::vector<obs::TimeWeightedGauge*> mems_occupancy_;  ///< per device
  // Timeline handles (null when config_.timelines is null).
  std::vector<obs::TimelineSeries*> dram_series_;  ///< per stream
  std::vector<obs::TimelineSeries*> mems_series_;  ///< per device
  // Journal/SLO handles (null / -1 when the hooks are off).
  obs::StreamJournal* journal_ = nullptr;
  std::vector<std::ptrdiff_t> jslot_;      ///< per stream
  std::vector<std::int64_t> uf_seen_;      ///< underflows already journaled
  obs::Slo* slo_underflow_ = nullptr;
  obs::Slo* slo_slack_ = nullptr;

  /// Per-disk-cycle underflow delta scan (journal + underflow SLO).
  void ObserveUnderflows(Seconds now);
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_MEMS_PIPELINE_SERVER_H_
