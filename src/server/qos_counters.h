// Shared QoS counters: the underflow/overflow/violation tallies every
// simulated server used to carry as four copy-pasted report fields. One
// struct keeps the farm/facade aggregation in one place and gives the
// online QoS auditor a single slot to deposit its violation count into.

#ifndef MEMSTREAM_SERVER_QOS_COUNTERS_H_
#define MEMSTREAM_SERVER_QOS_COUNTERS_H_

#include <cstdint>

#include "common/units.h"
#include "server/stream_batch.h"
#include "server/stream_session.h"

namespace memstream::server {

/// Per-run QoS tallies, embedded as `qos` in every server report.
struct QosCounters {
  std::int64_t underflow_events = 0;  ///< playout buffer ran dry
  Seconds underflow_time = 0;         ///< summed across read streams
  std::int64_t overflow_events = 0;   ///< staging buffer overran (writes)
  Seconds overflow_time = 0;
  /// Invariant breaches found by the attached obs::QosAuditor (0 when no
  /// auditor was wired in).
  std::int64_t violations = 0;

  /// Folds a playout session's jitter tallies in. Call after the final
  /// LevelAt(horizon) so trailing underflow time is accrued.
  void AbsorbPlayback(const StreamSession& session) {
    underflow_events += session.underflow_events();
    underflow_time += session.underflow_time();
  }

  /// Folds a recording session's drop tallies in.
  void AbsorbRecording(const RecordingSession& session) {
    overflow_events += session.overflow_events();
    overflow_time += session.overflow_time();
  }

  /// SoA-batch overloads (servers on the batched cycle engine).
  void AbsorbPlayback(const StreamView& view) {
    underflow_events += view.underflow_events();
    underflow_time += view.underflow_time();
  }
  void AbsorbRecording(const RecordingView& view) {
    overflow_events += view.overflow_events();
    overflow_time += view.overflow_time();
  }

  /// Farm/facade aggregation across per-server reports.
  void Merge(const QosCounters& other) {
    underflow_events += other.underflow_events;
    underflow_time += other.underflow_time;
    overflow_events += other.overflow_events;
    overflow_time += other.overflow_time;
    violations += other.violations;
  }

  /// True when the run met every audited and simulated QoS target.
  bool clean() const {
    return underflow_events == 0 && overflow_events == 0 && violations == 0;
  }
};

}  // namespace memstream::server

#endif  // MEMSTREAM_SERVER_QOS_COUNTERS_H_
