#include "sim/simulator.h"

#include <chrono>
#include <utility>

#include "common/profiler.h"

namespace memstream::sim {

Status Simulator::Schedule(Seconds delay, EventCallback cb) {
  if (delay < 0) return Status::InvalidArgument("negative delay");
  queue_.Push(now_ + delay, std::move(cb));
  return Status::OK();
}

Status Simulator::ScheduleAt(Seconds when, EventCallback cb) {
  if (when < now_) return Status::InvalidArgument("event in the past");
  queue_.Push(when, std::move(cb));
  return Status::OK();
}

Result<std::int64_t> Simulator::Run(Seconds until) {
  if (running_) return Status::FailedPrecondition("Run() is not re-entrant");
  running_ = true;
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  std::int64_t processed = 0;
  PROF_SCOPE("sim.run");
  while (!queue_.empty() && !stopped_) {
    if (queue_.NextTime() > until) break;
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    Seconds when = 0;
    PROF_SCOPE("sim.event.dispatch");
    EventCallback cb = [&] {
      PROF_SCOPE("sim.queue.pop");
      return queue_.Pop(&when);
    }();
    now_ = when;
    cb();
    ++processed;
    ++events_processed_;
  }
  // The clock advances to the deadline even if no event lies exactly on
  // it, so repeated bounded Run() calls observe monotonic time.
  if (until != std::numeric_limits<Seconds>::infinity() && !stopped_ &&
      now_ < until && (queue_.empty() || queue_.NextTime() > until)) {
    now_ = until;
  }
  last_run_events_ = processed;
  last_run_wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  running_ = false;
  return processed;
}

double Simulator::last_run_events_per_sec() const {
  if (last_run_wall_seconds_ <= 0) return 0;
  return static_cast<double>(last_run_events_) / last_run_wall_seconds_;
}

void Simulator::Reset() {
  queue_.Clear();
  now_ = 0;
  running_ = false;
  stopped_ = false;
  events_processed_ = 0;
  max_queue_depth_ = 0;
  last_run_events_ = 0;
  last_run_wall_seconds_ = 0;
}

}  // namespace memstream::sim
