// Event tracing: components append typed records (IO issued/completed,
// cycle boundaries, underflows) that tests and the validation bench
// inspect after a run. Tracing is off unless a TraceLog is attached.
//
// A TraceLog may be bounded: with a capacity set it becomes a ring
// buffer that evicts the oldest records and counts the evictions, so a
// long sim_duration cannot exhaust memory. Records carry an optional
// `duration` so completion-style events double as spans; the
// obs::ChromeTraceExporter turns a log into Chrome trace-event JSON.

#ifndef MEMSTREAM_SIM_TRACE_H_
#define MEMSTREAM_SIM_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"

namespace memstream::sim {

/// Kind of traced event.
enum class TraceKind {
  kCycleStart,    ///< an IO cycle began on some device
  kCycleEnd,      ///< an IO cycle finished (duration = busy time)
  kIoIssued,      ///< an IO was handed to a device
  kIoCompleted,   ///< a device finished an IO (duration = service time)
  kUnderflow,     ///< a stream's playout buffer ran dry
  kOverflow,      ///< a buffer exceeded its capacity
  kBufferLevel,   ///< per-stream buffer occupancy sample (bytes = level)
  kNote,          ///< free-form annotation
  kFaultStart,    ///< an injected fault became active (actor = component)
  kFaultEnd,      ///< a fault cleared / was repaired (duration = window)
};

const char* TraceKindName(TraceKind kind);

/// One trace record.
struct TraceRecord {
  Seconds time = 0;
  TraceKind kind = TraceKind::kNote;
  std::string actor;    ///< component name ("disk", "mems0", "stream 3")
  std::int64_t stream_id = -1;  ///< owning stream, when applicable
  Bytes bytes = 0;      ///< transfer size or buffer level, when applicable
  std::string detail;   ///< free-form context
  Seconds duration = 0;  ///< span length ending at `time` (0 = instant)
};

/// Record sink with simple filters for post-run assertions. Unbounded by
/// default; SetCapacity() turns it into a ring buffer.
class TraceLog {
 public:
  TraceLog() = default;
  /// A log that retains at most `capacity` records (0 = unbounded).
  explicit TraceLog(std::size_t capacity) : capacity_(capacity) {}

  void Append(TraceRecord record) {
    if (capacity_ > 0 && records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(std::move(record));
  }

  const std::deque<TraceRecord>& records() const { return records_; }

  /// Retention limit; evicts immediately if the log is already larger.
  void SetCapacity(std::size_t capacity) {
    capacity_ = capacity;
    while (capacity_ > 0 && records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }
  std::size_t capacity() const { return capacity_; }

  /// Records evicted by the ring buffer since the last Clear().
  std::int64_t dropped_records() const { return dropped_; }

  /// Number of records of the given kind.
  std::int64_t Count(TraceKind kind) const;

  /// Records of one kind, in time order (they are appended in time order
  /// because the simulator is single-threaded).
  std::vector<TraceRecord> Filter(TraceKind kind) const;

  void Clear() {
    records_.clear();
    dropped_ = 0;
  }

  /// Multi-line "time kind actor detail" rendering for debugging.
  std::string ToString(std::size_t max_records = 200) const;

 private:
  std::deque<TraceRecord> records_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::int64_t dropped_ = 0;
};

}  // namespace memstream::sim

#endif  // MEMSTREAM_SIM_TRACE_H_
