// Event tracing: components append typed records (IO issued/completed,
// cycle boundaries, underflows) that tests and the validation bench
// inspect after a run. Tracing is off unless a TraceLog is attached.

#ifndef MEMSTREAM_SIM_TRACE_H_
#define MEMSTREAM_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace memstream::sim {

/// Kind of traced event.
enum class TraceKind {
  kCycleStart,    ///< an IO cycle began on some device
  kIoIssued,      ///< an IO was handed to a device
  kIoCompleted,   ///< a device finished an IO
  kUnderflow,     ///< a stream's playout buffer ran dry
  kOverflow,      ///< a buffer exceeded its capacity
  kNote,          ///< free-form annotation
};

const char* TraceKindName(TraceKind kind);

/// One trace record.
struct TraceRecord {
  Seconds time = 0;
  TraceKind kind = TraceKind::kNote;
  std::string actor;    ///< component name ("disk", "mems0", "stream 3")
  std::int64_t stream_id = -1;  ///< owning stream, when applicable
  Bytes bytes = 0;      ///< transfer size, when applicable
  std::string detail;   ///< free-form context
};

/// Append-only record sink with simple filters for post-run assertions.
class TraceLog {
 public:
  void Append(TraceRecord record) { records_.push_back(std::move(record)); }

  const std::vector<TraceRecord>& records() const { return records_; }

  /// Number of records of the given kind.
  std::int64_t Count(TraceKind kind) const;

  /// Records of one kind, in time order (they are appended in time order
  /// because the simulator is single-threaded).
  std::vector<TraceRecord> Filter(TraceKind kind) const;

  void Clear() { records_.clear(); }

  /// Multi-line "time kind actor detail" rendering for debugging.
  std::string ToString(std::size_t max_records = 200) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace memstream::sim

#endif  // MEMSTREAM_SIM_TRACE_H_
