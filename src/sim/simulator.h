// The simulation engine: a clock plus the event queue. Components
// schedule callbacks relative to the current time; Run() drains events in
// order until the queue empties, a deadline passes, or Stop() is called.
//
// Run() keeps cheap always-on telemetry (queue-depth high-water mark,
// wall-clock event throughput) that callers can export into an
// obs::MetricsRegistry after the run; the engine itself stays free of
// heavier instrumentation so the hot loop costs nothing extra.

#ifndef MEMSTREAM_SIM_SIMULATOR_H_
#define MEMSTREAM_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>

#include "common/status.h"
#include "sim/event_queue.h"

namespace memstream::sim {

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  /// Current simulated time (seconds since Run() start).
  Seconds Now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now. Negative delays are
  /// rejected (events cannot fire in the past).
  Status Schedule(Seconds delay, EventCallback cb);

  /// Schedules `cb` at the absolute time `when` (>= Now()).
  Status ScheduleAt(Seconds when, EventCallback cb);

  /// Processes events in time order until the queue is empty or the next
  /// event would fire after `until`. Returns the number of events
  /// processed. Re-entrant Run() calls are rejected.
  Result<std::int64_t> Run(
      Seconds until = std::numeric_limits<Seconds>::infinity());

  /// Makes the current Run() return after the in-flight event completes.
  void Stop() { stopped_ = true; }

  std::int64_t events_processed() const { return events_processed_; }
  bool running() const { return running_; }

  /// Largest pending-event count observed inside any Run() so far.
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  /// Pending events right now.
  std::size_t queue_depth() const { return queue_.size(); }
  /// Wall-clock duration of the most recent Run() call.
  Seconds last_run_wall_seconds() const { return last_run_wall_seconds_; }
  /// Events per wall-clock second over the most recent Run() call.
  double last_run_events_per_sec() const;

  /// Clears pending events and rewinds the clock to zero.
  void Reset();

 private:
  EventQueue queue_;
  Seconds now_ = 0;
  bool running_ = false;
  bool stopped_ = false;
  std::int64_t events_processed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::int64_t last_run_events_ = 0;
  Seconds last_run_wall_seconds_ = 0;
};

}  // namespace memstream::sim

#endif  // MEMSTREAM_SIM_SIMULATOR_H_
