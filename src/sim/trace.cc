#include "sim/trace.h"

#include <sstream>

namespace memstream::sim {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCycleStart:
      return "cycle-start";
    case TraceKind::kCycleEnd:
      return "cycle-end";
    case TraceKind::kIoIssued:
      return "io-issued";
    case TraceKind::kIoCompleted:
      return "io-completed";
    case TraceKind::kUnderflow:
      return "underflow";
    case TraceKind::kOverflow:
      return "overflow";
    case TraceKind::kBufferLevel:
      return "buffer-level";
    case TraceKind::kNote:
      return "note";
    case TraceKind::kFaultStart:
      return "fault-start";
    case TraceKind::kFaultEnd:
      return "fault-end";
  }
  return "?";
}

std::int64_t TraceLog::Count(TraceKind kind) const {
  std::int64_t count = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++count;
  }
  return count;
}

std::vector<TraceRecord> TraceLog::Filter(TraceKind kind) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

std::string TraceLog::ToString(std::size_t max_records) const {
  std::ostringstream out;
  std::size_t emitted = 0;
  for (const auto& r : records_) {
    if (emitted++ >= max_records) {
      out << "... (" << records_.size() - max_records << " more)\n";
      break;
    }
    out << r.time << " " << TraceKindName(r.kind) << " " << r.actor;
    if (r.stream_id >= 0) out << " stream=" << r.stream_id;
    if (r.bytes > 0) out << " bytes=" << r.bytes;
    if (!r.detail.empty()) out << " " << r.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace memstream::sim
