#include "sim/event_queue.h"

#include <memory>
#include <utility>

namespace memstream::sim {

std::int64_t EventQueue::Push(Seconds when, EventCallback cb) {
  const std::int64_t id = next_seq_++;
  heap_.push(Entry{when, id, std::make_shared<EventCallback>(std::move(cb))});
  return id;
}

EventCallback EventQueue::Pop(Seconds* when) {
  Entry top = heap_.top();
  heap_.pop();
  *when = top.when;
  return std::move(*top.cb);
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace memstream::sim
