#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace memstream::sim {

std::int64_t EventQueue::Push(Seconds when, EventCallback cb) {
  const std::int64_t id = next_seq_++;
  heap_.push_back(Entry{when, id, std::move(cb)});
  SiftUp(heap_.size() - 1);
  return id;
}

EventCallback EventQueue::Pop(Seconds* when) {
  Entry top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  *when = top.when;
  return std::move(top.cb);
}

void EventQueue::Clear() { heap_.clear(); }

void EventQueue::SiftUp(std::size_t i) {
  Entry moving = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!moving.Before(heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry moving = std::move(heap_[i]);
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child =
        std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].Before(heap_[best])) best = c;
    }
    if (!heap_[best].Before(moving)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(moving);
}

}  // namespace memstream::sim
