// Discrete-event core: a time-ordered event queue with stable FIFO
// ordering among simultaneous events. Deterministic replay matters as
// much as raw speed, so ties break by insertion sequence; the heap is a
// 4-ary min-heap on a flat vector (shallower than a binary heap, and
// sift operations move entries instead of copying them), and the payload
// is a small-buffer MoveOnlyFunction, so steady-state push/pop performs
// zero heap allocations for captures up to 48 bytes.

#ifndef MEMSTREAM_SIM_EVENT_QUEUE_H_
#define MEMSTREAM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/move_only_function.h"
#include "common/units.h"

namespace memstream::sim {

/// Event payload: an arbitrary move-only callback. Lambdas with captures
/// up to MoveOnlyFunction::kInlineCapacity bytes are stored inline.
using EventCallback = MoveOnlyFunction<void()>;

/// Priority queue of (time, sequence, callback) ordered by time, breaking
/// ties by insertion order.
class EventQueue {
 public:
  /// Enqueues `cb` to fire at absolute time `when`. Returns the event id.
  std::int64_t Push(Seconds when, EventCallback cb);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  Seconds NextTime() const { return heap_.front().when; }

  /// Removes and returns the earliest event's callback, storing its time
  /// in `when`.
  EventCallback Pop(Seconds* when);

  /// Drops all pending events. Safe to call from inside a callback that
  /// Pop() just returned (the entry was already removed from the heap).
  void Clear();

 private:
  struct Entry {
    Seconds when;
    std::int64_t seq;
    EventCallback cb;

    bool Before(const Entry& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  static constexpr std::size_t kArity = 4;

  std::vector<Entry> heap_;
  std::int64_t next_seq_ = 0;
};

}  // namespace memstream::sim

#endif  // MEMSTREAM_SIM_EVENT_QUEUE_H_
