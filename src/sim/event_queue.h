// Discrete-event core: a time-ordered event queue with stable FIFO
// ordering among simultaneous events (deterministic replay matters more
// here than raw speed, but the queue is still a binary heap).

#ifndef MEMSTREAM_SIM_EVENT_QUEUE_H_
#define MEMSTREAM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"

namespace memstream::sim {

/// Event payload: an arbitrary callback.
using EventCallback = std::function<void()>;

/// Priority queue of (time, sequence, callback) ordered by time, breaking
/// ties by insertion order.
class EventQueue {
 public:
  /// Enqueues `cb` to fire at absolute time `when`. Returns the event id.
  std::int64_t Push(Seconds when, EventCallback cb);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  Seconds NextTime() const { return heap_.top().when; }

  /// Removes and returns the earliest event's callback, storing its time
  /// in `when`.
  EventCallback Pop(Seconds* when);

  /// Drops all pending events.
  void Clear();

 private:
  struct Entry {
    Seconds when;
    std::int64_t seq;
    // shared_ptr keeps Entry copyable for the std::priority_queue.
    std::shared_ptr<EventCallback> cb;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::int64_t next_seq_ = 0;
};

}  // namespace memstream::sim

#endif  // MEMSTREAM_SIM_EVENT_QUEUE_H_
