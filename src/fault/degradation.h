// Graceful degradation: re-solves the paper's admission analytics online
// when a fault changes the hardware the plan was sized against, and
// decides what the server should do about it.
//
// The healthy plan comes from Theorems 3/4 (Eqs. 5-8 specialised to the
// cache): k devices of rate Rm sustain n cache streams with per-stream
// buffer CachePerStreamBuffer(n, B̄, k, mems, policy) and MEMS cycle
// T_mems = S/B̄. A fault shrinks k (device failure) or Rm (tip loss), so
// the manager re-runs the same formulas with the degraded (k', Rm') and
// picks the cheapest repair, in order:
//
//  1. reshape — the degraded bank still sustains all n streams; only the
//     cycle length and buffer sizing change (Theorem 4's k becomes k').
//  2. shed — drop the fewest streams m so that CacheCanSustain(n - m)
//     holds again (highest stream indices first, deterministically);
//     shed streams are re-admitted when a repair restores feasibility.
//  3. disk fallback — a striped bank that lost a device has no content
//     at all (every stripe needs all k devices, Corollary 3), so cache
//     streams with a disk-resident copy move to the Theorem 1 disk path
//     while the disk has headroom; the rest are shed until the device
//     returns and the stripes are refilled (refill_delay).
//
// The manager is pure: Replan() maps the observed degraded state to a
// CacheReplan decision; the server applies it (and the FaultInjector
// ledgers it). That keeps the policy unit-testable without a simulator.

#ifndef MEMSTREAM_FAULT_DEGRADATION_H_
#define MEMSTREAM_FAULT_DEGRADATION_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "model/incremental.h"
#include "model/mems_cache.h"
#include "model/profiles.h"

namespace memstream::fault {

/// What the server should degrade to. Filled by DegradationManager.
struct CacheReplan {
  /// False only when even one stream cannot be served anywhere.
  bool feasible = false;
  /// True when the cache path is unusable (striped bank lost a device,
  /// or every device failed) — retained is then 0.
  bool cache_down = false;
  std::int64_t retained = 0;   ///< cache streams kept on the MEMS path
  std::int64_t to_disk = 0;    ///< cache streams moved to the disk path
  std::int64_t shed = 0;       ///< cache streams shed entirely
  Seconds mems_cycle = 0;      ///< new T_mems for retained streams
  Seconds disk_cycle = 0;      ///< new T_disk when to_disk > 0, else 0
  Bytes per_stream_buffer = 0; ///< new DRAM sizing for retained streams
  std::string action;          ///< human summary for the fault timeline

  bool operator==(const CacheReplan&) const = default;
};

/// Degraded-state inputs and policy knobs.
struct DegradationConfig {
  model::CachePolicy policy = model::CachePolicy::kReplicated;
  std::int64_t k = 1;              ///< healthy bank size
  BytesPerSecond bit_rate = 0;     ///< common stream rate B̄
  model::DeviceProfile mems;       ///< healthy single-device profile
  model::DeviceProfile disk;       ///< disk profile (fallback feasibility)
  std::int64_t n_disk = 0;         ///< streams already on the disk path
  std::int64_t n_cache = 0;        ///< streams admitted to the cache path
  bool allow_reshape = true;
  bool allow_shed = true;
  bool allow_disk_fallback = true;
  /// Striped refill: after a repair the stripes must be rebuilt from disk
  /// before cache service resumes; re-admission waits this long.
  Seconds refill_delay = 0;
};

/// Policy object: the durable state lives in the server + injector; the
/// manager itself only carries incremental re-solve memos. Fault/repair
/// sequences revisit the same degraded (alive, rate_scale) states over
/// and over, so Replan() and MaxSustainable() cache their outcome on the
/// bit-exact key and a revisit skips the full re-derivation (cross-
/// checked against the full solver in debug builds). The memos are not
/// synchronized: a manager must not be shared by concurrently running
/// servers.
class DegradationManager {
 public:
  /// Validates the configuration.
  static Result<DegradationManager> Create(const DegradationConfig& config);

  const DegradationConfig& config() const { return config_; }

  /// Decides the degraded plan for the observed bank state: `alive`
  /// devices still serving and `rate_scale` = the worst surviving-tip
  /// fraction among them (1 = no tip loss). Healthy inputs return a
  /// full-strength reshape (retained = n_cache, original sizing).
  const CacheReplan& Replan(std::int64_t alive, double rate_scale) const;

  /// Largest stream count the degraded bank sustains with a valid
  /// Theorem 3/4 sizing (bandwidth and buffer both finite).
  std::int64_t MaxSustainable(std::int64_t alive, double rate_scale) const;

  /// True when the disk path can absorb `extra` more streams on top of
  /// config().n_disk (Theorem 1 bandwidth bound).
  bool DiskCanAbsorb(std::int64_t extra) const;

  /// Re-solve memo accounting (hits/misses/cross-check mismatches).
  const model::SolveMemoStats& replan_stats() const {
    return replan_memo_.stats();
  }
  /// Forces (or disables) the hit-time cross-check against the full
  /// solver; defaults to on in debug builds only.
  void set_cross_check(bool on) const {
    replan_memo_.set_cross_check(on);
    sustain_memo_.set_cross_check(on);
  }

 private:
  explicit DegradationManager(const DegradationConfig& config)
      : config_(config) {}

  CacheReplan ReplanFull(std::int64_t alive, double rate_scale) const;
  std::int64_t MaxSustainableFull(std::int64_t alive,
                                  double rate_scale) const;

  DegradationConfig config_;
  mutable model::SolveMemo<CacheReplan> replan_memo_;
  mutable model::SolveMemo<std::int64_t> sustain_memo_;
};

}  // namespace memstream::fault

#endif  // MEMSTREAM_FAULT_DEGRADATION_H_
