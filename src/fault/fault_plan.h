// Fault plans: a deterministic, time-ordered schedule of injected faults.
//
// A plan is either scripted (explicit FaultEvent list, for tests and
// targeted scenarios) or generated from per-kind Poisson rates with a
// seeded Rng, so the same (config, seed) pair always yields the same
// fault sequence — sweeps over fault rates stay reproducible at any
// thread count because the plan is materialized up front, not sampled
// during the run.
//
// Fault kinds model the failure modes the paper's hardware is exposed
// to: MEMS probe-tip loss (a fraction of the tips stops reading, the
// effective Rm drops), whole-MEMS-device failure with later repair
// (a replicated bank keeps serving at k-1, a striped bank loses its
// content), disk latency spikes (retries / thermal recalibration), and
// transient DRAM buffer-pool pressure (a co-tenant steals part of the
// buffer budget for a window).

#ifndef MEMSTREAM_FAULT_FAULT_PLAN_H_
#define MEMSTREAM_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace memstream::fault {

/// What kind of fault an event injects.
enum class FaultKind {
  kMemsTipLoss,      ///< permanent loss of a tip fraction on one device
  kMemsDeviceFail,   ///< one MEMS device stops servicing IOs
  kMemsDeviceRepair, ///< a failed device returns to service
  kDiskLatencySpike, ///< disk IOs pay extra latency for a window
  kDramPressure,     ///< part of the DRAM budget vanishes for a window
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault.
struct FaultEvent {
  Seconds time = 0;
  FaultKind kind = FaultKind::kMemsTipLoss;
  /// Affected MEMS device index for device-scoped kinds; -1 otherwise.
  std::int64_t device = -1;
  /// Kind-specific severity: tip-loss fraction in [0, 1) for kMemsTipLoss,
  /// extra seconds per disk IO for kDiskLatencySpike, stolen DRAM fraction
  /// in [0, 1) for kDramPressure; unused for fail/repair.
  double magnitude = 0;
  /// Window length for kDiskLatencySpike / kDramPressure; for
  /// kMemsDeviceRepair, the outage length it ends (for trace spans).
  Seconds duration = 0;
};

/// Rates and severities for generated plans. A rate of 0 disables that
/// fault kind; rates are Poisson intensities in events per simulated
/// second over [0, horizon).
struct FaultPlanConfig {
  Seconds horizon = 60;
  std::int64_t num_devices = 1;  ///< MEMS devices to draw targets from

  double tip_loss_rate = 0;
  double tip_loss_fraction = 0.1;  ///< tips lost per event

  double device_fail_rate = 0;
  Seconds repair_after = 10;  ///< outage length; repair event is paired

  double disk_spike_rate = 0;
  Seconds disk_spike_penalty = 5 * kMillisecond;  ///< extra latency per IO
  Seconds disk_spike_duration = 2;

  double dram_pressure_rate = 0;
  double dram_pressure_fraction = 0.25;  ///< DRAM budget fraction stolen
  Seconds dram_pressure_duration = 2;
};

/// An immutable, time-sorted fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// A plan from an explicit event list (sorted by time, stably).
  static FaultPlan FromScript(std::vector<FaultEvent> events);

  /// Draws per-kind Poisson processes from a seeded Rng. Device failures
  /// emit a paired kMemsDeviceRepair at fail time + repair_after (also
  /// when that lands past the horizon: the run just ends degraded). A
  /// device already down stays down — overlapping failures of the same
  /// device are dropped rather than double-counted.
  static Result<FaultPlan> Generate(const FaultPlanConfig& config,
                                    std::uint64_t seed);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// "t=12.5s mems-device-fail device=1" lines, for debugging.
  std::string ToString() const;

 private:
  explicit FaultPlan(std::vector<FaultEvent> events);

  std::vector<FaultEvent> events_;
};

}  // namespace memstream::fault

#endif  // MEMSTREAM_FAULT_FAULT_PLAN_H_
