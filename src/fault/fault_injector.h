// Fault injector: materializes a FaultPlan against one simulated run.
//
// The injector has two faces:
//
//  - Pure time queries for the window-shaped faults. Disk latency spikes
//    and DRAM pressure are precomputed into sorted windows at
//    construction, so servers ask DiskIoPenalty(now) per IO and
//    DramAvailableFraction(now) per re-plan without any event plumbing.
//  - Event plumbing for the device-shaped faults. ScheduleIn() registers
//    one simulator callback per fault event; device events (tip loss,
//    fail, repair) are forwarded to the server's handler so it can mutate
//    its devices and trigger a degradation re-plan at the right simulated
//    time.
//
// Every fault start/end is mirrored into the TraceLog (kFaultStart /
// kFaultEnd, rendered as run-wide markers by the Chrome exporter) and the
// fault.* metrics; the injector also keeps the run's obs::FaultsBlock —
// the "faults" object of RunReport v3 — including the shed/re-admit
// ledger that the DegradationManager's actions feed via RecordShed() /
// RecordReadmit() / RecordReplan().
//
// Burst-drop accounting (observability satellite): while >= 1 windowed or
// device fault is active the TraceLog's dropped_records() is snapshotted
// at the burst edges; drops that happened inside bursts are reported
// separately (faults.dropped_during_burst) and, when nonzero, Finalize()
// emits one structured warning line on stderr so truncated evidence of a
// degraded window is never silent.

#ifndef MEMSTREAM_FAULT_FAULT_INJECTOR_H_
#define MEMSTREAM_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::fault {

/// Wiring for one run. All pointers optional and not owned.
struct FaultInjectorConfig {
  obs::MetricsRegistry* metrics = nullptr;
  sim::TraceLog* trace = nullptr;
  /// Stream of the structured burst-drop warning; null = std::cerr.
  std::ostream* warn_stream = nullptr;
};

/// Applies one FaultPlan to one run. Not reusable across runs.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, const FaultInjectorConfig& config);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called at each device-scoped fault's time (tip loss, fail, repair),
  /// after the injector has done its own bookkeeping.
  using DeviceFaultHandler = std::function<void(const FaultEvent&)>;

  /// Registers one callback per plan event with the simulator. Windowed
  /// faults (disk spike, DRAM pressure) also get their end callback.
  /// `device_handler` may be null (faults are then observed but nothing
  /// reacts — the ablation baseline).
  Status ScheduleIn(sim::Simulator& sim, DeviceFaultHandler device_handler);

  // --- pure time queries (valid before/without ScheduleIn) ---

  /// Extra seconds every disk IO pays at `now` (overlapping spikes sum).
  Seconds DiskIoPenalty(Seconds now) const;

  /// Fraction of the DRAM budget still available at `now` (1 = no
  /// pressure; overlapping windows multiply their survivals).
  double DramAvailableFraction(Seconds now) const;

  // --- degradation ledger (called by the server / DegradationManager) ---

  /// Stream `stream_id` was shed at `now`, effective in cycle `cycle`.
  void RecordShed(std::int64_t stream_id, Seconds now, std::int64_t cycle);

  /// A previously shed stream rejoined service.
  void RecordReadmit(std::int64_t stream_id, Seconds now);

  /// A degradation re-plan was applied in response to `cause`; `action`
  /// is the human-readable outcome ("reshape T_mems=...", "shed 2", ...).
  void RecordReplan(const FaultEvent& cause, Seconds now,
                    const std::string& action);

  // --- run end ---

  /// Closes open windows at `horizon`: settles burst-drop accounting,
  /// accrues shed time for still-shed streams, publishes the
  /// trace.dropped_records metric, and emits the structured stderr
  /// warning if records were dropped during a fault burst.
  void Finalize(Seconds horizon);

  /// The run's "faults" report block (stable once Finalize() ran).
  const obs::FaultsBlock& block() const { return block_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  struct Window {
    Seconds begin = 0;
    Seconds end = 0;
    double magnitude = 0;
  };

  void OnFaultStart(const FaultEvent& e, Seconds now);
  void OnFaultEnd(const FaultEvent& e, Seconds now);
  void EnterBurst();
  void LeaveBurst();
  std::string ActorOf(const FaultEvent& e) const;

  FaultPlan plan_;
  FaultInjectorConfig config_;
  std::vector<Window> disk_spikes_;    ///< sorted by begin
  std::vector<Window> dram_windows_;   ///< sorted by begin
  obs::FaultsBlock block_;
  std::int64_t active_faults_ = 0;     ///< open windows + failed devices
  std::int64_t burst_drop_mark_ = 0;   ///< dropped_records() at burst entry
  bool finalized_ = false;
  // Telemetry handles (null when config_.metrics is null).
  obs::Counter* events_metric_ = nullptr;
  obs::Counter* repairs_metric_ = nullptr;
  obs::Counter* sheds_metric_ = nullptr;
  obs::Counter* readmits_metric_ = nullptr;
  obs::Counter* replans_metric_ = nullptr;
  obs::Gauge* active_metric_ = nullptr;
  obs::Gauge* dropped_metric_ = nullptr;
};

}  // namespace memstream::fault

#endif  // MEMSTREAM_FAULT_FAULT_INJECTOR_H_
