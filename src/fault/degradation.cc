#include "fault/degradation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/incremental.h"
#include "model/timecycle.h"

namespace memstream::fault {

namespace {

/// The degraded single-device profile: Rm scaled by the surviving-tip
/// fraction (latency is positioning-dominated and unchanged).
model::DeviceProfile ScaleRate(model::DeviceProfile mems, double scale) {
  mems.rate *= scale;
  return mems;
}

}  // namespace

Result<DegradationManager> DegradationManager::Create(
    const DegradationConfig& config) {
  if (config.k < 1) {
    return Status::InvalidArgument("degradation needs k >= 1");
  }
  if (config.bit_rate <= 0) {
    return Status::InvalidArgument("bit_rate must be > 0");
  }
  if (config.n_cache < 0 || config.n_disk < 0) {
    return Status::InvalidArgument("stream counts must be >= 0");
  }
  if (config.mems.rate <= 0) {
    return Status::InvalidArgument("mems profile rate must be > 0");
  }
  if (config.refill_delay < 0) {
    return Status::InvalidArgument("refill_delay must be >= 0");
  }
  return DegradationManager(config);
}

std::int64_t DegradationManager::MaxSustainableFull(std::int64_t alive,
                                                    double rate_scale) const {
  if (alive <= 0 || rate_scale <= 0) return 0;
  const model::DeviceProfile degraded = ScaleRate(config_.mems, rate_scale);
  std::int64_t n = model::MaxCacheStreamsBandwidthBound(
      config_.bit_rate, alive, degraded.rate, config_.policy);
  n = std::min(n, config_.n_cache);
  // The bandwidth bound is necessary, not sufficient: near it the
  // Theorem 3/4 buffer diverges. Walk down to the largest n whose sizing
  // is finite and positive (probe kernel: the infeasible steps of this
  // walk would otherwise each allocate an Infeasible message).
  while (n > 0) {
    const double buf = model::ProbeCachePerStream(
        n, config_.bit_rate, alive, degraded, config_.policy);
    if (!std::isnan(buf)) break;
    --n;
  }
  return n;
}

std::int64_t DegradationManager::MaxSustainable(std::int64_t alive,
                                                double rate_scale) const {
  const model::SolveKey key{alive, model::DoubleBits(rate_scale), 1};
  return sustain_memo_.Lookup(
      key, [&] { return MaxSustainableFull(alive, rate_scale); },
      [](std::int64_t a, std::int64_t b) { return a == b; });
}

bool DegradationManager::DiskCanAbsorb(std::int64_t extra) const {
  if (extra < 0) return false;
  if (config_.disk.rate <= 0) return false;
  return model::PerStreamBufferSize(config_.n_disk + extra,
                                    config_.bit_rate, config_.disk)
      .ok();
}

CacheReplan DegradationManager::ReplanFull(std::int64_t alive,
                                           double rate_scale) const {
  CacheReplan plan;
  std::ostringstream action;

  const bool striped_dead =
      config_.policy == model::CachePolicy::kStriped && alive < config_.k;
  plan.cache_down = striped_dead || alive <= 0 || rate_scale <= 0;

  if (!plan.cache_down) {
    const model::DeviceProfile degraded =
        ScaleRate(config_.mems, rate_scale);
    const std::int64_t sustainable =
        config_.allow_shed ? MaxSustainableFull(alive, rate_scale)
                           : config_.n_cache;
    const std::int64_t keep = std::min(config_.n_cache, sustainable);
    auto buf = model::CachePerStreamBuffer(keep, config_.bit_rate, alive,
                                           degraded, config_.policy);
    if (keep > 0 && buf.ok()) {
      plan.feasible = true;
      plan.retained = keep;
      plan.shed = config_.n_cache - keep;
      plan.per_stream_buffer = buf.value();
      plan.mems_cycle = buf.value() / config_.bit_rate;  // T = S / B̄
      if (plan.shed == 0) {
        action << "reshape k'=" << alive << " T_mems=" << plan.mems_cycle
               << "s";
      } else {
        action << "shed " << plan.shed << " keep " << keep << " (k'="
               << alive << ")";
      }
      plan.action = action.str();
      return plan;
    }
    // Nothing sustainable on the degraded bank: fall through to the
    // cache-down handling (disk fallback / full shed).
    plan.cache_down = true;
  }

  // Cache path unusable. Move what the disk can absorb, shed the rest.
  std::int64_t to_disk = 0;
  if (config_.allow_disk_fallback && config_.disk.rate > 0) {
    // Largest extra with a feasible Theorem 1 sizing (probe kernel: the
    // bisection's infeasible probes are free of Status allocation).
    to_disk = std::max<std::int64_t>(
        model::LargestTrueInline(
            [&](std::int64_t extra) {
              return !std::isnan(model::ProbeTheorem1PerStream(
                  config_.n_disk + extra, config_.bit_rate,
                  config_.disk.rate, config_.disk.latency));
            },
            1, config_.n_cache),
        0);
  }
  plan.to_disk = to_disk;
  plan.shed = config_.n_cache - to_disk;
  plan.retained = 0;
  plan.feasible = to_disk > 0 || config_.n_cache == 0;
  if (to_disk > 0) {
    auto disk_buf = model::PerStreamBufferSize(config_.n_disk + to_disk,
                                               config_.bit_rate, config_.disk);
    if (disk_buf.ok()) {
      plan.disk_cycle = disk_buf.value() / config_.bit_rate;  // T = S / B̄
    }
  }
  action << "cache down: " << to_disk << " to disk, shed " << plan.shed;
  plan.action = action.str();
  return plan;
}

const CacheReplan& DegradationManager::Replan(std::int64_t alive,
                                              double rate_scale) const {
  const model::SolveKey key{alive, model::DoubleBits(rate_scale), 0};
  return replan_memo_.Lookup(
      key, [&] { return ReplanFull(alive, rate_scale); },
      [](const CacheReplan& a, const CacheReplan& b) { return a == b; });
}

}  // namespace memstream::fault
