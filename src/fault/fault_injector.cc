#include "fault/fault_injector.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/profiler.h"

namespace memstream::fault {

FaultInjector::FaultInjector(const FaultPlan& plan,
                             const FaultInjectorConfig& config)
    : plan_(plan), config_(config) {
  for (const auto& e : plan_.events()) {
    if (e.kind == FaultKind::kDiskLatencySpike) {
      disk_spikes_.push_back({e.time, e.time + e.duration, e.magnitude});
    } else if (e.kind == FaultKind::kDramPressure) {
      dram_windows_.push_back({e.time, e.time + e.duration, e.magnitude});
    }
  }
  if (obs::MetricsRegistry* m = config_.metrics; m != nullptr) {
    events_metric_ = m->counter("fault.events");
    repairs_metric_ = m->counter("fault.repairs");
    sheds_metric_ = m->counter("fault.sheds");
    readmits_metric_ = m->counter("fault.readmits");
    replans_metric_ = m->counter("fault.replans");
    active_metric_ = m->gauge("fault.active");
    dropped_metric_ = m->gauge("trace.dropped_records");
    m->SetHelp("fault.events", "Injected faults that became active");
    m->SetHelp("fault.sheds",
               "Streams shed by the degradation manager to restore "
               "feasibility");
    m->SetHelp("trace.dropped_records",
               "TraceLog records evicted by the bounded ring buffer over "
               "the whole run");
  }
}

std::string FaultInjector::ActorOf(const FaultEvent& e) const {
  switch (e.kind) {
    case FaultKind::kMemsTipLoss:
    case FaultKind::kMemsDeviceFail:
    case FaultKind::kMemsDeviceRepair:
      return "mems" + std::to_string(e.device < 0 ? 0 : e.device);
    case FaultKind::kDiskLatencySpike:
      return "disk";
    case FaultKind::kDramPressure:
      return "dram";
  }
  return "?";
}

void FaultInjector::EnterBurst() {
  if (active_faults_ == 0 && config_.trace != nullptr) {
    burst_drop_mark_ = config_.trace->dropped_records();
  }
  ++active_faults_;
  obs::Set(active_metric_, static_cast<double>(active_faults_));
}

void FaultInjector::LeaveBurst() {
  if (active_faults_ <= 0) return;
  --active_faults_;
  obs::Set(active_metric_, static_cast<double>(active_faults_));
  if (active_faults_ == 0 && config_.trace != nullptr) {
    block_.dropped_during_burst +=
        config_.trace->dropped_records() - burst_drop_mark_;
  }
}

void FaultInjector::OnFaultStart(const FaultEvent& e, Seconds now) {
  ++block_.events;
  obs::Increment(events_metric_);
  obs::FaultTimelineEntry entry;
  entry.time = now;
  entry.kind = FaultKindName(e.kind);
  entry.device = e.device;
  entry.magnitude = e.magnitude;
  block_.timeline.push_back(entry);
  if (config_.trace != nullptr) {
    config_.trace->Append({now, sim::TraceKind::kFaultStart, ActorOf(e), -1,
                           0, FaultKindName(e.kind)});
  }
  // Permanent tip loss is an instantaneous degradation, not an open
  // window; everything else stays active until its end/repair.
  if (e.kind != FaultKind::kMemsTipLoss) EnterBurst();
}

void FaultInjector::OnFaultEnd(const FaultEvent& e, Seconds now) {
  ++block_.repairs;
  obs::Increment(repairs_metric_);
  obs::FaultTimelineEntry entry;
  entry.time = now;
  entry.kind = FaultKindName(e.kind);
  entry.device = e.device;
  entry.magnitude = e.magnitude;
  entry.action = "cleared";
  block_.timeline.push_back(entry);
  if (config_.trace != nullptr) {
    config_.trace->Append({now, sim::TraceKind::kFaultEnd, ActorOf(e), -1, 0,
                           FaultKindName(e.kind), e.duration});
  }
  LeaveBurst();
}

Status FaultInjector::ScheduleIn(sim::Simulator& sim,
                                 DeviceFaultHandler device_handler) {
  for (const auto& e : plan_.events()) {
    switch (e.kind) {
      case FaultKind::kMemsTipLoss:
      case FaultKind::kMemsDeviceFail: {
        MEMSTREAM_RETURN_IF_ERROR(sim.ScheduleAt(e.time, [this, e,
                                                          device_handler,
                                                          &sim] {
          OnFaultStart(e, sim.Now());
          if (device_handler) device_handler(e);
        }));
        break;
      }
      case FaultKind::kMemsDeviceRepair: {
        MEMSTREAM_RETURN_IF_ERROR(sim.ScheduleAt(e.time, [this, e,
                                                          device_handler,
                                                          &sim] {
          OnFaultEnd(e, sim.Now());
          if (device_handler) device_handler(e);
        }));
        break;
      }
      case FaultKind::kDiskLatencySpike:
      case FaultKind::kDramPressure: {
        MEMSTREAM_RETURN_IF_ERROR(sim.ScheduleAt(
            e.time, [this, e, &sim] { OnFaultStart(e, sim.Now()); }));
        MEMSTREAM_RETURN_IF_ERROR(
            sim.ScheduleAt(e.time + e.duration, [this, e, &sim] {
              FaultEvent end = e;
              OnFaultEnd(end, sim.Now());
            }));
        break;
      }
    }
  }
  return Status::OK();
}

Seconds FaultInjector::DiskIoPenalty(Seconds now) const {
  Seconds penalty = 0;
  for (const auto& w : disk_spikes_) {
    if (w.begin > now) break;  // sorted by begin
    if (now < w.end) penalty += w.magnitude;
  }
  return penalty;
}

double FaultInjector::DramAvailableFraction(Seconds now) const {
  double available = 1.0;
  for (const auto& w : dram_windows_) {
    if (w.begin > now) break;
    if (now < w.end) available *= 1.0 - w.magnitude;
  }
  return available;
}

void FaultInjector::RecordShed(std::int64_t stream_id, Seconds now,
                               std::int64_t cycle) {
  ++block_.sheds;
  obs::Increment(sheds_metric_);
  obs::ShedRecord rec;
  rec.stream_id = stream_id;
  rec.shed_time = now;
  rec.shed_cycle = cycle;
  block_.shed_streams.push_back(rec);
  if (config_.trace != nullptr) {
    config_.trace->Append({now, sim::TraceKind::kNote, "degradation",
                           stream_id, 0, "shed stream"});
  }
}

void FaultInjector::RecordReadmit(std::int64_t stream_id, Seconds now) {
  // Close the most recent open shed record for this stream.
  for (auto it = block_.shed_streams.rbegin();
       it != block_.shed_streams.rend(); ++it) {
    if (it->stream_id == stream_id && it->readmit_time < 0) {
      it->readmit_time = now;
      block_.total_shed_time += now - it->shed_time;
      break;
    }
  }
  ++block_.readmits;
  obs::Increment(readmits_metric_);
  if (config_.trace != nullptr) {
    config_.trace->Append({now, sim::TraceKind::kNote, "degradation",
                           stream_id, 0, "re-admit stream"});
  }
}

void FaultInjector::RecordReplan(const FaultEvent& cause, Seconds now,
                                 const std::string& action) {
  ++block_.replans;
  obs::Increment(replans_metric_);
  // Annotate the matching timeline entry (the most recent one for this
  // kind/device) with the re-plan outcome.
  for (auto it = block_.timeline.rbegin(); it != block_.timeline.rend();
       ++it) {
    if (it->kind == FaultKindName(cause.kind) &&
        it->device == cause.device && it->action.empty()) {
      it->action = action;
      break;
    }
  }
  if (config_.trace != nullptr) {
    config_.trace->Append({now, sim::TraceKind::kNote, "degradation", -1, 0,
                           "replan: " + action});
  }
}

void FaultInjector::Finalize(Seconds horizon) {
  if (finalized_) return;
  finalized_ = true;
  // Settle the burst accounting for windows still open at run end.
  if (active_faults_ > 0 && config_.trace != nullptr) {
    block_.dropped_during_burst +=
        config_.trace->dropped_records() - burst_drop_mark_;
  }
  active_faults_ = 0;
  obs::Set(active_metric_, 0);
  // Streams never re-admitted accrue shed time up to the horizon.
  for (auto& rec : block_.shed_streams) {
    if (rec.readmit_time < 0) {
      block_.total_shed_time += horizon - rec.shed_time;
    }
  }
  if (config_.trace != nullptr) {
    obs::Set(dropped_metric_,
             static_cast<double>(config_.trace->dropped_records()));
    if (block_.dropped_during_burst > 0) {
      std::ostream& out =
          config_.warn_stream != nullptr ? *config_.warn_stream : std::cerr;
      out << "warning: trace.dropped_records="
          << config_.trace->dropped_records() << " dropped_during_burst="
          << block_.dropped_during_burst << " profiler_dropped_samples="
          << prof::Profiler::Global().dropped_samples()
          << " — the trace ring buffer evicted records while a fault was "
             "active; raise the trace capacity to keep the degraded "
             "window's evidence\n";
    }
  }
}

}  // namespace memstream::fault
