#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"

namespace memstream::fault {

namespace {

/// Draws a Poisson arrival sequence over [0, horizon) and appends one
/// event per arrival via `emit(t)`.
template <typename Emit>
void DrawArrivals(Rng& rng, double rate, Seconds horizon, Emit emit) {
  if (rate <= 0) return;
  Seconds t = rng.NextExponential(rate);
  while (t < horizon) {
    emit(t);
    t += rng.NextExponential(rate);
  }
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemsTipLoss:
      return "mems-tip-loss";
    case FaultKind::kMemsDeviceFail:
      return "mems-device-fail";
    case FaultKind::kMemsDeviceRepair:
      return "mems-device-repair";
    case FaultKind::kDiskLatencySpike:
      return "disk-latency-spike";
    case FaultKind::kDramPressure:
      return "dram-pressure";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

FaultPlan FaultPlan::FromScript(std::vector<FaultEvent> events) {
  return FaultPlan(std::move(events));
}

Result<FaultPlan> FaultPlan::Generate(const FaultPlanConfig& config,
                                      std::uint64_t seed) {
  if (config.horizon <= 0) {
    return Status::InvalidArgument("fault plan horizon must be > 0");
  }
  if (config.num_devices < 1) {
    return Status::InvalidArgument("fault plan needs >= 1 device");
  }
  if (config.tip_loss_fraction < 0 || config.tip_loss_fraction >= 1) {
    return Status::InvalidArgument("tip_loss_fraction must be in [0, 1)");
  }
  if (config.dram_pressure_fraction < 0 ||
      config.dram_pressure_fraction >= 1) {
    return Status::InvalidArgument(
        "dram_pressure_fraction must be in [0, 1)");
  }
  if (config.repair_after <= 0) {
    return Status::InvalidArgument("repair_after must be > 0");
  }

  Rng rng(seed);
  std::vector<FaultEvent> events;

  DrawArrivals(rng, config.tip_loss_rate, config.horizon, [&](Seconds t) {
    FaultEvent e;
    e.time = t;
    e.kind = FaultKind::kMemsTipLoss;
    e.device = rng.NextInt(0, config.num_devices - 1);
    e.magnitude = config.tip_loss_fraction;
    events.push_back(e);
  });

  // Device failures: drop arrivals that hit a device still down (the
  // repair schedule below keeps one outage per device at a time).
  std::vector<Seconds> down_until(
      static_cast<std::size_t>(config.num_devices), -1);
  DrawArrivals(rng, config.device_fail_rate, config.horizon, [&](Seconds t) {
    const auto dev =
        static_cast<std::size_t>(rng.NextInt(0, config.num_devices - 1));
    if (t < down_until[dev]) return;  // still failed: no double-fault
    down_until[dev] = t + config.repair_after;
    FaultEvent fail;
    fail.time = t;
    fail.kind = FaultKind::kMemsDeviceFail;
    fail.device = static_cast<std::int64_t>(dev);
    events.push_back(fail);
    FaultEvent repair;
    repair.time = t + config.repair_after;
    repair.kind = FaultKind::kMemsDeviceRepair;
    repair.device = static_cast<std::int64_t>(dev);
    repair.duration = config.repair_after;
    events.push_back(repair);
  });

  DrawArrivals(rng, config.disk_spike_rate, config.horizon, [&](Seconds t) {
    FaultEvent e;
    e.time = t;
    e.kind = FaultKind::kDiskLatencySpike;
    e.magnitude = config.disk_spike_penalty;
    e.duration = config.disk_spike_duration;
    events.push_back(e);
  });

  DrawArrivals(rng, config.dram_pressure_rate, config.horizon,
               [&](Seconds t) {
                 FaultEvent e;
                 e.time = t;
                 e.kind = FaultKind::kDramPressure;
                 e.magnitude = config.dram_pressure_fraction;
                 e.duration = config.dram_pressure_duration;
                 events.push_back(e);
               });

  return FaultPlan(std::move(events));
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  for (const auto& e : events_) {
    out << "t=" << e.time << "s " << FaultKindName(e.kind);
    if (e.device >= 0) out << " device=" << e.device;
    if (e.magnitude > 0) out << " magnitude=" << e.magnitude;
    if (e.duration > 0) out << " duration=" << e.duration << "s";
    out << "\n";
  }
  return out.str();
}

}  // namespace memstream::fault
