// The incremental re-solve layer is only trusted where it is provably
// equal to the full derivation. This test pins that equivalence down:
//
//  - probe kernels vs Result-returning solvers: over randomized
//    parameters (feasible and infeasible alike), a feasible probe must
//    be bit-identical to the full solve and an infeasible one must be
//    NaN exactly when the full solve is non-OK;
//  - LargestTrueInline vs math_utils' LargestTrue on random monotone
//    predicates;
//  - the admission and degradation re-solve memos under randomized
//    admit/depart and fault/repair sequences, with the hit-time
//    cross-check forced on — any divergence between the memoized and
//    the full path lands in stats().mismatches;
//  - BreakEvenCostFactor's hoisted bisection vs a reference that runs
//    the full EvaluateSensitivity at every probe.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/random.h"
#include "device/device_catalog.h"
#include "fault/degradation.h"
#include "model/incremental.h"
#include "model/mems_cache.h"
#include "model/profiles.h"
#include "model/sensitivity.h"
#include "model/timecycle.h"
#include "server/admission.h"

namespace memstream {
namespace {

using model::DoubleBits;

TEST(ProbeKernelTest, Theorem1MatchesFullSolverBitExactly) {
  Rng rng(101);
  int feasible = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::int64_t n = rng.NextInt(-2, 300);
    const BytesPerSecond b = rng.NextDouble() * 4 * kMBps;
    model::DeviceProfile dev;
    // Spans both sides of the R > n * B̄ boundary.
    dev.rate = rng.NextDouble() * 400 * kMBps;
    dev.latency = (rng.NextDouble() - 0.05) * 20 * kMillisecond;

    const double per = model::ProbeTheorem1PerStream(n, b, dev.rate,
                                                     dev.latency);
    auto full = model::PerStreamBufferSize(n, b, dev);
    if (full.ok()) {
      ++feasible;
      ASSERT_EQ(DoubleBits(per), DoubleBits(full.value()))
          << "n=" << n << " b=" << b << " rate=" << dev.rate;
    } else {
      ++infeasible;
      ASSERT_TRUE(std::isnan(per)) << "n=" << n << " b=" << b;
    }

    const double total = model::ProbeTheorem1Total(n, b, dev.rate,
                                                   dev.latency);
    auto full_total = model::TotalBufferSize(n, b, dev);
    if (full_total.ok()) {
      ASSERT_EQ(DoubleBits(total), DoubleBits(full_total.value()));
    } else {
      ASSERT_TRUE(std::isnan(total));
    }
  }
  // The random ranges must actually exercise both outcomes.
  EXPECT_GT(feasible, 1000);
  EXPECT_GT(infeasible, 1000);
}

TEST(ProbeKernelTest, CacheSizingMatchesFullSolverBitExactly) {
  Rng rng(202);
  int feasible = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::int64_t n = rng.NextInt(-1, 150);
    const std::int64_t k = rng.NextInt(0, 8);
    const BytesPerSecond b = rng.NextDouble() * 2 * kMBps;
    model::DeviceProfile mems;
    mems.rate = rng.NextDouble() * 80 * kMBps;
    mems.latency = rng.NextDouble() * 2 * kMillisecond;
    const auto policy = rng.NextInt(0, 1) == 0
                            ? model::CachePolicy::kReplicated
                            : model::CachePolicy::kStriped;

    const double per = model::ProbeCachePerStream(n, b, k, mems, policy);
    auto full = model::CachePerStreamBuffer(n, b, k, mems, policy);
    if (full.ok()) {
      ++feasible;
      ASSERT_EQ(DoubleBits(per), DoubleBits(full.value()))
          << "n=" << n << " k=" << k << " b=" << b;
    } else {
      ++infeasible;
      ASSERT_TRUE(std::isnan(per)) << "n=" << n << " k=" << k;
    }

    const double total = model::ProbeCacheTotal(n, b, k, mems, policy);
    auto full_total = model::CacheTotalBuffer(n, b, k, mems, policy);
    if (full_total.ok()) {
      ASSERT_EQ(DoubleBits(total), DoubleBits(full_total.value()));
    } else {
      ASSERT_TRUE(std::isnan(total));
    }
  }
  EXPECT_GT(feasible, 1000);
  EXPECT_GT(infeasible, 1000);
}

TEST(ProbeKernelTest, LargestTrueInlineMatchesLargestTrue) {
  Rng rng(303);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::int64_t lo = rng.NextInt(-5, 5);
    const std::int64_t hi = lo + rng.NextInt(-1, 40);
    // Monotone predicate: true up to a random threshold.
    const std::int64_t threshold = rng.NextInt(lo - 2, hi + 2);
    auto pred = [&](std::int64_t x) { return x <= threshold; };

    const std::int64_t inline_best = model::LargestTrueInline(pred, lo, hi);
    auto full = LargestTrue(pred, lo, hi);
    if (full.ok()) {
      ASSERT_EQ(inline_best, full.value())
          << "lo=" << lo << " hi=" << hi << " threshold=" << threshold;
    } else {
      // The std::function version reports "none true" as a Status; the
      // inline one as lo - 1.
      ASSERT_EQ(inline_best, lo - 1)
          << "lo=" << lo << " hi=" << hi << " threshold=" << threshold;
    }
  }
}

TEST(SolveMemoTest, AdmissionChurnNeverDivergesFromFullSolver) {
  for (const std::int64_t buffer_k : {0, 2}) {
    auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
    server::AdmissionConfig config;
    config.dram_budget = 2 * kGB;
    config.disk_rate = 300 * kMBps;
    config.disk_latency = model::DiskLatencyFn(disk);
    config.buffer_k = buffer_k;
    config.mems.rate = 320 * kMBps;
    config.mems.latency = 0.86 * kMillisecond;
    config.mems.capacity = 10 * kGB;
    auto ctrl = server::AdmissionController::Create(config);
    ASSERT_TRUE(ctrl.ok());
    ctrl.value().set_cross_check(true);

    // Churn across a small pool of rates so (n, B̄) keys recur; every
    // memo hit re-runs the full solver and compares.
    const BytesPerSecond rates[] = {500 * kKBps, 1 * kMBps, 2 * kMBps};
    Rng rng(404 + buffer_k);
    std::vector<BytesPerSecond> live;
    for (int step = 0; step < 4000; ++step) {
      if (live.empty() || rng.NextInt(0, 2) != 0) {
        const BytesPerSecond r = rates[rng.NextInt(0, 2)];
        if (ctrl.value().TryAdmit(r).admitted) live.push_back(r);
      } else {
        const auto victim =
            static_cast<std::size_t>(rng.NextInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
        ASSERT_TRUE(ctrl.value().Release(live[victim]).ok());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      (void)ctrl.value().CurrentDramRequirement();
    }
    const auto& stats = ctrl.value().memo_stats();
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.cross_checks, 0);
    EXPECT_EQ(stats.mismatches, 0) << "buffer_k=" << buffer_k;
  }
}

TEST(SolveMemoTest, DegradationReplanNeverDivergesFromFullSolver) {
  for (const auto policy :
       {model::CachePolicy::kReplicated, model::CachePolicy::kStriped}) {
    fault::DegradationConfig config;
    config.policy = policy;
    config.k = 4;
    config.bit_rate = 1 * kMBps;
    config.mems.rate = 76 * kMBps;
    config.mems.latency = 0.86 * kMillisecond;
    config.disk.rate = 300 * kMBps;
    config.disk.latency = 4.3 * kMillisecond;
    config.n_disk = 10;
    config.n_cache = 60;
    auto manager = fault::DegradationManager::Create(config);
    ASSERT_TRUE(manager.ok());
    manager.value().set_cross_check(true);

    // Randomized fault/repair walk revisiting degraded states; memo
    // hits cross-check against ReplanFull / MaxSustainableFull.
    Rng rng(505 + static_cast<int>(policy));
    for (int step = 0; step < 3000; ++step) {
      const std::int64_t alive = rng.NextInt(0, config.k);
      const double rate_scale = 0.25 * rng.NextInt(0, 4);
      const auto& plan = manager.value().Replan(alive, rate_scale);
      (void)manager.value().MaxSustainable(alive, rate_scale);
      // A replan never invents streams.
      ASSERT_LE(plan.retained + plan.to_disk + plan.shed,
                config.n_cache + config.k);
    }
    const auto& stats = manager.value().replan_stats();
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.cross_checks, 0);
    EXPECT_EQ(stats.mismatches, 0);
  }
}

/// BreakEvenCostFactor reference: the pre-hoisting algorithm, running
/// the full sensitivity evaluation at every bisection probe.
Result<double> ReferenceBreakEven(const model::SensitivityInputs& inputs,
                                  double bandwidth_factor,
                                  double max_factor) {
  auto margin = [&](double factor) -> double {
    auto r = model::EvaluateSensitivity(inputs, factor, bandwidth_factor);
    if (!r.ok()) return -1.0;
    return r.value().cost_without - r.value().cost_with;
  };
  const double at_min = margin(1.0);
  const double at_max = margin(max_factor);
  if (at_min > 0) return 1.0;
  if (at_max <= 0) {
    return Status::NotFound("never breaks even");
  }
  return Bisect(margin, 1.0, max_factor, {1e-6, 200});
}

TEST(SensitivityIncrementalTest, BreakEvenMatchesFullReEvaluation) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
  Rng rng(606);
  int found = 0;
  for (int trial = 0; trial < 40; ++trial) {
    model::SensitivityInputs inputs;
    inputs.disk_latency = model::DiskLatencyFn(disk);
    inputs.bit_rate = (0.5 + rng.NextDouble()) * 100 * kKBps;
    inputs.dram_cap = (1.0 + 4.0 * rng.NextDouble()) * kGB;
    inputs.mems_capacity = (2.0 + 8.0 * rng.NextDouble()) * kGB;
    inputs.dram_per_byte = (5.0 + 30.0 * rng.NextDouble()) / kGB;
    const double bandwidth = 0.5 + 2.0 * rng.NextDouble();
    const double max_factor = 100.0 + 900.0 * rng.NextDouble();

    auto fast = model::BreakEvenCostFactor(inputs, bandwidth, max_factor);
    auto reference = ReferenceBreakEven(inputs, bandwidth, max_factor);
    ASSERT_EQ(fast.ok(), reference.ok()) << "trial " << trial;
    if (fast.ok()) {
      ++found;
      // Identical margins probe for probe, so the bisections converge
      // to the identical double.
      EXPECT_EQ(DoubleBits(fast.value()), DoubleBits(reference.value()))
          << "trial " << trial;
    }
  }
  EXPECT_GT(found, 0);
}

TEST(SensitivityIncrementalTest, InvalidInputsKeepOriginalSemantics) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007()).value();
  model::SensitivityInputs inputs;
  inputs.disk_latency = model::DiskLatencyFn(disk);

  // EvaluateSensitivity validates its own factor arguments...
  EXPECT_EQ(model::EvaluateSensitivity(inputs, 0.0, 2.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model::EvaluateSensitivity(inputs, 2.0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  model::SensitivityInputs no_latency;
  EXPECT_EQ(model::EvaluateSensitivity(no_latency, 2.0, 2.0).status().code(),
            StatusCode::kInvalidArgument);

  // ...while BreakEvenCostFactor folds an invalid configuration into
  // "never breaks even", exactly as before the hoisting.
  EXPECT_EQ(model::BreakEvenCostFactor(no_latency, 2.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(model::BreakEvenCostFactor(inputs, -1.0).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace memstream
