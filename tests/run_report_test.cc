#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "json_test_util.h"
#include "obs/metrics.h"
#include "server/media_server.h"

namespace memstream::obs {
namespace {

using testutil::JsonValue;
using testutil::ParseOrFail;

TEST(RunReportTest, EmptyReportIsValidJsonWithSchemaVersion) {
  RunReport report;
  report.title = "empty";
  const JsonValue doc = ParseOrFail(report.ToJson());
  EXPECT_DOUBLE_EQ(doc.Num("schema_version"), kRunReportSchemaVersion);
  EXPECT_EQ(doc.Str("title"), "empty");
  ASSERT_NE(doc.Find("config"), nullptr);
  ASSERT_NE(doc.Find("analytic"), nullptr);
  ASSERT_NE(doc.Find("simulated"), nullptr);
}

TEST(RunReportTest, SectionsCarryTheirEntries) {
  RunReport report;
  report.title = "t";
  report.AddConfig("mode", "direct");
  report.AddAnalytic("dram_total_bytes", 1.5e6);
  report.AddSimulated("underflow_events", 0);

  const JsonValue doc = ParseOrFail(report.ToJson());
  EXPECT_EQ(doc.Find("config")->Str("mode"), "direct");
  EXPECT_DOUBLE_EQ(doc.Find("analytic")->Num("dram_total_bytes"), 1.5e6);
  EXPECT_DOUBLE_EQ(doc.Find("simulated")->Num("underflow_events"), 0);
}

TEST(RunReportTest, EmbedsMetricsSnapshotWhenAttached) {
  MetricsRegistry registry;
  registry.counter("server.ios")->Increment(42);
  registry.gauge("server.utilization")->Set(0.25);

  RunReport report;
  report.title = "with metrics";
  report.metrics = &registry;
  const JsonValue doc = ParseOrFail(report.ToJson());
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->array.size(), 2u);
  // Name order from the registry snapshot.
  EXPECT_EQ(metrics->array[0].Str("name"), "server.ios");
  EXPECT_EQ(metrics->array[0].Str("kind"), "counter");
  EXPECT_DOUBLE_EQ(metrics->array[0].Num("value"), 42);
  EXPECT_EQ(metrics->array[1].Str("name"), "server.utilization");
}

TEST(RunReportTest, OmitsMetricsWhenDetached) {
  RunReport report;
  const JsonValue doc = ParseOrFail(report.ToJson());
  EXPECT_EQ(doc.Find("metrics"), nullptr);
}

TEST(RunReportTest, EscapesHostileText) {
  RunReport report;
  report.title = "quote \" slash \\ newline \n tab \t";
  report.AddConfig("key\"x", "value\x01");
  ParseOrFail(report.ToJson());  // must parse cleanly
}

TEST(RunReportTest, WriteFileRoundTrips) {
  RunReport report;
  report.title = "file";
  report.AddSimulated("x", 1);
  const std::string path = ::testing::TempDir() + "/run_report_test.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  const JsonValue doc = ParseOrFail(contents);
  EXPECT_EQ(doc.Str("title"), "file");
}

// BuildRunReport must place the analytic sizing and the simulated outcome
// side by side, with every field the issue's schema names present.
TEST(RunReportTest, MediaServerReportHasAnalyticAndSimulatedSides) {
  MetricsRegistry registry;
  server::MediaServerConfig config;
  config.mode = server::ServerMode::kMemsBuffer;
  config.k = 2;
  config.num_streams = 4;
  config.sim_duration = 5;
  config.metrics = &registry;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const RunReport report =
      server::BuildRunReport(config, result.value(), &registry);
  const JsonValue doc = ParseOrFail(report.ToJson());

  const JsonValue* cfg = doc.Find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->Str("mode"), "mems-buffer");
  EXPECT_EQ(cfg->Str("k"), "2");
  EXPECT_EQ(cfg->Str("num_streams"), "4");

  const JsonValue* analytic = doc.Find("analytic");
  ASSERT_NE(analytic, nullptr);
  EXPECT_GT(analytic->Num("dram_total_bytes"), 0);
  EXPECT_GT(analytic->Num("disk_cycle_s"), 0);
  EXPECT_GT(analytic->Num("mems_cycle_s"), 0);

  const JsonValue* simulated = doc.Find("simulated");
  ASSERT_NE(simulated, nullptr);
  ASSERT_NE(simulated->Find("underflow_events"), nullptr);
  ASSERT_NE(simulated->Find("cycle_overruns"), nullptr);
  EXPECT_GT(simulated->Num("peak_dram_bytes"), 0);
  EXPECT_GT(simulated->Num("disk_utilization"), 0);
  EXPECT_GT(simulated->Num("ios_completed"), 0);

  // A jitter-free run: simulation must agree with the model's promise.
  EXPECT_DOUBLE_EQ(simulated->Num("underflow_events"), 0);
  // The simulated peak is of the analytic sizing's order of magnitude
  // (start-up transients can exceed the steady-state bound slightly).
  EXPECT_LE(simulated->Num("peak_dram_bytes"),
            analytic->Num("dram_total_bytes") * 2.0);

  // The embedded registry snapshot carries the server telemetry.
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool saw_pipeline_metric = false;
  for (const auto& m : metrics->array) {
    if (m.Str("name").rfind("server.pipeline.", 0) == 0) {
      saw_pipeline_metric = true;
    }
  }
  EXPECT_TRUE(saw_pipeline_metric);
}

}  // namespace
}  // namespace memstream::obs
