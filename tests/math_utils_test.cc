#include "common/math_utils.h"

#include <cmath>

#include <gtest/gtest.h>

namespace memstream {
namespace {

TEST(BisectTest, FindsRootOfLinearFunction) {
  auto root = Bisect([](double x) { return x - 3.0; }, 0, 10);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 3.0, 1e-8);
}

TEST(BisectTest, FindsRootOfTranscendental) {
  // cos(x) = x near 0.739085.
  auto root = Bisect([](double x) { return std::cos(x) - x; }, 0, 1);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value(), 0.7390851332, 1e-8);
}

TEST(BisectTest, RejectsSameSignBracket) {
  auto root = Bisect([](double x) { return x + 1; }, 0, 10);
  EXPECT_FALSE(root.ok());
  EXPECT_EQ(root.status().code(), StatusCode::kInvalidArgument);
}

TEST(BisectTest, AcceptsRootAtEndpoint) {
  auto root = Bisect([](double x) { return x; }, 0, 5);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), 0.0);
}

TEST(LargestTrueTest, FindsBoundary) {
  auto r = LargestTrue([](std::int64_t n) { return n <= 37; }, 1, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 37);
}

TEST(LargestTrueTest, AllTrueReturnsHi) {
  auto r = LargestTrue([](std::int64_t) { return true; }, 1, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

TEST(LargestTrueTest, NoneTrueReturnsNotFound) {
  auto r = LargestTrue([](std::int64_t) { return false; }, 1, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(LargestTrueTest, SingletonRange) {
  auto r = LargestTrue([](std::int64_t n) { return n == 5; }, 5, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
}

TEST(GoldenSectionTest, FindsParabolaMinimum) {
  auto x = GoldenSectionMinimize(
      [](double v) { return (v - 2.5) * (v - 2.5); }, 0, 10);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value(), 2.5, 1e-6);
}

TEST(GoldenSectionTest, MatchesClosedFormOfBufferCostShape) {
  // cost(T) = alpha*T + beta*T/(T-C): minimum at C + sqrt(beta*C/alpha).
  const double alpha = 2.0, beta = 40.0, c = 1.5;
  auto x = GoldenSectionMinimize(
      [&](double t) { return alpha * t + beta * t / (t - c); }, c + 1e-6,
      1000);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value(), c + std::sqrt(beta * c / alpha), 1e-4);
}

TEST(GcdTest, Basics) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(7, 13), 1);
  EXPECT_EQ(Gcd(0, 5), 5);
  EXPECT_EQ(Gcd(5, 0), 5);
}

TEST(RationalSnapTest, FloorAndCeil) {
  Rational f = FloorToDenominator(0.34, 10);
  EXPECT_DOUBLE_EQ(f.Value(), 0.3);
  Rational c = CeilToDenominator(0.34, 10);
  EXPECT_DOUBLE_EQ(c.Value(), 0.4);
}

TEST(RationalSnapTest, ExactValueIsFixed) {
  Rational f = FloorToDenominator(0.5, 10);
  Rational c = CeilToDenominator(0.5, 10);
  EXPECT_DOUBLE_EQ(f.Value(), 0.5);
  EXPECT_DOUBLE_EQ(c.Value(), 0.5);
  // 5/10 reduces to 1/2.
  EXPECT_EQ(f.num, 1);
  EXPECT_EQ(f.den, 2);
}

TEST(RationalSnapTest, NegativeClampsToZero) {
  EXPECT_EQ(FloorToDenominator(-0.2, 10).num, 0);
}

TEST(AlmostEqualTest, RelativeTolerance) {
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(0.0, 0.0));
}

}  // namespace
}  // namespace memstream
