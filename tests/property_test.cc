// Parameterized property sweeps over the analytical model: invariants
// that must hold across the whole (N, B̄, k, policy) space the paper
// explores, not just at hand-picked points.

#include <cmath>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/mems_buffer.h"
#include "model/mems_cache.h"
#include "model/planner.h"
#include "model/timecycle.h"

namespace memstream::model {
namespace {

DeviceProfile G3Profile() {
  return MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
}

DeviceProfile FlatDisk() {
  DeviceProfile p;
  p.rate = 300 * kMBps;
  p.latency = 4.3 * kMillisecond;
  return p;
}

// --- Theorem 1 properties over (N, B̄) -------------------------------------

struct LoadPoint {
  std::int64_t n;
  double bit_rate;
};

class Theorem1Property : public ::testing::TestWithParam<LoadPoint> {};

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, Theorem1Property,
    ::testing::Values(LoadPoint{10, 10e3}, LoadPoint{100, 10e3},
                      LoadPoint{10000, 10e3}, LoadPoint{10, 100e3},
                      LoadPoint{1000, 100e3}, LoadPoint{10, 1e6},
                      LoadPoint{200, 1e6}, LoadPoint{5, 10e6},
                      LoadPoint{25, 10e6}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "b" +
             std::to_string(static_cast<int>(info.param.bit_rate / 1000));
    });

TEST_P(Theorem1Property, BufferCoversExactlyOneCycle) {
  const auto [n, b] = GetParam();
  auto s = PerStreamBufferSize(n, b, FlatDisk());
  ASSERT_TRUE(s.ok());
  // S = B * T and T = N (L + S/R): internal consistency.
  const double t = s.value() / b;
  EXPECT_NEAR(t, n * (FlatDisk().latency + s.value() / FlatDisk().rate),
              1e-9 * t);
  // More streams of the same kind never shrink the per-stream buffer.
  if (CanSustain(n + 1, b, FlatDisk())) {
    auto bigger = PerStreamBufferSize(n + 1, b, FlatDisk());
    ASSERT_TRUE(bigger.ok());
    EXPECT_GT(bigger.value(), s.value());
  }
}

TEST_P(Theorem1Property, BufferScalesWithLatency) {
  const auto [n, b] = GetParam();
  DeviceProfile fast = FlatDisk();
  fast.latency /= 5;  // the paper's latency-ratio knob
  auto slow_s = PerStreamBufferSize(n, b, FlatDisk());
  auto fast_s = PerStreamBufferSize(n, b, fast);
  ASSERT_TRUE(slow_s.ok());
  ASSERT_TRUE(fast_s.ok());
  // S is proportional to L̄ with everything else fixed.
  EXPECT_NEAR(slow_s.value() / fast_s.value(), 5.0, 1e-9);
}

// --- Theorem 2 properties over k --------------------------------------------

class Theorem2Property : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(BankSweep, Theorem2Property,
                         ::testing::Range<std::int64_t>(1, 9));

TEST_P(Theorem2Property, MoreDevicesNeverHurt) {
  const std::int64_t k = GetParam();
  const std::int64_t n = 100;
  const BytesPerSecond b = 1 * kMBps;
  MemsBufferParams params;
  params.disk = FlatDisk();
  params.mems = G3Profile();
  params.k = k;
  auto sized_k = SolveMemsBuffer(n, b, params, 50.0);
  ASSERT_TRUE(sized_k.ok());
  params.k = k + 1;
  auto sized_k1 = SolveMemsBuffer(n, b, params, 50.0);
  ASSERT_TRUE(sized_k1.ok());
  // Adding a device never increases the DRAM requirement by more than
  // the imbalance correction (2/N), and usually decreases it.
  EXPECT_LT(sized_k1.value().s_mems_dram,
            sized_k.value().s_mems_dram * (1.0 + 2.0 / n + 1e-9));
}

TEST_P(Theorem2Property, SchedulableSizingDominatesPaperSizing) {
  const std::int64_t k = GetParam();
  MemsBufferParams params;
  params.disk = FlatDisk();
  params.mems = G3Profile();
  params.k = k;
  for (std::int64_t n : {10, 50, 150}) {
    for (Seconds t : {5.0, 20.0, 60.0}) {
      auto sized = SolveMemsBuffer(n, 1 * kMBps, params, t);
      if (!sized.ok()) continue;  // outside the feasible window
      EXPECT_GE(sized.value().s_mems_dram_schedulable,
                sized.value().s_mems_dram * (1 - 1e-9))
          << "n=" << n << " t=" << t;
      EXPECT_GE(sized.value().m, 1);
      EXPECT_LT(sized.value().m, n);
      EXPECT_LE(sized.value().t_mems_snapped, t + 1e-12);
    }
  }
}

// --- Cache properties over policy x k ---------------------------------------

struct CachePoint {
  CachePolicy policy;
  std::int64_t k;
};

class CacheProperty : public ::testing::TestWithParam<CachePoint> {};

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, CacheProperty,
    ::testing::Values(CachePoint{CachePolicy::kStriped, 1},
                      CachePoint{CachePolicy::kStriped, 2},
                      CachePoint{CachePolicy::kStriped, 4},
                      CachePoint{CachePolicy::kStriped, 8},
                      CachePoint{CachePolicy::kReplicated, 1},
                      CachePoint{CachePolicy::kReplicated, 2},
                      CachePoint{CachePolicy::kReplicated, 4},
                      CachePoint{CachePolicy::kReplicated, 8}),
    [](const auto& info) {
      return std::string(CachePolicyName(info.param.policy)) +
             std::to_string(info.param.k);
    });

TEST_P(CacheProperty, BufferMonotoneInN) {
  const auto [policy, k] = GetParam();
  Bytes prev = 0;
  for (std::int64_t n = 10; n <= 200; n += 10) {
    auto s = CachePerStreamBuffer(n, 1 * kMBps, k, G3Profile(), policy);
    ASSERT_TRUE(s.ok());
    EXPECT_GT(s.value(), prev * 0.999);
    prev = s.value();
  }
}

TEST_P(CacheProperty, ReplicationNeverNeedsMoreThanStriping) {
  const auto [policy, k] = GetParam();
  (void)policy;
  for (std::int64_t n : {20, 100, 300}) {
    auto striped =
        CachePerStreamBuffer(n, 1 * kMBps, k, G3Profile(),
                             CachePolicy::kStriped);
    auto replicated =
        CachePerStreamBuffer(n, 1 * kMBps, k, G3Profile(),
                             CachePolicy::kReplicated);
    if (!striped.ok() || !replicated.ok()) continue;
    EXPECT_LE(replicated.value(), striped.value() * (1 + 1e-9))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(CacheProperty, HitRateTimesStreamsNeverExceedsBandwidth) {
  const auto [policy, k] = GetParam();
  const BytesPerSecond b = 1 * kMBps;
  const auto cap = MaxCacheStreamsBandwidthBound(b, k, 320 * kMBps, policy);
  EXPECT_TRUE(CacheCanSustain(cap, b, k, 320 * kMBps, policy));
  EXPECT_FALSE(CacheCanSustain(cap + 1, b, k, 320 * kMBps, policy));
}

// --- Eq. 11 x planner properties --------------------------------------------

class PopularityProperty : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(SkewSweep, PopularityProperty,
                         ::testing::Values(0.01, 0.05, 0.10, 0.20, 0.50),
                         [](const auto& info) {
                           return "x" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST_P(PopularityProperty, HitRateBoundsAndMonotonicity) {
  const double x = GetParam();
  const Popularity pop{x, 1.0 - x};
  if (!IsValidPopularity(pop)) GTEST_SKIP() << "uniform-or-worse skew";
  double prev = -1;
  for (double p = 0; p <= 1.0001; p += 0.05) {
    auto h = HitRate(pop, std::min(p, 1.0));
    ASSERT_TRUE(h.ok());
    EXPECT_GE(h.value(), prev - 1e-12);
    EXPECT_GE(h.value(), std::min(p, 1.0) - 1e-12)
        << "caching the most popular titles can never be worse than "
           "uniform";
    EXPECT_LE(h.value(), 1.0 + 1e-12);
    prev = h.value();
  }
}

TEST_P(PopularityProperty, MoreSkewMoreCacheValue) {
  // For fixed p, a more skewed distribution yields a higher hit rate.
  const double x = GetParam();
  const Popularity pop{x, 1.0 - x};
  if (!IsValidPopularity(pop) || x >= 0.5) {
    GTEST_SKIP() << "needs a strictly skewed distribution";
  }
  const Popularity milder{x * 2, 1.0 - x * 2};
  auto h_sharp = HitRate(pop, 0.01);
  auto h_mild = HitRate(milder, 0.01);
  ASSERT_TRUE(h_sharp.ok());
  ASSERT_TRUE(h_mild.ok());
  EXPECT_GE(h_sharp.value(), h_mild.value() - 1e-12);
}

}  // namespace
}  // namespace memstream::model
