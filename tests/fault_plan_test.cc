#include "fault/fault_plan.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace memstream::fault {
namespace {

TEST(FaultPlanTest, FromScriptSortsByTimeStably) {
  std::vector<FaultEvent> events;
  events.push_back({5, FaultKind::kDiskLatencySpike, -1, 0.001, 2});
  events.push_back({1, FaultKind::kMemsDeviceFail, 0, 0, 0});
  events.push_back({5, FaultKind::kDramPressure, -1, 0.25, 1});
  auto plan = FaultPlan::FromScript(std::move(events));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kMemsDeviceFail);
  // Equal times keep script order.
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kDiskLatencySpike);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kDramPressure);
}

TEST(FaultPlanTest, GenerateIsDeterministicPerSeed) {
  FaultPlanConfig config;
  config.horizon = 100;
  config.num_devices = 4;
  config.tip_loss_rate = 0.05;
  config.device_fail_rate = 0.05;
  config.disk_spike_rate = 0.1;
  config.dram_pressure_rate = 0.02;

  auto a = FaultPlan::Generate(config, 7);
  auto b = FaultPlan::Generate(config, 7);
  auto c = FaultPlan::Generate(config, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().events()[i].time, b.value().events()[i].time);
    EXPECT_EQ(a.value().events()[i].kind, b.value().events()[i].kind);
    EXPECT_EQ(a.value().events()[i].device, b.value().events()[i].device);
  }
  EXPECT_NE(a.value().ToString(), c.value().ToString());
}

TEST(FaultPlanTest, GenerateEmitsPairedRepairs) {
  FaultPlanConfig config;
  config.horizon = 200;
  config.num_devices = 2;
  config.device_fail_rate = 0.05;
  config.repair_after = 10;
  auto plan = FaultPlan::Generate(config, 11);
  ASSERT_TRUE(plan.ok());
  std::int64_t fails = 0;
  std::int64_t repairs = 0;
  for (const auto& e : plan.value().events()) {
    if (e.kind == FaultKind::kMemsDeviceFail) ++fails;
    if (e.kind == FaultKind::kMemsDeviceRepair) {
      ++repairs;
      EXPECT_EQ(e.duration, config.repair_after);
    }
  }
  EXPECT_GT(fails, 0);
  EXPECT_EQ(fails, repairs);  // every outage ends, even past the horizon
}

TEST(FaultPlanTest, OverlappingFailuresOfOneDeviceAreDropped) {
  FaultPlanConfig config;
  config.horizon = 100;
  config.num_devices = 1;
  config.device_fail_rate = 1.0;  // many arrivals, one device
  config.repair_after = 10;
  auto plan = FaultPlan::Generate(config, 3);
  ASSERT_TRUE(plan.ok());
  bool down = false;
  for (const auto& e : plan.value().events()) {
    if (e.kind == FaultKind::kMemsDeviceFail) {
      EXPECT_FALSE(down) << "device failed while already down";
      down = true;
    } else if (e.kind == FaultKind::kMemsDeviceRepair) {
      EXPECT_TRUE(down);
      down = false;
    }
  }
}

TEST(FaultPlanTest, EventsAreTimeSortedAndInsideHorizonExceptRepairs) {
  FaultPlanConfig config;
  config.horizon = 50;
  config.num_devices = 3;
  config.tip_loss_rate = 0.1;
  config.device_fail_rate = 0.1;
  config.disk_spike_rate = 0.2;
  auto plan = FaultPlan::Generate(config, 19);
  ASSERT_TRUE(plan.ok());
  Seconds last = 0;
  for (const auto& e : plan.value().events()) {
    EXPECT_GE(e.time, last);
    last = e.time;
    if (e.kind != FaultKind::kMemsDeviceRepair) {
      EXPECT_LT(e.time, config.horizon);
    }
  }
}

TEST(FaultPlanTest, GenerateRejectsBadConfig) {
  FaultPlanConfig config;
  config.horizon = 0;
  EXPECT_FALSE(FaultPlan::Generate(config, 1).ok());
  config.horizon = 10;
  config.num_devices = 0;
  EXPECT_FALSE(FaultPlan::Generate(config, 1).ok());
  config.num_devices = 1;
  config.tip_loss_fraction = 1.5;
  EXPECT_FALSE(FaultPlan::Generate(config, 1).ok());
}

}  // namespace
}  // namespace memstream::fault
