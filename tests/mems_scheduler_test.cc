#include "device/mems_scheduler.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "device/device_catalog.h"

namespace memstream::device {
namespace {

MemsDevice G3() {
  auto dev = MemsDevice::Create(MemsG3());
  EXPECT_TRUE(dev.ok());
  return std::move(dev).value();
}

bool IsPermutation(const std::vector<std::size_t>& order, std::size_t n) {
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  return sorted == expected;
}

TEST(MemsSchedulerTest, FcfsPreservesOrder) {
  MemsDevice dev = G3();
  std::vector<IoSpan> batch{{static_cast<std::int64_t>(5 * kGB), 1 * kMB},
                            {0, 1 * kMB},
                            {static_cast<std::int64_t>(9 * kGB), 1 * kMB}};
  EXPECT_EQ(MemsScheduleOrder(MemsSchedulerPolicy::kFcfs, dev, batch),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(MemsSchedulerTest, SptfStartsAtCurrentPosition) {
  MemsDevice dev = G3();
  dev.Reset();  // sled at region 0, y 0
  std::vector<IoSpan> batch{{static_cast<std::int64_t>(9 * kGB), 1 * kMB},
                            {0, 1 * kMB},
                            {static_cast<std::int64_t>(5 * kGB), 1 * kMB}};
  const auto order =
      MemsScheduleOrder(MemsSchedulerPolicy::kSptf, dev, batch);
  ASSERT_TRUE(IsPermutation(order, 3));
  EXPECT_EQ(order[0], 1u);  // offset 0: zero positioning cost
}

TEST(MemsSchedulerTest, SptfIsPermutationOnRandomBatches) {
  MemsDevice dev = G3();
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<IoSpan> batch;
    const int n = static_cast<int>(rng.NextInt(1, 32));
    for (int i = 0; i < n; ++i) {
      batch.push_back(
          {rng.NextInt(0, static_cast<std::int64_t>(9 * kGB)), 256 * kKB});
    }
    EXPECT_TRUE(IsPermutation(
        MemsScheduleOrder(MemsSchedulerPolicy::kSptf, dev, batch),
        batch.size()));
  }
}

TEST(MemsSchedulerTest, SptfNeverSlowerThanFcfs) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<IoSpan> batch;
    for (int i = 0; i < 48; ++i) {
      batch.push_back(
          {rng.NextInt(0, static_cast<std::int64_t>(9 * kGB)), 64 * kKB});
    }
    MemsDevice fcfs_dev = G3();
    MemsDevice sptf_dev = G3();
    auto fcfs =
        MemsServiceBatch(fcfs_dev, MemsSchedulerPolicy::kFcfs, batch);
    auto sptf =
        MemsServiceBatch(sptf_dev, MemsSchedulerPolicy::kSptf, batch);
    ASSERT_TRUE(fcfs.ok());
    ASSERT_TRUE(sptf.ok());
    EXPECT_LE(sptf.value(), fcfs.value() * (1 + 1e-9)) << "trial " << trial;
  }
}

TEST(MemsSchedulerTest, SptfBeatsFcfsSubstantiallyOnScatteredBatch) {
  Rng rng(99);
  std::vector<IoSpan> batch;
  for (int i = 0; i < 128; ++i) {
    batch.push_back(
        {rng.NextInt(0, static_cast<std::int64_t>(9 * kGB)), 16 * kKB});
  }
  MemsDevice fcfs_dev = G3();
  MemsDevice sptf_dev = G3();
  auto fcfs = MemsServiceBatch(fcfs_dev, MemsSchedulerPolicy::kFcfs, batch);
  auto sptf = MemsServiceBatch(sptf_dev, MemsSchedulerPolicy::kSptf, batch);
  ASSERT_TRUE(fcfs.ok());
  ASSERT_TRUE(sptf.ok());
  // With tiny transfers, positioning dominates; greedy ordering should
  // recover a large fraction of it.
  EXPECT_LT(sptf.value(), fcfs.value() * 0.8);
}

TEST(MemsSchedulerTest, EmptyBatch) {
  MemsDevice dev = G3();
  EXPECT_TRUE(
      MemsScheduleOrder(MemsSchedulerPolicy::kSptf, dev, {}).empty());
  auto t = MemsServiceBatch(dev, MemsSchedulerPolicy::kSptf, {});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value(), 0.0);
}

TEST(MemsSchedulerTest, PolicyNames) {
  EXPECT_STREQ(MemsSchedulerPolicyName(MemsSchedulerPolicy::kFcfs), "FCFS");
  EXPECT_STREQ(MemsSchedulerPolicyName(MemsSchedulerPolicy::kSptf), "SPTF");
}

TEST(MemsDevicePositionTest, LocateAndEndOfAreConsistentWithService) {
  MemsDevice dev = G3();
  const IoSpan io{static_cast<std::int64_t>(3 * kGB), 2 * kMB};
  auto end = dev.EndOf(io);
  ASSERT_TRUE(end.ok());
  ASSERT_TRUE(dev.Service(io, nullptr).ok());
  EXPECT_EQ(dev.current_region(), end.value().region);
  EXPECT_DOUBLE_EQ(dev.current_y(), end.value().y);
}

TEST(MemsDevicePositionTest, SeekTimeToMatchesSeekTime) {
  MemsDevice dev = G3();
  dev.Reset();
  auto loc = dev.Locate(7 * kGB);
  ASSERT_TRUE(loc.ok());
  auto via_offset = dev.SeekTimeTo(7 * kGB);
  ASSERT_TRUE(via_offset.ok());
  EXPECT_DOUBLE_EQ(via_offset.value(),
                   dev.SeekTime(0, 0, loc.value().region, loc.value().y));
}

}  // namespace
}  // namespace memstream::device
