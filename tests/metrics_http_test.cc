// End-to-end smoke tests for the live observability endpoint: start the
// server on an ephemeral port, issue raw-socket HTTP requests, and
// check the Prometheus /metrics and JSON /profilez responses plus the
// 404/405/503 error paths.

#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/profiler.h"
#include "obs/json_parser.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace memstream {
namespace {

/// One blocking HTTP exchange against 127.0.0.1:`port`; returns the raw
/// response (status line + headers + body) or "" on connect failure.
std::string HttpRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: localhost\r\n"
                               "Connection: close\r\n\r\n");
}

TEST(MetricsHttpTest, ServesPrometheusMetricsFromRegistry) {
  obs::MetricsRegistry registry;
  registry.counter("sim.events_dispatched")->Increment(42);
  registry.gauge("server.active_streams")->Set(7);

  obs::MetricsHttpServer server;
  server.SetMetricsProvider(
      [&registry] { return registry.ToPrometheusText(); });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = Get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos)
      << response;
  EXPECT_NE(response.find("sim_events_dispatched 42"), std::string::npos)
      << response;
  EXPECT_NE(response.find("server_active_streams 7"), std::string::npos)
      << response;
  EXPECT_GE(server.requests_served(), 1);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttpTest, MetricsWithoutProviderIs503) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
  server.Stop();
}

TEST(MetricsHttpTest, ProfilezServesProfilerTreeAsJson) {
  auto& profiler = prof::Profiler::Global();
  profiler.Reset();
  profiler.Enable();
  {
    PROF_SCOPE("http_test.region");
  }
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/profilez");
  profiler.Disable();
  profiler.Reset();

  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  bool ok = false;
  const obs::JsonValue doc = obs::ParseJson(response.substr(body_at + 4), &ok);
  ASSERT_TRUE(ok) << response;
  ASSERT_NE(doc.Find("roots"), nullptr);
#if MEMSTREAM_PROFILE_ENABLED
  EXPECT_NE(response.find("http_test.region"), std::string::npos) << response;
#endif
}

TEST(MetricsHttpTest, HealthzAndIndexRespond) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/").find("HTTP/1.1 200"), std::string::npos);
  server.Stop();
}

TEST(MetricsHttpTest, UnknownPathIs404AndNonGetIs405) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  const std::string post = HttpRequest(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 0\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
  server.Stop();
}

TEST(MetricsHttpTest, SlostatusServesMonitorJsonAndDegradesHealthz) {
  obs::SloMonitor monitor;
  monitor.Add(obs::StandardUnderflowSlo())->Record(1.0, 99, 1);

  obs::MetricsHttpServer server;
  server.SetSloProvider([&monitor] { return monitor.StatusJson(); });
  server.SetHealthProvider(
      [&monitor](std::string* detail) { return monitor.healthy(detail); });
  ASSERT_TRUE(server.Start().ok());

  const std::string response = Get(server.port(), "/slostatus");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  bool ok = false;
  const obs::JsonValue doc = obs::ParseJson(response.substr(body_at + 4), &ok);
  ASSERT_TRUE(ok) << response;
  const obs::JsonValue* slos = doc.Find("slos");
  ASSERT_NE(slos, nullptr);
  ASSERT_EQ(slos->array.size(), 1u);
  EXPECT_EQ(slos->array[0].Str("name"), "underflow");

  // Underflow objective is 0.999; 1/100 bad exhausts the budget, so the
  // health provider must flip /healthz to 503 degraded.
  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 503"), std::string::npos) << health;
  EXPECT_NE(health.find("degraded"), std::string::npos) << health;
  EXPECT_NE(health.find("underflow"), std::string::npos) << health;
  server.Stop();
}

TEST(MetricsHttpTest, SlostatusWithoutProviderIs503) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/slostatus").find("HTTP/1.1 503"),
            std::string::npos);
  server.Stop();
}

TEST(MetricsHttpTest, ConcurrentClientsAllGetCompleteResponses) {
  obs::MetricsRegistry registry;
  registry.counter("sim.events_dispatched")->Increment(1);
  obs::SloMonitor monitor;
  monitor.Add(obs::StandardCycleSlackSlo())->Record(1.0, 10, 0);

  obs::MetricsHttpServer server;
  server.SetMetricsProvider(
      [&registry] { return registry.ToPrometheusText(); });
  server.SetSloProvider([&monitor] { return monitor.StatusJson(); });
  server.SetHealthProvider(
      [&monitor](std::string* detail) { return monitor.healthy(detail); });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  const char* const paths[] = {"/metrics", "/healthz", "/slostatus"};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsEach; ++r) {
        const char* path = paths[(c + r) % 3];
        const std::string response = Get(server.port(), path);
        if (response.find("HTTP/1.1 200") == std::string::npos ||
            response.find("\r\n\r\n") == std::string::npos) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(), kClients * kRequestsEach);
  server.Stop();
}

TEST(MetricsHttpTest, StartTwiceFailsAndStopIsIdempotent) {
  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace memstream
