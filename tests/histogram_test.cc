#include "common/histogram.h"

#include <gtest/gtest.h>

namespace memstream {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.variance(), 0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(HistogramTest, CountsFallInRightBuckets) {
  Histogram h(0, 10, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(9.5);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(9), 1);
  EXPECT_EQ(h.TotalCount(), 3);
}

TEST(HistogramTest, OutOfRangeSaturates) {
  Histogram h(0, 10, 5);
  h.Add(-100);
  h.Add(+100);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(4), 1);
  EXPECT_EQ(h.TotalCount(), 2);
}

TEST(HistogramTest, QuantilesOfUniformFill) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90, 1.5);
  EXPECT_NEAR(h.Quantile(1.0), 100, 1.5);
}

// Percentile edge cases (regression tests for the quantile audit): the
// empty, single-sample, and all-equal distributions must return exact,
// well-defined values — bucket interpolation alone used to report p95 of
// {5,5,5} past 5.

TEST(HistogramTest, EmptyQuantileIsTheRangeLow) {
  Histogram h(2, 10, 8);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreTheSample) {
  Histogram h(0, 10, 10);
  h.Add(3.7);
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 3.7) << "q=" << q;
  }
}

TEST(HistogramTest, AllEqualSamplesQuantilesAreExact) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 3; ++i) h.Add(5.0);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 5.0) << "q=" << q;
  }
}

TEST(HistogramTest, SaturatedSampleQuantileReturnsTrueValue) {
  // An out-of-range sample lands in the edge bucket, but quantiles clamp
  // to the observed sample range — not the bucket boundary.
  Histogram h(0, 10, 5);
  h.Add(-100);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -100.0);
  Histogram hi(0, 10, 5);
  hi.Add(+100);
  EXPECT_DOUBLE_EQ(hi.Quantile(0.5), 100.0);
}

TEST(HistogramTest, QuantilesNeverExceedObservedRange) {
  Histogram h(0, 100, 4);  // coarse buckets force interpolation
  h.Add(10);
  h.Add(11);
  h.Add(97);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.Quantile(q), 10.0) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 97.0) << "q=" << q;
  }
}

TEST(HistogramTest, AsciiRenderingContainsBuckets) {
  Histogram h(0, 2, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("#"), std::string::npos);
  EXPECT_NE(art.find("[0, 1)"), std::string::npos);
}

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeightedStats s;
  s.Update(0, 5);
  s.Update(10, 5);
  EXPECT_DOUBLE_EQ(s.TimeAverage(), 5.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 5.0);
}

TEST(TimeWeightedTest, StepSignal) {
  TimeWeightedStats s;
  s.Update(0, 0);   // 0 on [0, 4)
  s.Update(4, 10);  // 10 on [4, 8)
  s.Update(8, 0);
  EXPECT_DOUBLE_EQ(s.TimeAverage(), 5.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 10.0);
}

TEST(TimeWeightedTest, NoElapsedTimeReturnsLastValue) {
  TimeWeightedStats s;
  s.Update(3, 7);
  EXPECT_DOUBLE_EQ(s.TimeAverage(), 7.0);
}

}  // namespace
}  // namespace memstream
