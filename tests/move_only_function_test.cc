// MoveOnlyFunction: inline vs heap storage thresholds, move semantics,
// and the allocation-free guarantee the event queue depends on. This
// binary replaces global operator new/delete with counting versions so
// the inline-storage claims are verified, not assumed.

#include "common/move_only_function.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

namespace {

std::atomic<std::int64_t> g_allocations{0};

}  // namespace

// GCC pairs `new` expressions with the free() inside these replaced
// operators and warns about the malloc/free crossing; it is intentional
// here — the replacement is malloc-backed on both sides.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The nothrow forms must be replaced too: leaving them default would
// pair the library allocator's new with our free.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace memstream {
namespace {

using Fn = MoveOnlyFunction<int()>;

std::int64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(MoveOnlyFunctionTest, EmptyIsFalsy) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(MoveOnlyFunctionTest, InvokesSmallLambda) {
  Fn f = [] { return 42; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 42);
}

TEST(MoveOnlyFunctionTest, SmallCaptureStoredInlineWithoutAllocating) {
  struct Capture {
    std::int64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;  // 48 bytes
  };
  static_assert(sizeof(Capture) == Fn::kInlineCapacity);
  Capture cap;
  const std::int64_t before = AllocationCount();
  Fn f = [cap] { return static_cast<int>(cap.a + cap.f); };
  const std::int64_t after = AllocationCount();
  EXPECT_EQ(after, before) << "<=48-byte capture must not allocate";
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(MoveOnlyFunctionTest, LargeCaptureFallsBackToHeap) {
  struct Capture {
    std::int64_t vals[7] = {1, 2, 3, 4, 5, 6, 7};  // 56 bytes
  };
  static_assert(sizeof(Capture) > Fn::kInlineCapacity);
  Capture cap;
  const std::int64_t before = AllocationCount();
  Fn f = [cap] { return static_cast<int>(cap.vals[6]); };
  EXPECT_GT(AllocationCount(), before);
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(MoveOnlyFunctionTest, MoveTransfersCallableAndEmptiesSource) {
  Fn a = [] { return 5; };
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b(), 5);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c(), 5);
}

TEST(MoveOnlyFunctionTest, MovingNeverAllocates) {
  struct Big {
    std::int64_t vals[16] = {};
  };
  Fn inline_fn = [] { return 1; };
  Fn heap_fn = [big = Big()] { return static_cast<int>(big.vals[0] + 2); };
  const std::int64_t before = AllocationCount();
  Fn moved_inline = std::move(inline_fn);
  Fn moved_heap = std::move(heap_fn);  // steals the heap cell
  EXPECT_EQ(AllocationCount(), before);
  EXPECT_EQ(moved_inline(), 1);
  EXPECT_EQ(moved_heap(), 2);
}

TEST(MoveOnlyFunctionTest, AcceptsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(99);
  MoveOnlyFunction<int()> f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), 99);
  MoveOnlyFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 99);
}

TEST(MoveOnlyFunctionTest, DestroysCaptureExactlyOnce) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) {}
    Probe(Probe&& other) noexcept : counter_(other.counter_) {
      other.counter_ = nullptr;
    }
    ~Probe() {
      if (counter_ != nullptr) ++*counter_;
    }
    int* counter_;
  };
  int destroyed = 0;
  {
    MoveOnlyFunction<void()> f = [p = Probe(&destroyed)] { (void)p; };
    MoveOnlyFunction<void()> g = std::move(f);
    g();
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(MoveOnlyFunctionTest, PassesArgumentsAndReturnsResults) {
  MoveOnlyFunction<double(double, double)> f = [](double a, double b) {
    return a * b;
  };
  EXPECT_DOUBLE_EQ(f(3.0, 4.0), 12.0);
}

TEST(MoveOnlyFunctionTest, InlineThresholdIsCompileTimeQueryable) {
  struct Small {
    char data[8];
    void operator()() const {}
  };
  struct Huge {
    char data[128];
    void operator()() const {}
  };
  static_assert(MoveOnlyFunction<void()>::kStoredInline<Small>);
  static_assert(!MoveOnlyFunction<void()>::kStoredInline<Huge>);
}

}  // namespace
}  // namespace memstream
