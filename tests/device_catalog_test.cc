#include "device/device_catalog.h"

#include <gtest/gtest.h>

namespace memstream::device {
namespace {

TEST(CatalogTest, Table1HasSixRowsInPaperOrder) {
  const auto rows = Table1Rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].year, 2002);
  EXPECT_EQ(rows[0].medium, "DRAM");
  EXPECT_EQ(rows[1].medium, "MEMS");
  EXPECT_EQ(rows[1].capacity_gb, "n/a");  // MEMS does not exist in 2002
  EXPECT_EQ(rows[5].year, 2007);
  EXPECT_EQ(rows[5].medium, "Disk");
  EXPECT_EQ(rows[5].capacity_gb, "1000");
}

TEST(CatalogTest, Table3HasThreeColumns) {
  const auto cols = Table3Columns();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0].name, "FutureDisk");
  EXPECT_EQ(cols[1].name, "G3 MEMS");
  EXPECT_EQ(cols[2].name, "DRAM");
  EXPECT_DOUBLE_EQ(cols[0].max_bandwidth_mbps, 300);
  EXPECT_DOUBLE_EQ(cols[1].max_bandwidth_mbps, 320);
  EXPECT_DOUBLE_EQ(cols[2].max_bandwidth_mbps, 10000);
  // Corrected capacity row (see device_catalog.h header comment).
  EXPECT_DOUBLE_EQ(cols[0].capacity_gb, 1000);
  EXPECT_DOUBLE_EQ(cols[1].capacity_gb, 10);
  EXPECT_DOUBLE_EQ(cols[2].capacity_gb, 5);
}

TEST(CatalogTest, CostPerGbMatchesPaper) {
  const auto cols = Table3Columns();
  EXPECT_DOUBLE_EQ(cols[0].cost_per_gb, 0.2);
  EXPECT_DOUBLE_EQ(cols[1].cost_per_gb, 1.0);
  EXPECT_DOUBLE_EQ(cols[2].cost_per_gb, 20.0);
}

TEST(CatalogTest, PresetsConstructValidDevices) {
  EXPECT_TRUE(DiskDrive::Create(FutureDisk2007()).ok());
  EXPECT_TRUE(DiskDrive::Create(Disk2002()).ok());
  EXPECT_TRUE(MemsDevice::Create(MemsG1()).ok());
  EXPECT_TRUE(MemsDevice::Create(MemsG2()).ok());
  EXPECT_TRUE(MemsDevice::Create(MemsG3()).ok());
  EXPECT_TRUE(Dram::Create(Dram2002()).ok());
  EXPECT_TRUE(Dram::Create(Dram2007()).ok());
}

TEST(CatalogTest, MemsBufferingIsTwentyTimesCheaperThanDram) {
  // §5.1.2: "MEMS buffering is 20 times cheaper than DRAM buffering
  // per-byte" at 2007 prices.
  const auto mems = MemsG3();
  const auto dram = Dram2007();
  const double mems_per_byte = mems.cost_per_device / mems.capacity;
  EXPECT_NEAR(dram.cost_per_byte / mems_per_byte, 20.0, 1e-9);
}

TEST(CatalogTest, G3SupportsTwiceFutureDiskWithTwoDevices) {
  // §5.1: two G3 devices give 640 MB/s >= 2 x 300 MB/s disk bandwidth.
  EXPECT_GE(2 * MemsG3().transfer_rate, 2 * FutureDisk2007().outer_rate);
  EXPECT_LT(MemsG3().transfer_rate, 2 * FutureDisk2007().outer_rate);
}

}  // namespace
}  // namespace memstream::device
