#include "device/dram.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::device {
namespace {

TEST(DramTest, Table3Numbers) {
  auto dram = Dram::Create(Dram2007());
  ASSERT_TRUE(dram.ok());
  EXPECT_DOUBLE_EQ(dram.value().MaxTransferRate(), 10 * kGBps);
  EXPECT_DOUBLE_EQ(dram.value().Capacity(), 5 * kGB);
  EXPECT_DOUBLE_EQ(dram.value().parameters().cost_per_byte * kGB, 20.0);
}

TEST(DramTest, ServiceIsLatencyPlusTransfer) {
  auto dram = Dram::Create(Dram2007());
  ASSERT_TRUE(dram.ok());
  auto t = dram.value().Service({0, 1 * kGB}, nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t.value(), 0.03 * kMillisecond + 0.1, 1e-9);
}

TEST(DramTest, PositionIndependent) {
  auto dram = Dram::Create(Dram2007());
  ASSERT_TRUE(dram.ok());
  auto a = dram.value().Service({0, 1 * kMB}, nullptr);
  auto b = dram.value().Service(
      {static_cast<std::int64_t>(4 * kGB), 1 * kMB}, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(DramTest, OutOfRangeRejected) {
  auto dram = Dram::Create(Dram2007());
  ASSERT_TRUE(dram.ok());
  EXPECT_FALSE(
      dram.value().Service({static_cast<std::int64_t>(5 * kGB), 1}, nullptr)
          .ok());
}

TEST(DramTest, InvalidParametersRejected) {
  DramParameters p = Dram2007();
  p.transfer_rate = 0;
  EXPECT_FALSE(Dram::Create(p).ok());
  p = Dram2007();
  p.capacity = 0;
  EXPECT_FALSE(Dram::Create(p).ok());
  p = Dram2007();
  p.access_latency = -1;
  EXPECT_FALSE(Dram::Create(p).ok());
}

TEST(DramTest, DramIsOrdersOfMagnitudeFasterThan2002) {
  auto d02 = Dram2002();
  auto d07 = Dram2007();
  EXPECT_EQ(d07.transfer_rate / d02.transfer_rate, 5.0);
  EXPECT_EQ(d02.cost_per_byte / d07.cost_per_byte, 10.0);
}

}  // namespace
}  // namespace memstream::device
