// Farm admission router: Theorem-1/2 headroom enforcement per shard,
// least-loaded replica choice, down-shard skipping, and release
// accounting.

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "device/disk.h"
#include "farm/placement.h"
#include "farm/router.h"
#include "model/profiles.h"

namespace memstream::farm {
namespace {

PlacementConfig SmallPlacement(std::int64_t shards, std::int64_t replicas) {
  PlacementConfig config;
  config.num_shards = shards;
  config.num_titles = 100;
  config.replicas = replicas;
  return config;
}

RouterConfig SmallRouter(Bytes dram_budget) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  RouterConfig rc;
  rc.dram_budget_per_shard = dram_budget;
  rc.node_rate = disk.value().parameters().outer_rate;
  rc.node_latency = model::DiskLatencyFn(disk.value());
  return rc;
}

TEST(AdmissionRouterTest, RequiresPlacementAndLatency) {
  auto p = ConsistentHashPlacement::Create(SmallPlacement(2, 1));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(AdmissionRouter::Create(nullptr, SmallRouter(1 * kGB)).ok());
  RouterConfig rc = SmallRouter(1 * kGB);
  rc.node_latency = nullptr;
  EXPECT_FALSE(AdmissionRouter::Create(p.value().get(), rc).ok());
}

TEST(AdmissionRouterTest, AdmitsUntilBudgetThenRejects) {
  auto p = ConsistentHashPlacement::Create(SmallPlacement(1, 1));
  ASSERT_TRUE(p.ok());
  // A budget this small caps the single shard at a handful of streams.
  auto router = AdmissionRouter::Create(p.value().get(), SmallRouter(8 * kMB));
  ASSERT_TRUE(router.ok());
  AdmissionRouter& r = router.value();

  std::int64_t admitted = 0;
  RouteDecision last;
  for (int i = 0; i < 200; ++i) {
    last = r.Route(/*title=*/7, /*bit_rate=*/1 * kMBps);
    if (!last.admitted) break;
    ++admitted;
    EXPECT_EQ(last.shard, 0);
    EXPECT_EQ(last.streams_on_shard, admitted);
    EXPECT_LE(last.dram_required, 8 * kMB);
    EXPECT_TRUE(last.reason.empty());
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 200);
  EXPECT_FALSE(last.admitted);
  EXPECT_EQ(last.shard, -1);
  EXPECT_FALSE(last.reason.empty()) << "rejection must carry a reason";
  EXPECT_EQ(r.admitted(), admitted);
  EXPECT_EQ(r.rejected(), 1);
  EXPECT_EQ(r.attempts(), r.admitted() + r.rejected());
  EXPECT_EQ(r.admitted_on(0), admitted);
}

TEST(AdmissionRouterTest, LeastLoadedReplicaWins) {
  auto p = ConsistentHashPlacement::Create(SmallPlacement(4, 2));
  ASSERT_TRUE(p.ok());
  auto router = AdmissionRouter::Create(p.value().get(), SmallRouter(4 * kGB));
  ASSERT_TRUE(router.ok());
  AdmissionRouter& r = router.value();

  // The same title always resolves to the same two replicas; repeated
  // admissions must alternate between them (least-loaded first).
  const ShardSet replicas = p.value()->Lookup(3);
  ASSERT_EQ(replicas.count, 2);
  for (int i = 0; i < 10; ++i) {
    const RouteDecision d = r.Route(3, 1 * kMBps);
    ASSERT_TRUE(d.admitted);
    EXPECT_TRUE(replicas.Contains(d.shard));
  }
  const std::int64_t a = r.admitted_on(replicas.shard[0]);
  const std::int64_t b = r.admitted_on(replicas.shard[1]);
  EXPECT_EQ(a + b, 10);
  EXPECT_LE(std::abs(a - b), 1) << "load must balance across replicas";
}

TEST(AdmissionRouterTest, DownShardIsSkipped) {
  auto p = ConsistentHashPlacement::Create(SmallPlacement(4, 2));
  ASSERT_TRUE(p.ok());
  auto router = AdmissionRouter::Create(p.value().get(), SmallRouter(4 * kGB));
  ASSERT_TRUE(router.ok());
  AdmissionRouter& r = router.value();

  const ShardSet replicas = p.value()->Lookup(3);
  ASSERT_EQ(replicas.count, 2);
  ASSERT_TRUE(r.SetShardUp(replicas.shard[0], false).ok());
  EXPECT_FALSE(r.shard_up(replicas.shard[0]));
  for (int i = 0; i < 5; ++i) {
    const RouteDecision d = r.Route(3, 1 * kMBps);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.shard, replicas.shard[1]);
  }
  // With every replica down the request has nowhere to go.
  ASSERT_TRUE(r.SetShardUp(replicas.shard[1], false).ok());
  const RouteDecision d = r.Route(3, 1 * kMBps);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "no live replica");
  // Repair restores routing.
  ASSERT_TRUE(r.SetShardUp(replicas.shard[0], true).ok());
  EXPECT_TRUE(r.Route(3, 1 * kMBps).admitted);
}

TEST(AdmissionRouterTest, ReleaseReturnsHeadroom) {
  auto p = ConsistentHashPlacement::Create(SmallPlacement(1, 1));
  ASSERT_TRUE(p.ok());
  auto router = AdmissionRouter::Create(p.value().get(), SmallRouter(8 * kMB));
  ASSERT_TRUE(router.ok());
  AdmissionRouter& r = router.value();

  std::int64_t admitted = 0;
  while (r.Route(0, 1 * kMBps).admitted) ++admitted;
  ASSERT_GT(admitted, 0);
  const Bytes dram_full = r.dram_on(0);
  ASSERT_TRUE(r.Release(0, 1 * kMBps).ok());
  EXPECT_EQ(r.admitted_on(0), admitted - 1);
  EXPECT_LT(r.dram_on(0), dram_full);
  // The freed slot admits again.
  EXPECT_TRUE(r.Route(0, 1 * kMBps).admitted);
  EXPECT_FALSE(r.Release(-1, 1 * kMBps).ok());
  EXPECT_FALSE(r.Release(1, 1 * kMBps).ok());
}

}  // namespace
}  // namespace memstream::farm
