#include "model/sensitivity.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::model {
namespace {

SensitivityInputs PaperInputs(BytesPerSecond bit_rate = 100 * kKBps) {
  auto disk = device::DiskDrive::Create(device::FutureDisk2007());
  EXPECT_TRUE(disk.ok());
  SensitivityInputs inputs;
  inputs.bit_rate = bit_rate;
  inputs.disk_latency = DiskLatencyFn(disk.value());
  return inputs;
}

TEST(SensitivityTest, PaperOperatingPointWins) {
  // The paper's 2007 prediction: Cdram/Cmems = 20, Rmems/Rdisk ~ 1.07.
  auto outcome = EvaluateSensitivity(PaperInputs(), 20.0, 320.0 / 300.0);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().mems_wins);
  EXPECT_GT(outcome.value().percent_reduction, 25.0);
  // At least the paper's two G3-class devices (2x disk bandwidth); the
  // cost optimizer may buy more when extra capacity pays for itself.
  EXPECT_GE(outcome.value().k, 2);
  EXPECT_LE(outcome.value().k, 4);
}

TEST(SensitivityTest, CostParityLoses) {
  // MEMS as expensive as DRAM: buying devices only adds cost.
  auto outcome = EvaluateSensitivity(PaperInputs(), 1.0, 320.0 / 300.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().mems_wins);
}

TEST(SensitivityTest, ReductionMonotoneInCostFactor) {
  double prev = -1e9;
  for (double factor : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    auto outcome =
        EvaluateSensitivity(PaperInputs(), factor, 320.0 / 300.0);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GE(outcome.value().percent_reduction, prev);
    prev = outcome.value().percent_reduction;
  }
}

TEST(SensitivityTest, ThroughputTargetIndependentOfSweep) {
  // The sweep must hold the workload fixed: same n at every point.
  auto a = EvaluateSensitivity(PaperInputs(), 2.0, 1.0);
  auto b = EvaluateSensitivity(PaperInputs(), 50.0, 2.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().n, b.value().n);
  EXPECT_DOUBLE_EQ(a.value().cost_without, b.value().cost_without);
}

TEST(SensitivityTest, LowerBandwidthNeedsMoreDevices) {
  auto fast = EvaluateSensitivity(PaperInputs(), 20.0, 1.0);
  auto slow = EvaluateSensitivity(PaperInputs(), 20.0, 0.25);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow.value().k, fast.value().k);
  // More devices cost more, so the reduction shrinks.
  EXPECT_LT(slow.value().percent_reduction,
            fast.value().percent_reduction);
}

TEST(SensitivityTest, BreakEvenIsConsistent) {
  const auto inputs = PaperInputs();
  auto break_even = BreakEvenCostFactor(inputs, 1.0);
  ASSERT_TRUE(break_even.ok()) << break_even.status().ToString();
  EXPECT_GT(break_even.value(), 1.0);
  // Just below: loses; just above: wins.
  auto below =
      EvaluateSensitivity(inputs, break_even.value() * 0.95, 1.0);
  auto above =
      EvaluateSensitivity(inputs, break_even.value() * 1.05, 1.0);
  ASSERT_TRUE(below.ok());
  ASSERT_TRUE(above.ok());
  EXPECT_FALSE(below.value().mems_wins);
  EXPECT_TRUE(above.value().mems_wins);
}

TEST(SensitivityTest, FootnoteTwoHolds) {
  // Footnote 2's claim, checked directly: at an order-of-magnitude cost
  // advantage (10x) and disk-comparable bandwidth (>= 1x), MEMS
  // buffering is effective for low and medium bit-rates.
  for (BytesPerSecond bit_rate : {10 * kKBps, 100 * kKBps, 1 * kMBps}) {
    for (double bandwidth : {1.0, 1.5, 2.0}) {
      auto outcome =
          EvaluateSensitivity(PaperInputs(bit_rate), 10.0, bandwidth);
      ASSERT_TRUE(outcome.ok())
          << bit_rate << "/" << bandwidth << ": "
          << outcome.status().ToString();
      EXPECT_TRUE(outcome.value().mems_wins)
          << "bit_rate=" << bit_rate << " bandwidth=" << bandwidth;
    }
  }
}

TEST(SensitivityTest, InvalidInputsRejected) {
  SensitivityInputs no_latency;
  EXPECT_FALSE(EvaluateSensitivity(no_latency, 20.0, 1.0).ok());
  EXPECT_FALSE(EvaluateSensitivity(PaperInputs(), 0.0, 1.0).ok());
  EXPECT_FALSE(EvaluateSensitivity(PaperInputs(), 20.0, 0.0).ok());
}

}  // namespace
}  // namespace memstream::model
