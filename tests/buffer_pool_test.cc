#include "server/buffer_pool.h"

#include <gtest/gtest.h>

namespace memstream::server {
namespace {

TEST(BufferPoolTest, ReserveAndRelease) {
  BufferPool pool(1000);
  EXPECT_TRUE(pool.Reserve(600).ok());
  EXPECT_DOUBLE_EQ(pool.used(), 600);
  EXPECT_DOUBLE_EQ(pool.available(), 400);
  EXPECT_TRUE(pool.Release(200).ok());
  EXPECT_DOUBLE_EQ(pool.used(), 400);
}

TEST(BufferPoolTest, ExhaustionRejected) {
  BufferPool pool(1000);
  EXPECT_TRUE(pool.Reserve(900).ok());
  auto status = pool.Reserve(200);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(pool.used(), 900);  // failed reserve changes nothing
}

TEST(BufferPoolTest, PeakTracksHighWatermark) {
  BufferPool pool(1000);
  ASSERT_TRUE(pool.Reserve(800).ok());
  ASSERT_TRUE(pool.Release(700).ok());
  ASSERT_TRUE(pool.Reserve(100).ok());
  EXPECT_DOUBLE_EQ(pool.peak_used(), 800);
}

TEST(BufferPoolTest, OverReleaseIsAnError) {
  BufferPool pool(1000);
  ASSERT_TRUE(pool.Reserve(100).ok());
  EXPECT_FALSE(pool.Release(200).ok());
}

TEST(BufferPoolTest, NegativeAmountsRejected) {
  BufferPool pool(1000);
  EXPECT_FALSE(pool.Reserve(-1).ok());
  EXPECT_FALSE(pool.Release(-1).ok());
}

TEST(BufferPoolTest, ExactFillAllowed) {
  BufferPool pool(1000);
  EXPECT_TRUE(pool.Reserve(1000).ok());
  EXPECT_DOUBLE_EQ(pool.available(), 0);
}

}  // namespace
}  // namespace memstream::server
