#include "obs/qos_auditor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "device/device_catalog.h"
#include "model/profiles.h"
#include "model/timecycle.h"
#include "obs/metrics.h"
#include "server/edf_server.h"
#include "server/media_server.h"
#include "server/timecycle_server.h"
#include "sim/trace.h"

namespace memstream::obs {
namespace {

// ---------------------------------------------------------------------
// Unit behaviour of the auditor itself.
// ---------------------------------------------------------------------

TEST(QosAuditorTest, CleanCyclesProduceNoViolations) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 2 * kMB, QosDomain::kDisk);
  auditor.AddStream(1, 1 * kMBps, 2 * kMB, QosDomain::kDisk);
  auditor.Seal();

  for (int cycle = 0; cycle < 5; ++cycle) {
    auditor.RecordIo(0, 1 * kMB);
    auditor.RecordIo(1, 1 * kMB);
    auditor.RecordDramLevel(0, cycle + 0.5, 1.5 * kMB);
    auditor.RecordDramLevel(1, cycle + 0.5, 1.5 * kMB);
    auditor.EndDiskCycle(cycle, 0.8);
  }
  EXPECT_EQ(auditor.total_violations(), 0);
  EXPECT_EQ(auditor.disk_cycles_audited(), 5);
}

TEST(QosAuditorTest, DiskCycleOverrunIsReported) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 0, QosDomain::kNone);
  auditor.Seal();

  auditor.EndDiskCycle(0, 1.25);  // busy 1.25s in a 1s cycle
  ASSERT_EQ(auditor.total_violations(), 1);
  const QosViolation& v = auditor.violations()[0];
  EXPECT_EQ(v.invariant, QosInvariant::kDiskCycleOverrun);
  EXPECT_EQ(v.cycle_index, 0);
  EXPECT_DOUBLE_EQ(v.expected, 1.0);
  EXPECT_DOUBLE_EQ(v.observed, 1.25);
}

TEST(QosAuditorTest, MissingAndDuplicateIosAreReported) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  QosAuditor auditor(config);
  auditor.AddStream(7, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.AddStream(8, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.Seal();

  // Stream 7 gets two IOs, stream 8 none.
  auditor.RecordIo(0, 1 * kMB);
  auditor.RecordIo(0, 1 * kMB);
  auditor.EndDiskCycle(0, 0.5);

  ASSERT_EQ(auditor.total_violations(), 2);
  EXPECT_EQ(auditor.violations()[0].invariant, QosInvariant::kIoCount);
  EXPECT_EQ(auditor.violations()[0].stream_id, 7);
  EXPECT_DOUBLE_EQ(auditor.violations()[0].observed, 2.0);
  EXPECT_EQ(auditor.violations()[1].stream_id, 8);
  EXPECT_DOUBLE_EQ(auditor.violations()[1].observed, 0.0);
}

TEST(QosAuditorTest, WrongIoSizeIsReported) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  QosAuditor auditor(config);
  auditor.AddStream(3, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.Seal();

  auditor.RecordIo(0, 0.5 * kMB);  // expected 1 MB
  ASSERT_GE(auditor.total_violations(), 1);
  const QosViolation& v = auditor.violations()[0];
  EXPECT_EQ(v.invariant, QosInvariant::kIoBytes);
  EXPECT_EQ(v.stream_id, 3);
  EXPECT_DOUBLE_EQ(v.expected, 1 * kMB);
  EXPECT_DOUBLE_EQ(v.observed, 0.5 * kMB);
}

TEST(QosAuditorTest, DramBoundExcursionReportsOncePerCrossing) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  QosAuditor auditor(config);
  auditor.AddStream(5, 1 * kMBps, 1 * kMB, QosDomain::kDisk);
  auditor.Seal();

  auditor.RecordDramLevel(0, 0.1, 1.5 * kMB);  // crosses the bound
  auditor.RecordDramLevel(0, 0.2, 1.6 * kMB);  // still inside: no repeat
  auditor.RecordDramLevel(0, 0.3, 0.5 * kMB);  // back under
  auditor.RecordDramLevel(0, 0.4, 1.2 * kMB);  // second excursion
  EXPECT_EQ(auditor.total_violations(), 2);
  EXPECT_EQ(auditor.violations()[0].invariant, QosInvariant::kDramBound);
  EXPECT_EQ(auditor.violations()[0].stream_id, 5);
}

TEST(QosAuditorTest, TotalDramBudgetIsAudited) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.dram_total_bound = 3 * kMB;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.AddStream(1, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.Seal();

  auditor.RecordDramLevel(0, 0.1, 2 * kMB);
  EXPECT_EQ(auditor.total_violations(), 0);
  auditor.RecordDramLevel(1, 0.2, 2 * kMB);  // sum 4 MB > 3 MB
  ASSERT_EQ(auditor.total_violations(), 1);
  EXPECT_EQ(auditor.violations()[0].invariant,
            QosInvariant::kDramTotalBound);
}

TEST(QosAuditorTest, SealChecksStorageBoundEq7) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.mems_cycle = 0.5;
  config.nested_cycles = true;
  config.mems_devices = 2;
  config.mems_device_capacity = 1 * kMB;  // 2 MB bank
  QosAuditor auditor(config);
  // 2 * T_disk * (2 MB/s) = 4 MB > 2 MB bank.
  auditor.AddStream(0, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.AddStream(1, 1 * kMBps, 0, QosDomain::kDisk);
  auditor.Seal();

  ASSERT_EQ(auditor.total_violations(), 1);
  EXPECT_EQ(auditor.violations()[0].invariant,
            QosInvariant::kMemsStorageBound);
  EXPECT_DOUBLE_EQ(auditor.violations()[0].expected, 2 * kMB);
  EXPECT_DOUBLE_EQ(auditor.violations()[0].observed, 4 * kMB);
}

TEST(QosAuditorTest, SealChecksCycleNestingEq8) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.mems_cycle = 0.37;  // N * T_mems / T_disk = 1.11: not integer
  config.nested_cycles = true;
  QosAuditor auditor(config);
  for (int i = 0; i < 3; ++i) {
    auditor.AddStream(i, 1 * kMBps, 0, QosDomain::kDisk);
  }
  auditor.Seal();

  ASSERT_EQ(auditor.total_violations(), 1);
  EXPECT_EQ(auditor.violations()[0].invariant, QosInvariant::kCycleNesting);
}

TEST(QosAuditorTest, ViolationAppendsTraceAnchorWithGlobalIndex) {
  sim::TraceLog log(8);
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.trace = &log;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 0, QosDomain::kNone);
  auditor.Seal();

  log.Append({0.5, sim::TraceKind::kNote, "x", -1, 0, "before"});
  auditor.EndDiskCycle(0, 2.0);

  ASSERT_EQ(auditor.total_violations(), 1);
  const QosViolation& v = auditor.violations()[0];
  EXPECT_EQ(v.trace_index, 1);  // one record was already in the log
  const auto& records = log.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.back().kind, sim::TraceKind::kNote);
  EXPECT_NE(records.back().detail.find("QOS"), std::string::npos);
  EXPECT_NE(records.back().detail.find("disk_cycle_overrun"),
            std::string::npos);
}

TEST(QosAuditorTest, RetentionCapKeepsCountingPastTheCap) {
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.max_violations = 2;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 0, QosDomain::kNone);
  auditor.Seal();

  for (int i = 0; i < 5; ++i) auditor.EndDiskCycle(i, 2.0);
  EXPECT_EQ(auditor.total_violations(), 5);
  EXPECT_EQ(auditor.violations().size(), 2u);
}

TEST(QosAuditorTest, MarginsLandInMetricsHistograms) {
  MetricsRegistry metrics;
  QosAuditorConfig config;
  config.disk_cycle = 1.0;
  config.metrics = &metrics;
  QosAuditor auditor(config);
  auditor.AddStream(0, 1 * kMBps, 2 * kMB, QosDomain::kDisk);
  auditor.Seal();

  auditor.RecordIo(0, 1 * kMB);
  auditor.RecordDramLevel(0, 0.5, 1 * kMB);
  auditor.EndDiskCycle(0, 0.7);

  const auto samples = metrics.Snapshot();
  bool saw_slack = false;
  bool saw_headroom = false;
  for (const auto& s : samples) {
    if (s.name == "qos.disk.cycle_slack_ms") saw_slack = true;
    if (s.name == "qos.dram_headroom_frac") saw_headroom = true;
  }
  EXPECT_TRUE(saw_slack);
  EXPECT_TRUE(saw_headroom);
}

// ---------------------------------------------------------------------
// Wired through the simulated servers.
// ---------------------------------------------------------------------

device::DiskDrive UniformDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<server::StreamSpec> Spread(std::int64_t n,
                                       BytesPerSecond bit_rate,
                                       Bytes capacity, Bytes min_extent) {
  std::vector<server::StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    server::StreamSpec s;
    s.id = i;
    s.bit_rate = bit_rate;
    s.disk_offset = stride * static_cast<double>(i);
    s.extent = std::max(min_extent, stride);
    streams.push_back(s);
  }
  return streams;
}

TEST(QosAuditorServerTest, CreateRejectsMismatchedRegistration) {
  device::DiskDrive disk = UniformDisk();
  const std::int64_t n = 4;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());

  QosAuditorConfig qc;
  qc.disk_cycle = cycle.value();
  QosAuditor auditor(qc);
  auditor.AddStream(0, b, 0, QosDomain::kDisk);  // only one of four
  auditor.Seal();

  server::DirectServerConfig config;
  config.cycle = cycle.value();
  config.auditor = &auditor;
  auto server = server::DirectStreamingServer::Create(
      &disk, Spread(n, b, disk.Capacity(), 2 * b * cycle.value()), config);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

// The Theorem-1-sized direct schedule sustains a clean audit.
TEST(QosAuditorServerTest, AnalyticSizingAuditsCleanOnDirectServer) {
  device::DiskDrive disk = UniformDisk();
  const std::int64_t n = 20;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());
  const Bytes io = b * cycle.value();

  QosAuditorConfig qc;
  qc.disk_cycle = cycle.value();
  qc.dram_total_bound = static_cast<double>(n) * 2 * io;
  QosAuditor auditor(qc);
  auto streams = Spread(n, b, disk.Capacity(), 2 * io);
  for (const auto& s : streams) {
    auditor.AddStream(s.id, s.bit_rate, 2 * io, QosDomain::kDisk);
  }
  auditor.Seal();

  server::DirectServerConfig config;
  config.cycle = cycle.value();
  config.auditor = &auditor;
  auto server =
      server::DirectStreamingServer::Create(&disk, streams, config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(30.0).ok());

  EXPECT_EQ(auditor.total_violations(), 0) << auditor.Summary();
  EXPECT_GT(auditor.disk_cycles_audited(), 10);
  EXPECT_EQ(server.value().report().qos.violations, 0);
}

// The acceptance scenario: seed a Theorem-2 violation by registering one
// stream with an undersized per-stream DRAM bound; the auditor must name
// that stream and the cycle of the first excursion.
TEST(QosAuditorServerTest, UndersizedBufferSeedsExactCounterExample) {
  device::DiskDrive disk = UniformDisk();
  const std::int64_t n = 8;
  const BytesPerSecond b = 1 * kMBps;
  auto cycle = model::IoCycleLength(n, b, model::DiskProfile(disk, n));
  ASSERT_TRUE(cycle.ok());
  const Bytes io = b * cycle.value();
  const std::int64_t seeded = 3;

  sim::TraceLog log;  // unbounded: the anchor's global index stays local
  QosAuditorConfig qc;
  qc.disk_cycle = cycle.value();
  qc.trace = &log;
  QosAuditor auditor(qc);
  auto streams = Spread(n, b, disk.Capacity(), 2 * io);
  for (const auto& s : streams) {
    // Stream `seeded` claims half an IO of DRAM: its very first deposit
    // (one full IO) must breach the bound.
    const Bytes bound = s.id == seeded ? 0.5 * io : 2 * io;
    auditor.AddStream(s.id, s.bit_rate, bound, QosDomain::kDisk);
  }
  auditor.Seal();

  server::DirectServerConfig config;
  config.cycle = cycle.value();
  config.auditor = &auditor;
  auto server =
      server::DirectStreamingServer::Create(&disk, streams, config, &log);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(20.0).ok());

  ASSERT_GE(auditor.total_violations(), 1) << auditor.Summary();
  const QosViolation& v = auditor.violations()[0];
  EXPECT_EQ(v.invariant, QosInvariant::kDramBound);
  EXPECT_EQ(v.stream_id, seeded);
  // Deposits of the first cycle land while the auditor's cycle counter
  // already points at the next (open) disk cycle.
  EXPECT_EQ(v.cycle_index, 1);
  EXPECT_DOUBLE_EQ(v.expected, 0.5 * io);
  EXPECT_GE(v.observed, io * 0.99);
  // The counter-example points into the trace window.
  ASSERT_GE(v.trace_index, 0);
  const auto& records = log.records();
  const auto local = static_cast<std::size_t>(
      v.trace_index - log.dropped_records());
  ASSERT_LT(local, records.size());
  EXPECT_EQ(records[local].kind, sim::TraceKind::kNote);
  EXPECT_NE(records[local].detail.find("dram_bound"), std::string::npos);
}

// Default paper-parameter runs of every facade mode audit clean.
TEST(QosAuditorServerTest, DefaultFacadeRunsAuditClean) {
  for (const auto mode :
       {server::ServerMode::kDirect, server::ServerMode::kMemsBuffer,
        server::ServerMode::kMemsCache}) {
    server::MediaServerConfig config;
    config.mode = mode;
    config.sim_duration = 20;
    auto result = server::RunMediaServer(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result.value().auditor, nullptr);
    EXPECT_EQ(result.value().qos.violations, 0)
        << server::ServerModeName(mode) << ": "
        << result.value().auditor->Summary();
    EXPECT_GT(result.value().auditor->disk_cycles_audited(), 0)
        << server::ServerModeName(mode);
  }
}

TEST(QosAuditorServerTest, ReplicatedCacheAuditsClean) {
  server::MediaServerConfig config;
  config.mode = server::ServerMode::kMemsCache;
  config.cache_policy = model::CachePolicy::kReplicated;
  config.sim_duration = 20;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().auditor, nullptr);
  EXPECT_EQ(result.value().qos.violations, 0)
      << result.value().auditor->Summary();
  EXPECT_GT(result.value().auditor->mems_cycles_audited(), 0);
}

// EDF has no cycles: occupancy-only audit (domain kNone) stays clean on
// a feasible load and never trips the per-cycle checks.
TEST(QosAuditorServerTest, EdfOccupancyAuditIsClean) {
  device::DiskDrive disk = UniformDisk();
  const std::int64_t n = 10;
  const BytesPerSecond b = 1 * kMBps;
  const Seconds io_playback = 1.0;
  const Bytes io = b * io_playback;

  QosAuditorConfig qc;
  qc.disk_cycle = io_playback;  // enables the slack instrumentation only
  QosAuditor auditor(qc);
  auto streams = Spread(n, b, disk.Capacity(), 2 * io);
  for (const auto& s : streams) {
    // The EDF admission caps each buffer at 2 IOs plus a small epsilon.
    auditor.AddStream(s.id, s.bit_rate, 2.01 * io, QosDomain::kNone);
  }
  auditor.Seal();

  server::EdfServerConfig config;
  config.io_playback = io_playback;
  config.auditor = &auditor;
  auto server =
      server::EdfStreamingServer::Create(&disk, streams, config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(20.0).ok());

  EXPECT_EQ(auditor.total_violations(), 0) << auditor.Summary();
  EXPECT_EQ(server.value().report().qos.violations, 0);
  EXPECT_EQ(server.value().report().qos.underflow_events, 0);
}

}  // namespace
}  // namespace memstream::obs
