#include "workload/cache_update.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

namespace memstream::workload {
namespace {

Catalog TenGigabyteTitles(std::int64_t n) {
  // 1 GB titles (1 MB/s x 1000 s).
  auto catalog = Catalog::Uniform(n, 1 * kMBps, 1000);
  EXPECT_TRUE(catalog.ok());
  return std::move(catalog).value();
}

std::vector<std::int64_t> Identity(std::int64_t n) {
  std::vector<std::int64_t> ranking(static_cast<std::size_t>(n));
  std::iota(ranking.begin(), ranking.end(), 0);
  return ranking;
}

TEST(CacheUpdateTest, InitialFillAdmitsTopRanked) {
  Catalog catalog = TenGigabyteTitles(20);
  auto plan = PlanCacheUpdate(catalog, {}, Identity(20),
                              model::CachePolicy::kReplicated, 2,
                              10 * kGB, 320 * kMBps);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Replicated capacity = one device = 10 GB = 10 titles.
  EXPECT_EQ(plan.value().residents.size(), 10u);
  EXPECT_EQ(plan.value().admit.size(), 10u);
  EXPECT_TRUE(plan.value().evict.empty());
  EXPECT_DOUBLE_EQ(plan.value().bytes_to_write, 10 * kGB);
  // One full copy per device at device rate.
  EXPECT_NEAR(plan.value().downtime, 10 * kGB / (320 * kMBps), 1e-9);
}

TEST(CacheUpdateTest, StripingAggregatesCapacityAndBandwidth) {
  Catalog catalog = TenGigabyteTitles(50);
  auto plan = PlanCacheUpdate(catalog, {}, Identity(50),
                              model::CachePolicy::kStriped, 4, 10 * kGB,
                              320 * kMBps);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().residents.size(), 40u);  // 4 x 10 GB
  EXPECT_NEAR(plan.value().downtime,
              40 * kGB / (4 * 320 * kMBps), 1e-9);
}

TEST(CacheUpdateTest, PopularityShiftComputesMinimalDelta) {
  Catalog catalog = TenGigabyteTitles(20);
  // Currently resident: titles 0..9. New ranking promotes 15 and 16 to
  // the top, demoting 8 and 9 out of the cache.
  std::vector<std::int64_t> ranking{15, 16, 0, 1, 2, 3, 4, 5, 6, 7,
                                    8,  9,  10, 11, 12, 13, 14, 17, 18, 19};
  std::vector<std::int64_t> current{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto plan = PlanCacheUpdate(catalog, current, ranking,
                              model::CachePolicy::kReplicated, 1, 10 * kGB,
                              320 * kMBps);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().admit, (std::vector<std::int64_t>{15, 16}));
  EXPECT_EQ(plan.value().evict, (std::vector<std::int64_t>{8, 9}));
  EXPECT_DOUBLE_EQ(plan.value().bytes_to_write, 2 * kGB);
}

TEST(CacheUpdateTest, NoChangeNoDowntime) {
  Catalog catalog = TenGigabyteTitles(20);
  auto current = Identity(10);
  auto plan = PlanCacheUpdate(catalog, current, Identity(20),
                              model::CachePolicy::kReplicated, 1, 10 * kGB,
                              320 * kMBps);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().admit.empty());
  EXPECT_TRUE(plan.value().evict.empty());
  EXPECT_DOUBLE_EQ(plan.value().downtime, 0.0);
}

TEST(CacheUpdateTest, InvalidRankingRejected) {
  Catalog catalog = TenGigabyteTitles(5);
  // Too short.
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, {0, 1, 2},
                               model::CachePolicy::kStriped, 1, 10 * kGB,
                               320 * kMBps)
                   .ok());
  // Duplicate entry.
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, {0, 1, 2, 3, 3},
                               model::CachePolicy::kStriped, 1, 10 * kGB,
                               320 * kMBps)
                   .ok());
  // Out-of-range id.
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, {0, 1, 2, 3, 9},
                               model::CachePolicy::kStriped, 1, 10 * kGB,
                               320 * kMBps)
                   .ok());
}

TEST(CacheUpdateTest, InvalidParametersRejected) {
  Catalog catalog = TenGigabyteTitles(5);
  const auto ranking = Identity(5);
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, ranking,
                               model::CachePolicy::kStriped, 0, 10 * kGB,
                               320 * kMBps)
                   .ok());
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, ranking,
                               model::CachePolicy::kStriped, 1, 0,
                               320 * kMBps)
                   .ok());
  EXPECT_FALSE(PlanCacheUpdate(catalog, {}, ranking,
                               model::CachePolicy::kStriped, 1, 10 * kGB,
                               0)
                   .ok());
}

}  // namespace
}  // namespace memstream::workload
