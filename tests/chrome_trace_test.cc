#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "json_test_util.h"
#include "server/media_server.h"
#include "sim/trace.h"

namespace memstream::obs {
namespace {

using testutil::JsonValue;
using testutil::ParseOrFail;

const std::vector<JsonValue>& Events(const JsonValue& doc) {
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  static const std::vector<JsonValue> kEmpty;
  return events != nullptr ? events->array : kEmpty;
}

TEST(ChromeTraceTest, EmptyLogIsValidJson) {
  sim::TraceLog log;
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(Events(doc).size(), 0u);
}

TEST(ChromeTraceTest, CompletionWithDurationBecomesCompleteEvent) {
  sim::TraceLog log;
  log.Append({1.0, sim::TraceKind::kIoCompleted, "disk", 3, 1024.0,
              "io", 0.25});
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));

  const JsonValue* span = nullptr;
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") == "X") span = &e;
  }
  ASSERT_NE(span, nullptr);
  // Span ends at record.time: ts = (1.0 - 0.25)s in microseconds.
  EXPECT_DOUBLE_EQ(span->Num("ts"), 750000.0);
  EXPECT_DOUBLE_EQ(span->Num("dur"), 250000.0);
  EXPECT_DOUBLE_EQ(span->Num("pid"), 1);  // devices process
  const JsonValue* args = span->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Num("stream"), 3);
  EXPECT_DOUBLE_EQ(args->Num("bytes"), 1024.0);
}

TEST(ChromeTraceTest, DeviceTidsFollowFirstAppearance) {
  sim::TraceLog log;
  log.Append({0.0, sim::TraceKind::kCycleStart, "disk", -1, 0, ""});
  log.Append({0.1, sim::TraceKind::kIoCompleted, "mems#0", 0, 8.0, "", 0.05});
  log.Append({0.2, sim::TraceKind::kIoCompleted, "mems#1", 1, 8.0, "", 0.05});
  log.Append({0.3, sim::TraceKind::kIoCompleted, "disk", 0, 8.0, "", 0.05});
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));

  std::map<std::string, double> tids;  // thread_name metadata, pid 1
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") == "M" && e.Str("name") == "thread_name" &&
        e.Num("pid") == 1) {
      tids[e.Find("args")->Str("name")] = e.Num("tid");
    }
  }
  ASSERT_EQ(tids.size(), 3u);
  EXPECT_DOUBLE_EQ(tids["disk"], 1);     // appeared first
  EXPECT_DOUBLE_EQ(tids["mems#0"], 2);
  EXPECT_DOUBLE_EQ(tids["mems#1"], 3);
}

TEST(ChromeTraceTest, IoSpansNestInsideTheirCycleSpan) {
  sim::TraceLog log;
  log.Append({0.0, sim::TraceKind::kCycleStart, "disk", -1, 0, "cycle 0"});
  log.Append({0.2, sim::TraceKind::kIoCompleted, "disk", 0, 8.0, "", 0.2});
  log.Append({0.5, sim::TraceKind::kIoCompleted, "disk", 1, 8.0, "", 0.3});
  log.Append({0.5, sim::TraceKind::kCycleEnd, "disk", -1, 0, "", 0.5});
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));

  double cycle_ts = -1, cycle_end = -1;
  std::vector<std::pair<double, double>> io_spans;
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") != "X") continue;
    if (e.Str("name") == "cycle") {
      cycle_ts = e.Num("ts");
      cycle_end = e.Num("ts") + e.Num("dur");
    } else {
      io_spans.emplace_back(e.Num("ts"), e.Num("ts") + e.Num("dur"));
    }
  }
  ASSERT_GE(cycle_ts, 0.0);
  ASSERT_EQ(io_spans.size(), 2u);
  for (const auto& [lo, hi] : io_spans) {
    EXPECT_GE(lo, cycle_ts - 1e-6);
    EXPECT_LE(hi, cycle_end + 1e-6);
  }
}

TEST(ChromeTraceTest, BufferLevelBecomesCounterOnStreamTrack) {
  sim::TraceLog log;
  log.Append({0.5, sim::TraceKind::kBufferLevel, "stream", 2, 4096.0, ""});
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));

  const JsonValue* counter = nullptr;
  const JsonValue* thread_meta = nullptr;
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") == "C") counter = &e;
    if (e.Str("ph") == "M" && e.Str("name") == "thread_name" &&
        e.Num("pid") == 2) {
      thread_meta = &e;
    }
  }
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->Num("pid"), 2);  // streams process
  EXPECT_DOUBLE_EQ(counter->Num("tid"), 3);  // stream id 2 -> tid 3
  EXPECT_DOUBLE_EQ(counter->Find("args")->Num("bytes"), 4096.0);
  ASSERT_NE(thread_meta, nullptr);
  EXPECT_EQ(thread_meta->Find("args")->Str("name"), "stream 2");
}

TEST(ChromeTraceTest, OptionsSuppressCountersAndInstants) {
  sim::TraceLog log;
  log.Append({0.0, sim::TraceKind::kCycleStart, "disk", -1, 0, ""});
  log.Append({0.5, sim::TraceKind::kBufferLevel, "stream", 0, 1.0, ""});
  ChromeTraceOptions options;
  options.include_buffer_counters = false;
  options.include_instants = false;
  ChromeTraceExporter exporter(options);
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));
  for (const auto& e : Events(doc)) {
    EXPECT_NE(e.Str("ph"), "C");
    EXPECT_NE(e.Str("ph"), "i");
  }
}

TEST(ChromeTraceTest, DroppedRecordsSurfaceInOtherData) {
  sim::TraceLog log(2);
  for (int i = 0; i < 5; ++i) {
    log.Append({static_cast<double>(i), sim::TraceKind::kNote, "n", -1, 0,
                "x"});
  }
  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));
  const JsonValue* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->Num("dropped_records"), 3);
}

TEST(ChromeTraceTest, EscapesHostileStringsIntoValidJson) {
  sim::TraceLog log;
  log.Append({0.0, sim::TraceKind::kNote, "a\"b\\c", -1, 0,
              std::string("line\nbreak\tand \x01 control")});
  ChromeTraceExporter exporter;
  ParseOrFail(exporter.ToJson(log));  // must parse cleanly
}

TEST(ChromeTraceTest, WriteFileCreatesLoadableDocument) {
  sim::TraceLog log;
  log.Append({0.1, sim::TraceKind::kIoCompleted, "disk", 0, 64.0, "", 0.1});
  ChromeTraceExporter exporter;
  const std::string path = ::testing::TempDir() + "/trace_test.trace.json";
  ASSERT_TRUE(exporter.WriteFile(log, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  ParseOrFail(contents);
}

// The acceptance scenario from the issue: a full kMemsBuffer run with
// N >= 4 streams and k >= 2 devices exports to valid trace JSON with one
// device track per MEMS device (plus the disk) and one track per stream.
TEST(ChromeTraceTest, MemsBufferRunExportsOneTrackPerDeviceAndStream) {
  sim::TraceLog log;
  server::MediaServerConfig config;
  config.mode = server::ServerMode::kMemsBuffer;
  config.k = 2;
  config.num_streams = 4;
  config.sim_duration = 5;
  config.trace = &log;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(log.records().empty());

  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log));

  std::set<double> device_tids;
  std::set<double> stream_tids;
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") == "M" && e.Str("name") == "thread_name") {
      if (e.Num("pid") == 1) device_tids.insert(e.Num("tid"));
      if (e.Num("pid") == 2) stream_tids.insert(e.Num("tid"));
    }
  }
  // Disk + 2 MEMS devices; 4 streams.
  EXPECT_EQ(device_tids.size(), 3u);
  EXPECT_EQ(stream_tids.size(), 4u);

  // The run must produce real spans (cycles and IOs), not just instants.
  int spans = 0;
  for (const auto& e : Events(doc)) {
    if (e.Str("ph") == "X") ++spans;
  }
  EXPECT_GT(spans, 0);
}

TEST(ChromeTraceTest, TimelineSeriesExportAsCounterTracksOnPid3) {
  sim::TraceLog log;
  TimelineRecorder timelines;
  TimelineSeries* dram = timelines.AddSeries("stream.0.dram_bytes", "bytes");
  TimelineSeries* util =
      timelines.AddSeries("device.disk.cycle_utilization", "fraction");
  dram->Record(0.5, 4096.0);
  dram->Record(1.0, 8192.0);
  util->Record(1.0, 0.75);

  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log, &timelines));

  std::string process_name;
  std::map<double, std::string> tracks;  // tid -> series name, pid 3
  std::vector<const JsonValue*> counters;
  for (const auto& e : Events(doc)) {
    if (e.Num("pid") != 3) continue;
    if (e.Str("ph") == "M" && e.Str("name") == "process_name") {
      process_name = e.Find("args")->Str("name");
    }
    if (e.Str("ph") == "M" && e.Str("name") == "thread_name") {
      tracks[e.Num("tid")] = e.Find("args")->Str("name");
    }
    if (e.Str("ph") == "C") counters.push_back(&e);
  }
  EXPECT_EQ(process_name, "timelines");
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[1], "stream.0.dram_bytes");
  EXPECT_EQ(tracks[2], "device.disk.cycle_utilization");
  ASSERT_EQ(counters.size(), 3u);
  // Counter value is keyed by the series unit; ts is in microseconds.
  EXPECT_EQ(counters[0]->Str("name"), "stream.0.dram_bytes");
  EXPECT_DOUBLE_EQ(counters[0]->Num("ts"), 500000.0);
  EXPECT_DOUBLE_EQ(counters[0]->Find("args")->Num("bytes"), 4096.0);
  EXPECT_DOUBLE_EQ(counters[2]->Find("args")->Num("fraction"), 0.75);
}

TEST(ChromeTraceTest, FacadeRunExportsTimelineCounterTracks) {
  sim::TraceLog log;
  TimelineRecorder timelines;
  server::MediaServerConfig config;
  config.num_streams = 4;
  config.sim_duration = 5;
  config.trace = &log;
  config.timelines = &timelines;
  auto result = server::RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(timelines.size(), 0u);
  ASSERT_GT(timelines.total_points(), 0u);

  ChromeTraceExporter exporter;
  const JsonValue doc = ParseOrFail(exporter.ToJson(log, &timelines));
  int pid3_counters = 0;
  for (const auto& e : Events(doc)) {
    if (e.Num("pid") == 3 && e.Str("ph") == "C") ++pid3_counters;
  }
  EXPECT_GT(pid3_counters, 0);
}

}  // namespace
}  // namespace memstream::obs
