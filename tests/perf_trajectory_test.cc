// The perf-trajectory record store behind tools/memstream-perf:
// percentile math, JSON round-trips, append-with-run-stamping, baseline
// regression checks, and the report aggregator's handling of
// BENCH_trajectory.json inputs.

#include "exp/perf_trajectory.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/report_merge.h"

namespace memstream {
namespace {

using exp::CheckAgainstBaseline;
using exp::Median;
using exp::Percentile;
using exp::PerfCheck;
using exp::PerfRecord;

PerfRecord MakeRecord(const std::string& bench, double wall, double eps) {
  PerfRecord r;
  r.bench = bench;
  r.kind = "sweep";
  r.smoke = true;
  r.repeats = 3;
  r.wall_seconds = wall;
  r.wall_p50 = wall;
  r.wall_p99 = wall;
  r.events_per_sec = eps;
  return r;
}

/// A self-deleting temp file path under the test's working directory.
class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_("perf_test_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PercentileTest, InterpolatesBetweenSamples) {
  const std::vector<double> v = {4, 1, 3, 2};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0);
  // Out-of-range quantiles clamp instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 4);
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 1);
}

TEST(PerfRecordTest, JsonRoundTripPreservesFields) {
  PerfRecord r = MakeRecord("fig9_cache_throughput", 0.25, 1.5e6);
  r.run = 3;
  r.unix_time = 1754600000;
  r.allocs_per_event = 0.5;
  auto parsed = exp::ParsePerfRecords("[" + exp::PerfRecordJson(r) + "]");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed.value().size(), 1u);
  const PerfRecord& back = parsed.value()[0];
  EXPECT_EQ(back.schema_version, exp::kPerfSchemaVersion);
  EXPECT_EQ(back.bench, "fig9_cache_throughput");
  EXPECT_EQ(back.kind, "sweep");
  EXPECT_TRUE(back.smoke);
  EXPECT_EQ(back.run, 3);
  EXPECT_EQ(back.repeats, 3);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 0.25);
  EXPECT_DOUBLE_EQ(back.events_per_sec, 1.5e6);
  EXPECT_DOUBLE_EQ(back.allocs_per_event, 0.5);
}

TEST(PerfRecordTest, RejectsNewerSchemaAndNamelessRecords) {
  PerfRecord r = MakeRecord("b", 1, 0);
  r.schema_version = exp::kPerfSchemaVersion + 1;
  EXPECT_FALSE(
      exp::ParsePerfRecords("[" + exp::PerfRecordJson(r) + "]").ok());
  EXPECT_FALSE(exp::ParsePerfRecords("[{\"kind\":\"sweep\"}]").ok());
  EXPECT_FALSE(exp::ParsePerfRecords("{\"bench\":\"x\"}").ok());
  EXPECT_FALSE(exp::ParsePerfRecords("not json").ok());
}

TEST(PerfRecordTest, AppendStampsMonotonicRunNumbers) {
  TempFile file("trajectory.json");
  ASSERT_TRUE(
      exp::AppendPerfRecords(file.path(), {MakeRecord("a", 1, 100)}).ok());
  ASSERT_TRUE(exp::AppendPerfRecords(
                  file.path(), {MakeRecord("a", 2, 90), MakeRecord("b", 3, 80)})
                  .ok());
  auto loaded = exp::LoadPerfRecords(file.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[0].run, 1);
  EXPECT_EQ(loaded.value()[1].run, 2);  // both records of the second
  EXPECT_EQ(loaded.value()[2].run, 2);  // append share one run number
}

TEST(PerfRecordTest, LoadOfMissingFileIsEmptyNotError) {
  auto loaded = exp::LoadPerfRecords("does_not_exist_trajectory.json");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(BaselineCheckTest, PassesWithinToleranceAndFlagsRegressions) {
  const std::vector<PerfRecord> baseline = {MakeRecord("a", 1.0, 1000)};
  // 1000 -> 900 events/s is a x1.11 slowdown: inside x1.5, outside x1.05.
  const std::vector<PerfRecord> current = {MakeRecord("a", 1.0, 900)};
  auto ok = CheckAgainstBaseline(current, baseline, 1.5);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].found_baseline);
  EXPECT_TRUE(ok[0].ok);
  EXPECT_EQ(ok[0].metric, "events_per_sec");
  EXPECT_NEAR(ok[0].ratio, 1000.0 / 900.0, 1e-9);

  auto regress = CheckAgainstBaseline(current, baseline, 1.05);
  ASSERT_EQ(regress.size(), 1u);
  EXPECT_FALSE(regress[0].ok);
  EXPECT_NE(regress[0].detail.find("events_per_sec"), std::string::npos);
}

TEST(BaselineCheckTest, FallsBackToWallClockAndUsesLatestBaseline) {
  // No events/s on either side -> wall-seconds ratio. Two baseline
  // records for the same key: the later one (file order) wins.
  std::vector<PerfRecord> baseline = {MakeRecord("micro", 4.0, 0),
                                      MakeRecord("micro", 1.0, 0)};
  const std::vector<PerfRecord> current = {MakeRecord("micro", 1.2, 0)};
  auto checks = CheckAgainstBaseline(current, baseline, 1.5);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_TRUE(checks[0].found_baseline);
  EXPECT_EQ(checks[0].metric, "wall_seconds");
  EXPECT_NEAR(checks[0].ratio, 1.2, 1e-9);  // vs 1.0, not vs 4.0
  EXPECT_TRUE(checks[0].ok);
}

TEST(BaselineCheckTest, MissingKeyOrSmokeMismatchReportsNoBaseline) {
  const std::vector<PerfRecord> baseline = {MakeRecord("a", 1.0, 1000)};
  PerfRecord full_mode = MakeRecord("a", 1.0, 1000);
  full_mode.smoke = false;  // same bench, different mode -> different key
  auto checks =
      CheckAgainstBaseline({MakeRecord("zzz", 1, 1), full_mode}, baseline, 2);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_FALSE(checks[0].found_baseline);
  EXPECT_TRUE(checks[0].ok);  // not a regression; callers gate on found_baseline
  EXPECT_EQ(checks[0].detail, "no baseline");
  EXPECT_FALSE(checks[1].found_baseline);
}

TEST(ReportMergeTest, ClassifiesAndRendersPerfTrajectory) {
  PerfRecord r1 = MakeRecord("fig9_cache_throughput", 0.2, 1.0e6);
  r1.run = 1;
  PerfRecord r2 = MakeRecord("fig9_cache_throughput", 0.19, 1.1e6);
  r2.run = 2;
  const std::string json = exp::PerfRecordsJson({r1, r2});

  // Trajectory arrays also carry a "bench" key; classification must
  // test for "schema_version" before the bench-sweeps shape.
  EXPECT_EQ(obs::ClassifyReportInput(json),
            obs::ReportInputKind::kPerfTrajectory);

  obs::ReportBundle bundle;
  ASSERT_TRUE(
      obs::AddReportInput("BENCH_trajectory.json", json, &bundle).ok());
  ASSERT_EQ(bundle.perf.size(), 2u);
  EXPECT_EQ(bundle.perf[0].bench, "fig9_cache_throughput");
  EXPECT_EQ(bundle.perf[1].run, 2);

  const std::string md = obs::RenderMarkdownReport(bundle, "t");
  EXPECT_NE(md.find("## Perf trajectory"), std::string::npos) << md;
  EXPECT_NE(md.find("fig9_cache_throughput"), std::string::npos);
  const std::string html = obs::RenderHtmlDashboard(bundle, "t");
  EXPECT_NE(html.find("Perf trajectory"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace memstream
