#include "device/mems_device.h"

#include <gtest/gtest.h>

#include "device/device_catalog.h"

namespace memstream::device {
namespace {

MemsDevice G3() {
  auto dev = MemsDevice::Create(MemsG3());
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

TEST(MemsDeviceTest, G3HeadlineNumbers) {
  MemsDevice dev = G3();
  EXPECT_DOUBLE_EQ(dev.MaxTransferRate(), 320 * kMBps);
  EXPECT_DOUBLE_EQ(dev.Capacity(), 10 * kGB);
  // 0.45 + 0.14 + 0.27 = 0.86 ms: the latency that makes the
  // FutureDisk/G3 latency ratio 4.3/0.86 = 5 (§5.1).
  EXPECT_NEAR(dev.MaxAccessLatency(), 0.86 * kMillisecond, 1e-9);
  // Average must sit inside Table 1's 0.4-1 ms band, below the max.
  EXPECT_GT(dev.AverageAccessLatency(), 0.4 * kMillisecond);
  EXPECT_LT(dev.AverageAccessLatency(), dev.MaxAccessLatency());
}

TEST(MemsDeviceTest, LatencyRatioAgainstFutureDiskIsFive) {
  MemsDevice dev = G3();
  const Seconds disk_avg = 4.3 * kMillisecond;  // 2.8 seek + 1.5 rotation
  EXPECT_NEAR(disk_avg / dev.MaxAccessLatency(), 5.0, 0.01);
}

TEST(MemsDeviceTest, SeekTimeZeroForSamePosition) {
  MemsDevice dev = G3();
  EXPECT_DOUBLE_EQ(dev.SeekTime(10, 0.5, 10, 0.5), 0.0);
}

TEST(MemsDeviceTest, FullStrokeSeekEqualsMaxLatency) {
  MemsDevice dev = G3();
  EXPECT_NEAR(dev.SeekTime(0, 0.0, 2499, 1.0), dev.MaxAccessLatency(),
              1e-12);
}

TEST(MemsDeviceTest, YOnlyMoveSkipsSettle) {
  MemsDevice dev = G3();
  const Seconds t = dev.SeekTime(5, 0.0, 5, 1.0);
  EXPECT_NEAR(t, 0.27 * kMillisecond, 1e-12);
}

TEST(MemsDeviceTest, XMovePaysSettle) {
  MemsDevice dev = G3();
  const Seconds t = dev.SeekTime(0, 0.0, 1, 0.0);
  EXPECT_GE(t, 0.14 * kMillisecond);
}

TEST(MemsDeviceTest, SeekMonotoneInXDistance) {
  MemsDevice dev = G3();
  Seconds prev = 0;
  for (std::int64_t r = 0; r < 2500; r += 100) {
    const Seconds t = dev.SeekTime(0, 0, r, 0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(MemsDeviceTest, SequentialServiceHasNoPositioningCost) {
  MemsDevice dev = G3();
  dev.Reset();
  auto first = dev.Service({0, 1 * kMB}, nullptr);
  ASSERT_TRUE(first.ok());
  // Continue exactly where the sled stopped.
  auto second =
      dev.Service({static_cast<std::int64_t>(1 * kMB), 1 * kMB}, nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second.value(), 1 * kMB / (320 * kMBps), 1e-9);
}

TEST(MemsDeviceTest, RandomServiceBoundedByMaxLatency) {
  MemsDevice dev = G3();
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const auto offset = rng.NextInt(0, static_cast<std::int64_t>(9 * kGB));
    auto t = dev.Service({offset, 64 * kKB}, nullptr);
    ASSERT_TRUE(t.ok());
    EXPECT_LE(t.value(),
              dev.MaxAccessLatency() + 64 * kKB / (320 * kMBps) + 1e-12);
  }
}

TEST(MemsDeviceTest, EffectiveThroughputMatchesFig2Shape) {
  MemsDevice dev = G3();
  // Fig. 2: at ~1 MB IOs the MEMS device already reaches ~250 MB/s while
  // the disk (4.3 ms latency) is still near 130 MB/s.
  const auto mems_tput =
      EffectiveThroughput(1 * kMB, dev.MaxAccessLatency(), 320 * kMBps);
  const auto disk_tput =
      EffectiveThroughput(1 * kMB, 4.3 * kMillisecond, 300 * kMBps);
  EXPECT_GT(mems_tput, 240 * kMBps);
  EXPECT_LT(disk_tput, 150 * kMBps);
}

TEST(MemsDeviceTest, OutOfRangeRejected) {
  MemsDevice dev = G3();
  EXPECT_FALSE(dev.Service({-1, 1}, nullptr).ok());
  EXPECT_FALSE(
      dev.Service({static_cast<std::int64_t>(10 * kGB), 1}, nullptr).ok());
}

TEST(MemsDeviceTest, InvalidParametersRejected) {
  MemsParameters p = MemsG3();
  p.transfer_rate = 0;
  EXPECT_FALSE(MemsDevice::Create(p).ok());
  p = MemsG3();
  p.num_regions = 0;
  EXPECT_FALSE(MemsDevice::Create(p).ok());
  p = MemsG3();
  p.x_settle = -1;
  EXPECT_FALSE(MemsDevice::Create(p).ok());
}

TEST(MemsDeviceTest, GenerationsImproveMonotonically) {
  auto g1 = MemsG1();
  auto g2 = MemsG2();
  auto g3 = MemsG3();
  EXPECT_LT(g1.transfer_rate, g2.transfer_rate);
  EXPECT_LT(g2.transfer_rate, g3.transfer_rate);
  EXPECT_LT(g1.capacity, g2.capacity);
  EXPECT_LT(g2.capacity, g3.capacity);
  EXPECT_GT(g1.x_full_stroke, g3.x_full_stroke);
}

}  // namespace
}  // namespace memstream::device
