#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace memstream::obs {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("server.ios");
  Counter* c2 = registry.counter("server.ios");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(registry.size(), 1u);

  c1->Increment();
  c1->Increment(2.5);
  EXPECT_DOUBLE_EQ(c2->value(), 3.5);
}

TEST(MetricsRegistryTest, HandlesSurviveLaterInsertions) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a");
  c->Increment(7);
  // Force rebalancing-ish churn: many more entries.
  for (int i = 0; i < 100; ++i) {
    registry.gauge("g." + std::to_string(i))->Set(i);
  }
  EXPECT_DOUBLE_EQ(c->value(), 7);
  EXPECT_DOUBLE_EQ(registry.FindCounter("a")->value(), 7);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("queue.depth");
  g->Set(4);
  g->Add(-1);
  EXPECT_DOUBLE_EQ(g->value(), 3);
}

TEST(MetricsRegistryTest, HistogramObservesDistribution) {
  MetricsRegistry registry;
  HistogramMetric* h =
      registry.histogram("latency_ms", {0.0, 10.0, 10});
  for (int i = 0; i < 10; ++i) h->Observe(static_cast<double>(i));
  EXPECT_EQ(h->stats().count(), 10);
  EXPECT_DOUBLE_EQ(h->stats().min(), 0);
  EXPECT_DOUBLE_EQ(h->stats().max(), 9);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 4.5);
  // Same handle on re-request; options of the first call win.
  EXPECT_EQ(registry.histogram("latency_ms", {0.0, 99.0, 3}), h);
}

TEST(MetricsRegistryTest, TimeWeightedGaugeAverages) {
  MetricsRegistry registry;
  TimeWeightedGauge* tw = registry.time_weighted("occupancy");
  tw->Update(0, 0);
  tw->Update(1, 10);   // held 0 for [0,1)
  tw->Update(3, 10);   // held 10 for [1,3)
  EXPECT_DOUBLE_EQ(tw->stats().TimeAverage(), (0 * 1 + 10 * 2) / 3.0);
  EXPECT_DOUBLE_EQ(tw->stats().max_value(), 10);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_EQ(registry.gauge("x"), nullptr);
  EXPECT_EQ(registry.FindGauge("x"), nullptr);
  EXPECT_NE(registry.FindCounter("x"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  EXPECT_EQ(registry.FindTimeWeighted("missing"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricsRegistryTest, SnapshotFlattensAllKindsInNameOrder) {
  MetricsRegistry registry;
  registry.counter("b.count")->Increment(5);
  registry.gauge("a.gauge")->Set(1.5);
  HistogramMetric* h = registry.histogram("c.hist", {0.0, 100.0, 10});
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  TimeWeightedGauge* tw = registry.time_weighted("d.tw");
  tw->Update(0, 2);
  tw->Update(2, 4);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot[0].name, "a.gauge");
  EXPECT_EQ(snapshot[0].kind, "gauge");
  EXPECT_DOUBLE_EQ(snapshot[0].value, 1.5);
  EXPECT_EQ(snapshot[1].name, "b.count");
  EXPECT_EQ(snapshot[1].kind, "counter");
  EXPECT_DOUBLE_EQ(snapshot[1].value, 5);
  EXPECT_EQ(snapshot[2].name, "c.hist");
  EXPECT_EQ(snapshot[2].kind, "histogram");
  EXPECT_EQ(snapshot[2].count, 100);
  EXPECT_DOUBLE_EQ(snapshot[2].min, 1);
  EXPECT_DOUBLE_EQ(snapshot[2].max, 100);
  EXPECT_NEAR(snapshot[2].p50, 50, 5);
  EXPECT_NEAR(snapshot[2].p95, 95, 5);
  EXPECT_EQ(snapshot[3].name, "d.tw");
  EXPECT_EQ(snapshot[3].kind, "time_weighted");
  EXPECT_DOUBLE_EQ(snapshot[3].value, 2);  // time average
  EXPECT_DOUBLE_EQ(snapshot[3].max, 4);
}

TEST(MetricsRegistryTest, PrometheusNameRewritesToUnderscores) {
  EXPECT_EQ(PrometheusName("server.disk.cycle_slack_ms"),
            "server_disk_cycle_slack_ms");
  EXPECT_EQ(PrometheusName("device.mems#0.busy_seconds"),
            "device_mems_0_busy_seconds");
}

TEST(MetricsRegistryTest, PrometheusTextContainsAllMetrics) {
  MetricsRegistry registry;
  registry.counter("server.ios")->Increment(12);
  registry.gauge("server.utilization")->Set(0.5);
  HistogramMetric* h =
      registry.histogram("server.slack_ms", {0.0, 10.0, 10});
  h->Observe(5);
  TimeWeightedGauge* tw = registry.time_weighted("stream.0.dram_bytes");
  tw->Update(0, 100);
  tw->Update(1, 100);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("server_ios 12"), std::string::npos);
  EXPECT_NE(text.find("server_utilization 0.5"), std::string::npos);
  EXPECT_NE(text.find("server_slack_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("stream_0_dram_bytes_avg"), std::string::npos);
  // Dotted library names must not leak into the exposition.
  EXPECT_EQ(text.find("server.ios"), std::string::npos);
  EXPECT_EQ(text.find("stream.0"), std::string::npos);
}

TEST(MetricsRegistryTest, CsvHasHeaderAndOneRowPerMetric) {
  MetricsRegistry registry;
  registry.counter("a")->Increment();
  registry.gauge("b")->Set(2);
  const std::string csv = registry.ToCsvText();
  EXPECT_EQ(csv.find("name,kind,value,count,min,max,mean,p50,p95,p99"), 0u);
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 metrics
}

TEST(MetricsRegistryTest, WriteCsvRoundTrips) {
  MetricsRegistry registry;
  registry.counter("written")->Increment(9);
  const std::string path = ::testing::TempDir() + "/metrics_test.csv";
  ASSERT_TRUE(registry.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[256] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  const std::string contents(buffer, n);
  EXPECT_NE(contents.find("written,counter,9"), std::string::npos);
}

TEST(MetricsRegistryTest, ClearEmptiesRegistry) {
  MetricsRegistry registry;
  registry.counter("a");
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.FindCounter("a"), nullptr);
}

TEST(MetricsRegistryTest, NullTolerantHelpersNoOpOnNull) {
  Increment(nullptr);
  Set(nullptr, 1.0);
  Observe(nullptr, 1.0);
  Update(nullptr, 0.0, 1.0);
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Increment(c, 3);
  EXPECT_DOUBLE_EQ(c->value(), 3);
}

// Exposition-format regression: hostile help strings and label values
// (backslashes, newlines, quotes) must come out escaped, and hostile
// metric/label names must be rewritten into the legal charset.
TEST(MetricsRegistryTest, PrometheusEscapesHostileHelpAndLabels) {
  MetricsRegistry registry;
  registry.counter("evil.metric")->Increment();
  registry.SetHelp("evil.metric",
                   "line one\nline two with \\backslash\\ and \"quotes\"");
  registry.SetLabel("evil.metric", "path", "C:\\tmp\\run \"A\"\nnext");
  registry.SetLabel("evil.metric", "host name!", "plain");

  const std::string text = registry.ToPrometheusText();
  // Help: backslash doubled, newline as literal \n, quotes untouched.
  EXPECT_NE(text.find("# HELP evil_metric line one\\nline two with "
                      "\\\\backslash\\\\ and \"quotes\""),
            std::string::npos);
  // Label value: backslash doubled, quote escaped, newline as \n; the
  // label name is rewritten to the legal charset.
  EXPECT_NE(
      text.find("path=\"C:\\\\tmp\\\\run \\\"A\\\"\\nnext\""),
      std::string::npos);
  EXPECT_NE(text.find("host_name_=\"plain\""), std::string::npos);
  // No raw newline may survive inside any emitted line.
  for (std::size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    // Every newline must terminate a complete line: the next char starts
    // a new sample or comment, never a continuation of a quoted string.
    if (pos + 1 < text.size()) {
      EXPECT_NE(text[pos + 1], '"');
    }
  }
  // The sample line itself is present and parseable-looking.
  EXPECT_NE(text.find("evil_metric{"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramQuantilesKeepExtraLabels) {
  MetricsRegistry registry;
  auto* h = registry.histogram("lat.ms", {0, 10, 10});
  for (int i = 0; i < 100; ++i) h->Observe(i % 10);
  registry.SetLabel("lat.ms", "device", "disk\\0 \"primary\"");

  const std::string text = registry.ToPrometheusText();
  // Quantile lines must merge the constant label with the quantile label.
  EXPECT_NE(text.find("lat_ms{device=\"disk\\\\0 \\\"primary\\\"\","
                      "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ms_count{device="), std::string::npos);
}

}  // namespace
}  // namespace memstream::obs
