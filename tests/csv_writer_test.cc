#include "common/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace memstream {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/memstream_csv_test.csv";
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"n", "dram_gb"});
    ASSERT_TRUE(w.ok());
    w.AddRow(std::vector<std::string>{"10", "0.5"});
    w.AddRow(std::vector<double>{100, 5.25});
  }
  EXPECT_EQ(ReadAll(path_), "n,dram_gb\n10,0.5\n100,5.25\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"text"});
    w.AddRow(std::vector<std::string>{"a,b"});
    w.AddRow(std::vector<std::string>{"say \"hi\""});
  }
  EXPECT_EQ(ReadAll(path_), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvEscapeTest, PlainCellUntouched) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST_F(CsvWriterTest, BadPathReportsNotOk) {
  CsvWriter w("/nonexistent-dir-xyz/file.csv", {"h"});
  EXPECT_FALSE(w.ok());
}

}  // namespace
}  // namespace memstream
