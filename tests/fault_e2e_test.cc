// Seeded end-to-end fault scenarios through the MediaServer facade
// (ISSUE acceptance): a replicated bank survives one device loss with
// zero underflows; a striped bank sheds deterministically and re-admits
// on repair; the same fault seed yields byte-identical reports at any
// sweep thread count.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/sweep_runner.h"
#include "fault/fault_plan.h"
#include "obs/run_report.h"
#include "server/media_server.h"

namespace memstream::server {
namespace {

// High per-stream rate so the (zoned, conservative) disk path has little
// headroom: a striped cache outage then cannot absorb every cached
// stream, forcing the shed + re-admit path the scenarios assert on.
constexpr BytesPerSecond kRate = 8 * kMBps;

MediaServerConfig FaultScenario(model::CachePolicy policy,
                                fault::FaultPlan plan) {
  MediaServerConfig config;
  config.mode = ServerMode::kMemsCache;
  config.cache_policy = policy;
  config.k = 2;
  config.num_streams = 30;
  config.cached_fraction_of_streams = 0.5;
  config.bit_rate = kRate;
  config.sim_duration = 30;
  config.fault_plan = std::move(plan);
  config.fault_refill_delay = 1.0;
  return config;
}

std::string ViolationDump(const MediaServerResult& result) {
  std::string out;
  if (result.auditor != nullptr) {
    for (const auto& v : result.auditor->violations()) {
      out += v.ToString() + "\n";
    }
  }
  return out;
}

fault::FaultPlan FailRepairPlan(std::int64_t device, Seconds fail_at,
                                Seconds repair_at) {
  std::vector<fault::FaultEvent> events;
  events.push_back({fail_at, fault::FaultKind::kMemsDeviceFail, device, 0, 0});
  events.push_back({repair_at, fault::FaultKind::kMemsDeviceRepair, device, 0,
                    repair_at - fail_at});
  return fault::FaultPlan::FromScript(std::move(events));
}

TEST(FaultE2eTest, ReplicatedBankSurvivesDeviceLossWithoutUnderflow) {
  auto config = FaultScenario(model::CachePolicy::kReplicated,
                              FailRepairPlan(1, 10, 20));
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The surviving device sustains every cached stream (Theorem 4 with
  // k' = 1), so degradation reshapes instead of shedding and playback
  // never stutters — including across both re-plan transitions.
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_EQ(result.value().qos.violations, 0) << ViolationDump(result.value());

  ASSERT_NE(result.value().faults, nullptr);
  const obs::FaultsBlock& block = result.value().faults->block();
  EXPECT_EQ(block.events, 1);
  EXPECT_EQ(block.repairs, 1);
  EXPECT_EQ(block.replans, 2);  // degrade at t=10, restore at t=20
  EXPECT_EQ(block.sheds, 0);
  EXPECT_TRUE(block.shed_streams.empty());
  // Timeline: the failure start and the repair end, both annotated with
  // the re-plan the DegradationManager applied.
  ASSERT_EQ(block.timeline.size(), 2u);
  EXPECT_EQ(block.timeline[0].kind, "mems-device-fail");
  EXPECT_FALSE(block.timeline[0].action.empty());
  EXPECT_EQ(block.timeline[1].kind, "mems-device-repair");
}

TEST(FaultE2eTest, StripedBankShedsExactStreamsAndReadmitsOnRepair) {
  auto config = FaultScenario(model::CachePolicy::kStriped,
                              FailRepairPlan(1, 10, 18));
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_NE(result.value().faults, nullptr);
  const obs::FaultsBlock& block = result.value().faults->block();

  // Losing one striped device loses the cache content (Corollary 3): the
  // disk absorbs what Theorem 1 allows, the rest shed deterministically
  // from the top of the cached id range [15, 30).
  ASSERT_GE(block.sheds, 1);
  EXPECT_EQ(block.sheds, static_cast<std::int64_t>(block.shed_streams.size()));
  EXPECT_EQ(block.readmits, block.sheds);
  std::vector<std::int64_t> shed_ids;
  for (const auto& rec : block.shed_streams) {
    EXPECT_NEAR(rec.shed_time, 10.0, 1e-9);
    // Repair at t=18 + 1s stripe refill: re-admitted at t=19.
    EXPECT_NEAR(rec.readmit_time, 19.0, 1e-9);
    shed_ids.push_back(rec.stream_id);
  }
  // Highest-indexed cached streams first: exactly the tail of [15, 30).
  std::sort(shed_ids.begin(), shed_ids.end());
  for (std::size_t j = 0; j < shed_ids.size(); ++j) {
    EXPECT_EQ(shed_ids[j],
              30 - static_cast<std::int64_t>(shed_ids.size() - j));
  }
  EXPECT_GT(block.total_shed_time, 0.0);

  // Retained streams (cache survivors on disk + original disk streams)
  // play through the outage clean.
  EXPECT_EQ(result.value().qos.underflow_events, 0);
  EXPECT_EQ(result.value().qos.violations, 0) << ViolationDump(result.value());
}

TEST(FaultE2eTest, UnmanagedStripedBankStallsWithoutDegradation) {
  auto config = FaultScenario(model::CachePolicy::kStriped,
                              FailRepairPlan(1, 10, 18));
  config.degrade = false;  // ablation: faults strike, nothing reacts
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Cached streams starve once the stripe is broken.
  EXPECT_GT(result.value().qos.underflow_events, 0);
  ASSERT_NE(result.value().faults, nullptr);
  EXPECT_EQ(result.value().faults->block().replans, 0);
  EXPECT_EQ(result.value().faults->block().sheds, 0);
}

std::string ReportJsonForTask(std::int64_t index) {
  fault::FaultPlanConfig pc;
  pc.horizon = 20;
  pc.num_devices = 2;
  pc.device_fail_rate = 0.05;
  pc.repair_after = 5;
  pc.disk_spike_rate = 0.1;
  pc.tip_loss_rate = 0.02;
  auto plan =
      fault::FaultPlan::Generate(pc, 1000 + static_cast<std::uint64_t>(index));
  EXPECT_TRUE(plan.ok());

  auto config = FaultScenario(index % 2 == 0
                                  ? model::CachePolicy::kReplicated
                                  : model::CachePolicy::kStriped,
                              std::move(plan).value());
  config.sim_duration = 20;
  std::ostringstream sink;  // keep expected burst warnings off stderr
  config.fault_warn_stream = &sink;
  auto result = RunMediaServer(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return std::string();
  return BuildRunReport(config, result.value()).ToJson();
}

TEST(FaultE2eTest, SameSeedSameReportAtAnyThreadCount) {
  constexpr std::int64_t kTasks = 6;
  exp::SweepOptions serial;
  serial.threads = 1;
  auto one = exp::SweepRunner(serial).Map(kTasks, [](exp::TaskContext& ctx) {
    return ReportJsonForTask(ctx.index());
  });
  exp::SweepOptions wide;
  wide.threads = 4;
  auto four = exp::SweepRunner(wide).Map(kTasks, [](exp::TaskContext& ctx) {
    return ReportJsonForTask(ctx.index());
  });
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].empty());
    EXPECT_EQ(one[i], four[i]) << "report " << i << " diverged by thread count";
  }
}

}  // namespace
}  // namespace memstream::server
