// Seeded end-to-end acceptance of the observability tentpole: one
// deterministic striped-cache fault run, wired through the stream
// journal and SLO monitor, must (1) journal the exact shed ->
// re-admitted transition for a named stream id, (2) burn the
// availability error budget over the outage, (3) serve that state live
// on /slostatus, and (4) surface the availability delta when the
// faulted run is diffed against a clean twin.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/json_parser.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/report_merge.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "obs/stream_journal.h"
#include "server/media_server.h"

namespace memstream::server {
namespace {

// The striped scenario from fault_e2e_test: losing device 1 at t=10
// breaks the stripe, the tail of the cached id range [15, 30) sheds
// deterministically (stream 29 first), and repair at t=18 + 1s refill
// re-admits at t=19.
constexpr std::int64_t kNamedStream = 29;
constexpr Seconds kFailAt = 10;
constexpr Seconds kRepairAt = 18;
constexpr Seconds kReadmitAt = 19;

MediaServerConfig StripedOutage(obs::StreamJournal* journal,
                                obs::SloMonitor* slo,
                                obs::MetricsRegistry* metrics,
                                bool faulted) {
  MediaServerConfig config;
  config.mode = ServerMode::kMemsCache;
  config.cache_policy = model::CachePolicy::kStriped;
  config.k = 2;
  config.num_streams = 30;
  config.cached_fraction_of_streams = 0.5;
  config.bit_rate = 8 * kMBps;
  config.sim_duration = 30;
  config.journal = journal;
  config.slo = slo;
  config.metrics = metrics;
  if (faulted) {
    std::vector<fault::FaultEvent> events;
    events.push_back({kFailAt, fault::FaultKind::kMemsDeviceFail, 1, 0, 0});
    events.push_back({kRepairAt, fault::FaultKind::kMemsDeviceRepair, 1, 0,
                      kRepairAt - kFailAt});
    config.fault_plan = fault::FaultPlan::FromScript(std::move(events));
    config.fault_refill_delay = 1.0;
  }
  return config;
}

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(JournalSloE2eTest, FaultRunJournalsShedReadmitBurnsBudgetAndDiffs) {
  // --- the faulted run ---
  obs::StreamJournal journal;
  obs::SloMonitor slo;
  obs::MetricsRegistry metrics;
  auto config = StripedOutage(&journal, &slo, &metrics, /*faulted=*/true);
  auto result = RunMediaServer(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // (1) The named stream's journal holds the exact shed -> re-admitted
  // transition, at the scripted outage times.
  const std::ptrdiff_t slot = journal.SlotOf(kNamedStream);
  ASSERT_GE(slot, 0) << "stream " << kNamedStream << " never journaled";
  const obs::StreamJournalEntry& entry =
      journal.entry(static_cast<std::size_t>(slot));
  EXPECT_EQ(entry.sheds, 1);
  EXPECT_EQ(entry.readmits, 1);
  EXPECT_EQ(entry.phase, obs::StreamPhase::kDeparted);
  std::ptrdiff_t shed_at = -1;
  std::ptrdiff_t readmit_at = -1;
  for (std::size_t i = 0; i < entry.events.size(); ++i) {
    if (entry.events[i].kind == obs::StreamEventKind::kShed) {
      shed_at = static_cast<std::ptrdiff_t>(i);
      EXPECT_NEAR(entry.events[i].t, kFailAt, 1e-9);
    }
    if (entry.events[i].kind == obs::StreamEventKind::kReadmitted) {
      readmit_at = static_cast<std::ptrdiff_t>(i);
      EXPECT_NEAR(entry.events[i].t, kReadmitAt, 1e-9);
    }
  }
  ASSERT_GE(shed_at, 0) << "no shed event journaled";
  ASSERT_GE(readmit_at, 0) << "no readmit event journaled";
  EXPECT_EQ(readmit_at, shed_at + 1) << "re-admit must follow the shed";

  // The journal summary agrees and reached the metrics registry.
  const obs::StreamJournalSummary summary = journal.Summarize();
  EXPECT_GE(summary.shed, 1);
  EXPECT_GE(summary.readmitted, 1);
  EXPECT_EQ(summary.departed, summary.count);
  EXPECT_DOUBLE_EQ(metrics.gauge("stream.shed")->value(),
                   static_cast<double>(summary.shed));

  // (2) The availability SLO burned over the outage window.
  const obs::Slo* availability = slo.Find("availability");
  ASSERT_NE(availability, nullptr);
  EXPECT_GT(availability->bad(), 0) << "outage burned no availability budget";
  EXPECT_LT(availability->attainment(), 1.0);
  EXPECT_LT(availability->budget_remaining(), 1.0);
  EXPECT_GT(metrics.gauge("slo.availability.attainment")->value(), 0.0);

  // (3) /slostatus serves the burn live.
  obs::MetricsHttpServer http;
  http.SetSloProvider([&slo] { return slo.StatusJson(); });
  http.SetHealthProvider(
      [&slo](std::string* detail) { return slo.healthy(detail); });
  ASSERT_TRUE(http.Start().ok());
  const std::string response = HttpGet(http.port(), "/slostatus");
  http.Stop();
  ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  bool ok = false;
  const obs::JsonValue doc = obs::ParseJson(response.substr(body_at + 4), &ok);
  ASSERT_TRUE(ok) << response;
  const obs::JsonValue* slos = doc.Find("slos");
  ASSERT_NE(slos, nullptr);
  bool served = false;
  for (const auto& s : slos->array) {
    if (s.Str("name") == "availability") {
      served = true;
      EXPECT_GT(s.Num("bad"), 0);
      EXPECT_LT(s.Num("attainment"), 1.0);
    }
  }
  EXPECT_TRUE(served) << response;

  // (4) Diffing faulted vs clean highlights the availability delta.
  obs::StreamJournal clean_journal;
  obs::SloMonitor clean_slo;
  auto clean_config =
      StripedOutage(&clean_journal, &clean_slo, nullptr, /*faulted=*/false);
  auto clean_result = RunMediaServer(clean_config);
  ASSERT_TRUE(clean_result.ok()) << clean_result.status().ToString();
  EXPECT_EQ(clean_slo.Find("availability")->bad(), 0);

  obs::ReportBundle clean_bundle;
  obs::ReportBundle faulted_bundle;
  ASSERT_TRUE(obs::AddReportInput(
                  "clean.json",
                  BuildRunReport(clean_config, clean_result.value()).ToJson(),
                  &clean_bundle)
                  .ok());
  ASSERT_TRUE(obs::AddReportInput(
                  "faulted.json",
                  BuildRunReport(config, result.value(), &metrics).ToJson(),
                  &faulted_bundle)
                  .ok());
  // An 8-second outage in a 30-second run dents attainment by well
  // under a percent (the baseline is 1.0), but it torches over a tenth
  // of the error budget — the budget, not raw attainment, is where a
  // short outage shows, and the default thresholds must flag it.
  const obs::BundleDiff diff =
      obs::ComputeBundleDiff(clean_bundle, faulted_bundle, obs::DiffOptions{},
                             "clean.json", "faulted.json");
  ASSERT_EQ(diff.pairs.size(), 1u);
  bool availability_flagged = false;
  std::string slo_rows;
  for (const auto& row : diff.pairs[0].slo) {
    slo_rows += row.key + " a=" + std::to_string(row.a) +
                " b=" + std::to_string(row.b) +
                " delta=" + std::to_string(row.delta) +
                (row.significant ? " significant\n" : "\n");
    if (row.key == "availability.budget_remaining") {
      availability_flagged = row.significant && row.delta < 0;
    }
    if (row.key == "availability.attainment") {
      EXPECT_LT(row.delta, 0) << "faulted run should attain less";
    }
  }
  EXPECT_TRUE(availability_flagged)
      << "diff did not flag the availability budget burn:\n"
      << slo_rows;
  bool shed_flagged = false;
  for (const auto& row : diff.pairs[0].streams) {
    if (row.key == "shed") {
      shed_flagged = row.significant && row.delta > 0;
    }
  }
  EXPECT_TRUE(shed_flagged) << "diff did not flag the shed-stream delta";
  const std::string markdown =
      obs::RenderMarkdownDiff(diff, "faulted vs clean");
  EXPECT_NE(markdown.find("availability.attainment"), std::string::npos);
}

}  // namespace
}  // namespace memstream::server
