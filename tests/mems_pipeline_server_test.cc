#include "server/mems_pipeline_server.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "device/device_catalog.h"
#include "model/mems_buffer.h"
#include "model/profiles.h"

namespace memstream::server {
namespace {

// Validation disks are uniform-rate: the analytical model (like the
// paper) uses a single R_disk, so the executable check must not be
// polluted by zoned-rate variation.
device::DiskDrive UniformFutureDisk() {
  device::DiskParameters p = device::FutureDisk2007();
  p.inner_rate = p.outer_rate;
  auto disk = device::DiskDrive::Create(p);
  EXPECT_TRUE(disk.ok());
  return std::move(disk).value();
}

std::vector<device::MemsDevice> G3Bank(std::int64_t k) {
  std::vector<device::MemsDevice> bank;
  for (std::int64_t i = 0; i < k; ++i) {
    device::MemsParameters params = device::MemsG3();
    params.name = "MEMS" + std::to_string(i);
    auto dev = device::MemsDevice::Create(params);
    EXPECT_TRUE(dev.ok());
    bank.push_back(std::move(dev).value());
  }
  return bank;
}

std::vector<StreamSpec> Spread(std::int64_t n, BytesPerSecond bit_rate,
                               Bytes capacity, Bytes min_extent) {
  std::vector<StreamSpec> streams;
  const Bytes stride = capacity * 0.9 / static_cast<double>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    streams.push_back(
        {i, bit_rate, stride * static_cast<double>(i),
         std::max(min_extent, stride)});
  }
  return streams;
}

struct Sized {
  MemsPipelineConfig config;
  model::MemsBufferSizing sizing;
};

Sized SizeWithTheorem2(const device::DiskDrive& disk, std::int64_t n,
                       BytesPerSecond b, std::int64_t k) {
  model::MemsBufferParams params;
  params.k = k;
  params.disk = model::DiskProfile(disk, n);
  params.mems = model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
  auto range = model::FeasibleTdiskRange(n, b, params);
  EXPECT_TRUE(range.ok()) << range.status().ToString();
  const Seconds t_disk =
      std::min(range.value().lower * 1.5, range.value().upper);
  auto sizing = model::SolveMemsBuffer(n, b, params, t_disk);
  EXPECT_TRUE(sizing.ok()) << sizing.status().ToString();

  Sized out;
  out.sizing = sizing.value();
  out.config.t_disk = sizing.value().t_disk;
  out.config.t_mems = sizing.value().t_mems_snapped;
  return out;
}

// The paper's Fig. 4 scenario: N = 10 streams through a single MEMS
// buffer device; and Fig. 5: N = 45 streams across a k = 3 bank. In both
// cases Theorem 2's sizing must execute without underflow.
TEST(PipelineTest, Fig4SingleDeviceTenStreams) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 10;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 1);
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(1),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const MemsPipelineReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(report.qos.underflow_time, 0.0);
  EXPECT_EQ(report.disk_overruns, 0);
  EXPECT_EQ(report.mems_overruns, 0);
  EXPECT_GT(report.disk_cycles, 3);
  EXPECT_GT(report.mems_cycles, report.disk_cycles);
}

TEST(PipelineTest, Fig5ThreeDeviceBank) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 45;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 3);
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(3),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const MemsPipelineReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_DOUBLE_EQ(report.qos.underflow_time, 0.0);
  EXPECT_EQ(report.mems_overruns, 0);
  // All 45 streams play.
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    EXPECT_GT(server.value().session(i).total_deposited(), 0.0)
        << "stream " << i;
  }
}

TEST(PipelineTest, MemsOccupancyStaysWithinEq7Bound) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 20;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 2);
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(2),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());
  // Per-device occupancy must stay within the device capacity, and in
  // fact within ~one device's share of the Eq. 7 budget.
  EXPECT_LE(server.value().report().peak_mems_occupancy, 10 * kGB);
  EXPECT_GT(server.value().report().peak_mems_occupancy, 0.0);
}

TEST(PipelineTest, DramDemandNearAnalyticSizing) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 30;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 2);
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(2),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());
  // Double-buffered consumption keeps at most ~2 MEMS IOs per stream in
  // DRAM: peak demand within 2x the schedulable sizing (plus slack).
  const Bytes analytic = static_cast<double>(n) *
                         sized.sizing.s_mems_dram_schedulable;
  EXPECT_LE(server.value().report().peak_dram_demand, 2.2 * analytic);
  EXPECT_GT(server.value().report().peak_dram_demand, 0.3 * analytic);
}

TEST(PipelineTest, UndersizedMemsCycleUnderflows) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 20;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 1);
  // Starve the DRAM side: reads far smaller than the steady-state demand.
  sized.config.t_mems = sized.config.t_mems * 0.05;
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(1),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(60.0).ok());
  EXPECT_GT(server.value().report().mems_overruns +
                server.value().report().qos.underflow_events,
            0);
}

TEST(PipelineTest, SteadyStateBytesBalance) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 12;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 2);
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(2),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config);
  ASSERT_TRUE(server.ok());
  const Seconds horizon = 120.0;
  ASSERT_TRUE(server.value().Run(horizon).ok());
  // §3.1: in the steady state, data written to the MEMS device equals
  // data read from it; each stream must have received ~bit_rate*horizon
  // (minus the pipeline fill).
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    const Bytes got = server.value().session(i).total_deposited();
    EXPECT_GT(got, b * horizon * 0.8) << "stream " << i;
    EXPECT_LT(got, b * horizon * 1.2) << "stream " << i;
  }
}

// The Fig. 5 bookkeeping, asserted from the trace: with N = 45 streams
// over k = 3 devices, each device receives exactly N/k = 15 disk->MEMS
// writes per steady-state disk cycle, and every third stream lands on
// the same device.
TEST(PipelineTest, Fig5TraceShowsRoundRobinRouting) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 45;
  const BytesPerSecond b = 1 * kMBps;
  Sized sized = SizeWithTheorem2(disk, n, b, 3);
  sim::TraceLog trace;
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(3),
      Spread(n, b, disk.Capacity(), 2 * b * sized.config.t_disk),
      sized.config, &trace);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value().Run(sized.config.t_disk * 6).ok());

  // Steady-state window: the 5th disk cycle.
  const Seconds w0 = sized.config.t_disk * 4;
  const Seconds w1 = w0 + sized.config.t_disk;
  std::map<std::string, int> writes_per_device;
  std::map<std::string, std::set<std::int64_t>> streams_per_device;
  for (const auto& r : trace.records()) {
    if (r.time < w0 || r.time >= w1) continue;
    if (r.kind != sim::TraceKind::kIoCompleted) continue;
    if (r.detail != "disk->MEMS write") continue;
    writes_per_device[r.actor] += 1;
    streams_per_device[r.actor].insert(r.stream_id);
  }
  ASSERT_EQ(writes_per_device.size(), 3u);
  for (const auto& [device_name, count] : writes_per_device) {
    EXPECT_EQ(count, 15) << device_name;
  }
  // Round-robin: stream i lives on device i mod 3.
  for (const auto& [device_name, ids] : streams_per_device) {
    std::set<std::int64_t> residues;
    for (auto id : ids) residues.insert(id % 3);
    EXPECT_EQ(residues.size(), 1u)
        << device_name << " serves streams of mixed residue";
  }
}

// The §3.1.2 striped-IO placement, executed: sized with the striped
// variant of Theorem 2 it must run jitter-free, at the cost of a ~k x
// longer MEMS cycle (and hence DRAM) than round-robin routing.
TEST(PipelineTest, StripedPlacementJitterFreeAtItsOwnSizing) {
  device::DiskDrive disk = UniformFutureDisk();
  const std::int64_t n = 40;
  const BytesPerSecond b = 1 * kMBps;
  const std::int64_t k = 4;

  model::MemsBufferParams params;
  params.k = k;
  params.disk = model::DiskProfile(disk, n);
  params.mems = model::MemsProfileMaxLatency(
      device::MemsDevice::Create(device::MemsG3()).value());
  params.placement = model::BufferPlacement::kStripedIos;
  auto range = model::FeasibleTdiskRange(n, b, params);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  auto sizing = model::SolveMemsBuffer(
      n, b, params,
      std::min(range.value().lower * 1.5, range.value().upper));
  ASSERT_TRUE(sizing.ok()) << sizing.status().ToString();

  MemsPipelineConfig config;
  config.t_disk = sizing.value().t_disk;
  config.t_mems = sizing.value().t_mems_snapped;
  config.placement = model::BufferPlacement::kStripedIos;
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(k),
      Spread(n, b, disk.Capacity(), 2 * b * config.t_disk), config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value().Run(60.0).ok());

  const MemsPipelineReport& report = server.value().report();
  EXPECT_EQ(report.qos.underflow_events, 0);
  EXPECT_EQ(report.mems_overruns, 0);
  EXPECT_GT(report.mems_cycles, 0);
  for (std::size_t i = 0; i < server.value().num_streams(); ++i) {
    EXPECT_GT(server.value().session(i).total_deposited(), 0.0);
  }

  // The striped cycle must be substantially longer than the round-robin
  // cycle at the same T_disk (the analytic ~k x penalty, executed).
  model::MemsBufferParams rr = params;
  rr.placement = model::BufferPlacement::kRoundRobinStreams;
  auto rr_sizing = model::SolveMemsBuffer(n, b, rr, sizing.value().t_disk);
  ASSERT_TRUE(rr_sizing.ok());
  EXPECT_GT(sizing.value().t_mems, 2.0 * rr_sizing.value().t_mems);
}

TEST(PipelineTest, CreateValidatesCapacityAgainstCondition7) {
  device::DiskDrive disk = UniformFutureDisk();
  MemsPipelineConfig config;
  config.t_disk = 10000.0;  // absurd cycle: slots cannot hold 2 IOs
  config.t_mems = 100.0;
  auto server = MemsPipelineServer::Create(
      &disk, G3Bank(1), Spread(4, 1 * kMBps, disk.Capacity(), 100 * kGB),
      config);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInfeasible);
}

TEST(PipelineTest, CreateRejectsTmemsAboveTdisk) {
  device::DiskDrive disk = UniformFutureDisk();
  MemsPipelineConfig config;
  config.t_disk = 1.0;
  config.t_mems = 2.0;
  EXPECT_FALSE(MemsPipelineServer::Create(
                   &disk, G3Bank(1),
                   Spread(4, 1 * kMBps, disk.Capacity(), 100 * kMB), config)
                   .ok());
}

}  // namespace
}  // namespace memstream::server
