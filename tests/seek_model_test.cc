#include "device/seek_model.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"

namespace memstream::device {
namespace {

SeekModel FutureDiskSeek() {
  auto model = SeekModel::Calibrate(0.3 * kMillisecond, 2.8 * kMillisecond,
                                    7.0 * kMillisecond, 100000);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model.value();
}

TEST(SeekModelTest, CalibrationHitsAnchors) {
  SeekModel m = FutureDiskSeek();
  EXPECT_NEAR(m.FullStrokeTime(), 7.0 * kMillisecond, 1e-9);
  EXPECT_NEAR(m.AverageSeekTime(), 2.8 * kMillisecond, 1e-9);
  EXPECT_NEAR(m.SeekTime(1), 0.3 * kMillisecond, 0.05 * kMillisecond);
}

TEST(SeekModelTest, ZeroDistanceIsFree) {
  EXPECT_EQ(FutureDiskSeek().SeekTime(0), 0.0);
}

TEST(SeekModelTest, MonotoneNonDecreasing) {
  SeekModel m = FutureDiskSeek();
  Seconds prev = 0;
  for (std::int64_t d = 1; d <= 100000; d += 997) {
    const Seconds t = m.SeekTime(d);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SeekModelTest, ClampsBeyondFullStroke) {
  SeekModel m = FutureDiskSeek();
  EXPECT_DOUBLE_EQ(m.SeekTime(100000), m.SeekTime(200000));
}

TEST(SeekModelTest, EmpiricalAverageMatchesCalibration) {
  // Monte-Carlo over random cylinder pairs: the model's analytic average
  // must match the simulated one (validates the 8/15 and 1/3 moments).
  SeekModel m = FutureDiskSeek();
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto a = rng.NextInt(0, 99999);
    const auto b = rng.NextInt(0, 99999);
    sum += m.SeekTime(std::llabs(a - b));
  }
  EXPECT_NEAR(sum / n, 2.8 * kMillisecond, 0.03 * kMillisecond);
}

TEST(SeekModelTest, RejectsDisorderedFigures) {
  EXPECT_FALSE(SeekModel::Calibrate(2 * kMillisecond, 1 * kMillisecond,
                                    7 * kMillisecond, 1000)
                   .ok());
  EXPECT_FALSE(SeekModel::Calibrate(1 * kMillisecond, 8 * kMillisecond,
                                    7 * kMillisecond, 1000)
                   .ok());
  EXPECT_FALSE(
      SeekModel::Calibrate(0, 2 * kMillisecond, 7 * kMillisecond, 1000).ok());
}

TEST(SeekModelTest, RejectsUnrealizableConcaveFit) {
  // Average too close to full stroke: would need a convex curve.
  EXPECT_FALSE(SeekModel::Calibrate(0.3 * kMillisecond, 6.9 * kMillisecond,
                                    7.0 * kMillisecond, 1000)
                   .ok());
}

TEST(SeekModelTest, TooFewCylindersRejected) {
  EXPECT_FALSE(SeekModel::Calibrate(0.3 * kMillisecond, 2.8 * kMillisecond,
                                    7.0 * kMillisecond, 1)
                   .ok());
}

}  // namespace
}  // namespace memstream::device
