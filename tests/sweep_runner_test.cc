// SweepRunner: ordered collection, per-task seeding, metric merging, and
// the determinism suite — the same sweep at 1..8 threads must produce
// byte-identical CSV output and identical merged metric values. This is
// the ctest enforcement of the engine's core contract.

#include "exp/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "exp/sweep_stats.h"
#include "sim/simulator.h"

namespace memstream::exp {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SweepRunnerTest, MapCollectsResultsInIndexOrder) {
  SweepRunner runner({.threads = 4});
  auto rows = runner.Map(100, [](TaskContext& ctx) {
    return ctx.index() * 10;
  });
  ASSERT_EQ(rows.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(rows[i], i * 10);
}

TEST(SweepRunnerTest, TaskSeedIsAFunctionOfIndexOnly) {
  const std::uint64_t base = 42;
  EXPECT_EQ(TaskSeed(base, 0), TaskSeed(base, 0));
  EXPECT_NE(TaskSeed(base, 0), TaskSeed(base, 1));
  EXPECT_NE(TaskSeed(base, 0), TaskSeed(base + 1, 0));

  // The seed a task observes must not depend on the thread count.
  SweepRunner serial({.threads = 1, .base_seed = base});
  SweepRunner parallel({.threads = 8, .base_seed = base});
  auto seeds_serial =
      serial.Map(64, [](TaskContext& ctx) { return ctx.seed(); });
  auto seeds_parallel =
      parallel.Map(64, [](TaskContext& ctx) { return ctx.seed(); });
  EXPECT_EQ(seeds_serial, seeds_parallel);
}

TEST(SweepRunnerTest, PerTaskRngStreamsAreThreadCountInvariant) {
  auto draw = [](int threads) {
    SweepRunner runner({.threads = threads, .base_seed = 7});
    return runner.Map(32, [](TaskContext& ctx) {
      double sum = 0;
      for (int i = 0; i < 10; ++i) sum += ctx.rng().NextDouble();
      return sum;
    });
  };
  const auto reference = draw(1);
  for (int threads : {2, 3, 8}) {
    EXPECT_EQ(draw(threads), reference) << "threads=" << threads;
  }
}

TEST(SweepRunnerTest, MergedMetricsMatchSerialRun) {
  auto sweep = [](int threads, obs::MetricsRegistry* registry) {
    SweepRunner runner({.threads = threads, .metrics = registry});
    runner.ForEach(50, [](TaskContext& ctx) {
      obs::MetricsRegistry* m = ctx.metrics();
      ASSERT_NE(m, nullptr);
      m->counter("sweep.tasks")->Increment();
      m->counter("sweep.points")->Increment(
          static_cast<double>(ctx.index()));
      m->gauge("sweep.last_index")->Set(static_cast<double>(ctx.index()));
      m->histogram("sweep.latency_ms", {0.0, 50.0, 10})
          ->Observe(static_cast<double>(ctx.index()));
      auto* tw = m->time_weighted("sweep.occupancy");
      tw->Update(0.0, 1.0);
      tw->Update(1.0, 0.0);
    });
  };

  obs::MetricsRegistry serial;
  sweep(1, &serial);
  for (int threads : {2, 8}) {
    obs::MetricsRegistry parallel;
    sweep(threads, &parallel);
    // Identical values, not merely close: merge order is task order.
    EXPECT_EQ(parallel.ToCsvText(), serial.ToCsvText())
        << "threads=" << threads;
  }
  EXPECT_DOUBLE_EQ(serial.FindCounter("sweep.tasks")->value(), 50.0);
  EXPECT_DOUBLE_EQ(serial.FindCounter("sweep.points")->value(),
                   49.0 * 50.0 / 2.0);
  // Gauges merge last-writer-wins in task order: final task index.
  EXPECT_DOUBLE_EQ(serial.FindGauge("sweep.last_index")->value(), 49.0);
  EXPECT_EQ(serial.FindHistogram("sweep.latency_ms")->stats().count(), 50);
}

// The acceptance-criteria determinism check: a bench-shaped sweep
// (simulators inside tasks, CSV emission from ordered rows) writes
// byte-identical files at every thread count.
TEST(SweepRunnerTest, CsvBytesAreIdenticalAcrossThreadCounts) {
  struct Row {
    std::vector<std::string> cells;
  };
  auto write_csv = [](int threads, const std::string& path) {
    SweepRunner runner({.threads = threads, .base_seed = 99});
    auto rows = runner.Map(40, [](TaskContext& ctx) {
      // A miniature simulation per task, as the converted benches do.
      sim::Simulator sim;
      std::int64_t fired = 0;
      const std::int64_t n = 5 + ctx.index() % 7;
      for (std::int64_t i = 0; i < n; ++i) {
        (void)sim.Schedule(ctx.rng().NextDouble(), [&fired] { ++fired; });
      }
      (void)sim.Run();
      ctx.AddEvents(fired);
      Row row;
      row.cells = {std::to_string(ctx.index()), std::to_string(fired),
                   std::to_string(ctx.rng().NextDouble())};
      return row;
    });
    CsvWriter csv(path, {"index", "events", "draw"});
    for (const auto& row : rows) csv.AddRow(row.cells);
    csv.Close();
  };

  const auto dir = std::filesystem::temp_directory_path();
  const std::string reference_path =
      (dir / "memstream_sweep_serial.csv").string();
  write_csv(1, reference_path);
  const std::string reference = ReadFile(reference_path);
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 4, 8}) {
    const std::string path =
        (dir / ("memstream_sweep_t" + std::to_string(threads) + ".csv"))
            .string();
    write_csv(threads, path);
    EXPECT_EQ(ReadFile(path), reference) << "threads=" << threads;
    std::filesystem::remove(path);
  }
  std::filesystem::remove(reference_path);
}

TEST(SweepRunnerTest, StatsAccumulateAcrossSweeps) {
  SweepRunner runner({.threads = 2});
  runner.ForEach(10, [](TaskContext& ctx) { ctx.AddEvents(3); });
  runner.ForEach(5, [](TaskContext& ctx) { ctx.AddEvents(1); });
  EXPECT_EQ(runner.stats().tasks, 15);
  EXPECT_EQ(runner.stats().events, 35);
  EXPECT_EQ(runner.stats().threads, 2);
  EXPECT_GE(runner.stats().wall_seconds, 0.0);
}

TEST(SweepRunnerTest, ResolveThreadCountHonorsEnvOverride) {
  ::setenv("MEMSTREAM_THREADS", "3", 1);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  EXPECT_EQ(ResolveThreadCount(5), 5);  // explicit request wins
  ::setenv("MEMSTREAM_THREADS", "garbage", 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  ::unsetenv("MEMSTREAM_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1);
}

TEST(BenchSweepRecordTest, JsonRoundTripAndInPlaceReplacement) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "memstream_bench_sweeps.json").string();
  std::filesystem::remove(path);

  SweepStats stats;
  stats.tasks = 12;
  stats.threads = 4;
  stats.wall_seconds = 0.5;
  stats.events = 1000;
  auto record = MakeBenchSweepRecord("fig6_dram_requirement", stats);
  EXPECT_EQ(record.events_per_sec, 2000.0);
  ASSERT_TRUE(AppendBenchSweepRecord(path, record).ok());

  auto other = MakeBenchSweepRecord("fig7_cost_reduction", stats);
  ASSERT_TRUE(AppendBenchSweepRecord(path, other).ok());

  // Re-recording the first bench replaces its line, preserving order.
  record.events = 4000;
  record.events_per_sec = 8000;
  ASSERT_TRUE(AppendBenchSweepRecord(path, record).ok());

  const std::string contents = ReadFile(path);
  EXPECT_EQ(contents.find("fig6_dram_requirement"),
            contents.rfind("fig6_dram_requirement"))
      << "must not duplicate records";
  EXPECT_NE(contents.find("\"events\":4000"), std::string::npos);
  EXPECT_NE(contents.find("fig7_cost_reduction"), std::string::npos);
  EXPECT_EQ(contents.front(), '[');
  EXPECT_LT(contents.find("fig6"), contents.find("fig7"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace memstream::exp
