#include "fault/fault_injector.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace memstream::fault {
namespace {

FaultPlan WindowPlan() {
  std::vector<FaultEvent> events;
  events.push_back({2, FaultKind::kDiskLatencySpike, -1, 0.004, 3});
  events.push_back({4, FaultKind::kDiskLatencySpike, -1, 0.001, 2});
  events.push_back({10, FaultKind::kDramPressure, -1, 0.5, 5});
  events.push_back({12, FaultKind::kDramPressure, -1, 0.2, 5});
  return FaultPlan::FromScript(std::move(events));
}

TEST(FaultInjectorTest, DiskPenaltySumsOverlappingSpikes) {
  FaultInjector injector(WindowPlan(), {});
  EXPECT_DOUBLE_EQ(injector.DiskIoPenalty(1.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.DiskIoPenalty(2.5), 0.004);
  EXPECT_DOUBLE_EQ(injector.DiskIoPenalty(4.5), 0.005);  // both active
  EXPECT_DOUBLE_EQ(injector.DiskIoPenalty(5.5), 0.001);  // first ended
  EXPECT_DOUBLE_EQ(injector.DiskIoPenalty(7.0), 0.0);
}

TEST(FaultInjectorTest, DramWindowsMultiplySurvivingFractions) {
  FaultInjector injector(WindowPlan(), {});
  EXPECT_DOUBLE_EQ(injector.DramAvailableFraction(9.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.DramAvailableFraction(11.0), 0.5);
  EXPECT_DOUBLE_EQ(injector.DramAvailableFraction(13.0), 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(injector.DramAvailableFraction(16.0), 0.8);
  EXPECT_DOUBLE_EQ(injector.DramAvailableFraction(18.0), 1.0);
}

TEST(FaultInjectorTest, ScheduledEventsFeedTimelineAndMetrics) {
  std::vector<FaultEvent> events;
  events.push_back({1, FaultKind::kMemsDeviceFail, 0, 0, 0});
  events.push_back({5, FaultKind::kMemsDeviceRepair, 0, 0, 4});

  obs::MetricsRegistry metrics;
  sim::TraceLog trace;
  FaultInjectorConfig config;
  config.metrics = &metrics;
  config.trace = &trace;
  FaultInjector injector(FaultPlan::FromScript(std::move(events)), config);

  sim::Simulator sim;
  std::vector<FaultKind> seen;
  ASSERT_TRUE(injector
                  .ScheduleIn(sim, [&seen](const FaultEvent& e) {
                    seen.push_back(e.kind);
                  })
                  .ok());
  ASSERT_TRUE(sim.Run(10).ok());
  injector.Finalize(10);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], FaultKind::kMemsDeviceFail);
  EXPECT_EQ(seen[1], FaultKind::kMemsDeviceRepair);

  const obs::FaultsBlock& block = injector.block();
  EXPECT_EQ(block.events, 1);
  EXPECT_EQ(block.repairs, 1);
  ASSERT_EQ(block.timeline.size(), 2u);
  EXPECT_EQ(block.timeline[0].time, 1.0);
  EXPECT_EQ(block.timeline[1].action, "cleared");
  EXPECT_EQ(metrics.counter("fault.events")->value(), 1);
  EXPECT_EQ(metrics.counter("fault.repairs")->value(), 1);
  EXPECT_EQ(trace.Count(sim::TraceKind::kFaultStart), 1);
  EXPECT_EQ(trace.Count(sim::TraceKind::kFaultEnd), 1);
}

TEST(FaultInjectorTest, ShedLedgerTracksReadmissionAndShedTime) {
  FaultInjector injector(FaultPlan(), {});
  injector.RecordShed(7, 10.0, 3);
  injector.RecordShed(9, 10.0, 3);
  injector.RecordReadmit(7, 16.0);
  injector.Finalize(30.0);

  const obs::FaultsBlock& block = injector.block();
  EXPECT_EQ(block.sheds, 2);
  EXPECT_EQ(block.readmits, 1);
  ASSERT_EQ(block.shed_streams.size(), 2u);
  EXPECT_EQ(block.shed_streams[0].readmit_time, 16.0);
  EXPECT_EQ(block.shed_streams[1].readmit_time, -1.0);
  // 6s for stream 7 + (30 - 10)s for the never-readmitted stream 9.
  EXPECT_DOUBLE_EQ(block.total_shed_time, 6.0 + 20.0);
}

TEST(FaultInjectorTest, ReplanAnnotatesCausingTimelineEntry) {
  std::vector<FaultEvent> events;
  events.push_back({3, FaultKind::kMemsTipLoss, 1, 0.2, 0});
  FaultInjector injector(FaultPlan::FromScript(std::move(events)), {});
  sim::Simulator sim;
  ASSERT_TRUE(injector.ScheduleIn(sim, nullptr).ok());
  ASSERT_TRUE(sim.Run(5).ok());
  injector.RecordReplan({3, FaultKind::kMemsTipLoss, 1, 0.2, 0}, 3.0,
                        "reshape T_mems=0.5s");
  ASSERT_EQ(injector.block().timeline.size(), 1u);
  EXPECT_EQ(injector.block().timeline[0].action, "reshape T_mems=0.5s");
  EXPECT_EQ(injector.block().replans, 1);
}

TEST(FaultInjectorTest, WarnsWhenTraceDropsRecordsDuringBurst) {
  std::vector<FaultEvent> events;
  events.push_back({1, FaultKind::kDiskLatencySpike, -1, 0.001, 8});
  sim::TraceLog trace(4);  // tiny ring: drops are guaranteed
  std::ostringstream warnings;
  FaultInjectorConfig config;
  config.trace = &trace;
  config.warn_stream = &warnings;
  FaultInjector injector(FaultPlan::FromScript(std::move(events)), config);

  sim::Simulator sim;
  ASSERT_TRUE(injector.ScheduleIn(sim, nullptr).ok());
  // Traffic during the burst overflows the ring.
  ASSERT_TRUE(sim.ScheduleAt(2.0, [&trace]() {
                   for (int i = 0; i < 10; ++i) {
                     trace.Append({2.0 + i * 0.1, sim::TraceKind::kNote,
                                   "disk", i, 0, "io"});
                   }
                 }).ok());
  ASSERT_TRUE(sim.Run(20).ok());
  injector.Finalize(20);

  EXPECT_GT(injector.block().dropped_during_burst, 0);
  const std::string text = warnings.str();
  EXPECT_NE(text.find("trace.dropped_records="), std::string::npos);
  EXPECT_NE(text.find("dropped_during_burst="), std::string::npos);
}

TEST(FaultInjectorTest, NoWarningWhenDropsHappenOutsideBursts) {
  sim::TraceLog trace(2);
  std::ostringstream warnings;
  FaultInjectorConfig config;
  config.trace = &trace;
  config.warn_stream = &warnings;
  FaultInjector injector(FaultPlan(), config);
  for (int i = 0; i < 10; ++i) {
    trace.Append({i * 1.0, sim::TraceKind::kNote, "disk", i, 0, "io"});
  }
  injector.Finalize(10);
  EXPECT_EQ(injector.block().dropped_during_burst, 0);
  EXPECT_TRUE(warnings.str().empty());
  EXPECT_GT(trace.dropped_records(), 0);
}

}  // namespace
}  // namespace memstream::fault
